"""Property fuzzing of WACC expression compilation.

Hypothesis generates random expression trees over two i32 variables; each
is compiled through the full WACC -> Wasm -> interpreter pipeline and
compared against a Python oracle implementing Wasm's wrapping semantics.
Division/modulo are included with guarded denominators.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wacc import compile_source
from repro.wasm import Instance, decode_module

MASK32 = 0xFFFFFFFF


def wrap(x: int) -> int:
    x &= MASK32
    return x - (1 << 32) if x >= 1 << 31 else x


class _OracleTrap(Exception):
    """The oracle determined this expression traps at runtime."""


class Node:
    """Expression tree node: renders to WACC source and evaluates in Python."""

    def __init__(self, op, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "var":
            return self.value
        if self.op == "neg":
            return f"(-({self.left.render()}))"
        if self.op == "not":
            return f"(!({self.left.render()}))"
        if self.op == "inv":
            return f"(~({self.left.render()}))"
        return f"(({self.left.render()}) {self.op} ({self.right.render()}))"

    def eval(self, env) -> int:
        if self.op == "lit":
            return self.value
        if self.op == "var":
            return env[self.value]
        if self.op == "neg":
            return wrap(-self.left.eval(env))
        if self.op == "not":
            return int(self.left.eval(env) == 0)
        if self.op == "inv":
            return wrap(~self.left.eval(env))
        a = self.left.eval(env)
        b = self.right.eval(env)
        if self.op == "+":
            return wrap(a + b)
        if self.op == "-":
            return wrap(a - b)
        if self.op == "*":
            return wrap(a * b)
        if self.op == "&":
            return wrap(a & b)
        if self.op == "|":
            return wrap(a | b)
        if self.op == "^":
            return wrap(a ^ b)
        if self.op == "<<":
            return wrap((a & MASK32) << ((b & MASK32) % 32))
        if self.op == ">>":
            return wrap(a >> ((b & MASK32) % 32))
        if self.op == ">>>":
            return wrap((a & MASK32) >> ((b & MASK32) % 32))
        if self.op in ("==", "!=", "<", ">", "<=", ">="):
            table = {
                "==": a == b, "!=": a != b, "<": a < b,
                ">": a > b, "<=": a <= b, ">=": a >= b,
            }
            return int(table[self.op])
        if self.op == "/":
            if b == 0 or (a == -(1 << 31) and b == -1):
                raise _OracleTrap
            q = abs(a) // abs(b)
            return wrap(-q if (a < 0) != (b < 0) else q)
        if self.op == "%":
            if b == 0:
                raise _OracleTrap
            r = abs(a) % abs(b)
            return wrap(-r if a < 0 else r)
        raise AssertionError(self.op)


_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "==", "!=", "<",
           ">", "<=", ">=", "/", "%"]


def node_strategy() -> st.SearchStrategy:
    leaves = st.one_of(
        st.builds(lambda v: Node("lit", value=v), st.integers(-(1 << 31), (1 << 31) - 1)),
        st.sampled_from([Node("var", value="a"), Node("var", value="b")]),
    )

    def extend(children):
        return st.one_of(
            st.builds(
                lambda op, l, r: Node(op, l, r), st.sampled_from(_BINOPS),
                children, children,
            ),
            st.builds(lambda op, l: Node(op, l), st.sampled_from(["neg", "not", "inv"]),
                      children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(node_strategy(), st.integers(-(1 << 31), (1 << 31) - 1),
       st.integers(-(1 << 31), (1 << 31) - 1))
@settings(max_examples=120, deadline=None)
def test_random_expression_matches_oracle(tree, a, b):
    try:
        expected = tree.eval({"a": a, "b": b})
    except _OracleTrap:
        expected = None  # the Wasm build must trap too
    except RecursionError:  # pragma: no cover
        return

    source = f"export fn f(a: i32, b: i32) -> i32 {{ return {tree.render()}; }}"
    # negative literals parse as unary minus over a positive literal that
    # might not fit i32 (e.g. -(-2147483648)); the compiler rejects those -
    # treat compile rejection of INT_MIN literals as out of scope here
    try:
        raw = compile_source(source)
    except Exception as exc:
        if "out of i32 range" in str(exc):
            return
        raise
    inst = Instance(decode_module(raw))
    from repro.wasm.traps import Trap

    try:
        got = inst.call("f", a, b)
    except Trap:
        assert expected is None, source
        return
    assert expected is not None and got == expected, source
