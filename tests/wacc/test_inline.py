"""Tests for the WACC function-inlining optimization.

The invariant that matters: optimized and unoptimized builds are
*observationally identical* - same results, same traps - the optimized one
just executes fewer call instructions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wacc import compile_source
from repro.wasm import Instance, decode_module, validate_module


def build(source: str, optimize: bool) -> Instance:
    return Instance(decode_module(compile_source(source, optimize=optimize)))


ACCESSOR_CHAIN = """
memory 2 8;
fn base() -> i32 { return 1000; }
fn addr(i: i32) -> i32 { return base() + i * 8; }
fn val(i: i32) -> i32 { return load32(addr(i)); }
export fn sum(n: i32) -> i32 {
    let acc: i32 = 0;
    let i: i32 = 0;
    while (i < n) {
        store32(addr(i), i * 3);
        acc = acc + val(i);
        i = i + 1;
    }
    return acc;
}
"""


class TestEquivalence:
    def test_accessor_chain_same_result(self):
        fast = build(ACCESSOR_CHAIN, True)
        slow = build(ACCESSOR_CHAIN, False)
        for n in (0, 1, 5, 50):
            assert fast.call("sum", n) == slow.call("sum", n)

    def test_optimized_uses_less_fuel(self):
        fast = build(ACCESSOR_CHAIN, True)
        slow = build(ACCESSOR_CHAIN, False)
        fast.call("sum", 50, fuel=10**9)
        fast_fuel = 10**9 - fast.store.fuel
        slow.call("sum", 50, fuel=10**9)
        slow_fuel = 10**9 - slow.store.fuel
        assert fast_fuel < slow_fuel

    def test_optimized_module_validates(self):
        validate_module(decode_module(compile_source(ACCESSOR_CHAIN, optimize=True)))

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=20, deadline=None)
    def test_arith_helpers_equivalent(self, a, b):
        source = """
            fn sq(x: i32) -> i32 { return x * x; }
            fn twice(x: i32) -> i32 { return x + x; }
            export fn f(a: i32, b: i32) -> i32 {
                return sq(a) + twice(b) - sq(b);
            }
        """
        assert build(source, True).call("f", a, b) == build(source, False).call(
            "f", a, b
        )

    def test_all_shipped_plugins_equivalent(self):
        """Every shipped scheduler plugin: -O0 == -O1 on a fixed input."""
        from repro.abi import SchedulerPlugin
        from repro.plugins import plugin_source
        from repro.sched import UeSchedInfo

        ues = [
            UeSchedInfo(1, 28, 15, 500_000, 2e6),
            UeSchedInfo(2, 12, 8, 100_000, 8e6),
            UeSchedInfo(3, 20, 11, 0, 1e6),
        ]
        for name in ("rr", "pf", "mt"):
            src = plugin_source(name)
            fast = SchedulerPlugin.load(compile_source(src, optimize=True), name=name)
            slow = SchedulerPlugin.load(compile_source(src, optimize=False), name=name)
            slow.host.limits.fuel = 50_000_000
            for slot in range(4):
                got_fast = {g.ue_id: g.prbs for g in fast.schedule(52, ues, slot).grants}
                got_slow = {g.ue_id: g.prbs for g in slow.schedule(52, ues, slot).grants}
                assert got_fast == got_slow, (name, slot)


class TestInliningRules:
    def _call_count(self, source: str) -> int:
        """Number of call instructions in the compiled module."""
        from repro.wacc import compile_module
        from repro.wasm import opcodes as op

        module = compile_module(source, optimize=True)
        return sum(
            1 for code in module.codes for opcode, _ in code.body if opcode == op.CALL
        )

    def test_simple_accessor_inlined(self):
        source = """
            fn double(x: i32) -> i32 { return x * 2; }
            export fn f(a: i32) -> i32 { return double(a); }
        """
        assert self._call_count(source) == 0

    def test_chain_collapses(self):
        assert self._call_count("""
            fn a(x: i32) -> i32 { return x + 1; }
            fn b(x: i32) -> i32 { return a(x) + 1; }
            fn c(x: i32) -> i32 { return b(x) + 1; }
            export fn f(v: i32) -> i32 { return c(v); }
        """) == 0

    def test_multi_statement_not_inlined(self):
        source = """
            global g: i32 = 0;
            fn bump(x: i32) -> i32 { g = g + 1; return x; }
            export fn f(a: i32) -> i32 { return bump(a); }
        """
        assert self._call_count(source) == 1

    def test_param_used_twice_with_complex_arg_not_inlined(self):
        source = """
            memory 2 8;
            fn sq(x: i32) -> i32 { return x * x; }
            export fn f(a: i32) -> i32 { return sq(load32(a)); }
        """
        # inlining would evaluate load32(a) twice; must stay a call
        assert self._call_count(source) == 1

    def test_param_used_twice_with_trivial_arg_inlined(self):
        source = """
            fn sq(x: i32) -> i32 { return x * x; }
            export fn f(a: i32) -> i32 { return sq(a); }
        """
        assert self._call_count(source) == 0

    def test_unused_param_with_side_effect_not_inlined(self):
        source = """
            global g: i32 = 0;
            fn first(a: i32, b: i32) -> i32 { return a; }
            fn bump() -> i32 { g = g + 1; return g; }
            export fn f(x: i32) -> i32 { return first(x, bump()); }
            export fn get() -> i32 { return g; }
        """
        # dropping bump() would lose the side effect
        assert self._call_count(source) >= 1
        inst = build(source, True)
        inst.call("f", 5)
        assert inst.call("get") == 1

    def test_recursive_function_not_inlined(self):
        # a single-return recursive fn contains a call -> not inlinable
        source = """
            export fn fib(n: i32) -> i32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        """
        inst = build(source, True)
        assert inst.call("fib", 10) == 55
