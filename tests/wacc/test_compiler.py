"""WACC compiler tests: compile, validate, execute."""

import pytest

from repro.wacc import WaccError, compile_module, compile_source
from repro.wacc.errors import WaccTypeError
from repro.wasm import Instance, decode_module, validate_module
from repro.wasm.traps import Trap


def build(source: str, imports=None) -> Instance:
    raw = compile_source(source)
    return Instance(decode_module(raw), imports=imports)


class TestBasics:
    def test_add_function(self):
        inst = build("export fn add(a: i32, b: i32) -> i32 { return a + b; }")
        assert inst.call("add", 2, 3) == 5

    def test_compiled_module_always_validates(self):
        raw = compile_source("""
            global total: f64 = 0.0;
            export fn step(x: f64) -> f64 { total = total + x; return total; }
        """)
        validate_module(decode_module(raw))

    def test_memory_exported_by_default(self):
        inst = build("export fn f() -> i32 { return 0; }")
        assert inst.memory is not None
        assert inst.memory.size_pages == 2

    def test_memory_declaration(self):
        inst = build("memory 4 8;\nexport fn f() -> i32 { return memory_size(); }")
        assert inst.call("f") == 4

    def test_precedence(self):
        inst = build("export fn f() -> i32 { return 2 + 3 * 4; }")
        assert inst.call("f") == 14

    def test_parentheses(self):
        inst = build("export fn f() -> i32 { return (2 + 3) * 4; }")
        assert inst.call("f") == 20

    def test_comments_ignored(self):
        inst = build("""
            // line comment
            /* block
               comment */
            export fn f() -> i32 { return 1; /* inline */ }
        """)
        assert inst.call("f") == 1

    def test_hex_literals(self):
        inst = build("export fn f() -> i32 { return 0xff & 0x0f; }")
        assert inst.call("f") == 0x0F

    def test_negative_literal_wrap(self):
        inst = build("export fn f() -> i32 { return 0xFFFFFFFF; }")
        assert inst.call("f") == -1


class TestControlFlow:
    def test_if_else(self):
        inst = build("""
            export fn sign(x: i32) -> i32 {
                if (x > 0) { return 1; }
                else if (x < 0) { return -1; }
                else { return 0; }
            }
        """)
        assert inst.call("sign", 42) == 1
        assert inst.call("sign", -42) == -1
        assert inst.call("sign", 0) == 0

    def test_while_loop(self):
        inst = build("""
            export fn sum(n: i32) -> i32 {
                let acc: i32 = 0;
                let i: i32 = 1;
                while (i <= n) { acc = acc + i; i = i + 1; }
                return acc;
            }
        """)
        assert inst.call("sum", 100) == 5050

    def test_for_loop(self):
        inst = build("""
            export fn sum(n: i32) -> i32 {
                let acc: i32 = 0;
                for (let i: i32 = 0; i < n; i = i + 1) { acc = acc + i; }
                return acc;
            }
        """)
        assert inst.call("sum", 10) == 45

    def test_break(self):
        inst = build("""
            export fn first_multiple(of: i32, above: i32) -> i32 {
                let x: i32 = above;
                while (1) {
                    if (x % of == 0) { break; }
                    x = x + 1;
                }
                return x;
            }
        """)
        assert inst.call("first_multiple", 7, 30) == 35

    def test_continue(self):
        inst = build("""
            export fn sum_even(n: i32) -> i32 {
                let acc: i32 = 0;
                let i: i32 = 0;
                while (i < n) {
                    i = i + 1;
                    if (i % 2 == 1) { continue; }
                    acc = acc + i;
                }
                return acc;
            }
        """)
        assert inst.call("sum_even", 10) == 30

    def test_nested_loops_break_inner(self):
        inst = build("""
            export fn f() -> i32 {
                let count: i32 = 0;
                let i: i32 = 0;
                while (i < 3) {
                    let j: i32 = 0;
                    while (1) {
                        if (j >= 4) { break; }
                        j = j + 1;
                        count = count + 1;
                    }
                    i = i + 1;
                }
                return count;
            }
        """)
        # NOTE: inner `let j` re-declares across iterations -> rejected;
        # see TestErrors. This version hoists correctly.
        assert inst.call("f") == 12

    def test_short_circuit_and(self):
        # right side would trap (div by zero) if evaluated
        inst = build("""
            export fn f(x: i32) -> i32 { return (x != 0) && (10 / x > 1); }
        """)
        assert inst.call("f", 0) == 0
        assert inst.call("f", 4) == 1
        assert inst.call("f", 100) == 0

    def test_short_circuit_or(self):
        inst = build("""
            export fn f(x: i32) -> i32 { return (x == 0) || (10 / x > 1); }
        """)
        assert inst.call("f", 0) == 1
        assert inst.call("f", 2) == 1
        assert inst.call("f", 10) == 0


class TestTypesAndCasts:
    def test_i64_arithmetic(self):
        inst = build("""
            export fn big(a: i64, b: i64) -> i64 { return a * b + (1 as i64); }
        """)
        assert inst.call("big", 1 << 40, 4) == (1 << 42) + 1

    def test_f64_math(self):
        inst = build("""
            export fn hypot2(a: f64, b: f64) -> f64 { return sqrt(a*a + b*b); }
        """)
        assert inst.call("hypot2", 3.0, 4.0) == 5.0

    def test_cast_f64_to_i32(self):
        inst = build("export fn f(x: f64) -> i32 { return x as i32; }")
        assert inst.call("f", 3.9) == 3
        assert inst.call("f", -3.9) == -3

    def test_cast_i32_to_f64(self):
        inst = build("export fn f(x: i32) -> f64 { return (x as f64) / 2.0; }")
        assert inst.call("f", 7) == 3.5

    def test_literal_adapts_to_i64_context(self):
        inst = build("export fn f(x: i64) -> i64 { return x + 1; }")
        assert inst.call("f", (1 << 62)) == (1 << 62) + 1

    def test_f32_roundtrip(self):
        inst = build("export fn f(x: f32) -> f32 { return x * (2 as f32); }")
        assert inst.call("f", 1.5) == 3.0

    def test_builtin_float_ops(self):
        inst = build("""
            export fn fl(x: f64) -> f64 { return floor(x); }
            export fn ce(x: f64) -> f64 { return ceil(x); }
            export fn mx(a: f64, b: f64) -> f64 { return fmax(a, b); }
        """)
        assert inst.call("fl", 2.7) == 2.0
        assert inst.call("ce", 2.2) == 3.0
        assert inst.call("mx", 1.0, 9.0) == 9.0

    def test_unsigned_shift(self):
        inst = build("export fn f(x: i32) -> i32 { return x >>> 1; }")
        assert inst.call("f", -2) == 0x7FFFFFFF


class TestMemoryBuiltins:
    def test_store_load_roundtrip(self):
        inst = build("""
            export fn f(addr: i32, v: i32) -> i32 {
                store32(addr, v);
                return load32(addr);
            }
        """)
        assert inst.call("f", 64, 123456) == 123456

    def test_byte_access(self):
        inst = build("""
            export fn f() -> i32 {
                store8(10, 200);
                return load8u(10) + load8s(10);
            }
        """)
        assert inst.call("f") == 200 + (200 - 256)

    def test_f64_memory(self):
        inst = build("""
            export fn f(addr: i32, v: f64) -> f64 {
                storef64(addr, v);
                return loadf64(addr) * 2.0;
            }
        """)
        assert inst.call("f", 8, 2.25) == 4.5

    def test_oob_access_traps(self):
        inst = build("memory 1 1;\nexport fn f(a: i32) -> i32 { return load32(a); }")
        with pytest.raises(Trap):
            inst.call("f", 70000)

    def test_memory_grow(self):
        inst = build("""
            memory 1 4;
            export fn f() -> i32 {
                memory_grow(2);
                return memory_size();
            }
        """)
        assert inst.call("f") == 3

    def test_trap_builtin(self):
        inst = build("export fn f() { trap(); }")
        with pytest.raises(Trap) as exc:
            inst.call("f")
        assert exc.value.code == "unreachable"


class TestFunctionsAndGlobals:
    def test_internal_helper(self):
        inst = build("""
            fn square(x: i32) -> i32 { return x * x; }
            export fn f(x: i32) -> i32 { return square(x) + square(x + 1); }
        """)
        assert inst.call("f", 3) == 9 + 16
        assert "square" not in inst.export_names()

    def test_recursion(self):
        inst = build("""
            export fn fib(n: i32) -> i32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        """)
        assert inst.call("fib", 15) == 610

    def test_global_state_persists(self):
        inst = build("""
            global counter: i32 = 10;
            export fn bump() -> i32 { counter = counter + 1; return counter; }
        """)
        assert inst.call("bump") == 11
        assert inst.call("bump") == 12

    def test_host_import(self):
        from repro.wasm import HostFunc
        from repro.wasm.wtypes import FuncType, ValType

        seen = []

        def log(caller, code):
            seen.append(code)

        ft = FuncType((ValType.I32,), ())
        inst = build(
            """
            import fn log(code: i32);
            export fn f(x: i32) { log(x * 2); }
            """,
            imports={"env": {"log": HostFunc(ft, log, "log")}},
        )
        inst.call("f", 21)
        assert seen == [42]

    def test_void_function(self):
        inst = build("""
            global x: i32 = 0;
            export fn set(v: i32) { x = v; }
            export fn get() -> i32 { return x; }
        """)
        inst.call("set", 77)
        assert inst.call("get") == 77

    def test_fallthrough_of_value_function_traps(self):
        inst = build("""
            export fn f(x: i32) -> i32 { if (x > 0) { return 1; } }
        """)
        assert inst.call("f", 5) == 1
        with pytest.raises(Trap):
            inst.call("f", -5)

    def test_f64_global(self):
        inst = build("""
            global ewma: f64 = 1.5;
            export fn get() -> f64 { return ewma; }
        """)
        assert inst.call("get") == 1.5


class TestErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("export fn f() -> i32 { return 1.5; }", "return type"),
            ("export fn f() -> i32 { return x; }", "undefined variable"),
            ("export fn f() { y = 3; }", "undefined variable"),
            ("export fn f() { let a: i32 = 1; let a: i32 = 2; }", "redeclaration"),
            ("export fn f() -> i32 { return g(); }", "undefined function"),
            ("export fn f(a: i32, a: i32) {}", "duplicate parameter"),
            ("export fn f() { break; }", "outside a loop"),
            ("export fn f() -> i32 { return 1 + 1.5; }", "mismatch"),
            ("export fn f() -> i32 { return 1.0 % 2.0; }", "not defined"),
            ("export fn f(x: f64) { if (x) { } }", "condition must be i32"),
            ("export fn f() { store32(0); }", "expects 2 args"),
            ("export fn f() { let x: i32 = memory_grow; }", "undefined variable"),
            ("fn f() {} fn f() {}", "duplicate function"),
            ("export fn f() -> i32 { return 99999999999; }", "out of i32 range"),
        ],
    )
    def test_rejected(self, source, match):
        with pytest.raises(WaccError, match=match):
            compile_source(source)

    def test_syntax_error_reports_line(self):
        with pytest.raises(WaccError, match="line 2"):
            compile_source("export fn f() {\n  let ; \n}")

    def test_unterminated_comment(self):
        with pytest.raises(WaccError, match="unterminated"):
            compile_source("/* oops")
