"""Tests for WACC constant folding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wacc import compile_module, compile_source
from repro.wasm import Instance, decode_module
from repro.wasm import opcodes as op
from repro.wasm.traps import Trap

i32s = st.integers(-(1 << 31), (1 << 31) - 1)


def const_count(source: str) -> int:
    """i32.const instructions in the optimized build's bodies."""
    module = compile_module(source, optimize=True)
    return sum(
        1 for code in module.codes for opcode, _ in code.body
        if opcode == op.I32_CONST
    )


def run(source: str, func: str, *args, optimize=True):
    inst = Instance(decode_module(compile_source(source, optimize=optimize)))
    return inst.call(func, *args)


class TestFolding:
    def test_arith_chain_folds_to_one_const(self):
        source = "export fn f() -> i32 { return 2 + 3 * 4 - 1; }"
        assert const_count(source) == 1
        assert run(source, "f") == 13

    def test_wrapping_preserved(self):
        source = "export fn f() -> i32 { return 2147483647 + 1; }"
        assert run(source, "f") == run(source, "f", optimize=False) == -(1 << 31)

    def test_shift_semantics(self):
        source = "export fn f() -> i32 { return 1 << 33; }"
        assert run(source, "f") == 2  # count mod 32

    def test_division_by_zero_not_folded(self):
        source = "export fn f() -> i32 { return 1 / 0; }"
        with pytest.raises(Trap):
            run(source, "f")

    def test_signed_division_truncates(self):
        source = "export fn f() -> i32 { return -7 / 2; }"
        assert run(source, "f") == -3

    def test_unary_folds(self):
        source = "export fn f() -> i32 { return ~(-1) + !0; }"
        assert const_count(source) == 1
        assert run(source, "f") == 1

    def test_float_folds(self):
        source = "export fn f() -> f64 { return 1.5 * 2.0 + 0.25; }"
        assert run(source, "f") == 3.25

    def test_comparison_folds(self):
        source = "export fn f() -> i32 { return 3 < 5; }"
        assert const_count(source) == 1
        assert run(source, "f") == 1

    def test_inlining_exposes_folds(self):
        """After inlining `header()`, 1024 + 16 folds to 1040 in f's body.

        (The now-unused `header` function still exists - WACC does no dead
        code elimination - so count constants in f's body only.)
        """
        source = """
            fn header() -> i32 { return 1024; }
            export fn f() -> i32 { return header() + 16; }
        """
        module = compile_module(source, optimize=True)
        f_body = module.codes[-1].body
        consts = [imm for opcode, imm in f_body if opcode == op.I32_CONST]
        assert consts == [1040]
        assert run(source, "f") == 1040

    @given(i32s, i32s)
    @settings(max_examples=30, deadline=None)
    def test_folded_equals_runtime(self, a, b):
        """Compile-time fold must equal the interpreter's runtime result."""
        source_folded = f"export fn f() -> i32 {{ return ({a}) + ({b}); }}"
        source_runtime = """
            export fn f(a: i32, b: i32) -> i32 { return a + b; }
        """
        assert run(source_folded, "f") == run(source_runtime, "f", a, b)

    @given(i32s, st.integers(-(1 << 31), -1) | st.integers(1, (1 << 31) - 1))
    @settings(max_examples=30, deadline=None)
    def test_folded_div_equals_runtime(self, a, b):
        if a == -(1 << 31) and b == -1:
            return
        source_folded = f"export fn f() -> i32 {{ return ({a}) / ({b}); }}"
        source_runtime = "export fn f(a: i32, b: i32) -> i32 { return a / b; }"
        assert run(source_folded, "f") == run(source_runtime, "f", a, b)
