"""FaultPolicy lifecycle tests: the full §6A escalation ladder.

Covers fallback → quarantine → release → re-fault → disconnect, the
``disconnect_after=None`` configuration, success-resets-counter, the
no-op behaviour for already-disconnected slices, and constructor
validation - directly, without going through the gNB host.
"""

import pytest

from repro.gnb.fault import FaultAction, FaultPolicy


class TestValidation:
    def test_quarantine_after_must_be_positive(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            FaultPolicy(quarantine_after=0)

    def test_disconnect_must_exceed_quarantine(self):
        with pytest.raises(ValueError, match="disconnect_after"):
            FaultPolicy(quarantine_after=3, disconnect_after=3)
        with pytest.raises(ValueError, match="disconnect_after"):
            FaultPolicy(quarantine_after=3, disconnect_after=2)

    def test_valid_configurations(self):
        FaultPolicy(quarantine_after=1)
        FaultPolicy(quarantine_after=3, disconnect_after=4)
        FaultPolicy(quarantine_after=3, disconnect_after=None)


class TestEscalationLadder:
    def test_full_lifecycle_to_disconnect(self):
        """fallback -> quarantine -> release -> re-fault -> disconnect."""
        policy = FaultPolicy(quarantine_after=2, disconnect_after=4)

        assert policy.record_fault(0, 1, "trap", "t") == FaultAction.FALLBACK
        assert policy.record_fault(1, 1, "trap", "t") == FaultAction.QUARANTINE
        assert policy.is_quarantined(1)

        # the operator releases; the slice is on probation - the counter
        # survives so a re-fault keeps climbing instead of oscillating
        policy.release(1)
        assert not policy.is_quarantined(1)
        assert policy.consecutive[1] == 2

        assert policy.record_fault(10, 1, "fuel", "f") == FaultAction.QUARANTINE
        policy.release(1)
        assert policy.record_fault(20, 1, "abi", "a") == FaultAction.DISCONNECT
        assert policy.is_disconnected(1)

    def test_success_resets_counter(self):
        policy = FaultPolicy(quarantine_after=3)
        policy.record_fault(0, 1, "trap", "t")
        policy.record_fault(1, 1, "trap", "t")
        policy.record_success(1)
        # the streak restarts: two more faults still only fall back
        assert policy.record_fault(2, 1, "trap", "t") == FaultAction.FALLBACK
        assert policy.record_fault(3, 1, "trap", "t") == FaultAction.FALLBACK
        assert policy.record_fault(4, 1, "trap", "t") == FaultAction.QUARANTINE

    def test_success_after_release_clears_probation(self):
        policy = FaultPolicy(quarantine_after=2, disconnect_after=4)
        policy.record_fault(0, 1, "trap", "t")
        policy.record_fault(1, 1, "trap", "t")
        policy.release(1)
        policy.record_success(1)
        assert policy.consecutive[1] == 0
        # the ladder restarts from the bottom
        assert policy.record_fault(5, 1, "trap", "t") == FaultAction.FALLBACK

    def test_disconnect_after_none_never_disconnects(self):
        policy = FaultPolicy(quarantine_after=2, disconnect_after=None)
        for slot in range(50):
            action = policy.record_fault(slot, 1, "trap", "t")
            assert action != FaultAction.DISCONNECT
        assert policy.is_quarantined(1)
        assert not policy.is_disconnected(1)

    def test_slices_are_independent(self):
        policy = FaultPolicy(quarantine_after=2)
        policy.record_fault(0, 1, "trap", "t")
        assert policy.record_fault(0, 2, "trap", "t") == FaultAction.FALLBACK
        assert policy.record_fault(1, 1, "trap", "t") == FaultAction.QUARANTINE
        assert not policy.is_quarantined(2)


class TestDisconnectedIsTerminal:
    def test_record_fault_on_disconnected_slice_is_noop(self):
        policy = FaultPolicy(quarantine_after=1, disconnect_after=2)
        policy.record_fault(0, 1, "trap", "t")
        assert policy.record_fault(1, 1, "trap", "t") == FaultAction.DISCONNECT
        events_before = len(policy.events)
        count_before = policy.consecutive[1]

        # past the end of the ladder: no escalation, no new events
        assert policy.record_fault(2, 1, "trap", "t") == FaultAction.DISCONNECT
        assert len(policy.events) == events_before
        assert policy.consecutive[1] == count_before
