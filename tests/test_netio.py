"""Transport tests: framing, in-proc and TCP networks."""

import pytest

from repro.netio import (
    FrameError,
    InProcNetwork,
    NetworkError,
    TcpNetwork,
    read_frame,
    write_frame,
)


class TestFraming:
    def test_roundtrip(self):
        frame = write_frame("ric", b"\x01\x02payload")
        buf = bytearray(frame)

        def recv_exact(n):
            out = bytes(buf[:n])
            del buf[:n]
            return out

        source, payload = read_frame(recv_exact)
        assert source == "ric"
        assert payload == b"\x01\x02payload"

    def test_empty_payload(self):
        frame = write_frame("x", b"")
        buf = bytearray(frame)

        def recv_exact(n):
            out = bytes(buf[:n])
            del buf[:n]
            return out

        assert read_frame(recv_exact) == ("x", b"")

    def test_oversized_rejected(self):
        with pytest.raises(FrameError):
            write_frame("x", b"\x00" * (17 << 20))


class TestInProcNetwork:
    def test_send_recv(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"hello")
        assert b.recv() == ("a", b"hello")

    def test_recv_empty_returns_none(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        assert a.recv() is None

    def test_unknown_dest(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        with pytest.raises(NetworkError):
            a.send("ghost", b"x")

    def test_duplicate_name(self):
        net = InProcNetwork()
        net.endpoint("a")
        with pytest.raises(NetworkError):
            net.endpoint("a")

    def test_ordering_preserved(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        for i in range(10):
            a.send("b", bytes([i]))
        assert [p[0] for _, p in b.drain()] == list(range(10))

    def test_bidirectional(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"ping")
        src, _ = b.recv()
        b.send(src, b"pong")
        assert a.recv() == ("b", b"pong")


class TestTcpNetwork:
    def test_send_recv_over_sockets(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            a.send("b", b"over tcp")
            assert b.recv(timeout=5.0) == ("a", b"over tcp")
        finally:
            net.close()

    def test_many_messages(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            for i in range(50):
                a.send("b", i.to_bytes(4, "little"))
            got = []
            while len(got) < 50:
                item = b.recv(timeout=5.0)
                assert item is not None
                got.append(int.from_bytes(item[1], "little"))
            assert got == list(range(50))
        finally:
            net.close()

    def test_binary_safety(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            payload = bytes(range(256)) * 10
            a.send("b", payload)
            assert b.recv(timeout=5.0) == ("a", payload)
        finally:
            net.close()

    def test_unknown_dest(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            with pytest.raises(NetworkError):
                a.send("ghost", b"x")
        finally:
            net.close()


def _open_fds() -> int:
    import os

    return len(os.listdir("/proc/self/fd"))


class TestTcpLifecycle:
    def test_network_context_manager(self):
        with TcpNetwork() as net:
            a = net.endpoint("a")
            b = net.endpoint("b")
            a.send("b", b"ctx")
            assert b.recv(timeout=5.0) == ("a", b"ctx")
        # everything closed: sends now fail outright
        with pytest.raises((NetworkError, OSError)):
            a.send("b", b"after close")

    def test_endpoint_context_manager(self):
        with TcpNetwork() as net:
            with net.endpoint("a") as a:
                with net.endpoint("b") as b:
                    a.send("b", b"x")
                    assert b.recv(timeout=5.0) == ("a", b"x")

    def test_no_leaked_fds(self):
        import time

        before = _open_fds()
        for _ in range(3):
            with TcpNetwork() as net:
                a = net.endpoint("a")
                b = net.endpoint("b")
                for i in range(5):
                    a.send("b", bytes([i]))
                got = 0
                while got < 5:
                    assert b.recv(timeout=5.0) is not None
                    got += 1
        time.sleep(0.1)  # reader threads observe their closed sockets
        assert _open_fds() <= before

    def test_stop_then_restart_on_same_port(self):
        with TcpNetwork() as net:
            server = net.endpoint("svc")
            port = server.port
            client = net.endpoint("client")
            client.send("svc", b"first")
            assert server.recv(timeout=5.0) == ("client", b"first")

            server.close()  # forgets the name, closes listener + conns
            reborn = net.endpoint("svc", port=port)
            assert reborn.port == port
            client.send("svc", b"second")  # reconnects transparently
            assert reborn.recv(timeout=5.0) == ("client", b"second")

    def test_register_peer_conflict_rejected(self):
        with TcpNetwork() as net:
            a = net.endpoint("a")
            net.register_peer("remote", 54321)
            net.register_peer("remote", 54321)  # idempotent
            with pytest.raises(NetworkError):
                net.register_peer("remote", 54322)
            with pytest.raises(NetworkError):
                net.register_peer("a", a.port + 1)  # type: ignore[operator]

    def test_cross_network_peer(self):
        """Two registries, as two processes would have, linked by port."""
        with TcpNetwork() as net1, TcpNetwork() as net2:
            server = net1.endpoint("coord")
            net2.register_peer("coord", server.port)  # type: ignore[attr-defined]
            worker = net2.endpoint("worker0")
            worker.send("coord", b"hello")
            assert server.recv(timeout=5.0) == ("worker0", b"hello")

    def test_endpoint_close_idempotent(self):
        with TcpNetwork() as net:
            a = net.endpoint("a")
            a.close()
            a.close()  # second close is a no-op, not an error
