"""Transport tests: framing, in-proc and TCP networks."""

import pytest

from repro.netio import (
    FrameError,
    InProcNetwork,
    NetworkError,
    TcpNetwork,
    read_frame,
    write_frame,
)


class TestFraming:
    def test_roundtrip(self):
        frame = write_frame("ric", b"\x01\x02payload")
        buf = bytearray(frame)

        def recv_exact(n):
            out = bytes(buf[:n])
            del buf[:n]
            return out

        source, payload = read_frame(recv_exact)
        assert source == "ric"
        assert payload == b"\x01\x02payload"

    def test_empty_payload(self):
        frame = write_frame("x", b"")
        buf = bytearray(frame)

        def recv_exact(n):
            out = bytes(buf[:n])
            del buf[:n]
            return out

        assert read_frame(recv_exact) == ("x", b"")

    def test_oversized_rejected(self):
        with pytest.raises(FrameError):
            write_frame("x", b"\x00" * (17 << 20))


class TestInProcNetwork:
    def test_send_recv(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"hello")
        assert b.recv() == ("a", b"hello")

    def test_recv_empty_returns_none(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        assert a.recv() is None

    def test_unknown_dest(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        with pytest.raises(NetworkError):
            a.send("ghost", b"x")

    def test_duplicate_name(self):
        net = InProcNetwork()
        net.endpoint("a")
        with pytest.raises(NetworkError):
            net.endpoint("a")

    def test_ordering_preserved(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        for i in range(10):
            a.send("b", bytes([i]))
        assert [p[0] for _, p in b.drain()] == list(range(10))

    def test_bidirectional(self):
        net = InProcNetwork()
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"ping")
        src, _ = b.recv()
        b.send(src, b"pong")
        assert a.recv() == ("b", b"pong")


class TestTcpNetwork:
    def test_send_recv_over_sockets(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            a.send("b", b"over tcp")
            assert b.recv(timeout=5.0) == ("a", b"over tcp")
        finally:
            net.close()

    def test_many_messages(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            for i in range(50):
                a.send("b", i.to_bytes(4, "little"))
            got = []
            while len(got) < 50:
                item = b.recv(timeout=5.0)
                assert item is not None
                got.append(int.from_bytes(item[1], "little"))
            assert got == list(range(50))
        finally:
            net.close()

    def test_binary_safety(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            b = net.endpoint("b")
            payload = bytes(range(256)) * 10
            a.send("b", payload)
            assert b.recv(timeout=5.0) == ("a", payload)
        finally:
            net.close()

    def test_unknown_dest(self):
        net = TcpNetwork()
        try:
            a = net.endpoint("a")
            with pytest.raises(NetworkError):
                a.send("ghost", b"x")
        finally:
            net.close()
