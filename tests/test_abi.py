"""Unit tests for the plugin ABI layer: wire format, sanitizer, host."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abi import (
    SCHED_INPUT_HEADER,
    SCHED_UE_STRIDE,
    pack_grants,
    pack_sched_input,
    sanitize_plugin,
    unpack_grants,
    unpack_sched_input,
)
from repro.abi.sanitizer import SanitizerError
from repro.abi.wire import WireError
from repro.sched.types import UeGrant, UeSchedInfo
from repro.wacc import compile_source

ue_strategy = st.builds(
    UeSchedInfo,
    ue_id=st.integers(0, 10_000),
    mcs=st.integers(0, 28),
    cqi=st.integers(0, 15),
    buffer_bytes=st.integers(0, (1 << 31) - 1),
    avg_tput_bps=st.floats(0, 1e12, allow_nan=False),
)


class TestSchedWire:
    def test_header_layout(self):
        payload = pack_sched_input(7, 52, [])
        magic, version, slot, prbs, n = struct.unpack_from("<IIIII", payload, 0)
        assert magic == 0x5741524E
        assert version == 1
        assert (slot, prbs, n) == (7, 52, 0)
        assert len(payload) == SCHED_INPUT_HEADER

    def test_records_sorted_by_ue_id(self):
        ues = [
            UeSchedInfo(9, 1, 1, 10, 0.0),
            UeSchedInfo(2, 2, 2, 20, 0.0),
            UeSchedInfo(5, 3, 3, 30, 0.0),
        ]
        _slot, _prbs, decoded = unpack_sched_input(pack_sched_input(0, 52, ues))
        assert [u.ue_id for u in decoded] == [2, 5, 9]

    def test_stride(self):
        payload = pack_sched_input(0, 52, [UeSchedInfo(1, 1, 1, 1, 0.0)])
        assert len(payload) == SCHED_INPUT_HEADER + SCHED_UE_STRIDE

    @given(st.lists(ue_strategy, max_size=30), st.integers(0, 1 << 20))
    @settings(max_examples=40)
    def test_input_roundtrip(self, ues, slot):
        unique = list({u.ue_id: u for u in ues}.values())
        got_slot, got_prbs, got = unpack_sched_input(
            pack_sched_input(slot, 52, unique)
        )
        assert got_slot == slot
        assert got_prbs == 52
        assert {u.ue_id for u in got} == {u.ue_id for u in unique}
        by_id = {u.ue_id: u for u in unique}
        for u in got:
            ref = by_id[u.ue_id]
            assert (u.mcs, u.cqi, u.buffer_bytes) == (ref.mcs, ref.cqi, ref.buffer_bytes)
            assert u.avg_tput_bps == pytest.approx(ref.avg_tput_bps)

    def test_bad_magic_rejected(self):
        payload = bytearray(pack_sched_input(0, 52, []))
        payload[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            unpack_sched_input(bytes(payload))

    def test_bad_version_rejected(self):
        payload = bytearray(pack_sched_input(0, 52, []))
        payload[4] = 99
        with pytest.raises(WireError, match="version"):
            unpack_sched_input(bytes(payload))

    def test_truncated_rejected(self):
        payload = pack_sched_input(0, 52, [UeSchedInfo(1, 1, 1, 1, 0.0)])
        with pytest.raises(WireError, match="truncated"):
            unpack_sched_input(payload[:-4])

    @given(st.lists(st.builds(UeGrant, st.integers(0, 1000), st.integers(0, 275)),
                    max_size=50))
    def test_grants_roundtrip(self, grants):
        assert unpack_grants(pack_grants(grants)) == grants

    def test_implausible_count_rejected(self):
        with pytest.raises(WireError, match="implausible"):
            unpack_grants(struct.pack("<I", 1_000_000))


class TestSanitizer:
    def _compile(self, source: str) -> bytes:
        return compile_source(source)

    def test_accepts_conforming_plugin(self):
        from repro.plugins import plugin_wasm

        report = sanitize_plugin(plugin_wasm("mt"))
        assert report.n_exports >= 3

    def test_missing_run_rejected(self):
        raw = self._compile(
            "memory 2 8;\nexport fn alloc(size: i32) -> i32 { return 1024; }"
        )
        with pytest.raises(SanitizerError, match="missing required export 'run'"):
            sanitize_plugin(raw)

    def test_wrong_signature_rejected(self):
        raw = self._compile("""
            memory 2 8;
            export fn alloc(size: i32) -> i32 { return 1024; }
            export fn run(p: i32) -> i32 { return p; }
        """)
        with pytest.raises(SanitizerError, match="signature"):
            sanitize_plugin(raw)

    def test_unbounded_memory_rejected(self):
        raw = self._compile("""
            memory 2;
            export fn alloc(size: i32) -> i32 { return 1024; }
            export fn run(p: i32, n: i32) -> i32 { return p; }
        """)
        with pytest.raises(SanitizerError, match="no maximum"):
            sanitize_plugin(raw)

    def test_huge_memory_rejected(self):
        raw = self._compile("""
            memory 2 2048;
            export fn alloc(size: i32) -> i32 { return 1024; }
            export fn run(p: i32, n: i32) -> i32 { return p; }
        """)
        with pytest.raises(SanitizerError, match="exceeds"):
            sanitize_plugin(raw)

    def test_forbidden_import_rejected(self):
        raw = self._compile("""
            import fn format_disk(x: i32);
            memory 2 8;
            export fn alloc(size: i32) -> i32 { return 1024; }
            export fn run(p: i32, n: i32) -> i32 { format_disk(0); return p; }
        """)
        with pytest.raises(SanitizerError, match="forbidden host function"):
            sanitize_plugin(raw)

    def test_invalid_wasm_rejected(self):
        with pytest.raises(SanitizerError, match="validation"):
            sanitize_plugin(b"\x00asm\x01\x00\x00\x00\xff")

    def test_non_env_import_rejected(self):
        from repro.wasm.wat import assemble

        raw = assemble("""(module
          (import "wasi_snapshot_preview1" "fd_write"
            (func $w (param i32 i32 i32 i32) (result i32)))
          (memory (export "memory") 2 8)
          (func (export "alloc") (param i32) (result i32) (i32.const 1024))
          (func (export "run") (param i32 i32) (result i32) (i32.const 0)))""")
        with pytest.raises(SanitizerError, match="only 'env'"):
            sanitize_plugin(raw)

    def test_memory_export_required(self):
        from repro.wasm.wat import assemble

        raw = assemble("""(module
          (memory 2 8)
          (func (export "alloc") (param i32) (result i32) (i32.const 1024))
          (func (export "run") (param i32 i32) (result i32) (i32.const 0)))""")
        with pytest.raises(SanitizerError, match="export its linear memory"):
            sanitize_plugin(raw)

    def test_start_function_warned(self):
        from repro.wasm.wat import assemble

        raw = assemble("""(module
          (memory (export "memory") 2 8)
          (func $init nop)
          (func (export "alloc") (param i32) (result i32) (i32.const 1024))
          (func (export "run") (param i32 i32) (result i32) (i32.const 0))
          (start $init))""")
        report = sanitize_plugin(raw)
        assert any("start" in w for w in report.warnings)


class TestHostEdgeCases:
    def test_bad_alloc_pointer(self):
        from repro.abi.host import PluginError, PluginHost

        raw = compile_source("""
            memory 2 8;
            export fn alloc(size: i32) -> i32 { return -1; }
            export fn run(p: i32, n: i32) -> i32 { return 49152; }
        """)
        host = PluginHost(raw, name="bad-alloc")
        with pytest.raises(PluginError, match="alloc returned bad pointer"):
            host.call(b"x")

    def test_output_pointer_out_of_bounds(self):
        from repro.abi.host import PluginError, PluginHost

        raw = compile_source("""
            memory 2 8;
            export fn alloc(size: i32) -> i32 { return 1024; }
            export fn run(p: i32, n: i32) -> i32 { return 131070; }
        """)
        host = PluginHost(raw, name="bad-out")
        with pytest.raises(PluginError, match="out of bounds"):
            host.call(b"x")

    def test_oversized_input_trapped_by_plugin(self):
        from repro.abi.host import PluginError
        from repro.abi import SchedulerPlugin
        from repro.plugins import plugin_wasm

        plugin = SchedulerPlugin.load(plugin_wasm("rr"))
        huge = [UeSchedInfo(i, 1, 1, 1, 0.0) for i in range(2000)]
        with pytest.raises(PluginError):
            plugin.schedule(52, huge, 0)  # input region is 31 KiB

    def test_generation_counts_swaps(self):
        from repro.abi import SchedulerPlugin
        from repro.plugins import plugin_wasm

        plugin = SchedulerPlugin.load(plugin_wasm("rr"))
        assert plugin.host.generation == 0
        plugin.swap(plugin_wasm("pf"))
        plugin.swap(plugin_wasm("mt"))
        assert plugin.host.generation == 2

    def test_swap_to_invalid_binary_fails_loud(self):
        from repro.abi.host import PluginError
        from repro.abi import SchedulerPlugin
        from repro.abi.sanitizer import SanitizerError
        from repro.plugins import plugin_wasm

        plugin = SchedulerPlugin.load(plugin_wasm("rr"))
        with pytest.raises((PluginError, SanitizerError)):
            plugin.swap(b"not wasm at all")
