"""gNB host integration tests: the full slot loop with plugins attached."""

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.gnb import FaultPolicy, GnbHost, SliceRuntime, UeContext
from repro.gnb.fault import FaultAction
from repro.plugins import plugin_wasm
from repro.sched import TargetRateInterSlice, make_intra_scheduler
from repro.traffic import CbrSource, FullBufferSource


def make_gnb(targets=None, **kwargs):
    inter = TargetRateInterSlice(targets or {}, slot_duration_s=1e-3)
    return GnbHost(inter_slice=inter, **kwargs)


def add_slice(gnb, sid, name, plugin_name=None, native=None):
    runtime = gnb.add_slice(SliceRuntime(sid, name))
    if plugin_name:
        runtime.use_plugin(SchedulerPlugin.load(plugin_wasm(plugin_name), name=plugin_name))
    if native:
        runtime.use_native(make_intra_scheduler(native))
    return runtime


def add_ue(gnb, ue_id, sid, mcs=28, rate_bps=None):
    traffic = CbrSource(rate_bps) if rate_bps else FullBufferSource()
    return gnb.attach_ue(
        UeContext(ue_id, sid, FixedMcsChannel(mcs), traffic)
    )


class TestBasicOperation:
    def test_single_slice_plugin_delivers_target_rate(self):
        gnb = make_gnb({1: 5e6})
        add_slice(gnb, 1, "mvno1", plugin_name="rr")
        add_ue(gnb, 1, 1)
        gnb.run(2000)
        gnb.finish_meters()
        rate = gnb.slices[1].meter.average_bps(2.0)
        assert rate == pytest.approx(5e6, rel=0.1)

    def test_native_and_plugin_slices_coexist(self):
        gnb = make_gnb({1: 3e6, 2: 3e6})
        add_slice(gnb, 1, "a", plugin_name="mt")
        add_slice(gnb, 2, "b", native="rr")
        add_ue(gnb, 1, 1)
        add_ue(gnb, 2, 2)
        gnb.run(1000)
        gnb.finish_meters()
        assert gnb.slices[1].meter.average_bps(1.0) == pytest.approx(3e6, rel=0.15)
        assert gnb.slices[2].meter.average_bps(1.0) == pytest.approx(3e6, rel=0.15)

    def test_cbr_traffic_limits_rate(self):
        gnb = make_gnb({1: 20e6})
        add_slice(gnb, 1, "a", plugin_name="rr")
        add_ue(gnb, 1, 1, rate_bps=2e6)  # source slower than slice target
        gnb.run(1000)
        gnb.finish_meters()
        assert gnb.slices[1].meter.average_bps(1.0) == pytest.approx(2e6, rel=0.1)

    def test_duplicate_slice_rejected(self):
        gnb = make_gnb()
        add_slice(gnb, 1, "a")
        with pytest.raises(ValueError):
            gnb.add_slice(SliceRuntime(1, "dup"))

    def test_ue_requires_slice(self):
        gnb = make_gnb()
        with pytest.raises(ValueError, match="unknown slice"):
            add_ue(gnb, 1, 99)

    def test_exec_time_metrics_collected(self):
        gnb = make_gnb({1: 5e6})
        add_slice(gnb, 1, "a", plugin_name="pf")
        add_ue(gnb, 1, 1)
        gnb.run(50)
        runtime = gnb.slices[1]
        assert runtime.exec_time.count == 50
        assert runtime.exec_p99.value >= runtime.exec_p50.value


class TestHotSwap:
    def test_swap_without_stopping(self):
        """§5C: swap MT -> PF mid-run; gNB keeps serving every slot."""
        gnb = make_gnb({1: 22e6})
        runtime = add_slice(gnb, 1, "a", plugin_name="mt")
        for ue_id, mcs in ((1, 20), (2, 24), (3, 28)):
            add_ue(gnb, ue_id, 1, mcs=mcs)
        gnb.run(300)
        generation = runtime.swap_plugin(plugin_wasm("pf"))
        assert generation == 1
        gnb.run(300)
        gnb.finish_meters()
        # service never stopped: delivery in every 1 s window
        series = [bps for _, bps in gnb.slices[1].meter.series()]
        assert all(bps > 0 for bps in series)

    def test_swap_changes_policy_visibly(self):
        gnb = make_gnb({1: 50e6})
        runtime = add_slice(gnb, 1, "a", plugin_name="mt")
        add_ue(gnb, 1, 1, mcs=20)
        add_ue(gnb, 2, 1, mcs=28)
        gnb.run(500)
        mt_ue1 = gnb.ues[1].buffer.delivered_bytes
        runtime.swap_plugin(plugin_wasm("rr"))
        before = {uid: gnb.ues[uid].buffer.delivered_bytes for uid in (1, 2)}
        gnb.run(500)
        delta1 = gnb.ues[1].buffer.delivered_bytes - before[1]
        # MT starved UE 1; RR serves it
        assert mt_ue1 == 0
        assert delta1 > 0


class TestFaultTolerance:
    def test_faulty_plugin_falls_back_to_default(self):
        gnb = make_gnb({1: 5e6}, fault_policy=FaultPolicy(quarantine_after=10**9))
        add_slice(gnb, 1, "a", plugin_name="fault_oob")
        add_ue(gnb, 1, 1)
        gnb.run(200)
        gnb.finish_meters()
        # every slot faulted, every slot fell back: service continued
        assert gnb.slices[1].meter.average_bps(0.2) > 1e6
        assert len(gnb.fault_policy.events) == 200
        assert all(
            e.action == FaultAction.FALLBACK for e in gnb.fault_policy.events
        )

    def test_quarantine_after_consecutive_faults(self):
        gnb = make_gnb({1: 5e6}, fault_policy=FaultPolicy(quarantine_after=3))
        add_slice(gnb, 1, "a", plugin_name="fault_null")
        add_ue(gnb, 1, 1)
        gnb.run(50)
        assert gnb.fault_policy.is_quarantined(1)
        # after quarantine the plugin is no longer invoked
        assert len(gnb.fault_policy.events) == 3
        gnb.finish_meters()
        assert gnb.total_delivered_bytes > 0  # default scheduler served

    def test_quarantine_release_after_fixed_swap(self):
        gnb = make_gnb({1: 5e6}, fault_policy=FaultPolicy(quarantine_after=2))
        runtime = add_slice(gnb, 1, "a", plugin_name="fault_dblfree")
        add_ue(gnb, 1, 1)
        gnb.run(10)
        assert gnb.fault_policy.is_quarantined(1)
        runtime.swap_plugin(plugin_wasm("rr"))
        gnb.fault_policy.release(1)
        gnb.run(10)
        assert not gnb.fault_policy.is_quarantined(1)
        assert gnb.slices[1].exec_time.count > 0  # plugin ran again

    def test_disconnect_policy(self):
        gnb = make_gnb(
            {1: 5e6, 2: 5e6},
            fault_policy=FaultPolicy(quarantine_after=2, disconnect_after=5),
        )
        add_slice(gnb, 1, "hostile", plugin_name="fault_badgrants")
        add_slice(gnb, 2, "honest", plugin_name="rr")
        add_ue(gnb, 1, 1)
        add_ue(gnb, 2, 2)
        gnb.run(100)
        # quarantine happens first and stops invocations, so force more:
        # disconnect_after <= quarantine threshold scenario
        assert gnb.fault_policy.is_quarantined(1)
        gnb.finish_meters()
        assert gnb.slices[2].meter.average_bps(0.1) > 0

    def test_invalid_grants_counted_as_fault(self):
        gnb = make_gnb({1: 5e6}, fault_policy=FaultPolicy(quarantine_after=1))
        add_slice(gnb, 1, "a", plugin_name="fault_badgrants")
        add_ue(gnb, 1, 1)
        gnb.run(5)
        assert gnb.fault_policy.events[0].kind == "grants"

    def test_spin_plugin_cut_by_fuel_and_fallback(self):
        gnb = make_gnb({1: 5e6}, fault_policy=FaultPolicy(quarantine_after=2))
        add_slice(gnb, 1, "a", plugin_name="fault_spin")
        add_ue(gnb, 1, 1)
        gnb.run(10)
        assert gnb.fault_policy.events[0].kind == "fuel"
        assert gnb.fault_policy.is_quarantined(1)


class TestPfAveraging:
    def test_avg_tput_tracks_service(self):
        gnb = make_gnb({1: 10e6})
        add_slice(gnb, 1, "a", plugin_name="rr")
        add_ue(gnb, 1, 1)
        gnb.run(500)
        ue = gnb.ues[1]
        assert ue.avg_tput_bps == pytest.approx(10e6, rel=0.3)

    def test_avg_decays_when_unserved(self):
        gnb = make_gnb({1: 10e6})
        add_slice(gnb, 1, "a", plugin_name="rr")
        add_ue(gnb, 1, 1, rate_bps=1.0)  # nearly no traffic
        gnb.run(100)
        peak = gnb.ues[1].avg_tput_bps
        gnb.run(900)
        assert gnb.ues[1].avg_tput_bps <= max(peak, 1e4)


class TestOtherNumerologies:
    """The stack is numerology-agnostic: mu=1 halves the slot duration."""

    def test_mu1_carrier_runs_and_hits_target(self):
        from repro.phy import CarrierConfig, Numerology

        carrier = CarrierConfig(bandwidth_mhz=20, numerology=Numerology(1))
        assert carrier.n_prb == 51
        inter = TargetRateInterSlice({1: 5e6}, slot_duration_s=carrier.slot_duration_s)
        gnb = GnbHost(carrier=carrier, inter_slice=inter)
        add_slice(gnb, 1, "a", plugin_name="rr")
        add_ue(gnb, 1, 1)
        gnb.run(2000)  # 1 s of mu=1 time
        gnb.finish_meters()
        assert gnb.slices[1].meter.average_bps(1.0) == pytest.approx(5e6, rel=0.15)

    def test_mu1_slots_are_500us(self):
        from repro.phy import CarrierConfig, Numerology

        carrier = CarrierConfig(bandwidth_mhz=20, numerology=Numerology(1))
        gnb = GnbHost(carrier=carrier, inter_slice=TargetRateInterSlice({}, 5e-4))
        gnb.step()
        assert gnb.now_s == pytest.approx(5e-4)
