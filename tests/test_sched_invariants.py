"""Property-style invariant tests for the native schedulers.

Three families of invariants, each checked over randomized traffic:

- **capacity/validity** — every intra-slice scheduler's output passes the
  gNB-side :func:`validate_grants` check and never over-allocates;
- **starvation** — RR serves every backlogged UE within ``n`` slots, PF
  with throughput feedback serves everyone eventually, MT starves the
  worst channel by design (the Fig. 5b phase-one behaviour);
- **conservation** — draining a finite backlog delivers exactly the bytes
  that were buffered, and inter-slice allocators never hand out more PRBs
  than the carrier has.
"""

import random

import pytest

from repro.phy.tbs import transport_block_size_bits
from repro.sched.inter import (
    FixedShareInterSlice,
    PriorityInterSlice,
    TargetRateInterSlice,
)
from repro.sched.intra import (
    DEMAND_CAP_PRBS,
    make_intra_scheduler,
    prbs_for_bytes,
)
from repro.sched.types import UeSchedInfo, validate_grants

INTRA_POLICIES = ("rr", "pf", "mt")


def random_ues(rng: random.Random, n: int) -> list[UeSchedInfo]:
    return [
        UeSchedInfo(
            ue_id=i,
            mcs=rng.randint(0, 28),
            cqi=rng.randint(0, 15),
            buffer_bytes=rng.choice([0, rng.randint(1, 200_000)]),
            avg_tput_bps=rng.uniform(1.0, 5e7),
        )
        for i in range(n)
    ]


class TestPrbsForBytes:
    def test_zero_bytes_zero_prbs(self):
        assert prbs_for_bytes(0, 10) == 0

    @pytest.mark.parametrize("mcs", [0, 5, 14, 28])
    def test_result_is_minimal_sufficient(self, mcs):
        for nbytes in (1, 17, 400, 12_000):
            n = prbs_for_bytes(nbytes, mcs)
            if n >= DEMAND_CAP_PRBS:
                continue
            assert transport_block_size_bits(n, mcs) >= nbytes * 8
            if n > 1:
                assert transport_block_size_bits(n - 1, mcs) < nbytes * 8

    def test_monotonic_in_bytes(self):
        prev = 0
        for nbytes in range(0, 5000, 250):
            cur = prbs_for_bytes(nbytes, 10)
            assert cur >= prev
            prev = cur

    def test_saturates_at_cap(self):
        assert prbs_for_bytes(10**9, 0) == DEMAND_CAP_PRBS


class TestGrantValidity:
    @pytest.mark.parametrize("policy", INTRA_POLICIES)
    @pytest.mark.parametrize("seed", range(15))
    def test_random_traffic_always_validates(self, policy, seed):
        rng = random.Random(seed)
        sched = make_intra_scheduler(policy)
        for slot in range(30):
            ues = random_ues(rng, rng.randint(1, 12))
            prbs = rng.randint(0, 100)
            grants = sched.schedule(prbs, ues, slot)
            validate_grants(grants, prbs, ues)  # raises on any violation
            assert sum(g.prbs for g in grants) <= prbs
            backlogged = {u.ue_id for u in ues if u.buffer_bytes > 0}
            assert {g.ue_id for g in grants} <= backlogged

    @pytest.mark.parametrize("policy", INTRA_POLICIES)
    def test_no_grants_without_demand_or_capacity(self, policy):
        sched = make_intra_scheduler(policy)
        idle = [UeSchedInfo(0, 10, 8, 0, 1e6)]
        busy = [UeSchedInfo(0, 10, 8, 5000, 1e6)]
        assert sched.schedule(50, idle, 0) == []
        assert sched.schedule(0, busy, 0) == []


class TestStarvation:
    def test_rr_bounded_starvation(self):
        """With n backlogged UEs, RR serves every UE within n slots."""
        n_ues, prbs, slots = 8, 3, 100
        sched = make_intra_scheduler("rr")
        last_served = {i: -1 for i in range(n_ues)}
        worst_gap = 0
        for slot in range(slots):
            ues = [UeSchedInfo(i, 10, 8, 100_000, 1e6) for i in range(n_ues)]
            for grant in sched.schedule(prbs, ues, slot):
                gap = slot - last_served[grant.ue_id]
                worst_gap = max(worst_gap, gap)
                last_served[grant.ue_id] = slot
        assert all(s >= 0 for s in last_served.values()), "some UE never served"
        assert worst_gap <= n_ues
        # the tail matters too: nobody has been waiting > n slots at the end
        assert all(slots - s <= n_ues for s in last_served.values())

    def test_pf_with_feedback_serves_everyone(self):
        """PF + EWMA throughput feedback never starves a UE for long."""
        mcs_levels = [28, 20, 10, 4]
        sched = make_intra_scheduler("pf")
        avg = {i: 1.0 for i in range(len(mcs_levels))}
        served_slots = {i: 0 for i in range(len(mcs_levels))}
        for slot in range(300):
            ues = [
                UeSchedInfo(i, m, 8, 100_000, avg[i])
                for i, m in enumerate(mcs_levels)
            ]
            grants = {g.ue_id: g.prbs for g in sched.schedule(10, ues, slot)}
            for i, m in enumerate(mcs_levels):
                bits = transport_block_size_bits(grants.get(i, 0), m) if grants.get(i, 0) else 0
                avg[i] = 0.99 * avg[i] + 0.01 * bits * 1000.0
                if grants.get(i, 0) > 0:
                    served_slots[i] += 1
        assert all(count >= 10 for count in served_slots.values()), served_slots

    def test_mt_starves_worst_channel_by_design(self):
        """MT gives everything to the best channel — the inverse property."""
        sched = make_intra_scheduler("mt")
        bad_served = 0
        for slot in range(100):
            ues = [
                UeSchedInfo(0, 28, 15, 10**6, 1e6),
                UeSchedInfo(1, 5, 3, 10**6, 1e6),
            ]
            grants = {g.ue_id: g.prbs for g in sched.schedule(20, ues, slot)}
            bad_served += grants.get(1, 0)
        assert bad_served == 0


class TestConservation:
    @pytest.mark.parametrize("policy", INTRA_POLICIES)
    def test_drain_delivers_exactly_the_backlog(self, policy):
        """Simulated drain: served bytes == initial buffered bytes."""
        rng = random.Random(42)
        buffers = {i: rng.randint(1_000, 60_000) for i in range(6)}
        mcs = {i: rng.randint(4, 28) for i in range(6)}
        initial = sum(buffers.values())
        sched = make_intra_scheduler(policy)
        delivered = 0
        for slot in range(3_000):
            if all(b == 0 for b in buffers.values()):
                break
            ues = [
                UeSchedInfo(i, mcs[i], 8, buffers[i], 1e6)
                for i in range(6)
            ]
            for grant in sched.schedule(8, ues, slot):
                capacity = transport_block_size_bits(grant.prbs, mcs[grant.ue_id]) // 8
                chunk = min(buffers[grant.ue_id], capacity)
                buffers[grant.ue_id] -= chunk
                delivered += chunk
        assert all(b == 0 for b in buffers.values()), "drain did not finish"
        assert delivered == initial


class TestInterSliceCapacity:
    def _random_slice_ues(self, rng, n_slices=3):
        return {
            sid: random_ues(rng, rng.randint(0, 6)) for sid in range(n_slices)
        }

    @pytest.mark.parametrize("seed", range(10))
    def test_fixed_share_never_overallocates(self, seed):
        rng = random.Random(seed)
        sched = FixedShareInterSlice({0: 0.5, 1: 0.3, 2: 0.2})
        for slot in range(20):
            slice_ues = self._random_slice_ues(rng)
            total = rng.randint(1, 100)
            alloc = sched.allocate(total, slice_ues, slot)
            assert sum(alloc.values()) <= total
            assert all(v >= 0 for v in alloc.values())
            assert set(alloc) <= set(slice_ues)

    @pytest.mark.parametrize("work_conserving", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_target_rate_never_overallocates(self, seed, work_conserving):
        rng = random.Random(seed)
        sched = TargetRateInterSlice(
            {0: 3e6, 1: 12e6, 2: 15e6}, work_conserving=work_conserving
        )
        for slot in range(50):
            slice_ues = self._random_slice_ues(rng)
            total = rng.randint(1, 100)
            alloc = sched.allocate(total, slice_ues, slot)
            assert sum(alloc.values()) <= total
            assert all(v >= 0 for v in alloc.values())
            for sid, prbs in alloc.items():
                sched.notify_delivery(
                    sid, transport_block_size_bits(prbs, 10) // 8 if prbs else 0
                )

    @pytest.mark.parametrize("seed", range(10))
    def test_priority_never_overallocates_and_respects_order(self, seed):
        rng = random.Random(seed)
        sched = PriorityInterSlice({0: 2, 1: 1, 2: 0})
        for slot in range(20):
            slice_ues = self._random_slice_ues(rng)
            total = rng.randint(1, 60)
            alloc = sched.allocate(total, slice_ues, slot)
            assert sum(alloc.values()) <= total
            assert all(v >= 0 for v in alloc.values())

    def test_priority_highest_takes_what_it_needs_first(self):
        heavy = [UeSchedInfo(0, 10, 8, 10**6, 1e6)]
        light = [UeSchedInfo(1, 10, 8, 10**6, 1e6)]
        sched = PriorityInterSlice({0: 1, 1: 2})
        alloc = sched.allocate(10, {0: heavy, 1: light}, 0)
        assert alloc[1] == 10 and alloc[0] == 0
