"""Stress tests for the shared-memory SPSC ring and its rendezvous.

All randomness is seeded: the same byte streams, sizes, and interleavings
every run, so a failure here is a real ring bug and reproduces on the
first retry.
"""

import os
import secrets
import threading
import time
from random import Random

import pytest

from repro.netio import NetworkError, ShmNetwork, ShmRing
from repro.netio.shm import _OFF_HEAD, _OFF_TAIL

CAP = 1 << 12  # 4 KiB data region: small enough to wrap constantly


@pytest.fixture
def ring():
    name = f"wrt{secrets.token_hex(4)}"
    r = ShmRing.create(name, src="prod", capacity=CAP)
    yield r
    r.close()
    r.unlink()


class TestRingBasics:
    def test_roundtrip(self, ring):
        assert ring.try_push(b"hello")
        assert ring.try_pop() == b"hello"
        assert ring.try_pop() is None

    def test_empty_payload(self, ring):
        assert ring.try_push(b"")
        assert ring.try_pop() == b""

    def test_attach_sees_producer_data(self, ring):
        reader = ShmRing.attach(ring.name)
        try:
            ring.try_push(b"cross-view")
            assert reader.ready
            assert reader.src == "prod"
            assert reader.try_pop() == b"cross-view"
        finally:
            reader.close()

    def test_oversize_rejected(self, ring):
        with pytest.raises(NetworkError):
            ring.try_push(b"\x00" * CAP)  # record header can never fit

    def test_consumer_closed_fails_fast(self, ring):
        ring.set_consumer_closed()
        with pytest.raises(NetworkError):
            ring.try_push(b"x")

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ShmRing.create(f"wrt{secrets.token_hex(4)}", src="p", capacity=3000)


class TestWraparound:
    def test_records_cross_the_seam(self, ring):
        # 1000-byte records in a 4096-byte ring: every fourth record
        # straddles the physical end of the data region
        rng = Random(1)
        for i in range(50):
            payload = bytes([rng.randrange(256)]) * 1000
            assert ring.try_push(payload)
            assert ring.try_pop() == payload
        assert ring.used == 0

    def test_randomized_sizes_seeded(self, ring):
        rng = Random(7)
        pending = []
        for _ in range(500):
            if pending and (len(pending) > 3 or rng.random() < 0.5):
                assert ring.try_pop() == pending.pop(0)
            else:
                payload = rng.randbytes(rng.randrange(0, 900))
                if ring.try_push(payload):
                    pending.append(payload)
        while pending:
            assert ring.try_pop() == pending.pop(0)
        assert ring.try_pop() is None

    def test_free_running_cursors_survive_u32_wrap(self, ring):
        # park both cursors just below 2^32; pushes/pops must keep
        # working as the free-running counters wrap through zero
        start = 0xFFFFFF00
        ring._store(_OFF_HEAD, start)
        ring._store(_OFF_TAIL, start)
        rng = Random(3)
        for _ in range(20):
            payload = rng.randbytes(100)
            assert ring.try_push(payload)
            assert ring.try_pop() == payload
        assert ring.used == 0


class TestBackpressure:
    def test_full_ring_refuses_then_recovers(self, ring):
        payload = b"\xab" * 1000
        accepted = 0
        while ring.try_push(payload):
            accepted += 1
        assert accepted == CAP // (4 + 1000)
        assert not ring.try_push(payload)  # still full
        assert ring.try_pop() == payload
        assert ring.try_push(payload)  # space reclaimed

    def test_blocking_push_times_out(self, ring):
        while ring.try_push(b"\x00" * 1000):
            pass
        t0 = time.monotonic()
        with pytest.raises(NetworkError, match="full"):
            ring.push(b"\x00" * 1000, timeout=0.2)
        assert time.monotonic() - t0 >= 0.2

    def test_blocking_push_wakes_on_drain(self, ring):
        while ring.try_push(b"\x00" * 1000):
            pass

        def drain_soon():
            time.sleep(0.05)
            ring.try_pop()

        t = threading.Thread(target=drain_soon)
        t.start()
        ring.push(b"\x01" * 1000, timeout=5.0)  # must not raise
        t.join()


class TestConcurrent:
    def test_producer_consumer_threads(self, ring):
        """2000 seeded messages through a ring that wraps ~500 times."""
        rng = Random(11)
        messages = [rng.randbytes(rng.randrange(1, 900)) for _ in range(2000)]
        errors = []

        def produce():
            try:
                for m in messages:
                    ring.push(m, timeout=30.0)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        t = threading.Thread(target=produce)
        t.start()
        got = []
        deadline = time.monotonic() + 60.0
        while len(got) < len(messages) and time.monotonic() < deadline:
            item = ring.try_pop()
            if item is None:
                time.sleep(0.0002)
                continue
            got.append(item)
        t.join(timeout=10.0)
        assert not errors
        assert got == messages  # same order, same bytes
        assert ring.used == 0


class TestEndpointRendezvous:
    def test_concurrent_slot_claims_are_atomic(self):
        """8 producers racing for inbound slots never share a ring."""
        with ShmNetwork(ring_bytes=1 << 16) as net:
            sink = net.endpoint("sink")
            barrier = threading.Barrier(8)
            errors = []

            def attack(i):
                try:
                    ep = net.endpoint(f"p{i}")
                    barrier.wait(timeout=10.0)
                    ep.send("sink", f"hello-{i}".encode())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=attack, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15.0)
            assert not errors
            got = {}
            deadline = time.monotonic() + 10.0
            while len(got) < 8 and time.monotonic() < deadline:
                item = sink.recv(timeout=1.0)
                if item is not None:
                    got[item[0]] = item[1]
            assert got == {f"p{i}": f"hello-{i}".encode() for i in range(8)}
            # one distinct ring segment per producer
            rings = [ep for ep in sink._in]
            assert len({r.name for r in rings}) == 8

    def test_reader_death_mid_stream_fails_sender(self):
        """A consumer that vanished (rings marked closed, presence swept)
        must fail the sender outright, not hang it."""
        from repro.netio.shm import _unlink_quiet

        with ShmNetwork(ring_bytes=1 << 12) as net:
            a = net.endpoint("a")
            b = net.endpoint("b")
            a.send("b", b"alive")
            assert b.recv(timeout=5.0) == ("a", b"alive")
            # simulate death + sweep: consumer flags set, presence gone,
            # but b's python object never ran close()
            for r in b._in:
                r.set_consumer_closed()
            _unlink_quiet(b._presence)
            b._closed = True
            with pytest.raises(NetworkError):
                a.send("b", b"into the void")
            net._forget("b")  # keep network teardown from re-closing b

    def test_restarted_reader_gets_fresh_ring(self):
        with ShmNetwork(ring_bytes=1 << 12) as net:
            a = net.endpoint("a")
            b = net.endpoint("b")
            a.send("b", b"one")
            assert b.recv(timeout=5.0) == ("a", b"one")
            b.close()
            b2 = net.endpoint("b")
            a.send("b", b"two")  # reclaims a slot on the reborn endpoint
            assert b2.recv(timeout=5.0) == ("a", b"two")

    def test_session_close_leaves_no_segments(self):
        net = ShmNetwork(ring_bytes=1 << 12)
        session = net.session
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", b"x")
        net.close()
        if os.path.isdir("/dev/shm"):
            leftovers = [
                fn
                for fn in os.listdir("/dev/shm")
                if fn.startswith(f"w{session}.")
            ]
            assert leftovers == []

    def test_two_networks_share_a_session(self):
        """The cross-process join path, in one process: same session key,
        separate registries, messages flow."""
        with ShmNetwork(ring_bytes=1 << 12) as owner:
            coord = owner.endpoint("coord")
            with ShmNetwork(
                session=owner.session, ring_bytes=1 << 12
            ) as joined:
                w = joined.endpoint("worker0")
                w.send("coord", b"report")
                assert coord.recv(timeout=5.0) == ("worker0", b"report")
