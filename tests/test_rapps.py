"""rApp tests: the slow SMO loop (KPI -> rApp -> A1 -> near-RT RIC)."""

import json

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.e2 import CommChannel, E2NodeAgent, vendors
from repro.gnb import GnbHost, SliceRuntime, UeContext
from repro.netio import InProcNetwork
from repro.netio.pubsub import Broker, PubSubClient
from repro.plugins import plugin_wasm
from repro.ric import MSG_SLICE_KPI, NearRtRic
from repro.ric.a1 import NonRtRic
from repro.ric.rapps import KPI_TOPIC, SlaPlannerRApp, publish_slice_kpis
from repro.sched import TargetRateInterSlice
from repro.traffic import CbrSource, FullBufferSource


def make_smo():
    """Broker + non-RT RIC + rApp, with a raw publisher for injecting KPIs."""
    net = InProcNetwork()
    broker = Broker(net.endpoint("broker"))
    rapp_sub = PubSubClient(net.endpoint("rapp"), "broker")
    rapp_sub.subscribe(KPI_TOPIC)
    broker.step()
    publisher = PubSubClient(net.endpoint("ric-pub"), "broker")
    nonrt = NonRtRic(net.endpoint("nonrt"))
    a1_sink = net.endpoint("ric-a1")  # stands in for the near-RT RIC
    rapp = SlaPlannerRApp(nonrt, rapp_sub, "ric-a1", min_samples=2)
    return net, broker, publisher, rapp, a1_sink


def inject(publisher, broker, rapp, slice_id, measured):
    publish_slice_kpis(publisher, [{"slice_id": slice_id, "measured_bps": measured}])
    broker.step()
    rapp.step_once()


class TestSlaPlanner:
    def test_initial_policy_pushed(self):
        _net, _broker, _pub, rapp, a1_sink = make_smo()
        rapp.set_initial_sla(1, 5e6)
        msgs = a1_sink.drain()
        assert len(msgs) == 1
        policy = json.loads(msgs[0][1])
        assert policy["payload"]["sla_bps"] == 5e6

    def test_sustained_high_utilization_upscales(self):
        _net, broker, pub, rapp, a1_sink = make_smo()
        rapp.set_initial_sla(1, 5e6)
        a1_sink.drain()
        for _ in range(4):
            inject(pub, broker, rapp, 1, measured=4.9e6)  # 98% of SLA
        slas = [sla for sid, sla in rapp.policies_sent if sid == 1]
        assert slas[-1] > 5e6
        assert a1_sink.drain()  # the new policy went out over A1

    def test_low_utilization_downscales(self):
        _net, broker, pub, rapp, _sink = make_smo()
        rapp.set_initial_sla(1, 10e6)
        for _ in range(4):
            inject(pub, broker, rapp, 1, measured=1e6)  # 10%
        slas = [sla for _sid, sla in rapp.policies_sent]
        assert slas[-1] < 10e6

    def test_healthy_utilization_stays_put(self):
        _net, broker, pub, rapp, _sink = make_smo()
        rapp.set_initial_sla(1, 10e6)
        for _ in range(6):
            inject(pub, broker, rapp, 1, measured=7e6)  # 70%
        assert len(rapp.policies_sent) == 1  # only the initial policy

    def test_sla_bounded(self):
        _net, broker, pub, rapp, _sink = make_smo()
        rapp.max_sla_bps = 8e6
        rapp.set_initial_sla(1, 7e6)
        for _ in range(20):
            inject(pub, broker, rapp, 1, measured=7e6)
        slas = [sla for _sid, sla in rapp.policies_sent]
        assert max(slas) <= 8e6

    def test_unknown_slice_ignored(self):
        _net, broker, pub, rapp, _sink = make_smo()
        rapp.set_initial_sla(1, 5e6)
        inject(pub, broker, rapp, 99, measured=1e9)
        assert all(sid == 1 for sid, _sla in rapp.policies_sent)

    def test_garbage_kpi_ignored(self):
        _net, broker, pub, rapp, _sink = make_smo()
        rapp.set_initial_sla(1, 5e6)
        pub.publish(KPI_TOPIC, b"\xff not json")
        broker.step()
        rapp.step_once()  # must not raise


class TestFullSmoLoop:
    def test_demand_growth_raises_sla_end_to_end(self):
        """gNB measures demand -> KPIs over pub/sub -> rApp raises SLA over
        A1 -> SLA xApp raises the gNB quota.  All three loops running."""
        net = InProcNetwork()
        broker = Broker(net.endpoint("broker"))

        gnb = GnbHost(inter_slice=TargetRateInterSlice({1: 4e6}, slot_duration_s=1e-3))
        runtime = gnb.add_slice(SliceRuntime(1, "tenant"))
        runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(28), FullBufferSource()))

        vendor = vendors.vendor_a()
        node = E2NodeAgent(gnb, CommChannel(net.endpoint("gnb1"), vendor), "gnb1")

        kpi_pub = PubSubClient(net.endpoint("ric-pub"), "broker")
        ric = NearRtRic(
            CommChannel(net.endpoint("ric"), vendor),
            a1_endpoint=net.endpoint("ric-a1"),
            kpi_publisher=kpi_pub,
        )
        ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        ric.connect("gnb1", period_slots=100)

        rapp_sub = PubSubClient(net.endpoint("rapp"), "broker")
        rapp_sub.subscribe(KPI_TOPIC)
        broker.step()
        nonrt = NonRtRic(net.endpoint("nonrt"))
        rapp = SlaPlannerRApp(nonrt, rapp_sub, "ric-a1", min_samples=2)
        rapp.set_initial_sla(1, 4e6)

        for slot in range(3000):
            gnb.step()
            node.step()
            ric.step()
            if slot % 50 == 0:
                broker.step()
                rapp.step_once()
        broker.step()
        rapp.step_once()

        # the full-buffer tenant saturates whatever it gets -> utilization
        # stays high -> the rApp kept raising the SLA -> the xApp kept
        # raising the quota
        final_quota = gnb.inter_slice.targets_bps[1]
        assert final_quota > 4e6
        assert len(rapp.policies_sent) >= 2
        assert ric.controls_sent
