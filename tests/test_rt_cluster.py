"""rt x cluster integration: scenario shards, budgets, and fail-fast.

Covers the cluster end of the rt story: a spec naming a scenario builds
scenario cells (budgets are per cell-slot - never divided by the worker
count - so digests stay invariant across 1/2/4 workers), the rt policy
string rides :class:`ClusterSpec` validation, and the coordinator
fail-fast satellite: a worker that dies mid-sweep surfaces as
:class:`WorkerFailed` naming the worker and its last completed slot
instead of blocking until the global timeout.
"""

from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import ClusterSpec, WorkerFailed, run_cluster

#: two flash-crowd cells, inline: small enough for CI, long enough to
#: cross the burst window and the hog's quarantine
RT_SPEC = ClusterSpec(
    workers=1, cells=2, ues=8, slots=120, mode="inline", scenario="flash_crowd"
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    obs.reset()
    obs.disable()


class TestSpecValidation:
    def test_rt_policy_string_is_validated(self):
        replace(RT_SPEC, rt="budget_us=400").validate()
        with pytest.raises(ValueError):
            replace(RT_SPEC, rt="bogus=1").validate()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            replace(RT_SPEC, scenario="nope").validate()

    def test_negative_liveness_rejected(self):
        with pytest.raises(ValueError):
            replace(RT_SPEC, liveness_timeout_s=-1.0).validate()


class TestScenarioCluster:
    def test_digests_invariant_under_worker_count(self):
        one = run_cluster(RT_SPEC)
        two = run_cluster(replace(RT_SPEC, workers=2))
        assert one.fault_digest == two.fault_digest
        assert one.bytes_digest == two.bytes_digest

    def test_rt_sections_land_in_the_fault_log(self):
        report = run_cluster(RT_SPEC)
        assert "[rt]" in report.fault_log
        assert "[rt counters]" in report.fault_log
        assert "verdict=" in report.fault_log

    def test_budget_is_per_cell_not_per_worker(self):
        # the shard budget gauge is cells x the policy's per-cell budget:
        # re-sharding moves cells between workers but never changes any
        # cell's own budget, which is what keeps digests invariant
        report = run_cluster(RT_SPEC)
        series = report.metrics["waran_rt_shard_budget_fuel"]["series"]
        total_one = sum(e["value"] for e in series)
        report2 = run_cluster(replace(RT_SPEC, workers=2))
        series2 = report2.metrics["waran_rt_shard_budget_fuel"]["series"]
        assert sum(e["value"] for e in series2) == total_one
        assert len(series2) == 2  # one gauge per worker

    def test_rt_policy_applies_to_plain_cells(self):
        # --rt without a scenario: ordinary cluster cells get budgets
        spec = ClusterSpec(
            workers=1, cells=2, ues=8, slots=40, mode="inline",
            rt="budget_us=400,fuel_per_us=50",
        )
        report = run_cluster(spec)
        assert "[rt counters]" in report.fault_log
        assert report.fault_digest == run_cluster(spec).fault_digest


class TestWorkerFailFast:
    def test_dead_worker_is_named_with_last_slot(self, monkeypatch):
        """Satellite: a worker killed mid-sweep fails fast, not at timeout."""
        monkeypatch.setenv("REPRO_TEST_WORKER_DIE", "1:20")
        spec = ClusterSpec(
            workers=2, cells=4, ues=4, slots=60, mode="proc",
            flush_every=10, timeout_s=120,
        )
        with pytest.raises(WorkerFailed) as excinfo:
            run_cluster(spec)
        assert excinfo.value.worker == 1
        # the last heartbeat it sent was the slot-19 flush
        assert excinfo.value.last_slot == 19
        assert "worker 1" in str(excinfo.value)
        assert "slot 19" in str(excinfo.value)

    def test_healthy_run_unaffected_by_die_hook_for_other_worker(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_WORKER_DIE", "7:5")  # no worker 7
        report = run_cluster(
            ClusterSpec(workers=2, cells=2, ues=4, slots=20, mode="inline")
        )
        assert report.delivered_bytes > 0


@pytest.mark.slow
class TestEngineMatrixCluster:
    @pytest.mark.parametrize("engine", ["legacy", "threaded", "aot"])
    def test_scenario_digest_per_engine(self, engine):
        report = run_cluster(replace(RT_SPEC, engine=engine))
        baseline = run_cluster(replace(RT_SPEC, engine="threaded"))
        # physics and rt decisions are engine-identical; the cell-log
        # header names the engine by design, so normalise just that token
        assert report.bytes_digest == baseline.bytes_digest
        normalized = report.fault_log.replace(f"engine={engine}", "engine=*")
        assert normalized == baseline.fault_log.replace(
            "engine=threaded", "engine=*"
        )
