"""Plugin pipeline tests: WACC source -> Wasm -> sandbox -> grants.

The central property is *differential equivalence*: for any slice state,
the Wasm plugin must produce exactly the grants the native reference
scheduler produces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abi import SchedulerPlugin, sanitize_plugin
from repro.abi.host import HostLimits, PluginError, PluginHost
from repro.plugins import (
    FAULT_PLUGINS,
    SCHEDULER_PLUGINS,
    available_plugins,
    plugin_wasm,
)
from repro.sched import (
    MaximumThroughputScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    UeSchedInfo,
    validate_grants,
)

_NATIVE = {
    "rr": RoundRobinScheduler,
    "pf": ProportionalFairScheduler,
    "mt": MaximumThroughputScheduler,
}


def make_plugin(name: str, **kwargs) -> SchedulerPlugin:
    return SchedulerPlugin.load(plugin_wasm(name), name=name, **kwargs)


def grants_dict(grants):
    return {g.ue_id: g.prbs for g in grants}


ue_strategy = st.builds(
    UeSchedInfo,
    ue_id=st.integers(0, 200),
    mcs=st.integers(0, 28),
    cqi=st.integers(0, 15),
    buffer_bytes=st.integers(0, 2_000_000),
    avg_tput_bps=st.floats(0, 1e8, allow_nan=False),
)


def unique_ues(ues):
    seen = {}
    for ue in ues:
        seen[ue.ue_id] = ue
    return list(seen.values())


class TestCompilation:
    @pytest.mark.parametrize("name", available_plugins())
    def test_all_plugins_compile(self, name):
        assert plugin_wasm(name)[:4] == b"\x00asm"

    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS + FAULT_PLUGINS + ("leaky",))
    def test_scheduler_plugins_pass_sanitizer(self, name):
        report = sanitize_plugin(plugin_wasm(name))
        assert report.memory_max_pages is not None
        assert set(report.imports_used) <= {"tbs_bits", "log", "now_slot"}


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    def test_simple_case(self, name):
        ues = [
            UeSchedInfo(1, 28, 15, 100_000, 5e6),
            UeSchedInfo(2, 20, 11, 100_000, 1e6),
            UeSchedInfo(3, 24, 13, 50_000, 3e6),
        ]
        plugin = make_plugin(name)
        native = _NATIVE[name]()
        for slot in range(10):
            got = plugin.schedule(52, ues, slot).grants
            want = native.schedule(52, ues, slot)
            assert grants_dict(got) == grants_dict(want), f"slot {slot}"

    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    def test_empty_buffers_produce_no_grants(self, name):
        ues = [UeSchedInfo(1, 10, 7, 0, 0.0)]
        assert make_plugin(name).schedule(52, ues, 0).grants == []

    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    def test_no_ues(self, name):
        assert make_plugin(name).schedule(52, [], 0).grants == []

    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    def test_zero_prbs(self, name):
        ues = [UeSchedInfo(1, 10, 7, 1000, 0.0)]
        assert make_plugin(name).schedule(0, ues, 0).grants == []

    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    @given(
        ues=st.lists(ue_strategy, min_size=0, max_size=12),
        prbs=st.integers(0, 106),
        slots=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_differential_property(self, name, ues, prbs, slots):
        ues = unique_ues(ues)
        plugin = make_plugin(name)
        native = _NATIVE[name]()
        for slot in range(slots):  # multiple slots exercise RR pointer state
            got = plugin.schedule(prbs, ues, slot).grants
            want = native.schedule(prbs, ues, slot)
            assert grants_dict(got) == grants_dict(want)
            validate_grants(got, prbs, ues)

    def test_rr_pointer_state_survives_calls(self):
        """RR rotation is plugin state; it must persist across slots."""
        ues = [UeSchedInfo(i, 15, 9, 10_000_000, 0.0) for i in range(3)]
        plugin = make_plugin("rr")
        results = [grants_dict(plugin.schedule(52, ues, s).grants) for s in range(3)]
        # 52 = 3*17 + 1: the extra PRB must rotate across UEs
        extra_holder = [max(r, key=r.get) for r in results]
        assert len(set(extra_holder)) == 3

    def test_rr_state_reset_on_swap(self):
        ues = [UeSchedInfo(i, 15, 9, 10_000_000, 0.0) for i in range(3)]
        plugin = make_plugin("rr")
        first = grants_dict(plugin.schedule(52, ues, 0).grants)
        plugin.schedule(52, ues, 1)
        plugin.swap(plugin_wasm("rr"))  # hot swap resets plugin globals
        after = grants_dict(plugin.schedule(52, ues, 2).grants)
        assert after == first


class TestSchedulingBehaviour:
    def test_mt_starves_worst_ue(self):
        ues = [
            UeSchedInfo(1, 20, 11, 10_000_000, 0.0),
            UeSchedInfo(2, 28, 15, 10_000_000, 0.0),
        ]
        grants = grants_dict(make_plugin("mt").schedule(52, ues, 0).grants)
        assert grants.get(2) == 52
        assert 1 not in grants

    def test_pf_prefers_low_average_tput(self):
        ues = [
            UeSchedInfo(1, 20, 11, 10_000_000, 50e6),  # well served
            UeSchedInfo(2, 20, 11, 10_000_000, 1e3),  # starved
        ]
        grants = grants_dict(make_plugin("pf").schedule(52, ues, 0).grants)
        assert grants.get(2) == 52

    def test_rr_equal_shares(self):
        ues = [UeSchedInfo(i, 15, 9, 10_000_000, 0.0) for i in range(4)]
        grants = grants_dict(make_plugin("rr").schedule(52, ues, 0).grants)
        assert sum(grants.values()) == 52
        assert all(13 <= v <= 13 for v in grants.values())

    def test_buffer_limited_ue_releases_prbs(self):
        ues = [
            UeSchedInfo(1, 15, 9, 100, 0.0),  # tiny buffer
            UeSchedInfo(2, 15, 9, 10_000_000, 0.0),
        ]
        grants = grants_dict(make_plugin("rr").schedule(52, ues, 0).grants)
        assert grants[1] <= 3
        assert grants[2] >= 49


class TestFaultPlugins:
    @pytest.mark.parametrize("name", ["fault_null", "fault_oob"])
    def test_memory_faults_trap(self, name):
        plugin = make_plugin(name)
        ues = [UeSchedInfo(1, 10, 7, 1000, 0.0)]
        with pytest.raises(PluginError) as exc:
            plugin.schedule(52, ues, 0)
        assert exc.value.kind == "trap"

    def test_double_free_trapped(self):
        plugin = make_plugin("fault_dblfree")
        with pytest.raises(PluginError) as exc:
            plugin.schedule(52, [UeSchedInfo(1, 10, 7, 1000, 0.0)], 0)
        assert exc.value.kind == "trap"

    def test_spin_exhausts_fuel(self):
        plugin = make_plugin("fault_spin")
        with pytest.raises(PluginError) as exc:
            plugin.schedule(52, [UeSchedInfo(1, 10, 7, 1000, 0.0)], 0)
        assert exc.value.kind == "fuel"

    def test_bad_grants_are_well_formed_but_invalid(self):
        plugin = make_plugin("fault_badgrants")
        ues = [UeSchedInfo(1, 10, 7, 1000, 0.0)]
        call = plugin.schedule(52, ues, 0)  # ABI-valid...
        from repro.sched.types import GrantValidationError

        with pytest.raises(GrantValidationError):  # ...semantically invalid
            validate_grants(call.grants, 52, ues)

    def test_host_survives_faults_and_keeps_scheduling(self):
        """The §5D headline: trap, catch, continue."""
        good = make_plugin("mt")
        bad = make_plugin("fault_oob")
        ues = [UeSchedInfo(1, 28, 15, 100_000, 0.0)]
        for slot in range(3):
            with pytest.raises(PluginError):
                bad.schedule(52, ues, slot)
            grants = good.schedule(52, ues, slot).grants
            assert grants  # the healthy plugin is unaffected


class TestLeakConfinement:
    def test_leak_grows_plugin_memory_up_to_cap_only(self):
        plugin = make_plugin("leaky")
        ues = [UeSchedInfo(1, 15, 9, 100_000, 0.0)]
        start_pages = plugin.host.memory_pages
        for slot in range(40):
            plugin.schedule(52, ues, slot)
        grown = plugin.host.memory_pages
        assert grown > start_pages  # it really leaks
        for slot in range(40, 4000):
            plugin.schedule(52, ues, slot)
        assert plugin.host.memory_pages <= 64  # capped at declared maximum

    def test_leaky_plugin_still_schedules_correctly(self):
        plugin = make_plugin("leaky")
        ues = [UeSchedInfo(i, 15, 9, 10_000_000, 0.0) for i in range(2)]
        grants = grants_dict(plugin.schedule(52, ues, 0).grants)
        assert sum(grants.values()) == 52


class TestHostLimits:
    def test_deadline_enforced(self):
        limits = HostLimits(fuel=None, deadline_us=0.0001)
        plugin = SchedulerPlugin.load(plugin_wasm("mt"), limits=limits)
        with pytest.raises(PluginError) as exc:
            plugin.schedule(52, [UeSchedInfo(1, 10, 7, 1000, 0.0)], 0)
        assert exc.value.kind == "deadline"

    def test_fuel_accounting_reported(self):
        plugin = make_plugin("mt")
        call = plugin.schedule(52, [UeSchedInfo(1, 10, 7, 1000, 0.0)], 0)
        assert call.fuel_used is not None and call.fuel_used > 0

    def test_timing_reported(self):
        plugin = make_plugin("mt")
        call = plugin.schedule(52, [UeSchedInfo(1, 10, 7, 1000, 0.0)], 0)
        assert call.elapsed_us > 0

    def test_unsanitized_load_rejected_for_bad_abi(self):
        from repro.wacc import compile_source

        bad = compile_source("export fn nope() -> i32 { return 0; }")
        with pytest.raises(Exception):
            SchedulerPlugin.load(bad, name="bad")
