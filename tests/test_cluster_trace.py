"""End-to-end distributed tracing of cluster runs (inline + proc + CLI)."""

import json
from dataclasses import replace

import pytest

from repro import obs
from repro.cli import main
from repro.cluster import ClusterSpec, run_cluster
from repro.obs.traceexport import chrome_trace, validate_chrome_trace

#: small enough for CI, big enough for several KPM/flush periods
TRACED = ClusterSpec(
    workers=2, cells=4, ues=8, slots=40, mode="inline", trace=True
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    obs.reset()
    obs.disable()


class TestInlineTracedRun:
    def test_stitched_cross_process_tree(self):
        report = run_cluster(TRACED)
        spans = report.spans
        assert spans, "traced run must ship spans"
        services = {d["service"] for d in spans}
        assert services == {"coord", "worker0", "worker1"}
        by_id = {d["span_id"]: d for d in spans}
        root = next(d for d in spans if d["name"] == "cluster.run")
        runs = [d for d in spans if d["name"] == "worker.run"]
        assert len(runs) == 2
        for run in runs:
            assert run["parent_id"] == root["span_id"]
            assert run["trace_id"] == root["trace_id"]
        # every worker.slot nests under its worker.run, same trace
        slots = [d for d in spans if d["name"] == "worker.slot"]
        assert len(slots) == TRACED.workers * TRACED.slots
        for slot in slots:
            assert by_id[slot["parent_id"]]["name"] == "worker.run"
            assert slot["trace_id"] == root["trace_id"]
        # coordinator ingest work parents under the producing worker
        # span: the active slot for cadence flushes, uplink.flush.final
        # for the end-of-run range frame
        ingests = [d for d in spans if d["name"] == "coord.ingest"]
        assert ingests
        producer_ids = {d["span_id"] for d in slots} | {
            d["span_id"] for d in spans if d["name"] == "uplink.flush.final"
        }
        assert all(d["parent_id"] in producer_ids for d in ingests)
        assert all(d["service"] == "coord" for d in ingests)
        # at least one cadence flush still attributes into a worker.slot
        assert any(
            d["parent_id"] in {s["span_id"] for s in slots} for d in ingests
        )

    def test_attribution_sums_within_10pct_of_p99(self):
        report = run_cluster(TRACED)
        att = report.attribution
        assert att["slot_count"] == TRACED.workers * TRACED.slots
        p99 = att["p99_slot"]
        assert p99 is not None
        assert p99["segments_sum_us"] == pytest.approx(
            p99["elapsed_us"], rel=0.10
        )
        # the dominant segment is named and is a real segment row
        names = {r["name"] for r in att["segments"]}
        assert att["dominant"] in names
        # local segments sum to total slot time by construction
        local_total = sum(
            r["total_us"] for r in att["segments"] if r["scope"] == "local"
        )
        assert local_total == pytest.approx(att["slot_total_us"], rel=0.01)
        # and the critical path starts at the worst slot
        assert att["critical_path"][0]["name"] == "worker.slot"

    def test_deadline_budget_emits_misses_with_guilty_segment(self):
        spec = replace(TRACED, budget_us=1.0)  # everything misses
        report = run_cluster(spec)
        assert report.deadline_misses
        miss = report.deadline_misses[0]
        assert miss["kind"] == "trace.deadline_miss"
        assert miss["guilty"]
        assert miss["elapsed_us"] > 1.0
        merged = report.metrics
        fam = merged["waran_cluster_deadline_miss_total"]
        assert sum(s["value"] for s in fam["series"]) == len(
            report.deadline_misses
        )
        assert report.attribution["deadline_misses"]

    def test_digest_stable_across_runs(self):
        d1 = run_cluster(TRACED).trace_digest
        d2 = run_cluster(TRACED).trace_digest
        assert d1 and d1 == d2

    def test_chrome_export_validates(self):
        report = run_cluster(TRACED)
        doc = chrome_trace(report.spans)
        assert validate_chrome_trace(doc) == len(report.spans)
        meta = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {"coord", "worker0", "worker1"}

    def test_untraced_run_report_unchanged(self):
        plain = replace(TRACED, trace=False)
        report = run_cluster(plain)
        assert report.spans == []
        assert report.attribution == {}
        doc = report.to_json()
        assert "attribution" not in doc
        assert "trace" not in doc

    def test_trace_flag_does_not_change_results(self):
        traced = run_cluster(TRACED)
        plain = run_cluster(replace(TRACED, trace=False))
        assert traced.bytes_digest == plain.bytes_digest
        assert traced.fault_digest == plain.fault_digest
        assert traced.indications_seen == plain.indications_seen

    def test_report_json_carries_attribution_block(self):
        doc = run_cluster(TRACED).to_json()
        assert doc["attribution"]["dominant"]
        assert doc["trace"]["digest"]
        assert doc["trace"]["span_count"] > 0
        json.dumps(doc)  # the whole report stays JSON-serialisable


class TestProcTracedRun:
    def test_proc_mode_ships_spans_home(self):
        spec = replace(TRACED, mode="proc", slots=20, timeout_s=120.0)
        report = run_cluster(spec)
        services = {d["service"] for d in report.spans}
        assert services == {"coord", "worker0", "worker1"}
        root = next(d for d in report.spans if d["name"] == "cluster.run")
        runs = [d for d in report.spans if d["name"] == "worker.run"]
        assert {d["parent_id"] for d in runs} == {root["span_id"]}
        assert report.attribution["slot_count"] == spec.workers * spec.slots


class TestTraceCli:
    def test_trace_command_prints_attribution(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        att = tmp_path / "att.json"
        code = main(
            [
                "trace",
                "--workers", "2",
                "--cells", "4",
                "--ues", "8",
                "--slots", "20",
                "--mode", "inline",
                "--out", str(out),
                "--json", str(att),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "dominant segment:" in text
        assert "p99 slot" in text
        exported = json.loads(out.read_text())
        assert validate_chrome_trace(exported) > 0
        report = json.loads(att.read_text())
        assert report["attribution"]["dominant"]
        assert report["trace_digest"]

    def test_digest_only_mode(self, capsys):
        argv = [
            "trace",
            "--workers", "1",
            "--cells", "2",
            "--ues", "4",
            "--slots", "10",
            "--mode", "inline",
            "--digest-only",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out.strip()
        assert main(argv) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first) == 64  # bare sha256, scriptable
