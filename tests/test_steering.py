"""End-to-end traffic steering: the full multi-cell handover loop.

gNB reports UE + neighbour measurements over E2 -> the traffic-steering
xApp (a Wasm plugin in the RIC) detects an A3 event -> the RIC sends a
handover control -> the source node detaches the UE -> the topology
transfers the context to the target cell -> the UE is served there.
"""

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.e2 import vendors
from repro.gnb import GnbHost, SliceRuntime, UeContext
from repro.plugins import plugin_wasm
from repro.ric import MSG_UE_MEAS
from repro.ric.steering import TwoCellTopology
from repro.sched import TargetRateInterSlice
from repro.traffic import FullBufferSource


def make_cell() -> GnbHost:
    gnb = GnbHost(inter_slice=TargetRateInterSlice({1: 10e6}, slot_duration_s=1e-3))
    runtime = gnb.add_slice(SliceRuntime(1, "tenant"))
    runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
    return gnb


@pytest.fixture
def topology() -> TwoCellTopology:
    topo = TwoCellTopology(make_cell(), make_cell(), vendors.vendor_a())
    topo.ric.load_xapp("ts", plugin_wasm("xapp_ts"), (MSG_UE_MEAS,))
    topo.connect(period_slots=50)
    return topo


class TestHandover:
    def test_a3_event_triggers_handover(self, topology):
        # serving cell is poor (CQI->MCS low), neighbour (cell 2) is great
        ue = UeContext(
            1, 1,
            channel=FixedMcsChannel(4),
            traffic=FullBufferSource(),
            neighbor_cell=2,
            neighbor_channel=FixedMcsChannel(26),
        )
        topology.attach(ue, 1)
        topology.run(200)
        assert topology.handovers, "no handover executed"
        event = topology.handovers[0]
        assert (event.ue_id, event.source_cell, event.target_cell) == (1, 1, 2)
        assert 1 in topology.cells[2].ues
        assert 1 not in topology.cells[1].ues

    def test_ue_served_after_handover(self, topology):
        ue = UeContext(
            1, 1, FixedMcsChannel(4), FullBufferSource(),
            neighbor_cell=2, neighbor_channel=FixedMcsChannel(26),
        )
        topology.attach(ue, 1)
        topology.run(200)
        delivered_before = ue.buffer.delivered_bytes
        topology.run(300)
        assert ue.buffer.delivered_bytes > delivered_before
        # served at the *better* MCS now
        assert ue.current_mcs >= 20

    def test_no_handover_without_better_neighbor(self, topology):
        ue = UeContext(
            1, 1, FixedMcsChannel(26), FullBufferSource(),
            neighbor_cell=2, neighbor_channel=FixedMcsChannel(4),
        )
        topology.attach(ue, 1)
        topology.run(200)
        assert not topology.handovers
        assert 1 in topology.cells[1].ues

    def test_neighbor_swaps_after_handover(self, topology):
        """After the move, the old serving cell becomes the neighbour."""
        ue = UeContext(
            1, 1, FixedMcsChannel(4), FullBufferSource(),
            neighbor_cell=2, neighbor_channel=FixedMcsChannel(26),
        )
        topology.attach(ue, 1)
        topology.run(200)
        assert ue.neighbor_cell == 1
        # and no ping-pong: the new neighbour (old cell) is worse, so the
        # xApp must not bounce the UE straight back
        topology.run(300)
        assert len(topology.handovers) == 1

    def test_multiple_ues_steered_independently(self, topology):
        good = UeContext(
            1, 1, FixedMcsChannel(26), FullBufferSource(),
            neighbor_cell=2, neighbor_channel=FixedMcsChannel(4),
        )
        bad = UeContext(
            2, 1, FixedMcsChannel(4), FullBufferSource(),
            neighbor_cell=2, neighbor_channel=FixedMcsChannel(26),
        )
        topology.attach(good, 1)
        topology.attach(bad, 1)
        topology.run(200)
        assert [e.ue_id for e in topology.handovers] == [2]
        assert 1 in topology.cells[1].ues
        assert 2 in topology.cells[2].ues
