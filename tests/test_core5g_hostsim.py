"""Tests for the AMF-lite core and the native-crash simulator."""

import pytest

from repro.core5g import AdmissionError, Amf, Snssai
from repro.hostsim import (
    HeapCorruption,
    HostMemoryModel,
    HostProcess,
    SegmentationFault,
    UnsafeHeap,
)


class TestAmf:
    def make(self):
        amf = Amf()
        amf.configure_slice(Snssai(1, 100), max_ues=2)
        amf.configure_slice(Snssai(1, 200), max_ues=64)
        return amf

    def test_register_and_session(self):
        amf = self.make()
        ue = amf.register("00101-001", Snssai(1, 100))
        assert ue.ue_id == 1
        session = amf.establish_session(ue.ue_id)
        assert session.snssai == Snssai(1, 100)

    def test_admission_unknown_slice(self):
        amf = self.make()
        with pytest.raises(AdmissionError, match="not configured"):
            amf.register("x", Snssai(9, 9))

    def test_admission_slice_full(self):
        amf = self.make()
        amf.register("a", Snssai(1, 100))
        amf.register("b", Snssai(1, 100))
        with pytest.raises(AdmissionError, match="full"):
            amf.register("c", Snssai(1, 100))

    def test_duplicate_imsi(self):
        amf = self.make()
        amf.register("a", Snssai(1, 100))
        with pytest.raises(AdmissionError, match="already registered"):
            amf.register("a", Snssai(1, 200))

    def test_deregister_frees_slot(self):
        amf = self.make()
        ue1 = amf.register("a", Snssai(1, 100))
        amf.register("b", Snssai(1, 100))
        amf.deregister(ue1.ue_id)
        amf.register("c", Snssai(1, 100))  # slot reopened
        assert amf.n_registered == 2

    def test_deregister_drops_sessions(self):
        amf = self.make()
        ue = amf.register("a", Snssai(1, 100))
        amf.establish_session(ue.ue_id)
        amf.deregister(ue.ue_id)
        with pytest.raises(AdmissionError):
            amf.establish_session(ue.ue_id)

    def test_slice_members(self):
        amf = self.make()
        a = amf.register("a", Snssai(1, 200))
        b = amf.register("b", Snssai(1, 200))
        assert amf.slice_members(Snssai(1, 200)) == [a.ue_id, b.ue_id]

    def test_snssai_validation(self):
        with pytest.raises(ValueError):
            Snssai(256)
        with pytest.raises(ValueError):
            Snssai(1, 1 << 24)


class TestUnsafeHeap:
    def test_malloc_free_reuse(self):
        heap = UnsafeHeap()
        p = heap.malloc(100)
        heap.free(p)
        q = heap.malloc(100)
        assert q == p  # free list reuse

    def test_null_dereference_segfaults(self):
        with pytest.raises(SegmentationFault, match="null"):
            UnsafeHeap().null_dereference()

    def test_oob_write_segfaults(self):
        heap = UnsafeHeap(size=1 << 16)
        p = heap.malloc(64)
        with pytest.raises(SegmentationFault):
            heap.out_of_bounds_write(p, 100_000)

    def test_double_free_corrupts_heap(self):
        heap = UnsafeHeap()
        with pytest.raises(HeapCorruption):
            heap.double_free_then_use()

    def test_free_null_is_noop(self):
        UnsafeHeap().free(0)

    def test_leak_grows_brk(self):
        heap = UnsafeHeap(size=1 << 22)
        start = heap.brk_bytes
        for _ in range(100):
            heap.malloc(1024)  # never freed
        assert heap.brk_bytes - start >= 100 * 1024

    def test_heap_exhaustion(self):
        heap = UnsafeHeap(size=4096)
        with pytest.raises(MemoryError):
            for _ in range(100):
                heap.malloc(1024)


class TestHostProcess:
    def test_crash_is_permanent(self):
        proc = HostProcess()
        with pytest.raises(SegmentationFault):
            proc.run(lambda heap: heap.null_dereference())
        assert proc.crashed
        with pytest.raises(ProcessLookupError):
            proc.run(lambda heap: 1)

    def test_healthy_steps_counted(self):
        proc = HostProcess()
        for _ in range(5):
            proc.run(lambda heap: heap.malloc(8))
        assert proc.steps_completed == 5


class TestHostMemoryModel:
    def test_native_leak_grows_rss(self):
        model = HostMemoryModel(baseline_bytes=0)
        heap = UnsafeHeap(size=1 << 24)
        model.attach_native_heap(heap)
        baseline = model.rss_bytes
        for _ in range(1000):
            heap.malloc(4096)
        assert model.rss_increase_mib(baseline) > 3.5

    def test_plugin_memory_counted_but_capped(self):
        from repro.wasm.memory import Memory
        from repro.wasm.wtypes import Limits

        model = HostMemoryModel(baseline_bytes=0)
        mem = Memory(Limits(2, 8))
        model.attach_plugin_memory(mem)
        baseline = model.rss_bytes
        while mem.grow(1) >= 0:
            pass
        assert model.rss_bytes - baseline == 6 * 65536  # grew to cap, no further
