"""Tests for the 5G PHY tables and TBS computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy import (
    CQI_TABLE_1,
    MCS_TABLE_1,
    CarrierConfig,
    Numerology,
    cqi_to_mcs,
    sinr_db_to_cqi,
    transport_block_size_bits,
)
from repro.phy.tbs import peak_rate_bps, slot_capacity_bytes


class TestNumerology:
    def test_mu0_is_lte_like(self):
        n = Numerology(0)
        assert n.scs_khz == 15
        assert n.slot_duration_us == 1000.0
        assert n.slots_per_frame == 10
        assert n.slots_per_second == 1000

    def test_mu1(self):
        n = Numerology(1)
        assert n.scs_khz == 30
        assert n.slot_duration_us == 500.0
        assert n.slots_per_frame == 20

    def test_bad_mu(self):
        with pytest.raises(ValueError):
            Numerology(5)

    def test_paper_carrier_is_52_prb(self):
        carrier = CarrierConfig()  # n3, 10 MHz, 15 kHz
        assert carrier.n_prb == 52
        assert carrier.slot_duration_s == 1e-3

    def test_other_bandwidths(self):
        assert CarrierConfig(bandwidth_mhz=20).n_prb == 106
        assert CarrierConfig(bandwidth_mhz=50).n_prb == 270

    def test_unsupported_combination(self):
        with pytest.raises(ValueError):
            CarrierConfig(bandwidth_mhz=7)


class TestMcsTables:
    def test_table_sizes(self):
        assert len(MCS_TABLE_1) == 29
        assert len(CQI_TABLE_1) == 15

    def test_spectral_efficiency_monotone_within_modulation(self):
        """SE is non-decreasing except the real dip at the 16QAM->64QAM
        boundary (MCS 16 -> 17: 2.5703 -> 2.5664, straight from the spec)."""
        ses = [e.spectral_efficiency for e in MCS_TABLE_1]
        for i in range(1, len(ses)):
            if i == 17:
                assert ses[17] == pytest.approx(2.5664, abs=1e-3)
                continue
            assert ses[i] >= ses[i - 1], i

    def test_known_entries(self):
        assert MCS_TABLE_1[0].qm == 2 and MCS_TABLE_1[0].rate_x1024 == 120
        assert MCS_TABLE_1[28].qm == 6 and MCS_TABLE_1[28].rate_x1024 == 948
        assert MCS_TABLE_1[10].qm == 4  # 16QAM starts at MCS 10
        assert MCS_TABLE_1[17].qm == 6  # 64QAM starts at MCS 17

    def test_cqi_15_maps_to_mcs_28(self):
        assert cqi_to_mcs(15) == 28

    def test_cqi_1_maps_to_low_mcs(self):
        assert cqi_to_mcs(1) == 0

    def test_cqi_mapping_monotone(self):
        mcs = [cqi_to_mcs(c) for c in range(1, 16)]
        assert mcs == sorted(mcs)

    def test_cqi_mcs_never_exceeds_cqi_efficiency(self):
        for cqi in range(1, 16):
            mcs = cqi_to_mcs(cqi)
            if mcs == 0:
                continue  # MCS 0 is the floor even when CQI is lower still
            assert (
                MCS_TABLE_1[mcs].spectral_efficiency
                <= CQI_TABLE_1[cqi - 1].spectral_efficiency + 1e-9
            )

    def test_cqi_range_check(self):
        with pytest.raises(ValueError):
            cqi_to_mcs(16)

    def test_sinr_mapping(self):
        assert sinr_db_to_cqi(-10.0) == 0
        assert sinr_db_to_cqi(0.0) == 3
        assert sinr_db_to_cqi(30.0) == 15

    @given(st.floats(-20, 40))
    def test_sinr_mapping_monotone(self, sinr):
        assert sinr_db_to_cqi(sinr) <= sinr_db_to_cqi(sinr + 1.0)


class TestTbs:
    def test_zero_prbs(self):
        assert transport_block_size_bits(0, 10) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transport_block_size_bits(-1, 10)

    def test_small_grant_uses_table(self):
        tbs = transport_block_size_bits(1, 0)
        from repro.phy.tbs import TBS_TABLE

        assert tbs in TBS_TABLE

    def test_byte_aligned_above_3824(self):
        tbs = transport_block_size_bits(52, 28)
        assert tbs > 3824
        assert (tbs + 24) % 8 == 0

    def test_monotone_in_prbs(self):
        for mcs in (0, 9, 16, 28):
            prev = 0
            for prbs in range(1, 53):
                tbs = transport_block_size_bits(prbs, mcs)
                assert tbs >= prev, (mcs, prbs)
                prev = tbs

    def test_monotone_in_mcs_within_modulation(self):
        # the 16QAM->64QAM SE dip (MCS 16->17) is allowed to reduce TBS
        for prbs in (1, 10, 52):
            prev = 0
            for mcs in range(29):
                tbs = transport_block_size_bits(prbs, mcs)
                if mcs != 17:
                    assert tbs >= prev, (mcs, prbs)
                prev = tbs

    def test_full_carrier_peak_rate_plausible(self):
        """52 PRB @ MCS 28 should give roughly 25-30 Mb/s (the shape the
        paper's 10 MHz cell exhibits: MVNO targets up to 15 Mb/s fit)."""
        rate = peak_rate_bps(52, 28, 1e-3)
        assert 20e6 < rate < 40e6

    def test_mcs20_vs_mcs28_ratio(self):
        r20 = transport_block_size_bits(52, 20)
        r28 = transport_block_size_bits(52, 28)
        assert 0.5 < r20 / r28 < 0.75  # 567/948 ~ 0.60

    def test_slot_capacity_bytes(self):
        assert slot_capacity_bytes(10, 10) == transport_block_size_bits(10, 10) // 8

    @given(st.integers(1, 270), st.integers(0, 28))
    def test_tbs_positive_and_bounded(self, prbs, mcs):
        tbs = transport_block_size_bits(prbs, mcs)
        assert tbs >= 24
        # can't carry more than raw REs * bits/symbol
        assert tbs <= 156 * prbs * 6


class TestTable2:
    """MCS/CQI table 2 (256QAM) - switchable via RC-lite set_cqi_table."""

    def test_table_sizes(self):
        from repro.phy.mcs import CQI_TABLE_2, MCS_TABLE_2

        assert len(MCS_TABLE_2) == 28
        assert len(CQI_TABLE_2) == 15

    def test_256qam_present(self):
        from repro.phy.mcs import MCS_TABLE_2

        assert MCS_TABLE_2[27].qm == 8
        assert MCS_TABLE_2[27].rate_x1024 == 948

    def test_cqi15_maps_to_top_mcs(self):
        assert cqi_to_mcs(15, table=2) == 27

    def test_peak_rate_gain_over_table1(self):
        """256QAM raises the 52-PRB peak by ~33% (8/6 bits per symbol)."""
        t1 = transport_block_size_bits(52, 28, mcs_table=1)
        t2 = transport_block_size_bits(52, 27, mcs_table=2)
        assert t2 / t1 == pytest.approx(8 / 6, rel=0.02)

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            cqi_to_mcs(5, table=3)

    def test_table2_mcs_range_checked(self):
        from repro.phy.mcs import mcs_entry

        with pytest.raises(ValueError):
            mcs_entry(28, table=2)  # table 2 tops out at 27

    def test_low_cqi_same_modulation_both_tables(self):
        # CQI 1 is QPSK 78/1024 in both tables
        from repro.phy.mcs import CQI_TABLE_1, CQI_TABLE_2

        assert CQI_TABLE_1[0].qm == CQI_TABLE_2[0].qm == 2
        assert CQI_TABLE_1[0].rate_x1024 == CQI_TABLE_2[0].rate_x1024 == 78
