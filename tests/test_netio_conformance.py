"""Transport-backend conformance: one contract, three implementations.

Every behaviour the cluster relies on - ordering, binary safety, peer
lifecycle, backpressure accounting, shutdown - must hold identically on
the inline queue bus, the TCP socket bus, and the shared-memory ring
bus, or scaling sweeps would change semantics when they change
``--transport``.  Each test runs against all three via the ``net``
fixture.
"""

import pytest

from repro.netio import (
    BatchSender,
    InProcNetwork,
    NetworkError,
    ShmNetwork,
    TcpNetwork,
)

BACKENDS = ("inline", "tcp", "shm")


def _make_network(backend: str):
    if backend == "inline":
        return InProcNetwork()
    if backend == "tcp":
        return TcpNetwork()
    return ShmNetwork(ring_bytes=1 << 20)


@pytest.fixture(params=BACKENDS)
def net(request):
    with _make_network(request.param) as network:
        yield network


def _reopen(net, name: str, old) -> object:
    """Recreate ``name`` the way a restarted process would."""
    if isinstance(net, TcpNetwork):
        return net.endpoint(name, port=old.port)
    return net.endpoint(name)


class TestDelivery:
    def test_roundtrip(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"hello")
        assert b.recv(timeout=5.0) == ("a", b"hello")

    def test_ordering_preserved(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        for i in range(100):
            a.send("b", i.to_bytes(4, "little"))
        got = []
        while len(got) < 100:
            item = b.recv(timeout=5.0)
            assert item is not None, f"lost messages after {len(got)}"
            assert item[0] == "a"
            got.append(int.from_bytes(item[1], "little"))
        assert got == list(range(100))

    def test_binary_safety(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        payload = bytes(range(256)) * 16
        a.send("b", payload)
        assert b.recv(timeout=5.0) == ("a", payload)

    def test_empty_payload(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"")
        assert b.recv(timeout=5.0) == ("a", b"")

    def test_bidirectional(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"ping")
        src, _ = b.recv(timeout=5.0)
        b.send(src, b"pong")
        assert a.recv(timeout=5.0) == ("b", b"pong")

    def test_fan_in_two_producers(self, net):
        sink = net.endpoint("sink")
        p0 = net.endpoint("p0")
        p1 = net.endpoint("p1")
        p0.send("sink", b"from0")
        p1.send("sink", b"from1")
        got = {}
        while len(got) < 2:
            item = sink.recv(timeout=5.0)
            assert item is not None
            got[item[0]] = item[1]
        assert got == {"p0": b"from0", "p1": b"from1"}

    def test_recv_empty_returns_none(self, net):
        a = net.endpoint("a")
        assert a.recv() is None
        assert a.recv(timeout=0.05) is None


class TestNaming:
    def test_unknown_dest_raises(self, net):
        a = net.endpoint("a")
        with pytest.raises(NetworkError):
            a.send("ghost", b"x")

    def test_duplicate_name_rejected(self, net):
        net.endpoint("a")
        with pytest.raises(NetworkError):
            net.endpoint("a")

    def test_source_name_travels_verbatim(self, net):
        # exotic names exceed shm's segment-label charset; the wire
        # form must still deliver the original
        longname = "worker-" + "x" * 40
        a = net.endpoint(longname)
        b = net.endpoint("b")
        a.send("b", b"payload")
        assert b.recv(timeout=5.0) == (longname, b"payload")


class TestPeerLifecycle:
    def test_send_to_closed_peer_raises(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"pre")
        assert b.recv(timeout=5.0) == ("a", b"pre")
        b.close()
        with pytest.raises(NetworkError):
            a.send("b", b"post")

    def test_restart_under_same_name(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        a.send("b", b"first")
        assert b.recv(timeout=5.0) == ("a", b"first")
        b.close()
        reborn = _reopen(net, "b", b)
        a.send("b", b"second")
        assert reborn.recv(timeout=5.0) == ("a", b"second")

    def test_close_idempotent(self, net):
        a = net.endpoint("a")
        a.close()
        a.close()

    def test_endpoint_context_manager(self, net):
        with net.endpoint("a") as a:
            with net.endpoint("b") as b:
                a.send("b", b"ctx")
                assert b.recv(timeout=5.0) == ("a", b"ctx")
        # both names freed for reuse
        net.endpoint("a")
        net.endpoint("b")

    def test_drain_returns_all_queued(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        for i in range(10):
            a.send("b", bytes([i]))
        import time

        got = []
        deadline = time.monotonic() + 5.0
        while len(got) < 10 and time.monotonic() < deadline:
            got.extend(p[0] for _, p in b.drain())
            time.sleep(0.01)
        assert got == list(range(10))


class TestNetworkShutdown:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_network_context_manager(self, backend):
        with _make_network(backend) as network:
            a = network.endpoint("a")
            b = network.endpoint("b")
            a.send("b", b"in-scope")
            assert b.recv(timeout=5.0) == ("a", b"in-scope")
        with pytest.raises((NetworkError, OSError)):
            a.send("b", b"after close")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_twice(self, backend):
        network = _make_network(backend)
        network.endpoint("a")
        network.close()
        network.close()


class TestBatchSenderBackpressure:
    """The uplink batcher's drop accounting is transport-independent."""

    def test_drop_counter_on_full_queue(self, net):
        a = net.endpoint("a")
        net.endpoint("b")
        sender = BatchSender(a, "b", max_queue=8)
        accepted = sum(sender.offer(bytes([i])) for i in range(12))
        assert accepted == 8
        assert sender.dropped == 4
        assert sender.offered == 12

    def test_flush_delivers_survivors(self, net):
        a = net.endpoint("a")
        b = net.endpoint("b")
        sender = BatchSender(a, "b", max_queue=8)
        for i in range(12):
            sender.offer(bytes([i]))
        assert sender.flush() == 8
        frames = []
        while True:
            item = b.recv(timeout=1.0)
            if item is None:
                break
            frames.append(item)
        assert frames, "flush must put at least one frame on the wire"
        assert sender.messages_sent == 8
        assert sender.queued == 0

    def test_oversize_payload_counted_separately(self, net):
        a = net.endpoint("a")
        net.endpoint("b")
        sender = BatchSender(a, "b", max_queue=8)
        from repro.netio.framing import MAX_FRAME

        assert not sender.offer(b"\x00" * MAX_FRAME)
        assert sender.dropped_oversize == 1
        assert sender.dropped == 1
