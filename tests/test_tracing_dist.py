"""Distributed tracing: context propagation, thread-local stacks, export."""

import json
import threading

import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.traceexport import (
    TraceExportError,
    chrome_trace,
    merge_span_collections,
    trace_digest,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracing import TraceContext, Tracer, render_span_tree


@pytest.fixture
def telemetry():
    obs.enable()
    obs.reset()
    yield OBS
    obs.reset()
    obs.disable()


# ---------------------------------------------------------------------------
# trace context
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext(0x1122334455667788, 0x99AABBCCDDEEFF00)
        packed = ctx.pack()
        assert len(packed) == TraceContext.WIRE_LEN
        assert TraceContext.unpack(packed) == ctx

    def test_short_wire_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.unpack(b"\x00" * 15)

    def test_json_roundtrip(self):
        ctx = TraceContext(7, 13)
        assert TraceContext.from_json(ctx.to_json()) == ctx

    def test_json_garbage_is_none(self):
        assert TraceContext.from_json(None) is None
        assert TraceContext.from_json({}) is None
        assert TraceContext.from_json({"trace_id": "zz", "span_id": "1"}) is None


# ---------------------------------------------------------------------------
# span identity and cross-process parenting
# ---------------------------------------------------------------------------


class TestDistributedSpans:
    def test_span_ids_globally_prefixed(self):
        t = Tracer(enabled=True)
        with t.span("a") as a, t.span("b") as b:
            assert a.span_id != b.span_id
            assert a.span_id >> 32 == b.span_id >> 32  # same process prefix

    def test_two_tracers_never_collide(self):
        t1, t2 = Tracer(enabled=True), Tracer(enabled=True)
        ids = set()
        for t in (t1, t2):
            for _ in range(100):
                with t.span("s") as s:
                    ids.add(s.span_id)
        assert len(ids) == 200

    def test_remote_parent_adopts_trace(self):
        t1, t2 = Tracer(enabled=True), Tracer(enabled=True)
        with t1.span("parent") as p:
            ctx = p.context
        with t2.span("child", parent=ctx) as c:
            assert c.trace_id == ctx.trace_id
            assert c.parent_id == ctx.span_id

    def test_root_starts_fresh_trace(self):
        t = Tracer(enabled=True)
        with t.span("a") as a:
            pass
        with t.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_reserve_context_parents_without_live_span(self):
        t = Tracer(enabled=True)
        root = t.reserve_context()
        with t.span("w", parent=root) as w:
            pass
        assert w.parent_id == root.span_id
        assert w.trace_id == root.trace_id

    def test_children_us_accumulates_by_name(self):
        t = Tracer(enabled=True)
        with t.span("slot") as slot:
            with t.span("work"):
                pass
            with t.span("work"):
                pass
        assert set(slot.children_us) == {"work"}
        assert slot.children_us["work"] <= slot.elapsed_us
        assert slot.child_total_us() == pytest.approx(
            slot.children_us["work"]
        )

    def test_guilty_segment_names_biggest_child(self):
        t = Tracer(enabled=True)
        with t.span("slot") as slot:
            with t.span("fast"):
                pass
            with t.span("slow"):
                for _ in range(2000):
                    pass
        name, us = slot.guilty_segment()
        assert name in ("slow", "self")  # self-time can win on tiny spans
        assert us > 0


# ---------------------------------------------------------------------------
# thread-local active-span stacks
# ---------------------------------------------------------------------------


class TestThreadLocalStacks:
    def test_threads_do_not_cross_parent(self):
        t = Tracer(enabled=True, capacity=10_000)
        errors: list[str] = []

        def worker(tag: str) -> None:
            for i in range(200):
                with t.span(f"outer-{tag}") as outer:
                    with t.span(f"inner-{tag}") as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append(
                                f"{tag}[{i}]: parent {inner.parent_id} "
                                f"!= {outer.span_id}"
                            )

        threads = [
            threading.Thread(target=worker, args=(str(n),)) for n in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert errors == []
        spans = t.finished()
        assert len(spans) == 4 * 200 * 2
        # every inner span parents under an outer span of the same tag
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name.startswith("inner"):
                parent = by_id[s.parent_id]
                assert parent.name == "outer-" + s.name.split("-")[1]

    def test_reset_leaves_other_threads_stacks_alone(self):
        t = Tracer(enabled=True)
        started = threading.Event()
        release = threading.Event()
        result: dict = {}

        def worker() -> None:
            with t.span("outer") as outer:
                started.set()
                release.wait(timeout=5)
                with t.span("inner") as inner:
                    result["ok"] = inner.parent_id == outer.span_id

        th = threading.Thread(target=worker)
        th.start()
        started.wait(timeout=5)
        t.reset()  # must not corrupt the worker thread's nesting
        release.set()
        th.join()
        assert result["ok"] is True


# ---------------------------------------------------------------------------
# span-tree rendering edge cases
# ---------------------------------------------------------------------------


class TestTreeEdgeCases:
    def test_evicted_parent_orphans_subtree_to_root(self):
        t = Tracer(enabled=True, capacity=2)
        with t.span("parent"):
            with t.span("child-a"):
                pass
            with t.span("child-b"):
                pass
        # capacity 2: "parent" (finishing last) plus the newest child
        # survive... actually children finish first; ring keeps the last 2
        docs = t.to_json()
        assert len(docs) == 2
        tree = render_span_tree(docs)
        # whatever survived renders without crashing, orphans at root
        for doc in docs:
            assert doc["name"] in tree

    def test_orphan_renders_at_root_level(self):
        docs = [
            {
                "span_id": 2,
                "parent_id": 999,  # evicted parent
                "name": "orphan",
                "elapsed_us": 5.0,
                "start_ns": 10,
                "attrs": {},
            },
            {
                "span_id": 3,
                "parent_id": 2,
                "name": "grandchild",
                "elapsed_us": 1.0,
                "start_ns": 11,
                "attrs": {},
            },
        ]
        tree = render_span_tree(docs)
        lines = tree.splitlines()
        assert lines[0].startswith("orphan")  # no indent: rooted
        assert lines[1].startswith("  grandchild")  # still nested under it

    def test_nested_spans_across_reset_reroot(self, telemetry):
        t = telemetry.tracer
        with t.span("outer") as outer:
            t.reset()  # mid-span reset (inline cluster does this per worker)
            with t.span("inner") as inner:
                pass
        # the reset popped "outer" off the active stack, so "inner"
        # re-rooted as a fresh trace instead of corrupting parentage
        assert inner.parent_id is None
        assert inner.trace_id != outer.trace_id
        docs = t.to_json()
        names = {d["name"] for d in docs}
        assert names == {"inner", "outer"}  # both land in the new buffer
        render_span_tree(docs)  # and the forest still renders


# ---------------------------------------------------------------------------
# export: merge, chrome trace, digest
# ---------------------------------------------------------------------------


def _collections():
    coord, w0 = Tracer(enabled=True, service="coord"), Tracer(enabled=True)
    root = coord.reserve_context()
    with w0.span("worker.run", parent=root):
        with w0.span("worker.slot", slot=0):
            with w0.span("gnb.step"):
                pass
    with coord.span("coord.drain"):
        pass
    root_doc = {
        "trace_id": f"{root.trace_id:016x}",
        "span_id": root.span_id,
        "parent_id": None,
        "name": "cluster.run",
        "service": "coord",
        "thread_id": 0,
        "start_ns": 0,
        "elapsed_us": 100.0,
        "status": "ok",
        "attrs": {},
    }
    return [
        ("coord", coord.to_json() + [root_doc]),
        ("worker0", w0.to_json()),
    ]


class TestExport:
    def test_merge_stamps_service_and_dedups(self):
        merged = merge_span_collections(_collections())
        services = {d["service"] for d in merged}
        assert services == {"coord", "worker0"}
        ids = [d["span_id"] for d in merged]
        assert len(ids) == len(set(ids))
        # shipping the same collection twice must not duplicate spans
        cols = _collections()
        twice = merge_span_collections(cols + cols[:1])
        assert len(twice) == len(merge_span_collections(cols))

    def test_merge_rejects_idless_span(self):
        with pytest.raises(TraceExportError):
            merge_span_collections([("x", [{"name": "no-id"}])])

    def test_cross_process_tree_stitches(self):
        merged = merge_span_collections(_collections())
        tree = render_span_tree(merged)
        lines = tree.splitlines()
        root_line = next(
            i for i, l in enumerate(lines) if l.startswith("cluster.run")
        )
        assert lines[root_line + 1].startswith("  worker.run")
        assert lines[root_line + 2].startswith("    worker.slot")

    def test_chrome_trace_golden_shape(self, tmp_path):
        merged = merge_span_collections(_collections())
        doc = chrome_trace(merged)
        assert validate_chrome_trace(doc) == len(merged)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"coord", "worker0"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for event in complete:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
            assert event["dur"] >= 0
            assert event["ts"] >= 0  # per-service re-basing
        # the file roundtrips through json and still validates
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), merged)
        assert n == len(doc["traceEvents"])
        assert validate_chrome_trace(json.loads(path.read_text())) == len(
            merged
        )

    def test_validate_rejects_malformed(self):
        with pytest.raises(TraceExportError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(TraceExportError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "ts": 0}]}
            )
        with pytest.raises(TraceExportError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "ts": 0,
                            "dur": -1,
                            "pid": 1,
                            "tid": 1,
                        }
                    ]
                }
            )

    def test_digest_stable_across_runs_but_structure_sensitive(self):
        d1 = trace_digest(merge_span_collections(_collections()))
        d2 = trace_digest(merge_span_collections(_collections()))
        assert d1 == d2  # ids and timings differ; structure does not
        extra = merge_span_collections(_collections())
        extra.append(dict(extra[0], span_id=1, name="rogue"))
        assert trace_digest(extra) != d1

    def test_digest_ignores_float_attrs(self):
        docs = merge_span_collections(_collections())
        stamped = [dict(d, attrs=dict(d["attrs"], t=1.23)) for d in docs]
        assert trace_digest(stamped) == trace_digest(docs)
