"""Supervisor unit tests: retry/backoff, and every breaker transition."""

import random

import pytest

from repro import obs
from repro.chaos.supervisor import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    Supervisor,
)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=8.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in range(6)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        first = [policy.delay(0, random.Random(7)) for _ in range(5)]
        second = [policy.delay(0, random.Random(7)) for _ in range(5)]
        assert first == second  # same seed, same jitter
        for delay in first:
            assert 1.0 <= delay < 1.5


class TestCircuitBreakerTransitions:
    def test_closed_to_open(self):
        breaker = CircuitBreaker("peer", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure(now=0.0)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(now=1.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions == [("closed", "open")]
        assert not breaker.allow(now=1.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("peer", failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_to_half_open_after_reset_window(self):
        breaker = CircuitBreaker("peer", failure_threshold=1, reset_after=10.0)
        breaker.record_failure(now=5.0)
        assert not breaker.allow(now=14.0)  # still inside the window
        assert breaker.allow(now=15.0)  # window elapsed: probe allowed
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_to_closed_after_probe_successes(self):
        breaker = CircuitBreaker(
            "peer", failure_threshold=1, reset_after=1.0, half_open_successes=2
        )
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=2.0)
        breaker.record_success(now=2.0)
        assert breaker.state is BreakerState.HALF_OPEN  # one probe is not enough
        breaker.record_success(now=3.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("peer", failure_threshold=1, reset_after=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=10.0)
        breaker.record_failure(now=10.0)  # the probe failed
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 10.0  # the reset timer restarted
        assert not breaker.allow(now=19.0)
        assert breaker.allow(now=20.0)


class TestSupervisorCall:
    def test_success_passthrough(self):
        supervisor = Supervisor()
        assert supervisor.call("peer", lambda: 42) == 42
        assert supervisor.retries == 0

    def test_retries_then_succeeds(self):
        supervisor = Supervisor(policy=RetryPolicy(max_attempts=4))
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert supervisor.call("peer", flaky, retry_on=(OSError,)) == "ok"
        assert len(attempts) == 3
        assert supervisor.retries == 2
        assert supervisor.gave_up == 0

    def test_exhaustion_reraises_last_error(self):
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=3), failure_threshold=100
        )

        def always_fails():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            supervisor.call("peer", always_fails, retry_on=(OSError,))
        assert supervisor.gave_up == 1
        assert supervisor.breaker("peer").consecutive_failures == 3

    def test_non_retryable_errors_propagate_immediately(self):
        supervisor = Supervisor()
        calls = []

        def typed_failure():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            supervisor.call("peer", typed_failure, retry_on=(OSError,))
        assert len(calls) == 1

    def test_open_circuit_rejects_without_calling(self):
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=1), failure_threshold=2, reset_after=10.0
        )

        def fails():
            raise OSError("down")

        for _ in range(2):
            with pytest.raises(OSError):
                supervisor.call("peer", fails, retry_on=(OSError,))
        assert supervisor.breaker("peer").state is BreakerState.OPEN

        calls = []
        with pytest.raises(CircuitOpenError) as excinfo:
            supervisor.call("peer", lambda: calls.append(1), retry_on=(OSError,))
        assert calls == []  # the function never ran
        assert excinfo.value.peer == "peer"
        assert supervisor.rejected == 1

    def test_retry_stops_when_breaker_opens_mid_call(self):
        """Retries must not keep hammering a peer whose circuit just opened."""
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=10), failure_threshold=2
        )
        attempts = []

        def fails():
            attempts.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            supervisor.call("peer", fails, retry_on=(OSError,))
        assert len(attempts) == 2  # stopped at the threshold, not max_attempts

    def test_recovery_through_half_open(self):
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=1,
            reset_after=5.0,
            half_open_successes=1,
        )
        with pytest.raises(OSError):
            supervisor.call("peer", self._raise_oserror, retry_on=(OSError,))
        with pytest.raises(CircuitOpenError):
            supervisor.call("peer", lambda: "x", retry_on=(OSError,))
        for _ in range(5):
            supervisor.tick()
        assert supervisor.call("peer", lambda: "back") == "back"
        assert supervisor.breaker("peer").state is BreakerState.CLOSED

    @staticmethod
    def _raise_oserror():
        raise OSError("down")


class TestBreakerEdges:
    """Half-open races, seeded backoff determinism, full recovery arcs."""

    def test_half_open_admits_concurrent_probes(self):
        # the half-open gate is not a single-probe mutex: two callers that
        # both pass allow() in the same tick may both probe; the breaker
        # settles on whichever outcome is recorded
        breaker = CircuitBreaker(
            "peer", failure_threshold=1, reset_after=10.0, half_open_successes=2
        )
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=10.0)
        assert breaker.allow(now=10.0)  # second concurrent send also probes
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_failure_beats_racing_success(self):
        # probe A succeeds (1 of 2), racing probe B fails: the failure wins
        # and the partial success must not survive into the next probation
        breaker = CircuitBreaker(
            "peer", failure_threshold=1, reset_after=10.0, half_open_successes=2
        )
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=10.0)
        breaker.record_success(now=10.0)  # probe A: 1/2
        breaker.record_failure(now=10.0)  # probe B: reopen
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(now=15.0)  # timer restarted at the relapse

        # next probation starts counting probes from zero
        assert breaker.allow(now=20.0)
        breaker.record_success(now=20.0)
        assert breaker.state is BreakerState.HALF_OPEN  # A's old probe forgotten
        breaker.record_success(now=21.0)
        assert breaker.state is BreakerState.CLOSED

    def test_supervisor_half_open_relapse_round_trip(self):
        supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=1),
            failure_threshold=1,
            reset_after=3.0,
            half_open_successes=2,
        )

        def fails():
            raise OSError("down")

        with pytest.raises(OSError):
            supervisor.call("peer", fails, retry_on=(OSError,))
        for _ in range(3):
            supervisor.tick()
        assert supervisor.call("peer", lambda: "probe-1") == "probe-1"
        with pytest.raises(OSError):  # racing send fails the probation
            supervisor.call("peer", fails, retry_on=(OSError,))
        with pytest.raises(CircuitOpenError):
            supervisor.call("peer", lambda: "rejected")
        for _ in range(3):
            supervisor.tick()
        assert supervisor.call("peer", lambda: "probe-2") == "probe-2"
        assert supervisor.call("peer", lambda: "probe-3") == "probe-3"
        breaker = supervisor.breaker("peer")
        assert breaker.state is BreakerState.CLOSED
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_backoff_jitter_deterministic_per_seed_and_peer(self):
        def delays(seed, peer):
            supervisor = Supervisor(seed=seed)
            rng = supervisor._peer(peer).rng
            return [supervisor.policy.delay(a, rng) for a in range(6)]

        assert delays(3, "ric") == delays(3, "ric")  # same seed: same jitter
        assert delays(3, "ric") != delays(4, "ric")  # seed changes the stream
        assert delays(3, "ric") != delays(3, "gnb")  # peers are independent

    def test_quarantine_probation_release_with_recovering_plugin(self):
        """The rt admission arc rides this breaker: overruns quarantine a
        plugin, probation half-opens it, and a recovered plugin re-admits
        through in-budget probes (the round-trip the scenarios assert
        end-to-end with real Wasm)."""
        from repro.rt import DeadlineDispatcher, RtPolicy, RtRequest

        dispatcher = DeadlineDispatcher(
            RtPolicy(
                budget_us=400.0, quarantine_after=2,
                probation_slots=8, probe_successes=2,
            ),
            slot_us=1000.0,
        )
        requests = [RtRequest(1, "flaky", "be")]
        hot_until = 6  # the plugin misbehaves for the first six slots

        for slot in range(30):
            for decision in dispatcher.plan_slot(slot, requests):
                if not decision.dispatches:
                    continue
                overrun = slot < hot_until
                dispatcher.observe_call(
                    decision, slot,
                    fuel_used=decision.fuel_budget if overrun else 300,
                    elapsed_us=5.0, overrun=overrun,
                )
            dispatcher.settle(slot)

        st = dispatcher.admission.state("flaky")
        breaker = st.breaker
        assert st.quarantines == 1
        assert st.readmissions == 1
        assert breaker.state is BreakerState.CLOSED
        assert ("closed", "open") in breaker.transitions
        assert ("open", "half_open") in breaker.transitions
        assert ("half_open", "closed") in breaker.transitions


class TestSupervisorObservability:
    def test_transition_and_outcome_metrics(self):
        obs.enable()
        obs.reset()
        try:
            supervisor = Supervisor(
                policy=RetryPolicy(max_attempts=2), failure_threshold=2
            )

            def fails():
                raise OSError("down")

            with pytest.raises(OSError):
                supervisor.call("peer", fails, retry_on=(OSError,))
            with pytest.raises(CircuitOpenError):
                supervisor.call("peer", lambda: 1, retry_on=(OSError,))

            registry = obs.OBS.registry
            assert registry.counter("waran_breaker_transitions_total").value(
                peer="peer", **{"from": "closed", "to": "open"}
            ) == 1
            assert registry.counter("waran_supervisor_calls_total").value(
                peer="peer", outcome="gave_up"
            ) == 1
            assert registry.counter("waran_supervisor_rejections_total").value(
                peer="peer"
            ) == 1
            text = registry.to_prometheus()
            assert "waran_supervisor_attempts" in text
            assert "waran_supervisor_backoff_ticks" in text
        finally:
            obs.reset()
            obs.disable()
