"""Quick-run tests of every experiment driver (short durations).

The benches run the full-length versions; these keep the drivers covered
in the ordinary test suite and pin their shape criteria.
"""

import pytest

from repro.experiments import (
    run_fig5a,
    run_fig5b,
    run_fig5c,
    run_fig5d,
    run_safety_table,
)


class TestFig5a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5a(duration_s=2.0)

    def test_all_targets_met(self, result):
        assert result.all_targets_met(tolerance=0.15)

    def test_rows_structure(self, result):
        rows = result.rows()
        assert len(rows) == 3
        targets = [t for _n, t, _a, _r in rows]
        assert targets == [3.0, 12.0, 15.0]

    def test_series_nonempty(self, result):
        for sid, series in result.series.items():
            assert len(series) >= 2

    def test_custom_mvno_set(self):
        mvnos = [(1, "solo", "rr", 5e6, [(1, 28)])]
        result = run_fig5a(duration_s=1.0, mvnos=mvnos)
        assert result.rows()[0][1] == 5.0
        assert result.all_targets_met(tolerance=0.2)


class TestFig5b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5b(phase_duration_s=3.0)

    def test_shape_holds(self, result):
        checks = result.shape_holds()
        assert all(checks.values()), checks

    def test_mt_hits_target_on_best_ue(self, result):
        assert result.phase_means["mt"][3] == pytest.approx(22.0, rel=0.1)

    def test_swap_did_not_interrupt_service(self, result):
        total_by_ue = {ue: sum(v for _t, v in s) for ue, s in result.series.items()}
        assert all(v > 0 for v in total_by_ue.values())


class TestFig5c:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5c(duration_s=4.0, sample_dt_s=0.5)

    def test_plugin_bounded(self, result):
        assert result.plugin_is_bounded(cap_mib=8.0)

    def test_native_linear(self, result):
        assert result.native_grows_linearly()

    def test_contrast(self, result):
        assert result.final_native_mib() > result.final_plugin_mib()


class TestFig5d:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5d(calls=60, ue_counts=(1, 10), plugins=("mt", "pf"))

    def test_grows_with_ues(self, result):
        assert result.grows_with_ues()

    def test_cells_complete(self, result):
        assert len(result.cells) == 4
        for cell in result.cells:
            assert cell.p50_us > 0
            assert cell.p99_us >= cell.p50_us


class TestSafety:
    def test_table(self):
        result = run_safety_table()
        assert result.sandbox_always_survives()
        assert result.native_always_dies()
        assert {r.fault for r in result.rows} == {
            "null_deref", "oob_access", "double_free",
        }
