"""Unit and property tests for LEB128 encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wasm import leb128
from repro.wasm.traps import DecodeError


class TestUnsigned:
    def test_zero(self):
        assert leb128.encode_u(0) == b"\x00"
        assert leb128.decode_u(b"\x00", 0) == (0, 1)

    def test_single_byte_max(self):
        assert leb128.encode_u(127) == b"\x7f"

    def test_two_bytes(self):
        assert leb128.encode_u(128) == b"\x80\x01"
        assert leb128.decode_u(b"\x80\x01", 0) == (128, 2)

    def test_u32_max(self):
        data = leb128.encode_u(0xFFFFFFFF)
        assert leb128.decode_u(data, 0) == (0xFFFFFFFF, len(data))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            leb128.encode_u(-1)

    def test_value_too_large_for_bits(self):
        data = leb128.encode_u(1 << 32)
        with pytest.raises(DecodeError):
            leb128.decode_u(data, 0, 32)

    def test_truncated(self):
        with pytest.raises(DecodeError):
            leb128.decode_u(b"\x80", 0)

    def test_overlong_rejected(self):
        # 6 continuation bytes cannot encode a u32
        with pytest.raises(DecodeError):
            leb128.decode_u(b"\x80\x80\x80\x80\x80\x01", 0, 32)

    def test_offset_decoding(self):
        data = b"\xff" + leb128.encode_u(300)
        assert leb128.decode_u(data, 1) == (300, 3)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_u32(self, value):
        data = leb128.encode_u(value)
        assert leb128.decode_u(data, 0, 32) == (value, len(data))

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_u64(self, value):
        data = leb128.encode_u(value)
        assert leb128.decode_u(data, 0, 64) == (value, len(data))


class TestSigned:
    def test_zero(self):
        assert leb128.encode_s(0) == b"\x00"

    def test_minus_one(self):
        assert leb128.encode_s(-1) == b"\x7f"
        assert leb128.decode_s(b"\x7f", 0) == (-1, 1)

    def test_boundary_63_64(self):
        # 63 fits one byte; 64 needs two (sign bit collision)
        assert len(leb128.encode_s(63)) == 1
        assert len(leb128.encode_s(64)) == 2

    def test_i32_min(self):
        data = leb128.encode_s(-(1 << 31))
        assert leb128.decode_s(data, 0, 32) == (-(1 << 31), len(data))

    def test_out_of_range(self):
        data = leb128.encode_s(1 << 31)
        with pytest.raises(DecodeError):
            leb128.decode_s(data, 0, 32)

    def test_truncated(self):
        with pytest.raises(DecodeError):
            leb128.decode_s(b"\xc0", 0)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_roundtrip_s32(self, value):
        data = leb128.encode_s(value)
        assert leb128.decode_s(data, 0, 32) == (value, len(data))

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_s64(self, value):
        data = leb128.encode_s(value)
        assert leb128.decode_s(data, 0, 64) == (value, len(data))


class TestEncodingProperties:
    """Stronger properties the round-trips alone don't pin down."""

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_unsigned_encoding_is_shortest_form(self, value):
        data = leb128.encode_u(value)
        # exactly ceil(bit_length / 7) bytes, minimum 1
        expected = max(1, -(-value.bit_length() // 7))
        assert len(data) == expected
        # the final byte never has the continuation bit; all others do
        assert data[-1] & 0x80 == 0
        assert all(b & 0x80 for b in data[:-1])

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_encoding_is_shortest_form(self, value):
        data = leb128.encode_s(value)
        # signed LEB needs bit_length+1 bits (room for the sign bit)
        bits = (value.bit_length() if value >= 0 else (value + 1).bit_length()) + 1
        assert len(data) == max(1, -(-bits // 7))
        assert data[-1] & 0x80 == 0

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_unsigned_encoding_is_order_preserving_in_length(self, value):
        # longer encodings always mean strictly larger magnitudes
        data = leb128.encode_u(value)
        if len(data) > 1:
            assert value >= 1 << (7 * (len(data) - 1))

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_unsigned_concatenation_decodes_in_sequence(self, a, b):
        data = leb128.encode_u(a) + leb128.encode_u(b)
        first, offset = leb128.decode_u(data, 0, 32)
        second, end = leb128.decode_u(data, offset, 32)
        assert (first, second) == (a, b)
        assert end == len(data)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_padded_unsigned_decodes_to_same_value(self, value):
        # non-canonical (zero-padded) encodings are accepted while the
        # total width still fits 32 bits -- the spec permits them
        data = leb128.encode_u(value)
        if len(data) >= 5:
            return
        padded = bytes([data[i] | 0x80 for i in range(len(data))]) + b"\x00"
        decoded, length = leb128.decode_u(padded, 0, 32)
        assert decoded == value
        assert length == len(padded)

    @given(st.binary(max_size=12))
    def test_decoder_never_crashes_on_arbitrary_bytes(self, data):
        for decoder in (leb128.decode_u, leb128.decode_s):
            try:
                value, length = decoder(data, 0, 32)
            except DecodeError:
                continue
            assert 0 < length <= len(data)
            assert isinstance(value, int)
