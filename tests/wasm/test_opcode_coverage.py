"""Opcode conformance corpus: every supported opcode executes correctly.

Each entry is a folded WAT expression with a known answer.  A final
completeness test asserts that the corpus (plus a few structural programs)
covers *every* opcode in the instruction table, so adding an opcode
without a conformance vector fails CI.
"""

import math

import pytest

from repro.wasm import Instance, decode_module
from repro.wasm import opcodes as op
from repro.wasm.wat import assemble, parse_module

# (expression, params (name->wat type), args, expected)
# Expressions are function bodies returning one value.
VECTORS: list[tuple[str, str, tuple, object]] = [
    # --- i32 arithmetic ---
    ("(i32.add (local.get 0) (local.get 1))", "i32 i32:i32", (2, 3), 5),
    ("(i32.sub (local.get 0) (local.get 1))", "i32 i32:i32", (2, 3), -1),
    ("(i32.mul (local.get 0) (local.get 1))", "i32 i32:i32", (-4, 3), -12),
    ("(i32.div_s (local.get 0) (local.get 1))", "i32 i32:i32", (-7, 2), -3),
    ("(i32.div_u (local.get 0) (local.get 1))", "i32 i32:i32", (-1, 2), 0x7FFFFFFF),
    ("(i32.rem_s (local.get 0) (local.get 1))", "i32 i32:i32", (-7, 2), -1),
    ("(i32.rem_u (local.get 0) (local.get 1))", "i32 i32:i32", (7, 4), 3),
    ("(i32.and (local.get 0) (local.get 1))", "i32 i32:i32", (0b1100, 0b1010), 0b1000),
    ("(i32.or (local.get 0) (local.get 1))", "i32 i32:i32", (0b1100, 0b1010), 0b1110),
    ("(i32.xor (local.get 0) (local.get 1))", "i32 i32:i32", (0b1100, 0b1010), 0b0110),
    ("(i32.shl (local.get 0) (local.get 1))", "i32 i32:i32", (1, 4), 16),
    ("(i32.shr_s (local.get 0) (local.get 1))", "i32 i32:i32", (-16, 2), -4),
    ("(i32.shr_u (local.get 0) (local.get 1))", "i32 i32:i32", (-16, 28), 15),
    ("(i32.rotl (local.get 0) (local.get 1))", "i32 i32:i32", (0x80000000, 1), 1),
    ("(i32.rotr (local.get 0) (local.get 1))", "i32 i32:i32", (1, 1), -(1 << 31)),
    ("(i32.clz (local.get 0))", "i32:i32", (16,), 27),
    ("(i32.ctz (local.get 0))", "i32:i32", (16,), 4),
    ("(i32.popcnt (local.get 0))", "i32:i32", (0xF0F0,), 8),
    ("(i32.eqz (local.get 0))", "i32:i32", (0,), 1),
    ("(i32.extend8_s (local.get 0))", "i32:i32", (0x80,), -128),
    ("(i32.extend16_s (local.get 0))", "i32:i32", (0x8000,), -32768),
    # --- i32 comparisons ---
    ("(i32.eq (local.get 0) (local.get 1))", "i32 i32:i32", (5, 5), 1),
    ("(i32.ne (local.get 0) (local.get 1))", "i32 i32:i32", (5, 5), 0),
    ("(i32.lt_s (local.get 0) (local.get 1))", "i32 i32:i32", (-1, 0), 1),
    ("(i32.lt_u (local.get 0) (local.get 1))", "i32 i32:i32", (-1, 0), 0),
    ("(i32.gt_s (local.get 0) (local.get 1))", "i32 i32:i32", (1, -1), 1),
    ("(i32.gt_u (local.get 0) (local.get 1))", "i32 i32:i32", (1, -1), 0),
    ("(i32.le_s (local.get 0) (local.get 1))", "i32 i32:i32", (3, 3), 1),
    ("(i32.le_u (local.get 0) (local.get 1))", "i32 i32:i32", (4, 3), 0),
    ("(i32.ge_s (local.get 0) (local.get 1))", "i32 i32:i32", (3, 4), 0),
    ("(i32.ge_u (local.get 0) (local.get 1))", "i32 i32:i32", (-1, 1), 1),
    # --- i64 ---
    ("(i64.add (local.get 0) (local.get 1))", "i64 i64:i64", (1 << 40, 1), (1 << 40) + 1),
    ("(i64.sub (local.get 0) (local.get 1))", "i64 i64:i64", (0, 1), -1),
    ("(i64.mul (local.get 0) (local.get 1))", "i64 i64:i64", (1 << 32, 2), 1 << 33),
    ("(i64.div_s (local.get 0) (local.get 1))", "i64 i64:i64", (-9, 2), -4),
    ("(i64.div_u (local.get 0) (local.get 1))", "i64 i64:i64", (-1, 1 << 63), 1),
    ("(i64.rem_s (local.get 0) (local.get 1))", "i64 i64:i64", (-9, 2), -1),
    ("(i64.rem_u (local.get 0) (local.get 1))", "i64 i64:i64", (10, 3), 1),
    ("(i64.and (local.get 0) (local.get 1))", "i64 i64:i64", (6, 3), 2),
    ("(i64.or (local.get 0) (local.get 1))", "i64 i64:i64", (6, 3), 7),
    ("(i64.xor (local.get 0) (local.get 1))", "i64 i64:i64", (6, 3), 5),
    ("(i64.shl (local.get 0) (local.get 1))", "i64 i64:i64", (1, 40), 1 << 40),
    ("(i64.shr_s (local.get 0) (local.get 1))", "i64 i64:i64", (-8, 1), -4),
    ("(i64.shr_u (local.get 0) (local.get 1))", "i64 i64:i64", (-8, 60), 15),
    ("(i64.rotl (local.get 0) (local.get 1))", "i64 i64:i64", (1 << 63, 1), 1),
    ("(i64.rotr (local.get 0) (local.get 1))", "i64 i64:i64", (1, 1), -(1 << 63)),
    ("(i64.clz (local.get 0))", "i64:i64", (1,), 63),
    ("(i64.ctz (local.get 0))", "i64:i64", (1 << 40,), 40),
    ("(i64.popcnt (local.get 0))", "i64:i64", (-1,), 64),
    ("(i64.eqz (local.get 0))", "i64:i32", (1,), 0),
    ("(i64.extend8_s (local.get 0))", "i64:i64", (0xFF,), -1),
    ("(i64.extend16_s (local.get 0))", "i64:i64", (0xFFFF,), -1),
    ("(i64.extend32_s (local.get 0))", "i64:i64", (0xFFFFFFFF,), -1),
    ("(i64.eq (local.get 0) (local.get 1))", "i64 i64:i32", (9, 9), 1),
    ("(i64.ne (local.get 0) (local.get 1))", "i64 i64:i32", (9, 8), 1),
    ("(i64.lt_s (local.get 0) (local.get 1))", "i64 i64:i32", (-2, -1), 1),
    ("(i64.lt_u (local.get 0) (local.get 1))", "i64 i64:i32", (-2, -1), 1),
    ("(i64.gt_s (local.get 0) (local.get 1))", "i64 i64:i32", (-1, -2), 1),
    ("(i64.gt_u (local.get 0) (local.get 1))", "i64 i64:i32", (1, -1), 0),
    ("(i64.le_s (local.get 0) (local.get 1))", "i64 i64:i32", (5, 5), 1),
    ("(i64.le_u (local.get 0) (local.get 1))", "i64 i64:i32", (5, 4), 0),
    ("(i64.ge_s (local.get 0) (local.get 1))", "i64 i64:i32", (5, 6), 0),
    ("(i64.ge_u (local.get 0) (local.get 1))", "i64 i64:i32", (-1, 5), 1),
    # --- f32 ---
    ("(f32.add (local.get 0) (local.get 1))", "f32 f32:f32", (1.5, 2.0), 3.5),
    ("(f32.sub (local.get 0) (local.get 1))", "f32 f32:f32", (1.5, 2.0), -0.5),
    ("(f32.mul (local.get 0) (local.get 1))", "f32 f32:f32", (1.5, 2.0), 3.0),
    ("(f32.div (local.get 0) (local.get 1))", "f32 f32:f32", (1.0, 2.0), 0.5),
    ("(f32.min (local.get 0) (local.get 1))", "f32 f32:f32", (1.0, 2.0), 1.0),
    ("(f32.max (local.get 0) (local.get 1))", "f32 f32:f32", (1.0, 2.0), 2.0),
    ("(f32.copysign (local.get 0) (local.get 1))", "f32 f32:f32", (3.0, -1.0), -3.0),
    ("(f32.abs (local.get 0))", "f32:f32", (-2.5,), 2.5),
    ("(f32.neg (local.get 0))", "f32:f32", (2.5,), -2.5),
    ("(f32.ceil (local.get 0))", "f32:f32", (1.25,), 2.0),
    ("(f32.floor (local.get 0))", "f32:f32", (1.75,), 1.0),
    ("(f32.trunc (local.get 0))", "f32:f32", (-1.75,), -1.0),
    ("(f32.nearest (local.get 0))", "f32:f32", (2.5,), 2.0),
    ("(f32.sqrt (local.get 0))", "f32:f32", (4.0,), 2.0),
    ("(f32.eq (local.get 0) (local.get 1))", "f32 f32:i32", (1.0, 1.0), 1),
    ("(f32.ne (local.get 0) (local.get 1))", "f32 f32:i32", (1.0, 2.0), 1),
    ("(f32.lt (local.get 0) (local.get 1))", "f32 f32:i32", (1.0, 2.0), 1),
    ("(f32.gt (local.get 0) (local.get 1))", "f32 f32:i32", (1.0, 2.0), 0),
    ("(f32.le (local.get 0) (local.get 1))", "f32 f32:i32", (2.0, 2.0), 1),
    ("(f32.ge (local.get 0) (local.get 1))", "f32 f32:i32", (1.0, 2.0), 0),
    # --- f64 ---
    ("(f64.add (local.get 0) (local.get 1))", "f64 f64:f64", (0.1, 0.2), 0.1 + 0.2),
    ("(f64.sub (local.get 0) (local.get 1))", "f64 f64:f64", (1.0, 0.25), 0.75),
    ("(f64.mul (local.get 0) (local.get 1))", "f64 f64:f64", (1e150, 1e150), 1e300),
    ("(f64.div (local.get 0) (local.get 1))", "f64 f64:f64", (1.0, 3.0), 1.0 / 3.0),
    ("(f64.min (local.get 0) (local.get 1))", "f64 f64:f64", (-1.0, 1.0), -1.0),
    ("(f64.max (local.get 0) (local.get 1))", "f64 f64:f64", (-1.0, 1.0), 1.0),
    ("(f64.copysign (local.get 0) (local.get 1))", "f64 f64:f64", (-3.0, 1.0), 3.0),
    ("(f64.abs (local.get 0))", "f64:f64", (-0.5,), 0.5),
    ("(f64.neg (local.get 0))", "f64:f64", (-0.5,), 0.5),
    ("(f64.ceil (local.get 0))", "f64:f64", (-1.25,), -1.0),
    ("(f64.floor (local.get 0))", "f64:f64", (-1.25,), -2.0),
    ("(f64.trunc (local.get 0))", "f64:f64", (9.99,), 9.0),
    ("(f64.nearest (local.get 0))", "f64:f64", (3.5,), 4.0),
    ("(f64.sqrt (local.get 0))", "f64:f64", (2.25,), 1.5),
    ("(f64.eq (local.get 0) (local.get 1))", "f64 f64:i32", (0.5, 0.5), 1),
    ("(f64.ne (local.get 0) (local.get 1))", "f64 f64:i32", (0.5, 0.5), 0),
    ("(f64.lt (local.get 0) (local.get 1))", "f64 f64:i32", (0.5, 0.6), 1),
    ("(f64.gt (local.get 0) (local.get 1))", "f64 f64:i32", (0.6, 0.5), 1),
    ("(f64.le (local.get 0) (local.get 1))", "f64 f64:i32", (0.6, 0.5), 0),
    ("(f64.ge (local.get 0) (local.get 1))", "f64 f64:i32", (0.5, 0.5), 1),
    # --- conversions ---
    ("(i32.wrap_i64 (local.get 0))", "i64:i32", ((1 << 32) + 7,), 7),
    ("(i32.trunc_f32_s (local.get 0))", "f32:i32", (-2.75,), -2),
    ("(i32.trunc_f32_u (local.get 0))", "f32:i32", (3e9,), -1294967296),
    ("(i32.trunc_f64_s (local.get 0))", "f64:i32", (-2.75,), -2),
    ("(i32.trunc_f64_u (local.get 0))", "f64:i32", (4e9,), -294967296),
    ("(i64.extend_i32_s (local.get 0))", "i32:i64", (-5,), -5),
    ("(i64.extend_i32_u (local.get 0))", "i32:i64", (-5,), (1 << 32) - 5),
    ("(i64.trunc_f32_s (local.get 0))", "f32:i64", (-1e10,), -10000000000),
    ("(i64.trunc_f32_u (local.get 0))", "f32:i64", (1e10,), 10000000000),
    ("(i64.trunc_f64_s (local.get 0))", "f64:i64", (-1e15,), -1000000000000000),
    ("(i64.trunc_f64_u (local.get 0))", "f64:i64", (1e15,), 1000000000000000),
    ("(f32.convert_i32_s (local.get 0))", "i32:f32", (-2,), -2.0),
    ("(f32.convert_i32_u (local.get 0))", "i32:f32", (-1,), 4294967296.0),
    ("(f32.convert_i64_s (local.get 0))", "i64:f32", (1 << 40,), float(1 << 40)),
    ("(f32.convert_i64_u (local.get 0))", "i64:f32", (1 << 40,), float(1 << 40)),
    ("(f32.demote_f64 (local.get 0))", "f64:f32", (1.5,), 1.5),
    ("(f64.convert_i32_s (local.get 0))", "i32:f64", (-7,), -7.0),
    ("(f64.convert_i32_u (local.get 0))", "i32:f64", (-7,), 4294967289.0),
    ("(f64.convert_i64_s (local.get 0))", "i64:f64", (-(1 << 40),), -float(1 << 40)),
    ("(f64.convert_i64_u (local.get 0))", "i64:f64", (1 << 40,), float(1 << 40)),
    ("(f64.promote_f32 (local.get 0))", "f32:f64", (1.5,), 1.5),
    ("(i32.reinterpret_f32 (local.get 0))", "f32:i32", (1.0,), 0x3F800000),
    ("(i64.reinterpret_f64 (local.get 0))", "f64:i64", (1.0,), 0x3FF0000000000000),
    ("(f32.reinterpret_i32 (local.get 0))", "i32:f32", (0x3F800000,), 1.0),
    ("(f64.reinterpret_i64 (local.get 0))", "i64:f64", (0x3FF0000000000000,), 1.0),
    # --- parametric ---
    ("(select (i32.const 7) (i32.const 8) (local.get 0))", "i32:i32", (1,), 7),
]

# structural programs covering the remaining (non-expression) opcodes
STRUCTURAL = """
(module
  (memory 1 2)
  (table 1 funcref)
  (global $g (mut i64) (i64.const 5))
  (func $callee (result i32) (i32.const 3))
  (elem (i32.const 0) $callee)
  (func (export "structural") (param i32) (result i32)
    (local $acc i32) (local $f32tmp f32) (local $i64tmp i64)
    nop
    (drop (i32.const 1))
    (block $b
      (loop $l
        (br_if $b (i32.ge_s (local.get $acc) (i32.const 3)))
        (local.set $acc (i32.add (local.get $acc) (i32.const 1)))
        (br $l)))
    (if (local.get 0) (then (local.set $acc (i32.add (local.get $acc) (i32.const 10))))
      (else (local.set $acc (i32.const 0))))
    (block $x (block $y
      (br_table $x $y (i32.const 1)))
      (local.set $acc (i32.add (local.get $acc) (i32.const 100))))
    ;; memory ops of every width
    (i32.store8 (i32.const 0) (i32.const 0xAB))
    (i32.store16 (i32.const 2) (i32.const 0xBEEF))
    (i32.store (i32.const 4) (i32.const -1))
    (i64.store8 (i32.const 8) (i64.const 0x11))
    (i64.store16 (i32.const 10) (i64.const 0x2222))
    (i64.store32 (i32.const 12) (i64.const 0x33333333))
    (i64.store (i32.const 16) (i64.const -2))
    (f32.store (i32.const 24) (f32.const 1.5))
    (f64.store (i32.const 32) (f64.const 2.5))
    (local.set $f32tmp (f32.load (i32.const 24)))
    (drop (f64.load (i32.const 32)))
    (drop (i32.load8_s (i32.const 0)))
    (drop (i32.load8_u (i32.const 0)))
    (drop (i32.load16_s (i32.const 2)))
    (drop (i32.load16_u (i32.const 2)))
    (drop (i32.load (i32.const 4)))
    (drop (i64.load8_s (i32.const 8)))
    (drop (i64.load8_u (i32.const 8)))
    (drop (i64.load16_s (i32.const 10)))
    (drop (i64.load16_u (i32.const 10)))
    (drop (i64.load32_s (i32.const 12)))
    (drop (i64.load32_u (i32.const 12)))
    (local.set $i64tmp (i64.load (i32.const 16)))
    (drop (memory.size))
    (drop (memory.grow (i32.const 1)))
    (global.set $g (i64.add (global.get $g) (local.get $i64tmp)))
    (local.set $acc (i32.add (local.get $acc)
      (call_indirect (type 0) (i32.const 0))))
    (local.set $acc (i32.add (local.get $acc) (call $callee)))
    (return (local.tee $acc (local.get $acc)))
    unreachable
  ))
"""


def _parse_sig(sig: str):
    params, result = sig.split(":")
    return params.split(), result


@pytest.mark.parametrize("expr,sig,args,expected", VECTORS,
                         ids=[v[0].split()[0].strip("(") for v in VECTORS])
def test_vector(expr, sig, args, expected):
    params, result = _parse_sig(sig)
    wat = (f"(module (func (export \"f\") (param {' '.join(params)}) "
           f"(result {result}) {expr}))")
    got = Instance(decode_module(assemble(wat))).call("f", *args)
    if isinstance(expected, float):
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == pytest.approx(expected, rel=1e-6)
    else:
        assert got == expected


def test_structural_program():
    inst = Instance(decode_module(assemble(STRUCTURAL)))
    # acc: loop makes 3, +10 (if), +100 (br_table to $y), +3 (indirect), +3 (call)
    assert inst.call("structural", 1) == 119
    assert inst.call("structural", 0) == 106


def test_unreachable_covered():
    from repro.wasm.traps import Trap

    inst = Instance(decode_module(assemble("(module (func (export \"f\") unreachable))")))
    with pytest.raises(Trap):
        inst.call("f")


def test_every_opcode_is_covered():
    """The corpus must exercise every opcode the runtime claims to support."""
    covered: set[int] = set()

    def collect(wat: str) -> None:
        module = parse_module(wat)
        for code in module.codes:
            for opcode, _ in code.body:
                covered.add(opcode)
        for glob in module.globals:
            for opcode, _ in glob.init:
                covered.add(opcode)

    for expr, sig, _args, _expected in VECTORS:
        params, result = _parse_sig(sig)
        collect(f"(module (func (param {' '.join(params)}) (result {result}) {expr}))")
    collect(STRUCTURAL)
    collect('(module (func unreachable))')
    collect('(module (func (return)))')

    missing = {
        op.OP_TABLE[code].name for code in op.OP_TABLE if code not in covered
    }
    assert not missing, f"opcodes without conformance coverage: {sorted(missing)}"
