"""Unit tests for the AOT engine tier (repro.wasm.aot).

The three-way differential suite in ``tests/test_engine_differential.py``
and the fuzz oracle cover whole plugins and generated modules; these
tests pin the compiler itself: structured vs label-dispatch lowering,
fuel identity at every possible exhaustion point, trap codes, the engine
switch, checkpoint/restore on AOT instances, the dump listing, and the
bounded LRU code cache.
"""

import os

import pytest

from repro import obs
from repro.obs import OBS
from repro.wasm import Instance, decode_module
from repro.wasm.aot import AotCode, aot_for, compile_aot, dump_aot
from repro.wasm.codecache import capacity as cache_capacity
from repro.wasm.codecache import clear as cache_clear
from repro.wasm.codecache import compiled_bodies
from repro.wasm.codecache import stats as cache_stats
from repro.wasm.interpreter import ExecStats
from repro.wasm.threaded import ENGINES, resolve_engine
from repro.wasm.traps import Trap
from repro.wasm.wat import assemble


def three(source):
    raw = assemble(source)
    return tuple(
        Instance(decode_module(raw), engine=e)
        for e in ("legacy", "threaded", "aot")
    )


def call_outcome(inst, name, *args, fuel="unset"):
    """(kind, value-or-trap-code, fuel-left, stats) for one call."""
    stats = ExecStats()
    inst.store.stats = stats
    try:
        value = inst.call(name, *args, fuel=fuel)
        out = ("ok", value, inst.store.fuel)
    except Trap as exc:
        out = ("trap", exc.code, inst.store.fuel)
    finally:
        inst.store.stats = None
    return out + (stats.frames, stats.max_call_depth, stats.max_value_stack)


def assert_identical(source, name, *args, fuel="unset"):
    legacy, threaded, aot = three(source)
    expect = call_outcome(legacy, name, *args, fuel=fuel)
    for inst, engine in ((threaded, "threaded"), (aot, "aot")):
        got = call_outcome(inst, name, *args, fuel=fuel)
        assert got == expect, f"{name}{args}: {engine} {got} != legacy {expect}"
    return expect


LOOP_SUM = """(module (func (export "sum") (param $n i32) (result i32)
  (local $i i32) (local $acc i32)
  (block $exit (loop $top
    (br_if $exit (i32.ge_s (local.get $i) (local.get $n)))
    (local.set $acc (i32.add (local.get $acc) (local.get $i)))
    (local.set $i (i32.add (local.get $i) (i32.const 1)))
    (br $top)))
  (local.get $acc)))"""

FIB = """(module (func $fib (export "fib") (param i32) (result i32)
  (if (result i32) (i32.lt_s (local.get 0) (i32.const 2))
    (then (local.get 0))
    (else (i32.add (call $fib (i32.sub (local.get 0) (i32.const 1)))
                   (call $fib (i32.sub (local.get 0) (i32.const 2))))))))"""

COUNTER = """(module
  (memory 1)
  (global $calls (mut i32) (i32.const 0))
  (func (export "bump") (param i32) (result i32)
    (global.set $calls (i32.add (global.get $calls) (i32.const 1)))
    (i32.store (i32.const 0)
      (i32.add (i32.load (i32.const 0)) (local.get 0)))
    (i32.load (i32.const 0))))"""


# ---------------------------------------------------------------------------
# value / trap / fuel parity on representative shapes
# ---------------------------------------------------------------------------


def test_arith_loop_matches():
    assert_identical(LOOP_SUM, "sum", 1000)
    assert_identical(LOOP_SUM, "sum", 0)
    assert_identical(LOOP_SUM, "sum", -5)


def test_recursion_matches():
    out = assert_identical(FIB, "fib", 12)
    assert out[:2] == ("ok", 144)


def test_trap_codes_match():
    src = """(module
      (memory 1)
      (func (export "div") (param i32 i32) (result i32)
        (i32.div_s (local.get 0) (local.get 1)))
      (func (export "load") (param i32) (result i32)
        (i32.load (local.get 0)))
      (func (export "boom") (unreachable))
      (func (export "trunc") (param f64) (result i32)
        (i32.trunc_f64_s (local.get 0))))"""
    assert assert_identical(src, "div", 7, 0)[:2] == ("trap", "div0")
    assert assert_identical(src, "div", -(2**31), -1)[:2] == ("trap", "overflow")
    assert assert_identical(src, "load", 70000)[:2] == ("trap", "oob")
    assert assert_identical(src, "boom")[:2] == ("trap", "unreachable")
    assert assert_identical(src, "trunc", 1e300)[:2] == ("trap", "trunc")
    assert assert_identical(src, "trunc", float("nan"))[:2] == ("trap", "trunc")


def test_call_indirect_trap_codes_match():
    src = """(module
      (table 4 funcref)
      (func $a (param i32) (result i32) (i32.add (local.get 0) (i32.const 1)))
      (func $b (param i64) (result i64) (local.get 0))
      (elem (i32.const 0) $a $b)
      (func (export "run") (param i32 i32) (result i32)
        (call_indirect (type 0) (local.get 0) (local.get 1))))"""
    assert assert_identical(src, "run", 5, 0)[:2] == ("ok", 6)
    assert assert_identical(src, "run", 5, 1)[:2] == ("trap", "sig")
    assert assert_identical(src, "run", 5, 2)[:2] == ("trap", "table_null")
    assert assert_identical(src, "run", 5, 9)[:2] == ("trap", "table_oob")


def test_fuel_identity_at_every_budget():
    """Exhaustive sweep: all three engines cut off at the same instruction."""
    # find the full cost first, then try every budget below it
    full = assert_identical(LOOP_SUM, "sum", 10, fuel=10_000)
    assert full[0] == "ok"
    cost = 10_000 - full[2]
    for budget in range(cost + 2):
        assert_identical(LOOP_SUM, "sum", 10, fuel=budget)


def test_fuel_identity_across_calls():
    """Nested-call exhaustion: the caller's stale fuel sync must match."""
    for budget in range(0, 400, 7):
        assert_identical(FIB, "fib", 8, fuel=budget)


def test_float_bit_patterns_match():
    src = """(module
      (func (export "canon") (param f32) (result f32)
        (f32.add (local.get 0) (f32.const 0.1)))
      (func (export "div") (param f64 f64) (result f64)
        (f64.div (local.get 0) (local.get 1))))"""
    import struct

    legacy, threaded, aot = three(src)
    for name, args in (
        ("canon", (3.7,)),
        ("div", (0.0, 0.0)),   # nan
        ("div", (1.0, 0.0)),   # inf
        ("div", (-1.0, 0.0)),  # -inf
        ("div", (1.0, -0.0)),
    ):
        vals = [inst.call(name, *args) for inst in (legacy, threaded, aot)]
        bits = {struct.pack("<d", v) for v in vals}
        assert len(bits) == 1, f"{name}{args}: {vals}"


# ---------------------------------------------------------------------------
# structured vs label-dispatch lowering
# ---------------------------------------------------------------------------


def test_structured_mode_is_default_for_reducible_code():
    raw = assemble(LOOP_SUM)
    module = decode_module(raw)
    acode = compile_aot(module, module.codes[0], module.func_type(0))
    assert acode.mode == "structured"
    assert "while True:" in acode.source
    assert "_pc" not in acode.source


def test_deep_nesting_falls_back_to_dispatch():
    # 24 nested blocks: CPython rejects >20 statically nested blocks, so
    # the structured emitter must bail out to the label-dispatch loop
    depth = 24
    src = ("(module (func (export \"f\") (param i32) (result i32) "
           + "(block " * depth
           + f"(br_if {depth - 1} (local.get 0))"
           + ")" * depth
           + " (i32.const 5)))")
    raw = assemble(src)
    module = decode_module(raw)
    acode = compile_aot(module, module.codes[0], module.func_type(0))
    assert acode.mode == "dispatch"
    assert "_pc = 0" in acode.source
    inst = Instance(decode_module(raw), engine="aot")
    assert inst.call("f", 0) == 5
    assert inst.call("f", 1) == 5


def test_dispatch_mode_forced_by_env_matches(monkeypatch):
    monkeypatch.setenv("REPRO_WASM_AOT_DISPATCH", "1")
    raw = assemble(LOOP_SUM)
    module = decode_module(raw)
    acode = compile_aot(module, module.codes[0], module.func_type(0))
    assert acode.mode == "dispatch"
    assert_identical(LOOP_SUM, "sum", 25)
    for budget in range(40):
        assert_identical(LOOP_SUM, "sum", 3, fuel=budget)


def test_identical_exec_stats_vs_both_engines():
    out = assert_identical(FIB, "fib", 10, fuel=100_000)
    # frames, max depth, max value stack all compared inside; sanity:
    assert out[3] > 100  # frames: fib(10) makes 177 calls


# ---------------------------------------------------------------------------
# engine selection + instance plumbing
# ---------------------------------------------------------------------------


def test_engines_tuple_contains_aot():
    assert ENGINES == ("threaded", "legacy", "aot")


def test_resolve_engine_aot_env(monkeypatch):
    monkeypatch.setenv("REPRO_WASM_ENGINE", "aot")
    assert resolve_engine() == "aot"
    assert resolve_engine("legacy") == "legacy"  # explicit arg wins


def test_instance_prepares_aot_code():
    raw = assemble(LOOP_SUM)
    inst = Instance(decode_module(raw), engine="aot")
    assert inst.engine == "aot"
    func = inst.store.funcs[inst.func_addrs[0]]
    assert isinstance(func.prepared, AotCode)
    assert inst.call("sum", 10) == 45


def test_capture_restore_roundtrip_on_aot():
    legacy, threaded, aot = three(COUNTER)
    for inst in (legacy, threaded, aot):
        inst.call("bump", 7)
        inst.call("bump", 35)
    snap = aot.capture_state()

    # aot -> aot
    raw = assemble(COUNTER)
    fresh = Instance(decode_module(raw), engine="aot")
    fresh.restore_state(snap)
    assert fresh.call("bump", 0) == 42
    # aot -> threaded and legacy -> aot cross-engine hops
    cross = Instance(decode_module(raw), engine="threaded")
    cross.restore_state(snap)
    assert cross.call("bump", 8) == 50
    back = Instance(decode_module(raw), engine="aot")
    back.restore_state(legacy.capture_state())
    assert back.call("bump", 8) == 50


def test_plugin_host_checkpoint_restore_under_aot(monkeypatch):
    monkeypatch.setenv("REPRO_WASM_ENGINE", "aot")
    from repro.abi import SchedulerPlugin
    from repro.experiments.fig5d import make_ues
    from repro.plugins import plugin_wasm

    plugin = SchedulerPlugin.load(plugin_wasm("pf"), name="pf-aot-ckpt")
    plugin.host.limits.fuel = 10_000_000
    ues = make_ues(4)
    plugin.schedule(52, ues, 0)
    snap = plugin.host.checkpoint()
    before = plugin.schedule(52, ues, 1).grants
    plugin.schedule(52, ues, 2)
    plugin.host.restore(snap)
    after = plugin.schedule(52, ues, 1).grants
    assert [g.__dict__ for g in after] == [g.__dict__ for g in before]


# ---------------------------------------------------------------------------
# dump / disasm listing
# ---------------------------------------------------------------------------


def test_dump_aot_shows_wasm_and_python():
    raw = assemble(LOOP_SUM)
    text = dump_aot(raw)
    assert 'func 0 (export "sum"): ' in text
    assert ";; wasm body" in text
    assert ";; generated python (unfueled)" in text
    assert "def _wfn(frame, args):" in text
    assert "i32.add" in text
    fueled = dump_aot(raw, fueled=True)
    assert ";; generated python (fueled)" in fueled
    assert "FuelExhausted" in fueled
    assert "FuelExhausted" not in text


def test_generated_source_has_no_fuel_in_unfueled_variant():
    raw = assemble(FIB)
    module = decode_module(raw)
    acode = aot_for(module, module.codes[0], module.func_type(0))
    assert "fuel" not in acode.source
    assert "frame.fuel = fuel" in acode.source_fueled
    # memoized per Code object
    assert aot_for(module, module.codes[0], module.func_type(0)) is acode


# ---------------------------------------------------------------------------
# code cache: aot entries, LRU bound, eviction counters
# ---------------------------------------------------------------------------


def test_codecache_shares_aot_across_decodes():
    raw = assemble('(module (func (export "f") (result i32) (i32.const 3)))')
    cache_clear()
    m1, m2 = decode_module(raw), decode_module(raw)
    a1 = compiled_bodies(m1, "aot")
    a2 = compiled_bodies(m2, "aot")
    assert a1[0] is a2[0]
    # aot artifacts never collide with the other engines' entries
    assert compiled_bodies(m1, "threaded")[0] is not a1[0]
    assert compiled_bodies(m1, "legacy")[0] is not a1[0]


def test_codecache_lru_eviction_and_counters(monkeypatch):
    monkeypatch.setenv("REPRO_WASM_CODECACHE_CAP", "2")
    assert cache_capacity() == 2
    cache_clear()
    obs.enable()
    try:
        evictions = OBS.registry.counter("waran_wasm_codecache_evictions_total")
        e0 = evictions.value(engine="aot")
        raws = [
            assemble(f'(module (func (export "f") (result i32) (i32.const {k})))')
            for k in range(3)
        ]
        compiled_bodies(decode_module(raws[0]), "aot")
        compiled_bodies(decode_module(raws[1]), "aot")
        # touch 0 so it is most-recently-used, then insert 2: 1 must go
        kept = compiled_bodies(decode_module(raws[0]), "aot")
        compiled_bodies(decode_module(raws[2]), "aot")
        assert evictions.value(engine="aot") == e0 + 1
        assert cache_stats()["entries"] == 2.0
        # 0 survived the eviction (LRU evicts 1), 1 recompiles fresh
        assert compiled_bodies(decode_module(raws[0]), "aot")[0] is kept[0]
        assert cache_stats()["evictions"] >= 1.0
    finally:
        obs.disable()
        cache_clear()


def test_codecache_cap_zero_is_unbounded(monkeypatch):
    monkeypatch.setenv("REPRO_WASM_CODECACHE_CAP", "0")
    assert cache_capacity() == 0
    cache_clear()
    raws = [
        assemble(f'(module (func (export "f") (result i32) (i32.const {k})))')
        for k in range(5)
    ]
    for raw in raws:
        compiled_bodies(decode_module(raw), "aot")
    assert cache_stats()["entries"] == 5.0
    cache_clear()


@pytest.mark.parametrize("engine", ["threaded", "aot"])
def test_fig5b_hot_swap_keeps_hit_rate(engine):
    """Satellite 3: Fig-5b-style hot swaps stay >=90% cache hits per tier."""
    from repro.abi import SchedulerPlugin
    from repro.plugins import plugin_wasm

    os.environ["REPRO_WASM_ENGINE"] = engine
    cache_clear()
    obs.enable()
    try:
        hits = OBS.registry.counter("waran_wasm_codecache_hits_total")
        misses = OBS.registry.counter("waran_wasm_codecache_misses_total")
        h0, m0 = hits.value(engine=engine), misses.value(engine=engine)
        plugin = SchedulerPlugin.load(plugin_wasm("mt"), name=f"swap-{engine}")
        binaries = [plugin_wasm("pf"), plugin_wasm("rr"), plugin_wasm("mt")]
        for i in range(30):  # ten full MT -> PF -> RR swap cycles
            plugin.swap(binaries[i % 3])
        dh = hits.value(engine=engine) - h0
        dm = misses.value(engine=engine) - m0
        assert dh + dm > 0
        hit_rate = dh / (dh + dm)
        assert hit_rate >= 0.90, f"{engine}: hit rate {hit_rate:.1%} < 90%"
    finally:
        os.environ.pop("REPRO_WASM_ENGINE", None)
        obs.disable()


# ---------------------------------------------------------------------------
# fuzz oracle integration: the three-way differential runs aot legs
# ---------------------------------------------------------------------------


def test_oracle_runs_aot_legs():
    from repro.fuzz.oracle import differential

    raw = assemble(COUNTER)
    result = differential(raw, [("bump", (5,)), ("bump", (6,)), ("bump", (7,))])
    assert result.ok, result.reason
    assert "aot" in result.legs
    assert "restore-aot" in result.legs
    assert "restore-aot-to-threaded" in result.legs
    assert "restore-legacy-to-aot" in result.legs
