"""Decoder/encoder tests: round-trips, malformed input, fuzz safety."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wasm import decode_module, encode_module, validate_module
from repro.wasm.traps import DecodeError, WasmError
from repro.wasm.wat import assemble, parse_module

SAMPLE = """
(module
  (import "env" "host" (func $host (param i32) (result i32)))
  (memory (export "memory") 2 4)
  (global $g (mut i64) (i64.const -7))
  (table 3 funcref)
  (data (i32.const 4) "abc\\00def")
  (func $id (param i32) (result i32) (local.get 0))
  (func $pi (result f64) (f64.const 3.14159))
  (func (export "run") (param i32 i32) (result i32) (local f64 i32)
    (local.set 2 (f64.const 1.5))
    (i32.add (local.get 0) (call $id (local.get 1))))
  (elem (i32.const 0) $id $pi)
)
"""


class TestRoundTrip:
    def test_sample_roundtrips_structurally(self):
        mod1 = parse_module(SAMPLE)
        raw = encode_module(mod1)
        mod2 = decode_module(raw)
        assert mod2.types == mod1.types
        assert mod2.imports == mod1.imports
        assert mod2.funcs == mod1.funcs
        assert mod2.mems == mod1.mems
        assert mod2.globals == mod1.globals
        assert mod2.exports == mod1.exports
        assert mod2.codes == mod1.codes
        assert mod2.datas == mod1.datas
        assert mod2.elems == mod1.elems

    def test_reencode_is_identical(self):
        raw1 = assemble(SAMPLE)
        raw2 = encode_module(decode_module(raw1))
        assert raw1 == raw2

    def test_validates(self):
        validate_module(decode_module(assemble(SAMPLE)))


class TestMalformed:
    def test_empty(self):
        with pytest.raises(DecodeError):
            decode_module(b"")

    def test_bad_magic(self):
        with pytest.raises(DecodeError, match="magic"):
            decode_module(b"\x00ASM\x01\x00\x00\x00")

    def test_bad_version(self):
        with pytest.raises(DecodeError, match="version"):
            decode_module(b"\x00asm\x02\x00\x00\x00")

    def test_truncated_section(self):
        raw = assemble(SAMPLE)
        with pytest.raises(DecodeError):
            decode_module(raw[:-3])

    def test_section_out_of_order(self):
        # type section (1) after function section (3)
        raw = (
            b"\x00asm\x01\x00\x00\x00"
            + b"\x03\x02\x01\x00"  # func section declaring 1 func of type 0
            + b"\x01\x04\x01\x60\x00\x00"  # type section after it
        )
        with pytest.raises(DecodeError, match="out of order"):
            decode_module(raw)

    def test_func_code_count_mismatch(self):
        raw = (
            b"\x00asm\x01\x00\x00\x00"
            + b"\x01\x04\x01\x60\x00\x00"  # one type () -> ()
            + b"\x03\x02\x01\x00"  # one declared function
            # no code section
        )
        with pytest.raises(DecodeError, match="bodies"):
            decode_module(raw)

    def test_unknown_section_id(self):
        raw = b"\x00asm\x01\x00\x00\x00" + b"\x0c\x00"
        with pytest.raises(DecodeError, match="unknown section"):
            decode_module(raw)

    def test_duplicate_export_name(self):
        wat = """(module
          (func $a (export "x") (result i32) (i32.const 1))
          (func $b (export "x") (result i32) (i32.const 2)))"""
        with pytest.raises(DecodeError, match="duplicate export"):
            decode_module(assemble(wat))

    def test_trailing_garbage_in_section(self):
        # valid empty type section plus a stray byte inside its payload
        raw = b"\x00asm\x01\x00\x00\x00" + b"\x01\x02\x00\xff"
        with pytest.raises(DecodeError, match="trailing"):
            decode_module(raw)

    @given(st.binary(max_size=64))
    def test_fuzz_small_inputs_never_crash(self, data):
        """Arbitrary bytes must raise DecodeError (or decode), never crash."""
        try:
            decode_module(data)
        except WasmError:
            pass

    @given(st.binary(min_size=8, max_size=256))
    def test_fuzz_with_valid_header(self, payload):
        data = b"\x00asm\x01\x00\x00\x00" + payload
        try:
            decode_module(data)
        except WasmError:
            pass


class TestCustomSections:
    def test_custom_section_preserved(self):
        mod = parse_module("(module)")
        mod.customs.append(("name", b"\x01\x02"))
        raw = encode_module(mod)
        mod2 = decode_module(raw)
        assert mod2.customs == [("name", b"\x01\x02")]

    def test_custom_section_anywhere(self):
        # custom section between two ordered sections is legal
        type_sec = b"\x01\x04\x01\x60\x00\x00"
        custom = b"\x00\x03\x01x\xff"
        raw = b"\x00asm\x01\x00\x00\x00" + type_sec + custom
        mod = decode_module(raw)
        assert mod.customs == [("x", b"\xff")]
