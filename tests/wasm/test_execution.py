"""End-to-end execution tests: WAT -> binary -> decode -> validate -> run."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wasm import Instance, Store, decode_module
from repro.wasm.traps import FuelExhausted, StackExhausted, Trap
from repro.wasm.wat import assemble


def run(wat: str, func: str, *args, fuel=None, imports=None):
    inst = Instance(decode_module(assemble(wat)), imports=imports)
    return inst.call(func, *args, fuel=fuel)


def make(wat: str, imports=None) -> Instance:
    return Instance(decode_module(assemble(wat)), imports=imports)


ADD = """
(module
  (func (export "add") (param i32 i32) (result i32)
    (i32.add (local.get 0) (local.get 1))))
"""


class TestArithmetic:
    def test_add(self):
        assert run(ADD, "add", 2, 3) == 5

    def test_add_wraps(self):
        assert run(ADD, "add", 0x7FFFFFFF, 1) == -(1 << 31)

    def test_sub_negative_result(self):
        wat = """(module (func (export "f") (result i32)
                   (i32.sub (i32.const 3) (i32.const 10))))"""
        assert run(wat, "f") == -7

    def test_mul_i64(self):
        wat = """(module (func (export "f") (param i64 i64) (result i64)
                   (i64.mul (local.get 0) (local.get 1))))"""
        assert run(wat, "f", 1 << 40, 3) == 3 << 40

    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3)],
    )
    def test_div_s_truncates_toward_zero(self, a, b, expected):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.div_s (local.get 0) (local.get 1))))"""
        assert run(wat, "f", a, b) == expected

    def test_div_by_zero_traps(self):
        wat = """(module (func (export "f") (param i32) (result i32)
                   (i32.div_u (local.get 0) (i32.const 0))))"""
        with pytest.raises(Trap) as exc:
            run(wat, "f", 1)
        assert exc.value.code == "div0"

    def test_div_s_overflow_traps(self):
        wat = """(module (func (export "f") (result i32)
                   (i32.div_s (i32.const -2147483648) (i32.const -1))))"""
        with pytest.raises(Trap) as exc:
            run(wat, "f")
        assert exc.value.code == "overflow"

    @pytest.mark.parametrize(
        "a,b,expected", [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)]
    )
    def test_rem_s_sign_follows_dividend(self, a, b, expected):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.rem_s (local.get 0) (local.get 1))))"""
        assert run(wat, "f", a, b) == expected

    def test_shr_s_arithmetic(self):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.shr_s (local.get 0) (local.get 1))))"""
        assert run(wat, "f", -8, 1) == -4

    def test_shr_u_logical(self):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.shr_u (local.get 0) (local.get 1))))"""
        assert run(wat, "f", -8, 1) == 0x7FFFFFFC

    def test_shift_count_wraps_mod_32(self):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.shl (local.get 0) (local.get 1))))"""
        assert run(wat, "f", 1, 33) == 2

    def test_rotl(self):
        wat = """(module (func (export "f") (param i32 i32) (result i32)
                   (i32.rotl (local.get 0) (local.get 1))))"""
        assert run(wat, "f", 0x80000001, 1) == 3

    def test_clz_ctz_popcnt(self):
        wat = """(module
          (func (export "clz") (param i32) (result i32) (i32.clz (local.get 0)))
          (func (export "ctz") (param i32) (result i32) (i32.ctz (local.get 0)))
          (func (export "pop") (param i32) (result i32) (i32.popcnt (local.get 0))))"""
        inst = make(wat)
        assert inst.call("clz", 1) == 31
        assert inst.call("clz", 0) == 32
        assert inst.call("ctz", 8) == 3
        assert inst.call("ctz", 0) == 32
        assert inst.call("pop", 0xFF) == 8

    @given(st.integers(-(1 << 31), (1 << 31) - 1), st.integers(-(1 << 31), (1 << 31) - 1))
    def test_add_matches_python_semantics(self, a, b):
        result = run(ADD, "add", a, b)
        expected = (a + b + (1 << 31)) % (1 << 32) - (1 << 31)
        assert result == expected


class TestFloats:
    def test_f64_add(self):
        wat = """(module (func (export "f") (param f64 f64) (result f64)
                   (f64.add (local.get 0) (local.get 1))))"""
        assert run(wat, "f", 1.5, 2.25) == 3.75

    def test_f32_rounds_to_single_precision(self):
        wat = """(module (func (export "f") (param f32) (result f32)
                   (f32.add (local.get 0) (f32.const 1.0))))"""
        # 0.1 is not representable in f32; result must be the f32 rounding
        result = run(wat, "f", 0.1)
        assert result != 1.1
        assert abs(result - 1.1) < 1e-6

    def test_f64_div_by_zero_is_inf(self):
        wat = """(module (func (export "f") (param f64) (result f64)
                   (f64.div (local.get 0) (f64.const 0.0))))"""
        assert run(wat, "f", 1.0) == math.inf
        assert run(wat, "f", -1.0) == -math.inf

    def test_f64_zero_div_zero_is_nan(self):
        wat = """(module (func (export "f") (result f64)
                   (f64.div (f64.const 0.0) (f64.const 0.0))))"""
        assert math.isnan(run(wat, "f"))

    def test_sqrt(self):
        wat = """(module (func (export "f") (param f64) (result f64)
                   (f64.sqrt (local.get 0))))"""
        assert run(wat, "f", 9.0) == 3.0
        assert math.isnan(run(wat, "f", -1.0))

    def test_min_nan_propagates(self):
        wat = """(module (func (export "f") (param f64 f64) (result f64)
                   (f64.min (local.get 0) (local.get 1))))"""
        assert math.isnan(run(wat, "f", math.nan, 1.0))

    def test_nearest_half_to_even(self):
        wat = """(module (func (export "f") (param f64) (result f64)
                   (f64.nearest (local.get 0))))"""
        assert run(wat, "f", 2.5) == 2.0
        assert run(wat, "f", 3.5) == 4.0
        assert run(wat, "f", -2.5) == -2.0

    def test_trunc_conversion_traps_on_nan(self):
        wat = """(module (func (export "f") (param f64) (result i32)
                   (i32.trunc_f64_s (local.get 0))))"""
        with pytest.raises(Trap):
            run(wat, "f", math.nan)

    def test_trunc_conversion_traps_on_overflow(self):
        wat = """(module (func (export "f") (param f64) (result i32)
                   (i32.trunc_f64_s (local.get 0))))"""
        with pytest.raises(Trap):
            run(wat, "f", 3e10)
        assert run(wat, "f", 2147483647.0) == 2147483647

    def test_convert_u(self):
        wat = """(module (func (export "f") (param i32) (result f64)
                   (f64.convert_i32_u (local.get 0))))"""
        assert run(wat, "f", -1) == 4294967295.0

    def test_reinterpret_roundtrip(self):
        wat = """(module (func (export "f") (param f64) (result f64)
                   (f64.reinterpret_i64 (i64.reinterpret_f64 (local.get 0)))))"""
        assert run(wat, "f", 3.14159) == 3.14159


class TestControlFlow:
    def test_if_else(self):
        wat = """(module (func (export "f") (param i32) (result i32)
          (if (result i32) (local.get 0)
            (then (i32.const 10))
            (else (i32.const 20)))))"""
        assert run(wat, "f", 1) == 10
        assert run(wat, "f", 0) == 20

    def test_if_without_else(self):
        wat = """(module (func (export "f") (param i32) (result i32) (local $r i32)
          (local.set $r (i32.const 1))
          (if (local.get 0) (then (local.set $r (i32.const 99))))
          (local.get $r)))"""
        assert run(wat, "f", 1) == 99
        assert run(wat, "f", 0) == 1

    def test_loop_sum_1_to_n(self):
        wat = """(module (func (export "sum") (param $n i32) (result i32)
          (local $i i32) (local $acc i32)
          (block $exit
            (loop $top
              (br_if $exit (i32.gt_s (local.get $i) (local.get $n)))
              (local.set $acc (i32.add (local.get $acc) (local.get $i)))
              (local.set $i (i32.add (local.get $i) (i32.const 1)))
              (br $top)))
          (local.get $acc)))"""
        assert run(wat, "sum", 10) == 55
        assert run(wat, "sum", 0) == 0
        assert run(wat, "sum", 100) == 5050

    def test_nested_blocks_br_outer(self):
        wat = """(module (func (export "f") (result i32) (local $r i32)
          (block $outer
            (block $inner
              (local.set $r (i32.const 1))
              (br $outer)
              )
            (local.set $r (i32.const 2)))
          (local.get $r)))"""
        assert run(wat, "f") == 1

    def test_br_table(self):
        wat = """(module (func (export "f") (param i32) (result i32) (local $r i32)
          (block $a (block $b (block $c
            (br_table $a $b $c (local.get 0)))
            (return (i32.const 30)))
            (return (i32.const 20)))
          (i32.const 10)))"""
        assert run(wat, "f", 0) == 10
        assert run(wat, "f", 1) == 20
        assert run(wat, "f", 2) == 30
        assert run(wat, "f", 99) == 30  # default = last label

    def test_return_early(self):
        wat = """(module (func (export "f") (param i32) (result i32)
          (if (local.get 0) (then (return (i32.const 1))))
          (i32.const 0)))"""
        assert run(wat, "f", 5) == 1
        assert run(wat, "f", 0) == 0

    def test_unreachable_traps(self):
        wat = """(module (func (export "f") unreachable))"""
        with pytest.raises(Trap) as exc:
            run(wat, "f")
        assert exc.value.code == "unreachable"

    def test_select(self):
        wat = """(module (func (export "f") (param i32) (result i32)
          (select (i32.const 7) (i32.const 8) (local.get 0))))"""
        assert run(wat, "f", 1) == 7
        assert run(wat, "f", 0) == 8

    def test_block_result_value(self):
        wat = """(module (func (export "f") (result i32)
          (block (result i32) (i32.const 42))))"""
        assert run(wat, "f") == 42

    def test_br_with_value_from_block(self):
        wat = """(module (func (export "f") (param i32) (result i32)
          (block $b (result i32)
            (if (local.get 0) (then (br $b (i32.const 1) )))
            (i32.const 2))))"""
        assert run(wat, "f", 1) == 1
        assert run(wat, "f", 0) == 2


class TestCalls:
    def test_direct_call(self):
        wat = """(module
          (func $double (param i32) (result i32)
            (i32.mul (local.get 0) (i32.const 2)))
          (func (export "quad") (param i32) (result i32)
            (call $double (call $double (local.get 0)))))"""
        assert run(wat, "quad", 3) == 12

    def test_recursion_factorial(self):
        wat = """(module
          (func $fact (export "fact") (param i32) (result i32)
            (if (result i32) (i32.le_s (local.get 0) (i32.const 1))
              (then (i32.const 1))
              (else (i32.mul (local.get 0)
                      (call $fact (i32.sub (local.get 0) (i32.const 1))))))))"""
        assert run(wat, "fact", 10) == 3628800

    def test_infinite_recursion_exhausts_stack(self):
        wat = """(module (func $f (export "f") (call $f)))"""
        with pytest.raises(StackExhausted):
            run(wat, "f")

    def test_call_indirect(self):
        wat = """(module
          (table 2 funcref)
          (func $a (result i32) (i32.const 11))
          (func $b (result i32) (i32.const 22))
          (elem (i32.const 0) $a $b)
          (func (export "pick") (param i32) (result i32)
            (call_indirect (type 0) (local.get 0))))"""
        # type 0 is (result i32) because $a/$b intern it first
        assert run(wat, "pick", 0) == 11
        assert run(wat, "pick", 1) == 22

    def test_call_indirect_oob_traps(self):
        wat = """(module
          (table 1 funcref)
          (func $a (result i32) (i32.const 1))
          (elem (i32.const 0) $a)
          (func (export "pick") (param i32) (result i32)
            (call_indirect (type 0) (local.get 0))))"""
        with pytest.raises(Trap) as exc:
            run(wat, "pick", 5)
        assert exc.value.code == "table_oob"

    def test_call_indirect_signature_mismatch_traps(self):
        wat = """(module
          (table 1 funcref)
          (func $a (param i32) (result i32) (local.get 0))
          (elem (i32.const 0) $a)
          (func (export "f") (result i32)
            (call_indirect (type 1) (i32.const 0))))"""
        # type 1 is () -> i32 (f's own type) -- mismatch with $a's (i32) -> i32
        with pytest.raises(Trap) as exc:
            run(wat, "f")
        assert exc.value.code == "sig"


class TestHostFunctions:
    def test_host_import_called(self):
        calls = []

        from repro.wasm import HostFunc
        from repro.wasm.wtypes import FuncType, ValType

        def log(caller, value):
            calls.append(value)
            return value * 2

        wat = """(module
          (import "env" "log" (func $log (param i32) (result i32)))
          (func (export "f") (param i32) (result i32)
            (call $log (local.get 0))))"""
        ft = FuncType((ValType.I32,), (ValType.I32,))
        inst = make(wat, imports={"env": {"log": HostFunc(ft, log, "log")}})
        assert inst.call("f", 21) == 42
        assert calls == [21]

    def test_host_can_read_plugin_memory(self):
        from repro.wasm import HostFunc
        from repro.wasm.wtypes import FuncType, ValType

        seen = {}

        def peek(caller, addr, length):
            seen["bytes"] = caller.memory.read(addr, length)

        wat = """(module
          (import "env" "peek" (func $peek (param i32 i32)))
          (memory (export "memory") 1)
          (data (i32.const 16) "hello")
          (func (export "f") (call $peek (i32.const 16) (i32.const 5))))"""
        ft = FuncType((ValType.I32, ValType.I32), ())
        inst = make(wat, imports={"env": {"peek": HostFunc(ft, peek, "peek")}})
        inst.call("f")
        assert seen["bytes"] == b"hello"


class TestFuel:
    def test_infinite_loop_exhausts_fuel(self):
        wat = """(module (func (export "spin") (loop $l (br $l))))"""
        with pytest.raises(FuelExhausted):
            run(wat, "spin", fuel=10_000)

    def test_enough_fuel_completes(self):
        wat = """(module (func (export "sum") (param $n i32) (result i32)
          (local $i i32) (local $acc i32)
          (block $exit (loop $top
            (br_if $exit (i32.ge_s (local.get $i) (local.get $n)))
            (local.set $acc (i32.add (local.get $acc) (local.get $i)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $top)))
          (local.get $acc)))"""
        assert run(wat, "sum", 100, fuel=100_000) == 4950

    def test_fuel_none_disables_metering(self):
        assert run(ADD, "add", 1, 2, fuel=None) == 3


class TestGlobalsAndMemory:
    def test_global_get_set(self):
        wat = """(module
          (global $g (mut i32) (i32.const 5))
          (func (export "bump") (result i32)
            (global.set $g (i32.add (global.get $g) (i32.const 1)))
            (global.get $g)))"""
        inst = make(wat)
        assert inst.call("bump") == 6
        assert inst.call("bump") == 7

    def test_memory_store_load(self):
        wat = """(module (memory 1)
          (func (export "f") (param i32 i32) (result i32)
            (i32.store (local.get 0) (local.get 1))
            (i32.load (local.get 0))))"""
        assert run(wat, "f", 100, 0xDEAD) == 0xDEAD

    def test_load8_sign_extension(self):
        wat = """(module (memory 1)
          (func (export "f") (result i32)
            (i32.store8 (i32.const 0) (i32.const 0xff))
            (i32.load8_s (i32.const 0))))"""
        assert run(wat, "f") == -1

    def test_load8_unsigned(self):
        wat = """(module (memory 1)
          (func (export "f") (result i32)
            (i32.store8 (i32.const 0) (i32.const 0xff))
            (i32.load8_u (i32.const 0))))"""
        assert run(wat, "f") == 255

    def test_oob_load_traps(self):
        wat = """(module (memory 1)
          (func (export "f") (param i32) (result i32)
            (i32.load (local.get 0))))"""
        with pytest.raises(Trap) as exc:
            run(wat, "f", 65536)
        assert exc.value.code == "oob"

    def test_oob_store_with_offset_traps(self):
        wat = """(module (memory 1)
          (func (export "f") (param i32)
            (i32.store offset=65534 (local.get 0) (i32.const 1))))"""
        with pytest.raises(Trap):
            run(wat, "f", 4)

    def test_memory_grow_and_size(self):
        wat = """(module (memory 1 3)
          (func (export "grow") (param i32) (result i32)
            (memory.grow (local.get 0)))
          (func (export "size") (result i32) memory.size))"""
        inst = make(wat)
        assert inst.call("size") == 1
        assert inst.call("grow", 1) == 1
        assert inst.call("size") == 2
        assert inst.call("grow", 5) == -1  # beyond max
        assert inst.call("size") == 2

    def test_data_segment_initialisation(self):
        wat = """(module (memory 1)
          (data (i32.const 8) "\\01\\02\\03")
          (func (export "f") (result i32) (i32.load8_u (i32.const 9))))"""
        assert run(wat, "f") == 2

    def test_f64_memory_roundtrip(self):
        wat = """(module (memory 1)
          (func (export "f") (param f64) (result f64)
            (f64.store (i32.const 0) (local.get 0))
            (f64.load (i32.const 0))))"""
        assert run(wat, "f", -2.5e300) == -2.5e300


class TestFuelAccounting:
    def test_fuel_shared_across_calls_in_one_budget(self):
        """The plugin-host pattern: alloc consumes from run's budget."""
        wat = """(module
          (func (export "a") (result i32) (i32.const 1))
          (func (export "b") (result i32) (i32.const 2)))"""
        inst = make(wat)
        inst.call("a", fuel=100)
        remaining_after_a = inst.store.fuel
        assert remaining_after_a < 100
        inst.call("b", fuel="unset")  # continue on the same budget
        assert inst.store.fuel < remaining_after_a

    def test_fuel_counts_nested_calls(self):
        wat = """(module
          (func $leaf (result i32) (i32.const 1))
          (func (export "deep") (result i32)
            (i32.add (call $leaf) (call $leaf))))"""
        inst = make(wat)
        inst.call("deep", fuel=1_000)
        deep_cost = 1_000 - inst.store.fuel
        inst2 = make(wat)
        inst2.call("deep", fuel=1_000_000)
        assert 1_000_000 - inst2.store.fuel == deep_cost  # deterministic

    def test_fuel_exact_for_known_program(self):
        # body: const, const, add, end = 4 instructions
        wat = """(module (func (export "f") (result i32)
          (i32.add (i32.const 1) (i32.const 2))))"""
        inst = make(wat)
        inst.call("f", fuel=100)
        assert 100 - inst.store.fuel == 4

    def test_exhaustion_leaves_zero_fuel(self):
        wat = """(module (func (export "spin") (loop $l (br $l))))"""
        inst = make(wat)
        with pytest.raises(FuelExhausted):
            inst.call("spin", fuel=50)
        assert inst.store.fuel == 0

    def test_max_call_depth_configurable(self):
        from repro.wasm import Store

        wat = "(module (func $f (export \"f\") (call $f)))"
        inst = Instance(decode_module(assemble(wat)), store=Store(max_call_depth=10))
        with pytest.raises(StackExhausted) as exc:
            inst.call("f")
        assert exc.value.depth == 11
