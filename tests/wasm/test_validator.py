"""Validator tests: ill-typed modules must be rejected before execution."""

import pytest

from repro.wasm import decode_module, validate_module
from repro.wasm.module import Code, Module
from repro.wasm.traps import ValidationError
from repro.wasm import opcodes as op
from repro.wasm.wat import parse_module
from repro.wasm.wtypes import FuncType, ValType


def check(wat: str):
    validate_module(parse_module(wat))


def reject(wat: str, match: str | None = None):
    with pytest.raises(ValidationError, match=match):
        check(wat)


class TestStackTyping:
    def test_valid_add(self):
        check("""(module (func (param i32 i32) (result i32)
                   (i32.add (local.get 0) (local.get 1))))""")

    def test_type_mismatch_f64_into_i32_add(self):
        reject(
            """(module (func (param i32 f64) (result i32)
                 (i32.add (local.get 0) (local.get 1))))""",
            match="type mismatch",
        )

    def test_stack_underflow(self):
        reject("(module (func (result i32) i32.add))", match="underflow|mismatch")

    def test_leftover_value(self):
        reject(
            "(module (func (i32.const 1)))", match="left on stack"
        )

    def test_missing_result(self):
        reject("(module (func (result i32) nop))", match="underflow|mismatch")

    def test_wrong_result_type(self):
        reject("(module (func (result i32) (f64.const 1.0)))", match="mismatch")


class TestLocalsGlobals:
    def test_unknown_local(self):
        reject("(module (func (result i32) (local.get 3)))", match="unknown local")

    def test_local_set_wrong_type(self):
        reject(
            """(module (func (param i32) (local $f f64)
                 (local.set $f (local.get 0))))""",
            match="mismatch",
        )

    def test_set_immutable_global(self):
        reject(
            """(module (global $g i32 (i32.const 1))
                 (func (global.set $g (i32.const 2))))""",
            match="immutable",
        )

    def test_unknown_global(self):
        reject("(module (func (result i32) (global.get 0)))", match="unknown global")


class TestControl:
    def test_br_unknown_depth(self):
        reject("(module (func (br 5)))", match="unknown label")

    def test_if_without_else_needing_value(self):
        reject(
            """(module (func (result i32)
                 (if (result i32) (i32.const 1) (then (i32.const 2)))))""",
            match="without else",
        )

    def test_br_table_mismatched_targets(self):
        reject(
            """(module (func (param i32) (result i32)
              (block $a (result i32)
                (block $b
                  (br_table $a $b (i32.const 1) (local.get 0)))
                (i32.const 0))))""",
        )

    def test_unreachable_code_is_permissive(self):
        # after unreachable, any stack shape is accepted
        check("""(module (func (result i32) unreachable i32.add))""")

    def test_branch_value_types(self):
        check("""(module (func (result i32)
          (block $b (result i32) (br $b (i32.const 3)))))""")


class TestCallsAndMemory:
    def test_call_unknown_function(self):
        mod = Module()
        mod.types.append(FuncType((), ()))
        mod.funcs.append(0)
        mod.codes.append(Code((), ((op.CALL, 9), (op.END, None))))
        with pytest.raises(ValidationError, match="unknown function"):
            validate_module(mod)

    def test_call_argument_mismatch(self):
        reject(
            """(module
              (func $f (param i32) (result i32) (local.get 0))
              (func (result i32) (call $f (f64.const 1.0))))""",
            match="mismatch",
        )

    def test_memory_op_without_memory(self):
        reject(
            "(module (func (result i32) (i32.load (i32.const 0))))",
            match="without a memory",
        )

    def test_alignment_too_large(self):
        mod = Module()
        mod.types.append(FuncType((), (ValType.I32,)))
        mod.funcs.append(0)
        mod.mems.append(__import__("repro.wasm.wtypes", fromlist=["Limits"]).Limits(1))
        mod.codes.append(
            Code(
                (),
                (
                    (op.I32_CONST, 0),
                    (op.I32_LOAD, (3, 0)),  # 2**3 = 8 > 4-byte access
                    (op.END, None),
                ),
            )
        )
        with pytest.raises(ValidationError, match="alignment"):
            validate_module(mod)

    def test_call_indirect_without_table(self):
        mod = Module()
        mod.types.append(FuncType((), ()))
        mod.funcs.append(0)
        mod.codes.append(
            Code((), ((op.I32_CONST, 0), (op.CALL_INDIRECT, 0), (op.END, None)))
        )
        with pytest.raises(ValidationError, match="table"):
            validate_module(mod)


class TestModuleLevel:
    def test_export_index_out_of_range(self):
        mod = parse_module("(module (func))")
        from repro.wasm.module import Export

        mod.exports.append(Export("bad", "func", 5))
        with pytest.raises(ValidationError, match="out of range"):
            validate_module(mod)

    def test_start_with_params_rejected(self):
        mod = parse_module("(module (func $s (param i32) drop))")
        mod.start = 0
        with pytest.raises(ValidationError, match="start"):
            validate_module(mod)

    def test_global_init_must_be_const(self):
        mod = parse_module("(module)")
        from repro.wasm.module import Global
        from repro.wasm.wtypes import GlobalType

        mod.globals.append(
            Global(
                GlobalType(ValType.I32, False),
                ((op.LOCAL_GET, 0), (op.END, None)),
            )
        )
        with pytest.raises(ValidationError, match="constant"):
            validate_module(mod)

    def test_two_memories_rejected(self):
        mod = parse_module("(module (memory 1))")
        from repro.wasm.wtypes import Limits

        mod.mems.append(Limits(1))
        with pytest.raises(ValidationError, match="one memory"):
            validate_module(mod)
