"""Mutation-mode tests: corrupted binaries never crash the host.

``classify_bytes`` must sort every byte string into the WasmError taxonomy
(or run it cleanly); an ``IndexError`` from the LEB reader or a
``MemoryError`` from an attacker-sized allocation is exactly the bug class
this mode exists to catch, surfaced as :class:`MutationCrash`.
"""

import random

import pytest

from repro.fuzz.gen import ModuleGen
from repro.fuzz.mutate import (
    MAX_MUTANT_MEMORY_PAGES,
    classify_bytes,
    mutate_bytes,
)
from repro.fuzz.runner import _iteration_rng
from repro.wasm import decode_module, encode_module
from repro.wasm.wat import assemble
from repro.wasm.wtypes import Limits

KNOWN_CLASSES = {
    "ok",
    "diverged",
    "decode-error",
    "validation-error",
    "link-error",
    "skipped-imports",
    "skipped-huge",
}

N_SEEDS = 40


class TestClassification:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_mutants_classify_without_crashing(self, seed):
        rng = _iteration_rng(seed, 2)
        gm = ModuleGen(rng).generate()
        for _ in range(5):
            verdict = classify_bytes(mutate_bytes(rng, gm.wasm))
            assert verdict in KNOWN_CLASSES

    def test_pristine_module_is_ok(self):
        gm = ModuleGen(random.Random(4)).generate()
        assert classify_bytes(gm.wasm) == "ok"

    def test_empty_bytes_decode_error(self):
        assert classify_bytes(b"") == "decode-error"

    def test_bad_magic_decode_error(self):
        assert classify_bytes(b"\x01asm\x01\x00\x00\x00") == "decode-error"

    def test_truncated_module_decode_error(self):
        wasm = assemble('(module (func (export "f") (result i32) (i32.const 1)))')
        assert classify_bytes(wasm[: len(wasm) // 2]) == "decode-error"

    def test_garbage_suffix_classified(self):
        wasm = assemble('(module (func (export "f") (result i32) (i32.const 1)))')
        assert classify_bytes(wasm + b"\xff\xff\xff") in KNOWN_CLASSES

    def test_huge_memory_declaration_is_skipped_not_allocated(self):
        module = decode_module(
            assemble('(module (memory 1) (func (export "f")))')
        )
        module.mems = [Limits(MAX_MUTANT_MEMORY_PAGES + 1, None)]
        assert classify_bytes(encode_module(module)) == "skipped-huge"


class TestMutator:
    def test_deterministic_for_same_rng_state(self):
        wasm = ModuleGen(random.Random(0)).generate().wasm
        a = mutate_bytes(random.Random(9), wasm)
        b = mutate_bytes(random.Random(9), wasm)
        assert a == b

    def test_usually_changes_the_bytes(self):
        wasm = ModuleGen(random.Random(0)).generate().wasm
        rng = random.Random(1)
        changed = sum(mutate_bytes(rng, wasm) != wasm for _ in range(20))
        assert changed >= 18
