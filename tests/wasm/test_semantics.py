"""Differential property tests: Wasm numeric semantics vs a Python oracle.

For each operator class, hypothesis drives random operands through a
one-instruction Wasm function and checks the result against an
independently-written Python model of the spec semantics.
"""

import math
import struct

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.wasm import Instance, decode_module
from repro.wasm.traps import Trap
from repro.wasm.wat import assemble

i32s = st.integers(-(1 << 31), (1 << 31) - 1)
i64s = st.integers(-(1 << 63), (1 << 63) - 1)
f64s = st.floats(allow_nan=False, width=64)


def run1(op: str, ty: str, *args):
    params = " ".join([ty] * len(args))
    gets = " ".join(f"(local.get {i})" for i in range(len(args)))
    result_ty = "i32" if op.split(".")[1] in _CMP_NAMES or op.endswith("eqz") else ty
    wat = f"""(module (func (export "f") (param {params}) (result {result_ty})
      ({op} {gets})))"""
    return Instance(decode_module(assemble(wat))).call("f", *args)


_CMP_NAMES = {
    "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u",
    "lt", "gt", "le", "ge",
}


def wrap32(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - (1 << 32) if x >= 1 << 31 else x


def wrap64(x: int) -> int:
    x &= (1 << 64) - 1
    return x - (1 << 64) if x >= 1 << 63 else x


class TestI32Semantics:
    @given(i32s, i32s)
    @settings(max_examples=60, deadline=None)
    def test_add_sub_mul(self, a, b):
        assert run1("i32.add", "i32", a, b) == wrap32(a + b)
        assert run1("i32.sub", "i32", a, b) == wrap32(a - b)
        assert run1("i32.mul", "i32", a, b) == wrap32(a * b)

    @given(i32s, i32s)
    @settings(max_examples=60, deadline=None)
    def test_div_s(self, a, b):
        assume(b != 0)
        assume(not (a == -(1 << 31) and b == -1))
        # C-style truncating division
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert run1("i32.div_s", "i32", a, b) == expected

    @given(i32s, i32s)
    @settings(max_examples=60, deadline=None)
    def test_rem_s_identity(self, a, b):
        assume(b != 0)
        assume(not (a == -(1 << 31) and b == -1))
        q = run1("i32.div_s", "i32", a, b)
        r = run1("i32.rem_s", "i32", a, b)
        assert wrap32(q * b + r) == a

    @given(i32s, i32s)
    @settings(max_examples=60, deadline=None)
    def test_unsigned_compare(self, a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        assert run1("i32.lt_u", "i32", a, b) == int(ua < ub)
        assert run1("i32.ge_u", "i32", a, b) == int(ua >= ub)

    @given(i32s, st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_shifts(self, a, s):
        ua = a & 0xFFFFFFFF
        assert run1("i32.shl", "i32", a, s) == wrap32(ua << (s % 32))
        assert run1("i32.shr_u", "i32", a, s) == wrap32(ua >> (s % 32))
        assert run1("i32.shr_s", "i32", a, s) == wrap32(a >> (s % 32))

    @given(i32s, st.integers(0, 63))
    @settings(max_examples=40, deadline=None)
    def test_rotl_rotr_inverse(self, a, s):
        rotated = run1("i32.rotl", "i32", a, s)
        back = run1("i32.rotr", "i32", rotated, s)
        assert back == a

    @given(i32s)
    @settings(max_examples=40, deadline=None)
    def test_clz_ctz_popcnt(self, a):
        ua = a & 0xFFFFFFFF
        bits = format(ua, "032b")
        assert run1("i32.clz", "i32", a) == len(bits) - len(bits.lstrip("0"))
        assert run1("i32.ctz", "i32", a) == (
            32 if ua == 0 else len(bits) - len(bits.rstrip("0"))
        )
        assert run1("i32.popcnt", "i32", a) == bits.count("1")


class TestI64Semantics:
    @given(i64s, i64s)
    @settings(max_examples=50, deadline=None)
    def test_add_mul(self, a, b):
        assert run1("i64.add", "i64", a, b) == wrap64(a + b)
        assert run1("i64.mul", "i64", a, b) == wrap64(a * b)

    @given(i64s, i64s)
    @settings(max_examples=50, deadline=None)
    def test_div_u(self, a, b):
        assume(b != 0)
        ua, ub = a & ((1 << 64) - 1), b & ((1 << 64) - 1)
        assert run1("i64.div_u", "i64", a, b) == wrap64(ua // ub)

    @given(i64s)
    @settings(max_examples=40, deadline=None)
    def test_extend_wrap_roundtrip(self, a):
        wat = """(module (func (export "f") (param i64) (result i64)
          (i64.extend_i32_s (i32.wrap_i64 (local.get 0)))))"""
        inst = Instance(decode_module(assemble(wat)))
        assert inst.call("f", a) == wrap32(a)


class TestF64Semantics:
    @given(f64s, f64s)
    @settings(max_examples=60, deadline=None)
    def test_arith_matches_python(self, a, b):
        def same(x, y):
            return x == y or (math.isnan(x) and math.isnan(y))

        assert same(run1("f64.add", "f64", a, b), a + b)
        assert same(run1("f64.mul", "f64", a, b), a * b)
        if not (a == b == 0.0):  # Wasm min(-0, +0) differs from Python's
            assert same(run1("f64.min", "f64", a, b), min(a, b))

    @given(f64s)
    @settings(max_examples=60, deadline=None)
    def test_floor_ceil_trunc_nearest(self, a):
        assume(abs(a) < 1e300)
        assert run1("f64.floor", "f64", a) == math.floor(a) or a == 0
        assert run1("f64.ceil", "f64", a) == math.ceil(a) or a == 0
        assert run1("f64.trunc", "f64", a) == math.trunc(a) or a == 0

    @given(f64s)
    @settings(max_examples=60, deadline=None)
    def test_reinterpret_bit_exact(self, a):
        wat = """(module (func (export "f") (param f64) (result i64)
          (i64.reinterpret_f64 (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        expected = struct.unpack("<q", struct.pack("<d", a))[0]
        assert inst.call("f", a) == expected

    @given(st.floats(-2147483647, 2147483647, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_trunc_f64_s_matches_int_cast(self, a):
        wat = """(module (func (export "f") (param f64) (result i32)
          (i32.trunc_f64_s (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        assert inst.call("f", a) == int(a)

    @given(st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=40, deadline=None)
    def test_trunc_traps_exactly_when_out_of_range(self, a):
        wat = """(module (func (export "f") (param f64) (result i32)
          (i32.trunc_f64_s (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        in_range = (
            not math.isnan(a)
            and not math.isinf(a)
            and -(1 << 31) <= math.trunc(a) <= (1 << 31) - 1
        )
        if in_range:
            inst.call("f", a)
        else:
            with pytest.raises(Trap):
                inst.call("f", a)


class TestMemorySemantics:
    @given(st.integers(0, 65532), i32s)
    @settings(max_examples=50, deadline=None)
    def test_store_load_identity(self, addr, value):
        wat = """(module (memory 1)
          (func (export "f") (param i32 i32) (result i32)
            (i32.store (local.get 0) (local.get 1))
            (i32.load (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        assert inst.call("f", addr, value) == value

    @given(st.integers(0, 65535), st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_byte_granularity(self, addr, byte):
        wat = """(module (memory 1)
          (func (export "f") (param i32 i32) (result i32)
            (i32.store8 (local.get 0) (local.get 1))
            (i32.load8_u (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        assert inst.call("f", addr, byte) == byte

    @given(st.integers(65533, 1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_every_oob_address_traps(self, addr):
        wat = """(module (memory 1)
          (func (export "f") (param i32) (result i32)
            (i32.load (local.get 0))))"""
        inst = Instance(decode_module(assemble(wat)))
        with pytest.raises(Trap):
            inst.call("f", addr)
