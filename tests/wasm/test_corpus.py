"""Replay every corpus reproducer under every engine.

The corpus under ``tests/wasm/corpus/`` is the fuzzer's long-term memory:
each JSON file is a minimized module plus a call plan and the outcomes the
legacy (reference) engine produced when the case was saved.  Any engine
change that shifts an outcome — a value, a trap code — fails here first.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import check_case, corpus_paths, load_case
from repro.wasm import decode_module, encode_module
from repro.wasm.threaded import ENGINES

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = corpus_paths(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(CASES) >= 20, "corpus should ship with ~20 seed cases"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_replay(path, engine):
    case = load_case(path)
    problems = check_case(case, engine)
    assert problems == []


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_case_wellformed(path):
    case = load_case(path)
    assert case.name
    assert case.mode in ("diff", "classify")
    if case.mode == "diff":
        assert len(case.calls) == len(case.expect)
        # diff cases must be decodable; classify cases may be garbage bytes
        module = decode_module(case.wasm)
        assert encode_module(module) == encode_module(decode_module(encode_module(module)))
