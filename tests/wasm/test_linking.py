"""Instantiation and linking tests: imports, exports, cross-instance wiring."""

import pytest

from repro.wasm import HostFunc, Instance, Store, decode_module
from repro.wasm.instance import GlobalInstance, Table
from repro.wasm.memory import Memory
from repro.wasm.traps import LinkError
from repro.wasm.wat import assemble
from repro.wasm.wtypes import FuncType, GlobalType, Limits, ValType

I32 = ValType.I32


def make(wat: str, **kwargs) -> Instance:
    return Instance(decode_module(assemble(wat)), **kwargs)


class TestImportErrors:
    NEEDS_FUNC = """(module
      (import "env" "f" (func $f (param i32) (result i32)))
      (func (export "g") (result i32) (call $f (i32.const 1))))"""

    def test_missing_import(self):
        with pytest.raises(LinkError, match="missing import env.f"):
            make(self.NEEDS_FUNC)

    def test_signature_mismatch(self):
        wrong = HostFunc(FuncType((), (I32,)), lambda c: 0, "f")
        with pytest.raises(LinkError, match="signature"):
            make(self.NEEDS_FUNC, imports={"env": {"f": wrong}})

    def test_non_function_provided(self):
        with pytest.raises(LinkError, match="not a function"):
            make(self.NEEDS_FUNC, imports={"env": {"f": Memory(Limits(1))}})

    def test_imported_memory_too_small(self):
        wat = """(module (import "env" "mem" (memory 4))
                 (func (export "f") (result i32) memory.size))"""
        with pytest.raises(LinkError, match="too small"):
            make(wat, imports={"env": {"mem": Memory(Limits(1))}})

    def test_imported_memory_shared_state(self):
        mem = Memory(Limits(1))
        wat = """(module (import "env" "mem" (memory 1))
          (func (export "peek") (param i32) (result i32)
            (i32.load8_u (local.get 0))))"""
        inst = make(wat, imports={"env": {"mem": mem}})
        mem.write(5, b"\x2a")
        assert inst.call("peek", 5) == 42


class TestExports:
    def test_export_names(self):
        inst = make("""(module
          (memory (export "memory") 1)
          (global $g (export "counter") (mut i32) (i32.const 0))
          (func (export "f") (result i32) (i32.const 1)))""")
        assert inst.export_names() == ["counter", "f", "memory"]

    def test_get_export_kinds(self):
        inst = make("""(module
          (memory (export "memory") 1)
          (global $g (export "g") (mut i32) (i32.const 7))
          (func (export "f") (result i32) (i32.const 1)))""")
        assert isinstance(inst.get_export("memory"), Memory)
        assert isinstance(inst.get_export("g"), GlobalInstance)
        assert inst.get_export("g").value == 7
        assert inst.get_export("f")() == 1  # ExportedFunc is callable

    def test_unknown_export(self):
        inst = make("(module)")
        with pytest.raises(LinkError, match="no export"):
            inst.get_export("nope")

    def test_call_unknown_function(self):
        inst = make("(module (memory (export \"m\") 1))")
        with pytest.raises(LinkError, match="no exported function"):
            inst.call("m")

    def test_call_arity_checked(self):
        inst = make('(module (func (export "f") (param i32) (result i32) (local.get 0)))')
        with pytest.raises(TypeError, match="expects 1 args"):
            inst.call("f", 1, 2)


class TestCrossInstanceLinking:
    def test_export_feeds_import(self):
        """Module B imports a function exported by module A."""
        store = Store()
        a = Instance(
            decode_module(assemble(
                '(module (func (export "double") (param i32) (result i32) '
                "(i32.mul (local.get 0) (i32.const 2))))"
            )),
            store=store,
        )
        b = Instance(
            decode_module(assemble("""(module
              (import "a" "double" (func $d (param i32) (result i32)))
              (func (export "quad") (param i32) (result i32)
                (call $d (call $d (local.get 0)))))""")),
            imports={"a": {"double": a.get_export("double")}},
            store=store,
        )
        assert b.call("quad", 3) == 12

    def test_cross_instance_signature_checked(self):
        store = Store()
        a = Instance(
            decode_module(assemble(
                '(module (func (export "f") (result i32) (i32.const 1)))'
            )),
            store=store,
        )
        with pytest.raises(LinkError, match="signature"):
            Instance(
                decode_module(assemble("""(module
                  (import "a" "f" (func $f (param i32) (result i32)))
                  (func (export "g") (result i32) (call $f (i32.const 0))))""")),
                imports={"a": {"f": a.get_export("f")}},
                store=store,
            )


class TestSegmentsAtInstantiation:
    def test_data_segment_out_of_bounds(self):
        wat = '(module (memory 1) (data (i32.const 65534) "abcdef"))'
        with pytest.raises(LinkError, match="data segment"):
            make(wat)

    def test_elem_segment_out_of_bounds(self):
        wat = """(module (table 1 funcref)
          (func $f (result i32) (i32.const 1))
          (elem (i32.const 1) $f))"""
        with pytest.raises(LinkError, match="element segment"):
            make(wat)

    def test_global_import_initialises_data_offset(self):
        glob = GlobalInstance(GlobalType(I32, False), 8)
        wat = """(module
          (import "env" "base" (global i32))
          (memory 1)
          (data (global.get 0) "hi")
          (func (export "peek") (result i32) (i32.load8_u (i32.const 8))))"""
        # assembler lacks global-import sugar for this form; build by hand
        from repro.wasm.module import DataSegment, Import, Module
        from repro.wasm import opcodes as op
        from repro.wasm.wat import parse_module

        mod = parse_module("""(module (memory 1)
          (func (export "peek") (result i32) (i32.load8_u (i32.const 8))))""")
        mod.imports.append(Import("env", "base", "global", GlobalType(I32, False)))
        mod.datas.append(
            DataSegment(0, ((op.GLOBAL_GET, 0), (op.END, None)), b"hi")
        )
        inst = Instance(mod, imports={"env": {"base": glob}})
        assert inst.call("peek") == ord("h")


class TestIsolation:
    def test_two_instances_do_not_share_memory(self):
        wat = """(module (memory 1)
          (func (export "set") (param i32) (i32.store (i32.const 0) (local.get 0)))
          (func (export "get") (result i32) (i32.load (i32.const 0))))"""
        a = make(wat)
        b = make(wat)
        a.call("set", 111)
        b.call("set", 222)
        assert a.call("get") == 111
        assert b.call("get") == 222

    def test_two_instances_do_not_share_globals(self):
        wat = """(module (global $g (mut i32) (i32.const 0))
          (func (export "bump") (result i32)
            (global.set $g (i32.add (global.get $g) (i32.const 1)))
            (global.get $g)))"""
        a = make(wat)
        b = make(wat)
        a.call("bump")
        a.call("bump")
        assert b.call("bump") == 1
