"""WAT assembler tests: syntax coverage and error reporting."""

import pytest

from repro.wasm import Instance, decode_module, validate_module
from repro.wasm.wat import WatError, assemble, parse_module


def build(wat: str) -> Instance:
    return Instance(decode_module(assemble(wat)))


class TestSyntax:
    def test_module_wrapper_optional(self):
        a = assemble('(module (func (export "f") (result i32) (i32.const 1)))')
        b = assemble('(func (export "f") (result i32) (i32.const 1))')
        assert a == b

    def test_comments(self):
        inst = build("""
        (module
          ;; line comment
          (func (export "f") (result i32)
            (; block comment ;)
            (i32.const 7)))
        """)
        assert inst.call("f") == 7

    def test_named_params_and_locals(self):
        inst = build("""(module (func (export "f") (param $a i32) (param $b i32)
          (result i32) (local $t i32)
          (local.set $t (i32.add (local.get $a) (local.get $b)))
          (local.get $t)))""")
        assert inst.call("f", 3, 4) == 7

    def test_hex_and_underscore_literals(self):
        inst = build("""(module (func (export "f") (result i32)
          (i32.add (i32.const 0x10) (i32.const 1_000))))""")
        assert inst.call("f") == 1016

    def test_float_literals(self):
        inst = build("""(module (func (export "f") (result f64)
          (f64.add (f64.const 1.5e2) (f64.const -0.5))))""")
        assert inst.call("f") == 149.5

    def test_inf_literal(self):
        import math

        inst = build('(module (func (export "f") (result f64) (f64.const inf)))')
        assert math.isinf(inst.call("f"))

    def test_string_escapes_in_data(self):
        inst = build("""(module (memory 1)
          (data (i32.const 0) "a\\tb\\n\\5c\\"")
          (func (export "f") (param i32) (result i32)
            (i32.load8_u (local.get 0))))""")
        assert inst.call("f", 0) == ord("a")
        assert inst.call("f", 1) == 9  # \t
        assert inst.call("f", 3) == 10  # \n
        assert inst.call("f", 4) == 0x5C  # \5c
        assert inst.call("f", 5) == ord('"')

    def test_standalone_export_field(self):
        inst = build("""(module
          (func $f (result i32) (i32.const 9))
          (export "nine" (func $f)))""")
        assert inst.call("nine") == 9

    def test_global_export(self):
        module = parse_module("""(module
          (global $g (export "g") i32 (i32.const 4)))""")
        assert module.exports[0].kind == "global"

    def test_start_function(self):
        wat = """(module
          (global $ran (mut i32) (i32.const 0))
          (func $init (global.set $ran (i32.const 1)))
          (func (export "check") (result i32) (global.get $ran))
          (start $init))"""
        assert build(wat).call("check") == 1

    def test_memarg_align(self):
        inst = build("""(module (memory 1)
          (func (export "f") (result i32)
            (i32.store offset=4 align=4 (i32.const 0) (i32.const 5))
            (i32.load offset=4 (i32.const 0))))""")
        assert inst.call("f") == 5

    def test_import_field_form(self):
        from repro.wasm.instance import HostFunc
        from repro.wasm.wtypes import FuncType, ValType

        wat = """(module
          (import "env" "add" (func $add (param i32 i32) (result i32)))
          (func (export "f") (result i32) (call $add (i32.const 1) (i32.const 2))))"""
        inst = Instance(
            decode_module(assemble(wat)),
            imports={"env": {"add": HostFunc(
                FuncType((ValType.I32, ValType.I32), (ValType.I32,)),
                lambda caller, a, b: a + b, "add",
            )}},
        )
        assert inst.call("f") == 3


class TestErrors:
    @pytest.mark.parametrize(
        "wat,match",
        [
            ("(module (func (br $nope)))", "unknown label"),
            ("(module (func (local.get $nope)))", "unknown local"),
            ("(module (func (call $nope)))", "unknown function"),
            ("(module (func (global.get $nope)))", "unknown global"),
            ("(module (func (frob 1)))", "unknown instruction"),
            ("(module (func (if (i32.const 1))))", "then"),
            ("(module (bogus-field))", "unsupported module field"),
            ("(module (func", "unbalanced"),
            ("(module (func)) )", "unbalanced"),
        ],
    )
    def test_rejected(self, wat, match):
        with pytest.raises(WatError, match=match):
            assemble(wat)

    def test_assembled_modules_validate(self):
        """Everything the test corpus assembles must pass the validator."""
        corpus = [
            '(module (func (export "f") (result i32) (i32.const 1)))',
            """(module (memory 1) (table 2 funcref)
               (func $a (result i32) (i32.const 1))
               (elem (i32.const 0) $a $a)
               (func (export "f") (result i32)
                 (call_indirect (type 0) (i32.const 1))))""",
        ]
        for wat in corpus:
            validate_module(decode_module(assemble(wat)))
