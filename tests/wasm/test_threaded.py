"""Unit tests for the threaded-code engine (repro.wasm.threaded).

The differential suite in ``tests/test_engine_differential.py`` checks
whole plugins through the host; these tests pin the compiler itself:
fusion semantics, compile-time branch resolution, fuel identity at every
possible exhaustion point, the engine switch, and the code cache.
"""

import os

import pytest

from repro import obs
from repro.obs import OBS
from repro.wasm import Instance, decode_module
from repro.wasm.codecache import clear as cache_clear
from repro.wasm.codecache import compiled_bodies
from repro.wasm.interpreter import ExecStats
from repro.wasm.threaded import ThreadedCode, dump_threaded, resolve_engine
from repro.wasm.traps import Trap
from repro.wasm.wat import assemble


def both(source):
    raw = assemble(source)
    return (
        Instance(decode_module(raw), engine="legacy"),
        Instance(decode_module(raw), engine="threaded"),
    )


def call_outcome(inst, name, *args, fuel="unset"):
    """(kind, value-or-trap-code, fuel-left) for one call, any outcome."""
    try:
        value = inst.call(name, *args, fuel=fuel)
        return ("ok", value, inst.store.fuel)
    except Trap as exc:
        return ("trap", exc.code, inst.store.fuel)


def assert_identical(source, name, *args, fuel="unset"):
    legacy, threaded = both(source)
    expect = call_outcome(legacy, name, *args, fuel=fuel)
    got = call_outcome(threaded, name, *args, fuel=fuel)
    assert got == expect, f"{name}{args}: threaded {got} != legacy {expect}"
    return expect


# ---------------------------------------------------------------------------
# fusion patterns: every superinstruction shape, checked against legacy
# ---------------------------------------------------------------------------

FUSION_CASES = [
    # local.get local.get <binop> (+ local.set)
    (
        """(module (func (export "f") (param i32 i32) (result i32)
            (local i32)
            (local.set 2 (i32.add (local.get 0) (local.get 1)))
            (local.get 2)))""",
        [(7, 35), (-1, 1), (0x7FFFFFFF, 1)],
    ),
    # local.get <const> <binop> (+ local.set), const folding incl. masking
    (
        """(module (func (export "f") (param i32) (result i32)
            (i32.mul (local.get 0) (i32.const -3))))""",
        [(5,), (0,), (-7,)],
    ),
    # <const> <binop>
    (
        """(module (func (export "f") (param i32) (result i32)
            (local.get 0) (i32.const 13) (i32.xor)))""",
        [(0,), (255,)],
    ),
    # <cmp> br_if
    (
        """(module (func (export "f") (param i32) (result i32)
            (block (br_if 0 (i32.lt_s (local.get 0) (i32.const 10)))
              (return (i32.const 99)))
            (i32.const 1)))""",
        [(5,), (10,), (-1,)],
    ),
    # unop br_if (i32.eqz)
    (
        """(module (func (export "f") (param i32) (result i32)
            (block (br_if 0 (i32.eqz (local.get 0)))
              (return (i32.const 7)))
            (i32.const 42)))""",
        [(0,), (3,)],
    ),
    # local.set local.get -> tee
    (
        """(module (func (export "f") (param i32) (result i32)
            (local i32)
            (local.set 1 (local.get 0))
            (i32.add (local.get 1) (local.get 1))))""",
        [(21,)],
    ),
    # local.get <const> i32.add <load>: folded effective address
    (
        """(module (memory 1)
            (data (i32.const 100) "\\01\\02\\03\\04\\05\\06\\07\\08")
            (func (export "f") (param i32) (result i32)
              (i32.load offset=2 (i32.add (local.get 0) (i32.const 98)))))""",
        [(0,), (4,)],
    ),
    # local.get <load> (f64 flavour exercises the float emitters)
    (
        """(module (memory 1)
            (func (export "f") (param i32) (result f64)
              (f64.store (i32.const 8) (f64.const 2.5))
              (f64.load (local.get 0))))""",
        [(8,)],
    ),
    # <const> local.set
    (
        """(module (func (export "f") (result i32) (local i32)
            (local.set 0 (i32.const 77)) (local.get 0)))""",
        [()],
    ),
]


@pytest.mark.parametrize("source,argsets", FUSION_CASES)
def test_fused_patterns_match_legacy(source, argsets):
    for args in argsets:
        assert_identical(source, "f", *args)
        assert_identical(source, "f", *args, fuel=1_000_000)


def test_fusion_actually_happens():
    raw = assemble(
        """(module (func (export "f") (param i32 i32) (result i32)
            (i32.add (local.get 0) (local.get 1))))"""
    )
    module = decode_module(raw)
    (tcode,) = compiled_bodies(module, "threaded")
    assert isinstance(tcode, ThreadedCode)
    assert tcode.n_fused >= 1
    assert max(tcode.costs) >= 3  # local.get local.get i32.add in one slot


def test_fusion_skips_jump_targets():
    # the loop header's first instruction is a branch target: a fused
    # group must never swallow it into an interior position
    source = """(module (func (export "f") (param i32) (result i32)
        (local $i i32) (local $acc i32)
        (block $exit (loop $top
          (br_if $exit (i32.ge_s (local.get $i) (local.get 0)))
          (local.set $acc (i32.add (local.get $acc) (local.get $i)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $top)))
        (local.get $acc)))"""
    assert assert_identical(source, "f", 100) == ("ok", 4950, None)
    assert_identical(source, "f", 100, fuel=100_000)


# ---------------------------------------------------------------------------
# fuel identity at every exhaustion point
# ---------------------------------------------------------------------------

FUEL_SWEEP_MODULES = [
    """(module (func (export "f") (param i32) (result i32)
        (local $i i32) (local $acc i32)
        (block $exit (loop $top
          (br_if $exit (i32.ge_s (local.get $i) (local.get 0)))
          (local.set $acc (i32.add (local.get $acc) (local.get $i)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $top)))
        (local.get $acc)))""",
    """(module (func (export "f") (param i32) (result i32)
        (if (result i32) (i32.lt_s (local.get 0) (i32.const 3))
          (then (i32.mul (local.get 0) (i32.const 10)))
          (else (i32.sub (local.get 0) (i32.const 3))))))""",
    """(module (func $g (param i32) (result i32)
          (i32.add (local.get 0) (i32.const 1)))
        (func (export "f") (param i32) (result i32)
          (call $g (call $g (local.get 0)))))""",
]


@pytest.mark.parametrize("source", FUEL_SWEEP_MODULES)
@pytest.mark.parametrize("arg", [0, 2, 5])
def test_fuel_identity_at_every_budget(source, arg):
    """For every fuel budget from 0 up: identical outcome and fuel left.

    This is the strongest fuel-accounting check there is: a fused slot
    that charged at the wrong boundary would diverge at some budget.
    """
    legacy, threaded = both(source)
    full = call_outcome(legacy, "f", arg, fuel=10_000)
    assert full[0] == "ok"
    needed = 10_000 - full[2]
    for budget in range(0, needed + 2):
        expect = call_outcome(legacy, "f", arg, fuel=budget)
        got = call_outcome(threaded, "f", arg, fuel=budget)
        assert got == expect, f"budget={budget}: {got} != {expect}"


# ---------------------------------------------------------------------------
# traps and control flow
# ---------------------------------------------------------------------------

TRAP_SOURCES = [
    ('(module (func (export "f") (result i32) '
     "(i32.div_s (i32.const 1) (i32.const 0))))", "div0"),
    ('(module (func (export "f") (result i32) '
     "(i32.div_s (i32.const -2147483648) (i32.const -1))))", "overflow"),
    ('(module (func (export "f") (result i32) '
     "(i32.trunc_f64_s (f64.const 1e300))))", "trunc"),
    ('(module (memory 1) (func (export "f") (result i32) '
     "(i32.load (i32.const 0x7fffffff))))", "oob"),
    ('(module (func (export "f") (unreachable)))', "unreachable"),
]


@pytest.mark.parametrize("source,code", TRAP_SOURCES)
def test_trap_codes_match(source, code):
    for fuel in ("unset", 1_000):
        outcome = assert_identical(source, "f", fuel=fuel)
        assert outcome[0] == "trap" and outcome[1] == code


def test_br_table_and_block_results():
    source = """(module (func (export "f") (param i32) (result i32)
        (block $a
          (block $b
            (block $c
              (br_table $c $b $a (local.get 0)))
            (return (i32.const 100)))
          (return (i32.const 200)))
        (i32.const 300)))"""
    for arg in (0, 1, 2, 7):
        assert_identical(source, "f", arg)
        assert_identical(source, "f", arg, fuel=1_000)


def test_dead_code_after_br_compiles_and_runs():
    source = """(module (func (export "f") (result i32)
        (block (result i32)
          (br 0 (i32.const 5))
          (block (i32.const 9) (drop))
          (i32.const 6))))"""
    assert assert_identical(source, "f") == ("ok", 5, None)


def test_loop_with_result_and_nested_if():
    source = """(module (func (export "f") (param i32) (result i32)
        (local $n i32)
        (local.set $n (local.get 0))
        (block $exit (result i32)
          (loop $top (result i32)
            (if (i32.eqz (local.get $n)) (then (br $exit (i32.const -7))))
            (local.set $n (i32.sub (local.get $n) (i32.const 1)))
            (br $top)))))"""
    for arg in (0, 1, 4):
        assert_identical(source, "f", arg)
        assert_identical(source, "f", arg, fuel=1_000)


def test_i64_load_roundtrips_full_width():
    # regression: the lowering table used to mask 8-byte loads to 32 bits
    source = """(module (memory 1)
        (func (export "put") (param i64) (i64.store (i32.const 0) (local.get 0)))
        (func (export "get") (result i64) (i64.load (i32.const 0))))"""
    for engine in ("legacy", "threaded", "aot"):
        inst = Instance(decode_module(assemble(source)), engine=engine)
        inst.call("put", 0x1122334455667788)
        assert inst.call("get") == 0x1122334455667788, engine
        inst.call("put", -1)
        assert inst.call("get") == -1, engine


def test_exec_stats_identical_across_engines():
    source = FUEL_SWEEP_MODULES[2]
    results = {}
    for engine in ("legacy", "threaded", "aot"):
        inst = Instance(decode_module(assemble(source)), engine=engine)
        inst.store.stats = ExecStats()
        inst.call("f", 4)
        stats = inst.store.stats
        results[engine] = (stats.frames, stats.max_call_depth, stats.max_value_stack)
    assert results["legacy"] == results["threaded"] == results["aot"]


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------


def test_resolve_engine_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WASM_ENGINE", raising=False)
    assert resolve_engine() == "threaded"
    monkeypatch.setenv("REPRO_WASM_ENGINE", "legacy")
    assert resolve_engine() == "legacy"
    assert resolve_engine("threaded") == "threaded"  # explicit arg wins
    with pytest.raises(ValueError):
        resolve_engine("jit")


def test_instance_uses_selected_engine():
    raw = assemble('(module (func (export "f") (result i32) (i32.const 3)))')
    inst = Instance(decode_module(raw), engine="threaded")
    assert inst.engine == "threaded"
    addr = inst.func_addrs[0]
    assert isinstance(inst.store.funcs[addr].prepared, ThreadedCode)
    inst = Instance(decode_module(raw), engine="legacy")
    assert not isinstance(inst.store.funcs[inst.func_addrs[0]].prepared, ThreadedCode)


# ---------------------------------------------------------------------------
# the cross-instance code cache
# ---------------------------------------------------------------------------


def test_codecache_shares_across_decodes():
    raw = assemble('(module (func (export "f") (result i32) (i32.const 3)))')
    cache_clear()
    m1, m2 = decode_module(raw), decode_module(raw)
    assert m1.content_hash == m2.content_hash is not None
    b1 = compiled_bodies(m1, "threaded")
    b2 = compiled_bodies(m2, "threaded")
    assert b1[0] is b2[0]  # the very same compiled body object
    # engines are cached independently
    l1 = compiled_bodies(m1, "legacy")
    assert l1[0] is not b1[0]


def test_codecache_counters_via_obs():
    raw = assemble('(module (func (export "f") (result i32) (i32.const 4)))')
    cache_clear()
    obs.enable()
    try:
        hits = OBS.registry.counter("waran_wasm_codecache_hits_total")
        misses = OBS.registry.counter("waran_wasm_codecache_misses_total")
        h0, m0 = hits.value(engine="threaded"), misses.value(engine="threaded")
        Instance(decode_module(raw), engine="threaded")
        Instance(decode_module(raw), engine="threaded")
        Instance(decode_module(raw), engine="threaded")
        assert misses.value(engine="threaded") == m0 + 1
        assert hits.value(engine="threaded") == h0 + 2
    finally:
        obs.disable()


def test_handbuilt_module_without_hash_still_runs():
    raw = assemble('(module (func (export "f") (result i32) (i32.const 9)))')
    module = decode_module(raw)
    module.content_hash = None  # as if built by hand
    inst = Instance(module, engine="threaded")
    assert inst.call("f") == 9
    # per-Code memoization still dedupes within the same Module object
    assert compiled_bodies(module, "threaded")[0] is compiled_bodies(module, "threaded")[0]


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------


def test_dump_threaded_lists_fusions():
    raw = assemble(
        """(module (func (export "f") (param i32 i32) (result i32)
            (i32.add (local.get 0) (local.get 1))))"""
    )
    text = dump_threaded(raw)
    assert 'func 0 (export "f")' in text
    assert "superinstruction" in text
    assert "{local.get 0; local.get 1; i32.add}" in text
