"""Shrinker tests: failing cases reduce while preserving the failure."""

from repro.fuzz.shrink import shrink
from repro.wasm import Instance, Store, decode_module
from repro.wasm.traps import Trap
from repro.wasm.wat import assemble

WAT_THREE_FUNCS = """(module (memory 1)
  (func (export "f0") (param i32 i32) (result i32)
    (i32.add (local.get 0) (i32.mul (local.get 1) (i32.const 3))))
  (func (export "f1") (param i32 i32) (result i32)
    (i32.div_s (local.get 0) (local.get 1)))
  (func (export "f2") (param f64) (result f64)
    (f64.sqrt (f64.mul (local.get 0) (local.get 0)))))"""


def traps_div0(wasm: bytes, calls) -> bool:
    """The 'failure' property for these tests: some call traps with div0."""
    instance = Instance(decode_module(wasm), store=Store())
    for name, args in calls:
        try:
            instance.call(name, *args, fuel=10_000)
        except Trap as trap:
            if trap.code == "div0":
                return True
    return False


class TestShrink:
    def test_minimizes_call_plan_to_single_trigger(self):
        wasm = assemble(WAT_THREE_FUNCS)
        calls = [
            ("f0", (1, 2)),
            ("f2", (4.0,)),
            ("f1", (10, 0)),  # the only failing call
            ("f0", (3, 4)),
            ("f2", (9.0,)),
        ]
        small_wasm, small_calls = shrink(wasm, calls, traps_div0)
        assert small_calls == [("f1", (10, 0))]
        assert traps_div0(small_wasm, small_calls)
        assert len(small_wasm) <= len(wasm)

    def test_trivializes_unrelated_function_bodies(self):
        wasm = assemble(WAT_THREE_FUNCS)
        calls = [("f1", (10, 0))]
        small_wasm, small_calls = shrink(wasm, calls, traps_div0)
        module = decode_module(small_wasm)
        # f0/f2 are not needed to reproduce; their bodies collapse
        assert len(module.codes[0].body) < len(
            decode_module(wasm).codes[0].body
        )
        assert traps_div0(small_wasm, small_calls)

    def test_non_failing_input_returned_unchanged(self):
        wasm = assemble(WAT_THREE_FUNCS)
        calls = [("f0", (1, 2))]
        out_wasm, out_calls = shrink(wasm, calls, traps_div0)
        assert out_wasm == wasm
        assert out_calls == calls

    def test_respects_check_budget(self):
        wasm = assemble(WAT_THREE_FUNCS)
        calls = [("f1", (10, 0))] * 4
        evaluations = [0]

        def counting(w, c):
            evaluations[0] += 1
            return traps_div0(w, c)

        shrink(wasm, calls, counting, max_checks=10)
        assert evaluations[0] <= 10
