"""The generative fuzzer's own contract: validity, determinism, round-trips.

The generator is the foundation the differential oracle stands on — if it
ever emits an invalid module, every downstream "the engines agree" claim
is vacuous for the inputs that matter.  These tests pin down:

- every generated module validates AND instantiates under every engine;
- generation is a pure function of the seed;
- generated binaries survive ``decode -> encode`` byte-identically (the
  encoder/decoder round-trip property, satellite of the fuzz PR);
- the call plan only names real exports with correctly-typed arguments.
"""

import random

import pytest

from repro.fuzz.gen import GenConfig, ModuleGen
from repro.fuzz.runner import _iteration_rng
from repro.wasm import Instance, Store, decode_module, encode_module, validate_module
from repro.wasm.wtypes import ValType

N_SEEDS = 40


def gen(seed: int, config: GenConfig | None = None):
    return ModuleGen(_iteration_rng(seed, 0), config).generate()


class TestValidity:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_generated_module_validates_and_instantiates(self, seed):
        gm = gen(seed)
        module = decode_module(gm.wasm)
        validate_module(module)
        for engine in ("legacy", "threaded", "aot"):
            instance = Instance(module, store=Store(), engine=engine)
            assert instance.export_names()

    def test_exports_cover_every_function(self):
        gm = gen(3)
        module = decode_module(gm.wasm)
        names = {e.name for e in module.exports if e.kind == "func"}
        assert names == {f"f{i}" for i in range(len(module.funcs))}

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_call_plan_matches_signatures(self, seed):
        gm = gen(seed)
        module = decode_module(gm.wasm)
        exports = module.export_map()
        assert gm.calls, "generator must produce a non-empty call plan"
        for name, args in gm.calls:
            export = exports[name]
            functype = module.func_type(export.index)
            assert len(args) == len(functype.params)
            for arg, param in zip(args, functype.params):
                if param in (ValType.I32, ValType.I64):
                    assert isinstance(arg, int)
                else:
                    assert isinstance(arg, float)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_same_seed_same_module_and_plan(self, seed):
        a = gen(seed)
        b = gen(seed)
        assert a.wasm == b.wasm
        assert repr(a.calls) == repr(b.calls)

    def test_different_seeds_differ(self):
        # not guaranteed in principle, but 0 vs 1 colliding would mean the
        # seed isn't reaching the generator at all
        assert gen(0).wasm != gen(1).wasm

    def test_iteration_rng_is_position_independent(self):
        # iteration 5's rng must not depend on iterations 0-4 having run
        a = ModuleGen(_iteration_rng(9, 5)).generate()
        for i in range(5):
            ModuleGen(_iteration_rng(9, i)).generate()
        b = ModuleGen(_iteration_rng(9, 5)).generate()
        assert a.wasm == b.wasm


class TestEncodeDecodeRoundTrip:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_reencode_is_byte_identical(self, seed):
        """decode(encode(m)) re-encodes to the same bytes (fixpoint)."""
        wasm = gen(seed).wasm
        assert encode_module(decode_module(wasm)) == wasm

    @pytest.mark.parametrize("seed", range(10))
    def test_double_roundtrip_stable(self, seed):
        wasm = gen(seed).wasm
        once = encode_module(decode_module(wasm))
        twice = encode_module(decode_module(once))
        assert once == twice


class TestConfig:
    def test_config_bounds_function_count(self):
        config = GenConfig(max_funcs=1, max_calls=2)
        for seed in range(10):
            gm = ModuleGen(random.Random(seed), config).generate()
            module = decode_module(gm.wasm)
            assert len(module.funcs) == 1
            assert len(gm.calls) <= 2

    def test_wild_addresses_can_be_disabled(self):
        config = GenConfig(p_wild_addr=0.0, p_wild_select=0.0)
        gm = ModuleGen(random.Random(5), config).generate()
        validate_module(decode_module(gm.wasm))
