"""Differential-oracle tests: the four legs agree on everything observable.

The fast tests sweep a few dozen seeds through the full oracle (legacy,
threaded, checkpoint/restore round-trip, cross-engine restore).  The
``slow``-marked campaign is the nightly workhorse — a thousand-module
sweep that tier-1 skips.
"""

import math

import pytest

from repro.fuzz.gen import ModuleGen
from repro.fuzz.oracle import canon_state, canon_value, differential, run_trace
from repro.fuzz.runner import _iteration_rng, run_campaign
from repro.wasm import Instance, Store, decode_module
from repro.wasm.wat import assemble

N_SEEDS = 30


def case(seed: int):
    return ModuleGen(_iteration_rng(seed, 1)).generate()


class TestCanonicalization:
    def test_signed_zero_distinct(self):
        assert canon_value(0.0) != canon_value(-0.0)

    def test_nan_is_deterministic(self):
        assert canon_value(math.nan) == canon_value(math.nan)

    def test_int_float_distinct(self):
        assert canon_value(1) != canon_value(1.0)

    def test_void(self):
        assert canon_value(None) == "void"


class TestDifferential:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_generated_modules_agree(self, seed):
        gm = case(seed)
        result = differential(gm.wasm, gm.calls)
        assert result.ok, result.reason

    def test_digest_material_is_stable(self):
        gm = case(2)
        a = differential(gm.wasm, gm.calls).digest_material
        b = differential(gm.wasm, gm.calls).digest_material
        assert a == b


WAT_STATEFUL = """(module (memory 1)
  (global $n (mut i32) (i32.const 0))
  (func (export "f0") (param i32) (result i32)
    (global.set $n (i32.add (global.get $n) (i32.const 1)))
    (i32.store (i32.const 16) (local.get 0))
    (i32.load (i32.const 16)))
  (func (export "f1") (result i32) (global.get $n)))"""


class TestRunTrace:
    def test_checkpoint_captures_midpoint_state(self):
        wasm = assemble(WAT_STATEFUL)
        calls = [("f0", (7,)), ("f0", (9,)), ("f1", ())]
        trace = run_trace(wasm, calls, "threaded", capture_at=2)
        assert trace.checkpoint is not None
        # two f0 calls before the checkpoint
        globals_ = dict(trace.checkpoint.globals)
        assert globals_[0] == 2
        assert trace.outcomes[2][:2] == ("ok", ("i", 2))

    def test_restore_reproduces_tail(self):
        wasm = assemble(WAT_STATEFUL)
        calls = [("f0", (7,)), ("f1", ()), ("f1", ())]
        full = run_trace(wasm, calls, "threaded", capture_at=1)
        replay = run_trace(
            wasm, calls[1:], "legacy", restore_from=full.checkpoint
        )
        assert replay.outcomes == full.outcomes[1:]
        assert replay.final == full.final

    def test_canon_state_sees_memory_writes(self):
        wasm = assemble(WAT_STATEFUL)
        a = run_trace(wasm, [("f0", (1,))], "threaded")
        b = run_trace(wasm, [("f0", (2,))], "threaded")
        assert a.final != b.final

    def test_capture_restore_roundtrip_preserves_memory_bytes(self):
        instance = Instance(
            decode_module(assemble(WAT_STATEFUL)), store=Store()
        )
        instance.call("f0", 41, fuel=1000)
        snapshot = instance.capture_state()
        fresh = Instance(decode_module(assemble(WAT_STATEFUL)), store=Store())
        fresh.restore_state(snapshot)
        assert canon_state(fresh.capture_state()) == canon_state(snapshot)
        assert fresh.call("f1", fuel=1000) == 1


@pytest.mark.slow
class TestCampaignSoak:
    def test_thousand_module_campaign_finds_nothing(self):
        report = run_campaign(11, 1000)
        assert report.executed == 1000
        assert report.ok, [
            (f.iteration, f.kind, f.detail) for f in report.failures
        ]

    def test_campaign_digest_deterministic(self):
        a = run_campaign(13, 300)
        b = run_campaign(13, 300)
        assert a.digest == b.digest
        assert a.ok and b.ok
