"""Tests for the BLER model and its gNB integration."""

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.gnb import GnbHost, SliceRuntime, UeContext
from repro.phy.bler import LinkErrorModel, bler
from repro.phy.mcs import cqi_to_mcs
from repro.plugins import plugin_wasm
from repro.sched import TargetRateInterSlice
from repro.traffic import FullBufferSource


class TestBlerCurve:
    def test_operating_point_is_ten_percent(self):
        for cqi in range(1, 16):
            assert bler(cqi_to_mcs(cqi), cqi) == pytest.approx(0.1)

    def test_above_capability_degrades_steeply(self):
        cqi = 7
        supported = cqi_to_mcs(cqi)
        values = [bler(supported + d, cqi) for d in range(0, 5)]
        assert values == sorted(values)
        assert values[-1] > 0.9

    def test_below_capability_improves(self):
        cqi = 10
        supported = cqi_to_mcs(cqi)
        assert bler(max(supported - 4, 0), cqi) < bler(supported, cqi)

    def test_cqi_zero_never_decodes(self):
        assert bler(0, 0) == 1.0

    def test_monotone_in_mcs(self):
        cqi = 9
        values = [bler(m, cqi) for m in range(29)]
        assert values == sorted(values)


class TestLinkErrorModel:
    def test_measured_bler_near_target(self):
        model = LinkErrorModel(seed=1)
        cqi = 12
        mcs = cqi_to_mcs(cqi)
        for _ in range(10_000):
            model.transmit(mcs, cqi)
        assert model.measured_bler == pytest.approx(0.1, abs=0.02)

    def test_deterministic_with_seed(self):
        a = LinkErrorModel(seed=5)
        b = LinkErrorModel(seed=5)
        draws_a = [a.transmit(10, 8) for _ in range(100)]
        draws_b = [b.transmit(10, 8) for _ in range(100)]
        assert draws_a == draws_b

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            LinkErrorModel(target_bler=1.5)


class TestGnbIntegration:
    def _run(self, error_model):
        gnb = GnbHost(
            inter_slice=TargetRateInterSlice({1: 50e6}, slot_duration_s=1e-3),
            error_model=error_model,
        )
        runtime = gnb.add_slice(SliceRuntime(1, "mvno"))
        runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(20), FullBufferSource()))
        gnb.run(1500)
        gnb.finish_meters()
        return gnb

    def test_errors_reduce_throughput_proportionally(self):
        clean = self._run(None)
        lossy = self._run(LinkErrorModel(seed=2))
        clean_rate = clean.slices[1].meter.average_bps(1.5)
        lossy_rate = lossy.slices[1].meter.average_bps(1.5)
        assert lossy_rate == pytest.approx(clean_rate * 0.9, rel=0.05)

    def test_errored_bytes_are_retransmitted_not_lost(self):
        gnb = self._run(LinkErrorModel(seed=3))
        ue = gnb.ues[1]
        # full buffer: nothing is ever dropped by the air interface itself
        assert ue.buffer.dropped_bytes == 0 or ue.buffer.capacity_bytes  # cap drops only
        assert gnb.error_model.tb_error > 50
        assert gnb.error_model.tb_ok > 500
