"""Tests for the sandboxed message guard (§3B sanitization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.pbwire import write_varint
from repro.e2 import CommChannel, setup_request, vendors
from repro.e2.comm import GuardedChannel, MessageGuard
from repro.netio import InProcNetwork


@pytest.fixture(scope="module")
def guard() -> MessageGuard:
    return MessageGuard()


class TestMessageGuard:
    def test_valid_pbwire_accepted(self, guard):
        payload = vendors.vendor_b().encode(setup_request("gnb1", [1, 2]))
        assert guard.check(payload)

    def test_empty_payload_accepted(self, guard):
        assert guard.check(b"")  # zero fields is structurally fine

    def test_truncated_varint_rejected(self, guard):
        assert not guard.check(b"\x80\x80")
        assert guard.last_fail_code == 1

    def test_unknown_wire_type_rejected(self, guard):
        # field 1, wire type 3 (group start - not supported)
        assert not guard.check(write_varint((1 << 3) | 3))
        assert guard.last_fail_code == 5

    def test_length_overrun_rejected(self, guard):
        bad = write_varint((1 << 3) | 2) + write_varint(100) + b"short"
        assert not guard.check(bad)
        assert guard.last_fail_code == 6

    def test_absurd_length_rejected(self, guard):
        bad = write_varint((1 << 3) | 2) + write_varint(1 << 30)
        assert not guard.check(bad)
        assert guard.last_fail_code == 4

    def test_field_flood_rejected(self, guard):
        flood = write_varint((1 << 3) | 0) + write_varint(0)
        assert not guard.check(flood * 5000)
        assert guard.last_fail_code == 7

    def test_counters(self):
        guard = MessageGuard()
        guard.check(b"")
        guard.check(b"\x80")
        assert guard.accepted == 1
        assert guard.rejected == 1

    @given(st.binary(max_size=512))
    @settings(max_examples=80, deadline=None)
    def test_fuzz_never_crashes_host(self, guard, data):
        """Arbitrary bytes: the guard answers True/False, never raises."""
        verdict = guard.check(data)
        assert isinstance(verdict, bool)

    @given(st.binary(max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_accepted_payloads_are_host_decodable_structurally(self, guard, data):
        """Soundness: whatever the guard accepts, the host pbwire walker can
        skip through without reading out of bounds."""
        if not guard.check(data):
            return
        from repro.codecs.base import CodecError
        from repro.e2.vendors import E2_PB_SCHEMA

        try:
            E2_PB_SCHEMA.decode(data)
        except CodecError:
            pass  # semantic rejection is fine; no crash is the point


class TestGuardedChannel:
    def test_end_to_end_filtering(self):
        net = InProcNetwork()
        vendor = vendors.vendor_b()
        sender = CommChannel(net.endpoint("ric"), vendor)
        attacker = net.endpoint("attacker")
        receiver = GuardedChannel(net.endpoint("gnb"), vendor)

        sender.send("gnb", setup_request("ric", [1]))
        attacker.send("gnb", b"\x80\x80\x80")  # malicious garbage
        sender.send("gnb", setup_request("ric", [2]))

        got = receiver.poll()
        assert len(got) == 2
        assert receiver.guard.rejected == 1
        # a guard verdict is not a codec failure: operators must be able to
        # tell a hostile payload from a dialect mismatch
        assert receiver.guard_rejections == 1
        assert receiver.decode_failures == 0

    def test_guard_rejection_metric(self):
        from repro import obs

        obs.enable()
        obs.reset()
        try:
            net = InProcNetwork()
            vendor = vendors.vendor_b()
            attacker = net.endpoint("attacker")
            receiver = GuardedChannel(net.endpoint("gnb"), vendor)
            attacker.send("gnb", b"\x80\x80\x80")
            receiver.poll()
            assert (
                obs.OBS.registry.counter(
                    "waran_e2_guard_rejections_total"
                ).value(channel="gnb")
                == 1
            )
        finally:
            obs.reset()
            obs.disable()

    def test_guard_survives_sustained_attack(self):
        net = InProcNetwork()
        vendor = vendors.vendor_b()
        attacker = net.endpoint("attacker")
        receiver = GuardedChannel(net.endpoint("gnb"), vendor)
        import random

        rng = random.Random(1)
        for _ in range(100):
            attacker.send("gnb", bytes(rng.randrange(256) for _ in range(64)))
        assert receiver.poll() == [] or receiver.guard.accepted >= 0
        # after the attack the channel still works for honest senders
        honest = CommChannel(net.endpoint("ric"), vendor)
        honest.send("gnb", setup_request("ric", [1]))
        assert len(receiver.poll()) == 1
