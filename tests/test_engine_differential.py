"""Differential testing: every bundled plugin under every Wasm engine.

Each ``.wc`` plugin in ``src/repro/plugins/`` is loaded once per engine
(``legacy``, ``threaded``, ``aot``) and driven through the full
:class:`PluginHost` byte-buffer path with identical inputs.  The engines
must agree on *everything* observable: output bytes, error kind, spec
trap code, fuel consumed, and :class:`ExecStats` counters.

This is the acceptance gate for the compiled tiers being bit-identical
in semantics, not just "close enough".
"""

import pytest

from repro import obs
from repro.abi import wire
from repro.abi.host import PluginError, PluginHost
from repro.experiments.fig5d import make_ues
from repro.plugins import available_plugins, plugin_wasm
from repro.sched.types import UeSchedInfo
from repro.wasm.instance import HostFunc
from repro.wasm.wtypes import FuncType, ValType

FUEL = 2_000_000  # default host budget; bounds fault_spin deterministically

I32, I64 = ValType.I32, ValType.I64


def xapp_stubs() -> dict[str, HostFunc]:
    """Deterministic stand-ins for the RIC host functions xApps import."""
    topics: dict[int, list[int]] = {}

    def publish(caller, topic, value):
        topics.setdefault(topic, []).append(value)

    def poll_msg(caller, topic):
        queue = topics.get(topic)
        return queue.pop(0) if queue else -1

    def get_param(caller, param_id):
        return -1

    return {
        "publish": HostFunc(FuncType((I32, I64), ()), publish, "publish"),
        "poll_msg": HostFunc(FuncType((I32,), (I64,)), poll_msg, "poll_msg"),
        "get_param": HostFunc(FuncType((I32,), (I64,)), get_param, "get_param"),
    }


@pytest.fixture(autouse=True)
def telemetry():
    # enabled so the host collects ExecStats for every call
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


def observe(name: str, engine: str, payloads: list[bytes]):
    """Run one plugin over payloads; return everything observable."""
    host = PluginHost(
        plugin_wasm(name),
        name=f"{name}-{engine}",
        sanitize=False,  # fault_* plugins deliberately misbehave
        extra_hostfuncs=xapp_stubs(),  # xApps import publish/poll/get_param
        engine=engine,
    )
    host.limits.fuel = FUEL
    entry = "on_indication" if name.startswith("xapp") else "run"
    trace = []
    for payload in payloads:
        try:
            result = host.call(payload, entry=entry)
            outcome = ("ok", result.output, result.fuel_used)
        except PluginError as exc:
            cause = exc.__cause__
            trap_code = getattr(cause, "code", None)
            outcome = (exc.kind, trap_code, host.instance.store.fuel)
        stats = host.instance.store.stats
        trace.append(
            outcome + (stats.frames, stats.max_call_depth, stats.max_value_stack)
        )
    return trace


def payloads_for() -> list[bytes]:
    """A few realistic scheduler inputs (xApps parse the same framing)."""
    return [
        wire.pack_sched_input(1, 52, make_ues(4)),
        wire.pack_sched_input(2, 6, make_ues(1)),
        wire.pack_sched_input(3, 100, make_ues(12)),
        wire.pack_sched_input(
            4, 52,
            [UeSchedInfo(ue_id=17, mcs=0, cqi=1, buffer_bytes=0, avg_tput_bps=0.0)],
        ),
        b"",  # degenerate input: both engines must fault identically too
    ]


@pytest.mark.parametrize("name", sorted(available_plugins()))
def test_plugin_identical_across_engines(name):
    payloads = payloads_for()
    legacy = observe(name, "legacy", payloads)
    for engine in ("threaded", "aot"):
        trace = observe(name, engine, payloads)
        for i, (expect, got) in enumerate(zip(legacy, trace)):
            assert got == expect, (
                f"{name} payload#{i}: {engine} {got} != legacy {expect}"
            )
    # sanity: the suite saw at least one successful call or a real fault,
    # never silent no-ops
    assert any(t[0] in ("ok", "trap", "fuel", "abi") for t in legacy)


def test_scratch_region_reused_across_calls():
    """Back-to-back calls reuse one staging buffer: no per-call alloc,
    no linear-memory growth."""
    host = PluginHost(plugin_wasm("pf"), name="pf-scratch", sanitize=False)
    host.limits.fuel = FUEL
    payload = wire.pack_sched_input(1, 52, make_ues(6))

    host.call(payload)
    allocs_after_first = host.scratch_allocs
    pages_after_first = host.memory_pages
    ptr = host._scratch_ptr
    assert allocs_after_first == 1

    for slot in range(2, 30):
        host.call(wire.pack_sched_input(slot, 52, make_ues(6)))

    assert host.scratch_allocs == allocs_after_first  # alloc never re-ran
    assert host._scratch_ptr == ptr
    assert host.memory_pages == pages_after_first  # no memory regression


def test_scratch_region_grows_monotonically():
    host = PluginHost(plugin_wasm("pf"), name="pf-grow", sanitize=False)
    host.limits.fuel = FUEL
    host.call(wire.pack_sched_input(1, 52, make_ues(1)))
    assert host.scratch_allocs == 1
    cap_small = host._scratch_cap
    # a bigger input forces one (and only one) re-alloc...
    host.call(wire.pack_sched_input(2, 52, make_ues(20)))
    assert host.scratch_allocs == 2
    assert host._scratch_cap > cap_small
    # ...after which the small input rides the grown region
    host.call(wire.pack_sched_input(3, 52, make_ues(1)))
    host.call(wire.pack_sched_input(4, 52, make_ues(20)))
    assert host.scratch_allocs == 2


def test_scratch_region_reset_on_swap():
    host = PluginHost(plugin_wasm("pf"), name="pf-swap-scratch", sanitize=False)
    host.limits.fuel = FUEL
    host.call(wire.pack_sched_input(1, 52, make_ues(4)))
    assert host.scratch_allocs == 1
    host.swap(plugin_wasm("rr"))
    assert host._scratch_ptr is None  # stale pointer dropped with the instance
    host.call(wire.pack_sched_input(2, 52, make_ues(4)))
    assert host.scratch_allocs == 2
