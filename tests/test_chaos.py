"""Chaos layer tests: schedules, injectors at every layer, and replay.

Covers the seeded :class:`FaultSchedule` (determinism, per-site stream
independence, env parsing), each plugin-layer injection kind through
:class:`PluginHost.call`, each transport fault through
:class:`ChaosEndpoint`, and the satellite regression: a chaos-provoked
fault captured by the flight recorder replays with the same trap code
and fuel count.
"""

import pytest

from repro import obs
from repro.abi import wire
from repro.abi.host import PluginError, PluginHost
from repro.chaos.schedule import (
    ChaosConfig,
    ChaosInjection,
    FaultSchedule,
    OneShotChaos,
    schedule_from_env,
)
from repro.chaos.transport import ChaosEndpoint
from repro.experiments.fig5d import make_ues
from repro.netio import InProcNetwork, NetworkError
from repro.plugins import plugin_wasm


def sched_payload(slot: int = 0, prbs: int = 20, n_ues: int = 3) -> bytes:
    return wire.pack_sched_input(slot, prbs, make_ues(n_ues))


def host_with(config: ChaosConfig, name: str = "rr", **kwargs) -> PluginHost:
    return PluginHost(
        plugin_wasm(name), name=name, chaos=FaultSchedule(config), **kwargs
    )


class TestFaultSchedule:
    def test_same_seed_same_draws(self):
        def draws(seed):
            schedule = FaultSchedule(ChaosConfig.soak(seed))
            for _ in range(500):
                schedule.draw_plugin("rr")
                schedule.draw_transport("ric")
            return schedule.injected

        assert draws(42) == draws(42)
        assert draws(42) != draws(43)

    def test_sites_are_independent_streams(self):
        """Draws at one site never perturb the schedule at another."""
        lone = FaultSchedule(ChaosConfig.soak(7))
        lone_draws = [lone.draw_plugin("pf") for _ in range(200)]

        mixed = FaultSchedule(ChaosConfig.soak(7))
        mixed_draws = []
        for i in range(200):
            mixed.draw_plugin("rr")  # interleaved traffic at another site
            if i % 3 == 0:
                mixed.draw_transport("ric")
            mixed_draws.append(mixed.draw_plugin("pf"))
        assert lone_draws == mixed_draws

    def test_injection_indices_are_per_site_event_counts(self):
        schedule = FaultSchedule(ChaosConfig(seed=1, trap=1.0))
        first = schedule.draw_plugin("rr")
        second = schedule.draw_plugin("rr")
        assert (first.index, second.index) == (0, 1)
        assert first.site == "plugin:rr"

    def test_zero_rates_never_inject(self):
        schedule = FaultSchedule(ChaosConfig(seed=1))
        assert all(schedule.draw_plugin("rr") is None for _ in range(100))
        assert schedule.injected == []

    def test_injection_json_round_trip(self):
        injection = ChaosInjection("trap", "plugin:rr", 5, 17, 3)
        assert ChaosInjection.from_json(injection.to_json()) == injection

    def test_counts(self):
        schedule = FaultSchedule(ChaosConfig(seed=1, trap=1.0))
        for _ in range(3):
            schedule.draw_plugin("rr")
        assert schedule.counts() == {"trap": 3}


class TestScheduleFromEnv:
    def test_bare_seed_enables_soak_mix(self):
        schedule = schedule_from_env("seed=42")
        assert schedule.seed == 42
        assert schedule.config == ChaosConfig.soak(42)

    def test_explicit_rates(self):
        schedule = schedule_from_env("seed=7,trap=0.5,drop=0.25")
        assert schedule.config.trap == 0.5
        assert schedule.config.drop == 0.25
        assert schedule.config.fuel_cut == 0.0  # unnamed rates stay zero

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            schedule_from_env("seed=1,explode=0.5")

    def test_env_hookup_on_plugin_host(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=3,trap=1.0")
        host = PluginHost(plugin_wasm("rr"), name="rr")
        assert host.chaos is not None
        with pytest.raises(PluginError, match="injected trap"):
            host.call(sched_payload())


class TestPluginInjection:
    def test_trap(self):
        host = host_with(ChaosConfig(seed=1, trap=1.0))
        with pytest.raises(PluginError, match="injected trap") as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "trap"
        assert excinfo.value.__cause__.code == "chaos"

    def test_abi_violation(self):
        host = host_with(ChaosConfig(seed=1, abi=1.0))
        with pytest.raises(PluginError, match="injected ABI") as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "abi"

    def test_oversize(self):
        host = host_with(ChaosConfig(seed=1, oversize=1.0))
        with pytest.raises(PluginError, match="oversized") as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "abi"

    def test_deadline(self):
        host = host_with(ChaosConfig(seed=1, deadline=1.0))
        with pytest.raises(PluginError, match="deadline blowout") as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "deadline"
        # the message is time-free so fault logs stay byte-reproducible
        assert "us" not in str(excinfo.value)

    def test_fuel_cut(self):
        host = host_with(ChaosConfig(seed=1, fuel_cut=1.0))
        with pytest.raises(PluginError) as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "fuel"

    def test_bitflip_is_contained(self):
        """A flipped memory bit may corrupt output or trap - never escape."""
        host = host_with(ChaosConfig(seed=1, bitflip=1.0))
        for slot in range(20):
            try:
                host.call(sched_payload(slot))
            except PluginError:
                pass  # contained by the sandbox boundary

    def test_injection_is_deterministic_across_hosts(self):
        def outcomes(seed):
            host = host_with(ChaosConfig.soak(seed))
            results = []
            for slot in range(100):
                try:
                    result = host.call(sched_payload(slot))
                    results.append(("ok", result.output))
                except PluginError as exc:
                    results.append((exc.kind, str(exc)))
            return results

        assert outcomes(11) == outcomes(11)


class TestChaosEndpoint:
    def wrap(self, config: ChaosConfig):
        net = InProcNetwork()
        sender = ChaosEndpoint(net.endpoint("a"), FaultSchedule(config))
        receiver = net.endpoint("b")
        return sender, receiver

    @staticmethod
    def drain(receiver):
        out = []
        while (item := receiver.recv()) is not None:
            out.append(item)
        return out

    def test_drop(self):
        sender, receiver = self.wrap(ChaosConfig(seed=1, drop=1.0))
        sender.send("b", b"hello")
        assert self.drain(receiver) == []
        assert sender.stats == {"drop": 1}

    def test_dup(self):
        sender, receiver = self.wrap(ChaosConfig(seed=1, dup=1.0))
        sender.send("b", b"hello")
        assert self.drain(receiver) == [("a", b"hello"), ("a", b"hello")]

    def test_corrupt_flips_exactly_one_bit(self):
        sender, receiver = self.wrap(ChaosConfig(seed=1, corrupt=1.0))
        sender.send("b", b"\x00" * 8)
        ((_, payload),) = self.drain(receiver)
        assert len(payload) == 8
        assert sum(bin(byte).count("1") for byte in payload) == 1

    def test_delay_holds_then_reorders(self):
        sender, receiver = self.wrap(ChaosConfig(seed=1, delay=1.0))
        sender.send("b", b"m1")
        assert self.drain(receiver) == []  # held, not lost
        sender.flush()
        assert self.drain(receiver) == [("a", b"m1")]

    def test_fail_raises_network_error(self):
        sender, _ = self.wrap(ChaosConfig(seed=1, fail=1.0))
        with pytest.raises(NetworkError, match="injected send failure"):
            sender.send("b", b"hello")

    def test_clean_schedule_passes_through(self):
        sender, receiver = self.wrap(ChaosConfig(seed=1))
        for i in range(10):
            sender.send("b", bytes([i]))
        assert self.drain(receiver) == [("a", bytes([i])) for i in range(10)]
        assert sender.stats == {}


class TestChaosReplay:
    """Satellite 6: flight-recorded chaos faults replay deterministically."""

    @pytest.fixture(autouse=True)
    def telemetry(self):
        obs.enable()
        obs.reset()
        yield
        obs.reset()
        obs.disable()

    @pytest.mark.parametrize("engine", ["legacy", "threaded", "aot"])
    def test_injected_trap_replays_with_same_code(self, engine):
        host = host_with(ChaosConfig(seed=9, trap=1.0), engine=engine)
        with pytest.raises(PluginError) as original:
            host.call(sched_payload())
        record = obs.OBS.flight.records()[-1]
        assert record.attrs["chaos"]["kind"] == "trap"

        with pytest.raises(PluginError) as replayed:
            host.replay(record)
        assert replayed.value.kind == original.value.kind == "trap"
        assert replayed.value.__cause__.code == original.value.__cause__.code
        replay_record = obs.OBS.flight.records()[-1]
        assert replay_record.outcome == record.outcome == "trap"
        assert replay_record.attrs["chaos"] == record.attrs["chaos"]

    @pytest.mark.parametrize("engine", ["legacy", "threaded", "aot"])
    def test_injected_fuel_cut_replays_with_same_fuel_count(self, engine):
        host = host_with(ChaosConfig(seed=9, fuel_cut=1.0), engine=engine)
        with pytest.raises(PluginError) as original:
            host.call(sched_payload())
        assert original.value.kind == "fuel"
        record = obs.OBS.flight.records()[-1]
        assert record.attrs["chaos"]["kind"] == "fuel_cut"
        assert record.fuel_used is not None

        with pytest.raises(PluginError) as replayed:
            host.replay(record)
        assert replayed.value.kind == "fuel"
        replay_record = obs.OBS.flight.records()[-1]
        assert replay_record.outcome == "fuel"
        assert replay_record.fuel_used == record.fuel_used

    def test_replay_of_clean_record_stays_clean_under_env_chaos(self, monkeypatch):
        """A no-chaos capture must replay without chaos even if REPRO_CHAOS
        is set when the replay clone is constructed."""
        host = PluginHost(plugin_wasm("rr"), name="rr")
        result = host.call(sched_payload())
        record = obs.OBS.flight.records()[-1]
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,trap=1.0")
        replayed = host.replay(record)
        assert replayed.output == result.output

    def test_one_shot_chaos_fires_once(self):
        injection = ChaosInjection("trap", "plugin:rr", 0)
        one_shot = OneShotChaos(injection)
        assert one_shot.draw_plugin("rr") == injection
        assert one_shot.draw_plugin("rr") is None
        assert OneShotChaos(None).draw_plugin("rr") is None
