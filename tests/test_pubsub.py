"""Tests for the pub/sub broker."""

import pytest

from repro.netio import InProcNetwork, TcpNetwork
from repro.netio.pubsub import Broker, PubSubClient


def make(retain=0):
    net = InProcNetwork()
    broker = Broker(net.endpoint("broker"), retain=retain)
    a = PubSubClient(net.endpoint("a"), "broker")
    b = PubSubClient(net.endpoint("b"), "broker")
    return net, broker, a, b


class TestBroker:
    def test_basic_fanout(self):
        _net, broker, a, b = make()
        a.subscribe("kpi")
        b.subscribe("kpi")
        broker.step()
        a.publish("kpi", b"report-1")
        broker.step()
        assert [(t, p) for t, _s, p in a.poll()] == [("kpi", b"report-1")]
        assert [(t, p) for t, _s, p in b.poll()] == [("kpi", b"report-1")]

    def test_topic_isolation(self):
        _net, broker, a, b = make()
        a.subscribe("alpha")
        b.subscribe("beta")
        broker.step()
        a.publish("beta", b"x")
        broker.step()
        assert a.poll() == []
        assert [p for _t, _s, p in b.poll()] == [b"x"]

    def test_unsubscribe(self):
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        a.unsubscribe("t")
        broker.step()
        b.publish("t", b"x")
        broker.step()
        assert a.poll() == []

    def test_sequence_numbers_monotone(self):
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        for i in range(5):
            b.publish("t", bytes([i]))
        broker.step()
        seqs = [s for _t, s, _p in a.poll()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_retention_for_late_subscriber(self):
        _net, broker, a, b = make(retain=3)
        b.publish("t", b"m1")
        b.publish("t", b"m2")
        b.publish("t", b"m3")
        b.publish("t", b"m4")
        broker.step()
        a.subscribe("t")  # late
        broker.step()
        payloads = [p for _t, _s, p in a.poll()]
        assert payloads == [b"m2", b"m3", b"m4"]  # last 3 retained

    def test_no_retention_by_default(self):
        _net, broker, a, b = make()
        b.publish("t", b"m1")
        broker.step()
        a.subscribe("t")
        broker.step()
        assert a.poll() == []

    def test_garbage_frames_ignored(self):
        net, broker, a, _b = make()
        raw = net.endpoint("raw")
        raw.send("broker", b"\xff\xff")
        broker.step()  # must not raise
        assert broker.published == 0

    def test_binary_payloads(self):
        _net, broker, a, b = make()
        a.subscribe("bin")
        broker.step()
        payload = bytes(range(256))
        b.publish("bin", payload)
        broker.step()
        assert [p for _t, _s, p in a.poll()] == [payload]

    def test_over_tcp(self):
        net = TcpNetwork()
        try:
            broker = Broker(net.endpoint("broker"))
            a = PubSubClient(net.endpoint("a"), "broker")
            b = PubSubClient(net.endpoint("b"), "broker")
            a.subscribe("t")
            deadline_poll(broker, lambda: broker.endpoint.recv(timeout=2.0))
            broker.step()
            b.publish("t", b"over tcp")
            import time

            for _ in range(100):
                broker.step()
                got = a.poll()
                if got:
                    assert got[0][2] == b"over tcp"
                    return
                time.sleep(0.02)
            pytest.fail("message never delivered over TCP")
        finally:
            net.close()


class TestRetainedDelivery:
    def test_late_subscriber_retention_is_counted(self):
        """Retained catch-up frames go through the same delivery path."""
        _net, broker, a, b = make(retain=2)
        b.publish("t", b"m1")
        b.publish("t", b"m2")
        broker.step()
        assert broker.delivered == 0  # nobody was subscribed yet
        a.subscribe("t")
        broker.step()
        assert [p for _t, _s, p in a.poll()] == [b"m1", b"m2"]
        assert broker.delivered == 2

    def test_late_subscriber_keeps_original_seq(self):
        _net, broker, a, b = make(retain=3)
        b.publish("t", b"m1")
        b.publish("t", b"m2")
        broker.step()
        a.subscribe("t")
        broker.step()
        seqs = [s for _t, s, _p in a.poll()]
        assert seqs == [1, 2]  # retention preserves publish-time sequence

    def test_retention_does_not_duplicate_for_existing_subscriber(self):
        _net, broker, a, b = make(retain=5)
        a.subscribe("t")
        broker.step()
        b.publish("t", b"live")
        broker.step()
        assert [p for _t, _s, p in a.poll()] == [b"live"]
        # re-subscribing replays the retained window - by design - but a
        # subscriber that never re-subscribes sees each message once
        b.publish("t", b"live2")
        broker.step()
        assert [p for _t, _s, p in a.poll()] == [b"live2"]


class TestUnsubscribeWhileQueued:
    def test_pub_before_unsub_still_delivered(self):
        """Broker input is FIFO: messages queued before the unsub land."""
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        b.publish("t", b"before")
        a.unsubscribe("t")  # queued after the publish
        broker.step()  # one step processes both, in order
        assert [p for _t, _s, p in a.poll()] == [b"before"]

    def test_unsub_before_pub_not_delivered(self):
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        a.unsubscribe("t")
        b.publish("t", b"after")  # queued after the unsub
        broker.step()
        assert a.poll() == []

    def test_unsub_of_never_subscribed_topic_is_noop(self):
        _net, broker, a, b = make()
        a.unsubscribe("ghost")
        broker.step()  # must not raise or create topic state
        assert broker._subscribers.get("ghost") in (None, set())


class TestDeadSubscriberEviction:
    def test_dead_subscriber_does_not_starve_the_rest(self):
        """A vanished endpoint is evicted mid-fanout; others still get it."""
        net = InProcNetwork()
        broker = Broker(net.endpoint("broker"))
        a = PubSubClient(net.endpoint("a"), "broker")
        b = PubSubClient(net.endpoint("b"), "broker")
        a.subscribe("t")
        b.subscribe("t")
        broker.step()
        # endpoint "a" disappears (process death); sends to it now fail
        del net._endpoints["a"]
        b.publish("t", b"still flows")
        broker.step()  # must not raise
        assert [p for _t, _s, p in b.poll()] == [b"still flows"]
        assert broker.dead_subscribers == 1
        # evicted from the topic: the next publish doesn't retry it
        b.publish("t", b"again")
        broker.step()
        assert broker.dead_subscribers == 1

    def test_dead_subscriber_evicted_from_all_topics(self):
        net = InProcNetwork()
        broker = Broker(net.endpoint("broker"))
        a = PubSubClient(net.endpoint("a"), "broker")
        b = PubSubClient(net.endpoint("b"), "broker")
        a.subscribe("t1")
        a.subscribe("t2")
        broker.step()
        del net._endpoints["a"]
        b.publish("t1", b"x")
        broker.step()
        assert all("a" not in subs for subs in broker._subscribers.values())

    def test_dead_subscriber_during_retained_catchup(self):
        net = InProcNetwork()
        broker = Broker(net.endpoint("broker"), retain=2)
        a = PubSubClient(net.endpoint("a"), "broker")
        b = PubSubClient(net.endpoint("b"), "broker")
        b.publish("t", b"m1")
        broker.step()
        a.subscribe("t")
        del net._endpoints["a"]  # dies with the sub + catch-up queued
        broker.step()  # must not raise
        assert broker.dead_subscribers == 1


def deadline_poll(broker, recv):
    """Wait for one queued message to arrive at the broker (TCP latency)."""
    item = recv()
    if item is not None:
        # put it back through the broker path by re-queuing
        broker.endpoint._queue.put(item)  # type: ignore[attr-defined]
