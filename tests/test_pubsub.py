"""Tests for the pub/sub broker."""

import pytest

from repro.netio import InProcNetwork, TcpNetwork
from repro.netio.pubsub import Broker, PubSubClient


def make(retain=0):
    net = InProcNetwork()
    broker = Broker(net.endpoint("broker"), retain=retain)
    a = PubSubClient(net.endpoint("a"), "broker")
    b = PubSubClient(net.endpoint("b"), "broker")
    return net, broker, a, b


class TestBroker:
    def test_basic_fanout(self):
        _net, broker, a, b = make()
        a.subscribe("kpi")
        b.subscribe("kpi")
        broker.step()
        a.publish("kpi", b"report-1")
        broker.step()
        assert [(t, p) for t, _s, p in a.poll()] == [("kpi", b"report-1")]
        assert [(t, p) for t, _s, p in b.poll()] == [("kpi", b"report-1")]

    def test_topic_isolation(self):
        _net, broker, a, b = make()
        a.subscribe("alpha")
        b.subscribe("beta")
        broker.step()
        a.publish("beta", b"x")
        broker.step()
        assert a.poll() == []
        assert [p for _t, _s, p in b.poll()] == [b"x"]

    def test_unsubscribe(self):
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        a.unsubscribe("t")
        broker.step()
        b.publish("t", b"x")
        broker.step()
        assert a.poll() == []

    def test_sequence_numbers_monotone(self):
        _net, broker, a, b = make()
        a.subscribe("t")
        broker.step()
        for i in range(5):
            b.publish("t", bytes([i]))
        broker.step()
        seqs = [s for _t, s, _p in a.poll()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_retention_for_late_subscriber(self):
        _net, broker, a, b = make(retain=3)
        b.publish("t", b"m1")
        b.publish("t", b"m2")
        b.publish("t", b"m3")
        b.publish("t", b"m4")
        broker.step()
        a.subscribe("t")  # late
        broker.step()
        payloads = [p for _t, _s, p in a.poll()]
        assert payloads == [b"m2", b"m3", b"m4"]  # last 3 retained

    def test_no_retention_by_default(self):
        _net, broker, a, b = make()
        b.publish("t", b"m1")
        broker.step()
        a.subscribe("t")
        broker.step()
        assert a.poll() == []

    def test_garbage_frames_ignored(self):
        net, broker, a, _b = make()
        raw = net.endpoint("raw")
        raw.send("broker", b"\xff\xff")
        broker.step()  # must not raise
        assert broker.published == 0

    def test_binary_payloads(self):
        _net, broker, a, b = make()
        a.subscribe("bin")
        broker.step()
        payload = bytes(range(256))
        b.publish("bin", payload)
        broker.step()
        assert [p for _t, _s, p in a.poll()] == [payload]

    def test_over_tcp(self):
        net = TcpNetwork()
        try:
            broker = Broker(net.endpoint("broker"))
            a = PubSubClient(net.endpoint("a"), "broker")
            b = PubSubClient(net.endpoint("b"), "broker")
            a.subscribe("t")
            deadline_poll(broker, lambda: broker.endpoint.recv(timeout=2.0))
            broker.step()
            b.publish("t", b"over tcp")
            import time

            for _ in range(100):
                broker.step()
                got = a.poll()
                if got:
                    assert got[0][2] == b"over tcp"
                    return
                time.sleep(0.02)
            pytest.fail("message never delivered over TCP")
        finally:
            net.close()


def deadline_poll(broker, recv):
    """Wait for one queued message to arrive at the broker (TCP latency)."""
    item = recv()
    if item is not None:
        # put it back through the broker path by re-queuing
        broker.endpoint._queue.put(item)  # type: ignore[attr-defined]
