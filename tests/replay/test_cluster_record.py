"""Cluster sweeps as replay corpora: the per-worker flight merge.

``repro record --workload cluster`` runs a multi-worker sweep with every
worker's flight recorder in capture mode; each worker ships its full
call stream home inside its result frame and the coordinator-side merge
folds them into one corpus.  The merge is sound because plugin names are
per-cell (``cell3/sched_rr``): no two workers ever produce the same
stream key.  Pinned here:

- the merged corpus covers every cell of the sweep, whichever worker
  hosted it, and records which run it came from (``source_digest``);
- recording is deterministic, and - the scale-out invariant again -
  byte-identical across worker counts and across inline/proc modes;
- the corpus replays bit-identically under all three engines, before
  and after reduction.
"""

import pytest

from repro.cluster.spec import cell_name
from repro.replay import (
    dumps_corpus,
    record_workload,
    reduce_corpus,
    replay_corpus,
)
from repro.wasm.threaded import ENGINES

SLOTS = 60
CELLS = 4


@pytest.fixture(scope="module")
def cluster_corpus():
    return record_workload(
        "cluster", seed=0, slots=SLOTS, workers=2, cells=CELLS, ues=8
    )


class TestMerge:
    def test_corpus_shape(self, cluster_corpus):
        meta = cluster_corpus.meta
        assert meta["workload"] == "cluster"
        # deployment shape is deliberately absent: it cannot change what
        # was captured, so it must not change the container bytes either
        assert "workers" not in meta
        assert meta["slots"] == SLOTS
        assert len(meta["source_digest"]) == 64
        assert meta["recorded_calls"] == cluster_corpus.total_calls
        assert cluster_corpus.total_calls > 0
        for stream in cluster_corpus.streams:
            assert stream.module_sha in cluster_corpus.modules

    def test_every_cell_contributes_a_stream(self, cluster_corpus):
        hosted = {s.plugin.split("/")[0] for s in cluster_corpus.streams}
        assert hosted == {cell_name(g) for g in range(CELLS)}

    def test_streams_carry_capture_state(self, cluster_corpus):
        for stream in cluster_corpus.streams:
            assert stream.calls[0].alloc  # first call allocates scratch
            assert stream.calls[0].globals_pre is not None

    def test_recording_is_deterministic(self, cluster_corpus):
        again = record_workload(
            "cluster", seed=0, slots=SLOTS, workers=2, cells=CELLS, ues=8
        )
        assert dumps_corpus(again) == dumps_corpus(cluster_corpus)

    def test_corpus_invariant_under_worker_count(self, cluster_corpus):
        solo = record_workload(
            "cluster", seed=0, slots=SLOTS, workers=1, cells=CELLS, ues=8
        )
        assert dumps_corpus(solo) == dumps_corpus(cluster_corpus)

    def test_proc_record_matches_inline(self, cluster_corpus):
        """The wire round trip (flight_to_wire -> result frame ->
        flight_from_wire) is lossless: recording over real worker
        processes produces the same corpus bytes."""
        proc = record_workload(
            "cluster",
            seed=0,
            slots=SLOTS,
            workers=2,
            cells=CELLS,
            ues=8,
            mode="proc",
        )
        assert dumps_corpus(proc) == dumps_corpus(cluster_corpus)


class TestReplay:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_under_all_engines(self, cluster_corpus, engine):
        report = replay_corpus(cluster_corpus, engine=engine)
        assert report.ok, [s.mismatches for s in report.streams if not s.ok]
        assert report.total_matched == cluster_corpus.total_calls

    def test_reduced_corpus_stays_faithful(self, cluster_corpus):
        reduced, report = reduce_corpus(cluster_corpus, max_checks=8)
        assert reduced.meta["reduced"] is True
        assert report.kept_calls <= report.original_calls
        for engine in ENGINES:
            rep = replay_corpus(reduced, engine=engine)
            assert rep.ok, [s.mismatches for s in rep.streams if not s.ok]
