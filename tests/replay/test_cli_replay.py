"""CLI smoke tests for ``repro record`` / ``reduce`` / ``replay-bench``
and the fuzz ``--seed-corpus`` bridge."""

import json
from pathlib import Path

from repro.cli import main

STARTER = str(Path(__file__).parent / "corpus" / "rt_flash_crowd.wrc")
STARTER_DIR = str(Path(__file__).parent / "corpus")


class TestRecordReduceReplayBench:
    def test_full_pipeline(self, tmp_path, capsys):
        raw = tmp_path / "fc.wrc"
        assert main([
            "record", "--workload", "flash_crowd", "--slots", "40",
            "-o", str(raw),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded flash_crowd" in out and "fidelity" in out

        reduced = tmp_path / "fc.min.wrc"
        assert main([
            "reduce", str(raw), "-o", str(reduced),
            "--max-checks", "8", "--json",
        ]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[: out.rindex("}") + 1])
        assert report["ratio"] >= 1.0
        assert reduced.exists()

        bench_json = tmp_path / "bench.json"
        assert main([
            "replay-bench", str(reduced), "--engines", "all",
            "--json", str(bench_json), "--verbose",
        ]) == 0
        out = capsys.readouterr().out
        assert "fidelity: bit-identical" in out
        doc = json.loads(bench_json.read_text())
        assert doc["schema"] == "waran-bench-replay/1"
        assert set(doc["engines"]) == {"legacy", "threaded", "aot"}
        for engine_doc in doc["engines"].values():
            assert engine_doc["fidelity_ok"] is True

    def test_record_inline_reduce(self, tmp_path, capsys):
        out_path = tmp_path / "r.wrc"
        assert main([
            "record", "--workload", "flash_crowd", "--slots", "40",
            "--reduce", "-o", str(out_path),
        ]) == 0
        assert "reduce:" in capsys.readouterr().out

    def test_replay_bench_starter_corpus(self, capsys):
        assert main(["replay-bench", STARTER]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_replay_bench_rejects_unknown_engine(self, capsys):
        assert main(["replay-bench", STARTER, "--engines", "warp"]) == 1
        assert "unknown engine" in capsys.readouterr().err

    def test_reduce_rejects_garbage_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.wrc"
        bad.write_bytes(b"not a corpus at all")
        assert main(["reduce", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestFuzzSeedCorpus:
    def test_seeds_from_corpus_file(self, capsys):
        assert main([
            "fuzz", "--budget", "30", "--seed-corpus", STARTER,
            "--mutate-ratio", "0.8", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["seeded"] > 0
        assert report["ok"] is True

    def test_seeds_from_corpus_directory(self, capsys):
        assert main([
            "fuzz", "--budget", "20", "--seed-corpus", STARTER_DIR,
            "--mutate-ratio", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "seeded=" in out

    def test_missing_seed_corpus_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "fuzz", "--budget", "5",
            "--seed-corpus", str(tmp_path / "absent.wrc"),
        ]) == 1
        assert "--seed-corpus" in capsys.readouterr().err
