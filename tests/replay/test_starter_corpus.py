"""The committed starter corpora stay loadable, faithful and canonical.

``tests/replay/corpus/*.wrc`` are reduced recordings of the chaos soak,
the rt flash-crowd scenario and a 2-worker cluster sweep, committed so
CI (and the replay
benchmark) can exercise the full replay path without re-recording.
Every corpus must replay bit-identically under all three engines and
re-serialise to the exact committed bytes.
"""

from pathlib import Path

import pytest

from repro.replay import dumps_corpus, load_corpus, replay_corpus
from repro.wasm.threaded import ENGINES

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPORA = sorted(CORPUS_DIR.glob("*.wrc"))


def corpus_ids():
    return [path.stem for path in CORPORA]


def test_starter_corpora_exist():
    assert {path.name for path in CORPORA} >= {
        "chaos_soak.wrc",
        "rt_flash_crowd.wrc",
        "cluster_2w.wrc",
    }


@pytest.mark.parametrize("path", CORPORA, ids=corpus_ids())
def test_loads_and_reserialises_byte_identically(path):
    blob = path.read_bytes()
    corpus = load_corpus(path)
    assert corpus.total_calls > 0
    assert corpus.meta.get("reduced") is True
    assert dumps_corpus(corpus) == blob


@pytest.mark.parametrize("path", CORPORA, ids=corpus_ids())
@pytest.mark.parametrize("engine", ENGINES)
def test_replays_bit_identically(path, engine):
    corpus = load_corpus(path)
    report = replay_corpus(corpus, engine=engine)
    assert report.ok, [s.mismatches for s in report.streams if not s.ok]
    assert report.total_matched == corpus.total_calls
