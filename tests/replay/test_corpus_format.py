"""Replay corpus container format: round trips and corruption rejection.

The ``.wrc`` container is magic + version + payload sha256 + length +
zlib(canonical JSON).  These tests pin the determinism guarantee
(loads -> dumps is byte-identical) and that every way a file can be
broken - truncated, wrong magic, future version, flipped bits, length
lies, internally inconsistent module hashes - fails with a clear
:class:`CorpusError`, never a stack trace from ``zlib`` or ``json``.
"""

import hashlib
import json
import struct
import zlib

import pytest

from repro.replay import (
    CORPUS_VERSION,
    CorpusError,
    ReplayCall,
    ReplayCorpus,
    ReplayStream,
    dumps_corpus,
    load_corpus,
    loads_corpus,
    save_corpus,
)


def tiny_corpus() -> ReplayCorpus:
    wasm = b"\x00asm\x01\x00\x00\x00"
    sha = hashlib.sha256(wasm).hexdigest()
    call = ReplayCall(
        seq=1,
        entry="schedule",
        input_bytes=b"\x01\x02",
        outcome="ok",
        output_bytes=b"\x00\x00\x00\x00",
        fuel_used=42,
        globals_pre=[[0, 7]],
        alloc=True,
        chaos={"kind": "trap", "site": "plugin"},
        rt={"fuel": 9000},
    )
    stream = ReplayStream(
        plugin="rr",
        generation=1,
        module_sha=sha,
        fuel_limit=200_000,
        output_record_bytes=8,
        max_output_bytes=1 << 16,
        calls=[call],
    )
    return ReplayCorpus(
        meta={"workload": "unit", "seed": 0},
        modules={sha: wasm},
        streams=[stream],
    )


class TestRoundTrip:
    def test_dumps_loads_preserves_everything(self):
        corpus = tiny_corpus()
        back = loads_corpus(dumps_corpus(corpus))
        assert back.meta == corpus.meta
        assert back.modules == corpus.modules
        assert len(back.streams) == 1
        stream, orig = back.streams[0], corpus.streams[0]
        assert stream.plugin == orig.plugin
        assert stream.fuel_limit == orig.fuel_limit
        call, expect = stream.calls[0], orig.calls[0]
        assert call.input_bytes == expect.input_bytes
        assert call.output_bytes == expect.output_bytes
        assert call.fuel_used == expect.fuel_used
        assert call.globals_pre == expect.globals_pre
        assert call.alloc == expect.alloc
        assert call.chaos == expect.chaos
        assert call.rt == expect.rt

    def test_reserialisation_is_byte_identical(self):
        blob = dumps_corpus(tiny_corpus())
        assert dumps_corpus(loads_corpus(blob)) == blob

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "c.wrc"
        size = save_corpus(path, tiny_corpus())
        assert path.stat().st_size == size
        assert load_corpus(path).total_calls == 1

    def test_fidelity_digest_tracks_expectations(self):
        a, b = tiny_corpus(), tiny_corpus()
        assert a.fidelity_digest() == b.fidelity_digest()
        b.streams[0].calls[0].fuel_used = 43
        assert a.fidelity_digest() != b.fidelity_digest()

    def test_none_output_and_fuel_survive(self):
        corpus = tiny_corpus()
        corpus.streams[0].calls[0].output_bytes = None
        corpus.streams[0].calls[0].fuel_used = None
        call = loads_corpus(dumps_corpus(corpus)).streams[0].calls[0]
        assert call.output_bytes is None
        assert call.fuel_used is None


class TestRejection:
    def test_truncated_header(self):
        with pytest.raises(CorpusError, match="truncated"):
            loads_corpus(b"WRC")

    def test_bad_magic(self):
        blob = bytearray(dumps_corpus(tiny_corpus()))
        blob[:3] = b"XXX"
        with pytest.raises(CorpusError, match="magic"):
            loads_corpus(bytes(blob))

    def test_future_version(self):
        blob = bytearray(dumps_corpus(tiny_corpus()))
        blob[3] = CORPUS_VERSION + 1
        with pytest.raises(CorpusError, match="version"):
            loads_corpus(bytes(blob))

    def test_sha_mismatch(self):
        blob = bytearray(dumps_corpus(tiny_corpus()))
        blob[10] ^= 0xFF  # inside the header's payload-sha field
        with pytest.raises(CorpusError, match="sha256 mismatch"):
            loads_corpus(bytes(blob))

    def test_corrupt_body(self):
        blob = bytearray(dumps_corpus(tiny_corpus()))
        blob[-1] ^= 0xFF
        with pytest.raises(CorpusError, match="corrupt"):
            loads_corpus(bytes(blob))

    def test_truncated_payload(self):
        blob = dumps_corpus(tiny_corpus())
        with pytest.raises(CorpusError, match="corrupt|truncated"):
            loads_corpus(blob[:-5])

    def test_length_mismatch(self):
        payload = json.dumps({"version": 1}).encode()
        packed = zlib.compress(payload)
        header = struct.pack(
            ">3sB32sQ", b"WRC", CORPUS_VERSION,
            hashlib.sha256(payload).digest(), len(payload) + 1,
        )
        with pytest.raises(CorpusError, match="promises"):
            loads_corpus(header + packed)

    def test_module_hash_mismatch(self):
        corpus = tiny_corpus()
        doc = json.loads(
            zlib.decompress(dumps_corpus(corpus)[44:]).decode()
        )
        key = next(iter(doc["modules"]))
        doc["modules"][key] = (b"\x00asm\x01\x00\x00\x00garbage").hex()
        payload = json.dumps(doc, sort_keys=True).encode()
        packed = zlib.compress(payload, 9)
        blob = struct.pack(
            ">3sB32sQ", b"WRC", CORPUS_VERSION,
            hashlib.sha256(payload).digest(), len(payload),
        ) + packed
        with pytest.raises(CorpusError, match="hash"):
            loads_corpus(blob)

    def test_stream_missing_module(self):
        corpus = tiny_corpus()
        corpus.streams[0].module_sha = "f" * 64
        with pytest.raises(CorpusError, match="missing module"):
            loads_corpus(dumps_corpus(corpus))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CorpusError, match="cannot read"):
            load_corpus(tmp_path / "absent.wrc")
