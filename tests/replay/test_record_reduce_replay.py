"""The tentpole round trip: record a live workload, reduce it, replay it.

Acceptance contract pinned here:

- recording the chaos soak and the rt flash-crowd scenario and replaying
  the corpus standalone reproduces every recorded outcome, output byte
  and fuel count **bit-identically under all three engines**;
- recording is itself deterministic (same workload+seed -> same bytes);
- reduction shrinks the serialised corpus by at least 2x while the
  fidelity contract keeps holding;
- scheduler streams survive reduction without rebasing (their live
  behaviour is fully standalone-reproducible).
"""

import pytest

from repro.replay import (
    dumps_corpus,
    record_workload,
    reduce_corpus,
    replay_corpus,
)
from repro.wasm.threaded import ENGINES

CHAOS_SLOTS = 200
FLASH_SLOTS = 40


@pytest.fixture(scope="module")
def chaos_corpus():
    return record_workload("chaos", seed=0, slots=CHAOS_SLOTS)


@pytest.fixture(scope="module")
def flash_corpus():
    return record_workload("flash_crowd", seed=0, slots=FLASH_SLOTS)


class TestRecord:
    def test_chaos_capture_shape(self, chaos_corpus):
        assert chaos_corpus.meta["workload"] == "chaos"
        assert chaos_corpus.meta["slots"] == CHAOS_SLOTS
        assert chaos_corpus.meta["recorded_calls"] == chaos_corpus.total_calls
        assert chaos_corpus.total_calls > CHAOS_SLOTS
        assert chaos_corpus.streams and chaos_corpus.modules
        for stream in chaos_corpus.streams:
            assert stream.module_sha in chaos_corpus.modules
            assert stream.calls[0].alloc  # first call allocates scratch

    def test_chaos_captures_faults(self, chaos_corpus):
        calls = [c for s in chaos_corpus.streams for c in s.calls]
        assert any(c.chaos is not None for c in calls)
        assert any(c.outcome != "ok" for c in calls)

    def test_flash_crowd_captures_rt_budgets(self, flash_corpus):
        calls = [c for s in flash_corpus.streams for c in s.calls]
        assert any(
            c.rt is not None and c.rt.get("fuel") is not None for c in calls
        )

    def test_recording_is_deterministic(self, flash_corpus):
        again = record_workload("flash_crowd", seed=0, slots=FLASH_SLOTS)
        assert dumps_corpus(again) == dumps_corpus(flash_corpus)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            record_workload("nope")


class TestReplayFidelity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_chaos_bit_identical(self, chaos_corpus, engine):
        report = replay_corpus(chaos_corpus, engine=engine)
        assert report.ok, [s.mismatches for s in report.streams if not s.ok]
        assert report.total_matched == chaos_corpus.total_calls
        assert report.fidelity_digest == chaos_corpus.fidelity_digest()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_flash_crowd_bit_identical(self, flash_corpus, engine):
        report = replay_corpus(flash_corpus, engine=engine)
        assert report.ok, [s.mismatches for s in report.streams if not s.ok]

    def test_stats_populated(self, flash_corpus):
        report = replay_corpus(flash_corpus)
        doc = report.to_json()
        assert doc["fidelity_ok"] is True
        assert doc["calls"] == flash_corpus.total_calls
        assert doc["mean_call_us"] > 0
        for stream in doc["streams"]:
            assert stream["fuel_total"] > 0
            assert stream["p99_us"] >= stream["p50_us"] >= 0


class TestReduce:
    @pytest.fixture(scope="class")
    def reduced(self, chaos_corpus):
        return reduce_corpus(chaos_corpus, max_checks=12)

    def test_ratio_at_least_2x(self, reduced):
        corpus, report = reduced
        assert report.ratio >= 2.0, report.summary()
        assert report.kept_calls < report.original_calls

    def test_reduced_corpus_stays_faithful(self, reduced):
        corpus, _report = reduced
        for engine in ENGINES:
            report = replay_corpus(corpus, engine=engine)
            assert report.ok, [
                s.mismatches for s in report.streams if not s.ok
            ]

    def test_scheduler_streams_never_rebase(self, reduced):
        corpus, report = reduced
        assert report.rebased == 0
        assert all(
            call.live_match
            for stream in corpus.streams
            for call in stream.calls
        )

    def test_every_class_keeps_a_representative(self, chaos_corpus, reduced):
        from repro.replay.reduce import _call_class

        corpus, _report = reduced
        for stream in chaos_corpus.streams:
            kept = next(
                (
                    s
                    for s in corpus.streams
                    if (s.plugin, s.generation)
                    == (stream.plugin, stream.generation)
                ),
                None,
            )
            assert kept is not None
            assert {_call_class(c) for c in stream.calls} == {
                _call_class(c) for c in kept.calls
            }

    def test_input_corpus_untouched(self, chaos_corpus):
        before = dumps_corpus(chaos_corpus)
        reduce_corpus(chaos_corpus, shrink_modules=False)
        assert dumps_corpus(chaos_corpus) == before

    def test_meta_records_reduction(self, reduced):
        corpus, report = reduced
        assert corpus.meta["reduced"] is True
        assert corpus.meta["reduction"]["kept_calls"] == report.kept_calls


class TestFuzzSeeding:
    def test_seeded_campaign_is_deterministic(self, flash_corpus):
        from repro.fuzz import run_campaign

        modules = [flash_corpus.modules[sha]
                   for sha in sorted(flash_corpus.modules)]
        a = run_campaign(3, 40, mutate_ratio=0.8, seed_modules=modules)
        b = run_campaign(3, 40, mutate_ratio=0.8, seed_modules=modules)
        assert a.seeded > 0
        assert a.ok and b.ok
        assert a.digest == b.digest

    def test_seed_list_changes_campaign(self, flash_corpus):
        from repro.fuzz import run_campaign

        modules = [flash_corpus.modules[sha]
                   for sha in sorted(flash_corpus.modules)]
        seeded = run_campaign(3, 40, mutate_ratio=0.8, seed_modules=modules)
        plain = run_campaign(3, 40, mutate_ratio=0.8)
        assert plain.seeded == 0
        assert seeded.digest != plain.digest
