"""Tests for channel models and traffic sources."""

import pytest

from repro.channel import FixedMcsChannel, MarkovCqiChannel, PathLossFadingChannel
from repro.traffic import (
    CbrSource,
    DownlinkBuffer,
    FullBufferSource,
    OnOffSource,
    PoissonSource,
)


class TestFixedMcsChannel:
    def test_reports_requested_mcs(self):
        ch = FixedMcsChannel(20)
        assert ch.mcs(0) == 20
        assert ch.mcs(100) == 20

    def test_cqi_consistent_with_mcs(self):
        from repro.phy.mcs import cqi_to_mcs

        ch = FixedMcsChannel(24)
        assert cqi_to_mcs(ch.step(0)) >= 24

    def test_range_check(self):
        with pytest.raises(ValueError):
            FixedMcsChannel(29)


class TestMarkovCqiChannel:
    def test_stays_in_bounds(self):
        ch = MarkovCqiChannel(initial_cqi=9, p_step=0.9, lo=5, hi=12, seed=1)
        values = [ch.step(slot) for slot in range(2000)]
        assert all(5 <= v <= 12 for v in values)

    def test_actually_moves(self):
        ch = MarkovCqiChannel(initial_cqi=9, p_step=0.5, seed=2)
        values = {ch.step(slot) for slot in range(500)}
        assert len(values) > 1

    def test_idempotent_within_slot(self):
        ch = MarkovCqiChannel(seed=3)
        assert ch.step(5) == ch.step(5)

    def test_deterministic_with_seed(self):
        a = [MarkovCqiChannel(seed=7).step(s) for s in range(100)]
        b = [MarkovCqiChannel(seed=7).step(s) for s in range(100)]
        assert a == b

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            MarkovCqiChannel(lo=10, hi=5)


class TestPathLossChannel:
    def test_closer_is_better(self):
        near = PathLossFadingChannel(distance_m=20, seed=1, shadowing_std_db=0)
        far = PathLossFadingChannel(distance_m=2000, seed=1, shadowing_std_db=0)
        near_cqi = sum(near.step(s) for s in range(200)) / 200
        far_cqi = sum(far.step(s) for s in range(200)) / 200
        assert near_cqi > far_cqi

    def test_cqi_in_range(self):
        ch = PathLossFadingChannel(distance_m=300, seed=5)
        assert all(0 <= ch.step(s) <= 15 for s in range(500))

    def test_bad_distance(self):
        with pytest.raises(ValueError):
            PathLossFadingChannel(distance_m=0)

    def test_fading_varies(self):
        ch = PathLossFadingChannel(distance_m=100, seed=9)
        sinrs = set()
        for s in range(100):
            ch.step(s)
            sinrs.add(round(ch.last_sinr_db, 3))
        assert len(sinrs) > 10


class TestTrafficSources:
    def test_full_buffer_never_dry(self):
        src = FullBufferSource()
        assert src.arrivals(0.0, 1e-3) > 100_000

    def test_cbr_exact_rate(self):
        src = CbrSource(8e6)  # 1 MB/s
        total = sum(src.arrivals(i * 1e-3, 1e-3) for i in range(1000))
        assert total == pytest.approx(1_000_000, abs=2)

    def test_cbr_fractional_carry(self):
        src = CbrSource(1000.0)  # 125 B/s -> 0.125 B per ms
        total = sum(src.arrivals(i * 1e-3, 1e-3) for i in range(8000))
        assert total == pytest.approx(1000, abs=1)

    def test_cbr_zero_rate(self):
        src = CbrSource(0.0)
        assert src.arrivals(0.0, 1.0) == 0

    def test_cbr_negative_rejected(self):
        with pytest.raises(ValueError):
            CbrSource(-1)

    def test_poisson_mean_rate(self):
        src = PoissonSource(8e6, packet_bytes=1000, seed=4)
        total = sum(src.arrivals(i * 1e-3, 1e-3) for i in range(20_000))
        assert total == pytest.approx(20e6 / 8 * 8, rel=0.05)  # ~2.0 MB in 20 s...

    def test_poisson_zero_rate(self):
        src = PoissonSource(0.0, seed=1)
        assert sum(src.arrivals(i * 1e-3, 1e-3) for i in range(100)) == 0

    def test_onoff_duty_cycle(self):
        src = OnOffSource(8e6, mean_on_s=0.5, mean_off_s=0.5, seed=8)
        total = sum(src.arrivals(i * 1e-3, 1e-3) for i in range(60_000))
        # ~50% duty cycle of 1 MB/s over 60 s -> ~30 MB
        assert total == pytest.approx(30e6, rel=0.25)

    def test_onoff_bad_params(self):
        with pytest.raises(ValueError):
            OnOffSource(1e6, mean_on_s=0)


class TestDownlinkBuffer:
    def test_enqueue_drain(self):
        buf = DownlinkBuffer()
        buf.enqueue(1000)
        assert buf.occupancy_bytes == 1000
        assert buf.drain(400) == 400
        assert buf.occupancy_bytes == 600
        assert buf.delivered_bytes == 400

    def test_drain_more_than_available(self):
        buf = DownlinkBuffer()
        buf.enqueue(100)
        assert buf.drain(500) == 100
        assert buf.occupancy_bytes == 0

    def test_overflow_drops(self):
        buf = DownlinkBuffer(capacity_bytes=1000)
        buf.enqueue(1500)
        assert buf.occupancy_bytes == 1000
        assert buf.dropped_bytes == 500

    def test_has_data(self):
        buf = DownlinkBuffer()
        assert not buf.has_data
        buf.enqueue(1)
        assert buf.has_data

    def test_negative_rejected(self):
        buf = DownlinkBuffer()
        with pytest.raises(ValueError):
            buf.enqueue(-1)
        with pytest.raises(ValueError):
            buf.drain(-1)
