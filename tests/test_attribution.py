"""Latency attribution over synthetic span forests."""

import pytest

from repro.obs.attribution import AttributionReport, attribute_slots


def _slot(span_id, elapsed_us, children=None, slot=0, service="worker0"):
    doc = {
        "trace_id": "ab" * 8,
        "span_id": span_id,
        "parent_id": 1,
        "name": "worker.slot",
        "service": service,
        "thread_id": 0,
        "start_ns": span_id * 1000,
        "elapsed_us": elapsed_us,
        "status": "ok",
        "attrs": {"slot": slot},
    }
    if children:
        doc["children_us"] = dict(children)
    return doc


def _child(span_id, parent_id, name, elapsed_us, service="worker0"):
    return {
        "trace_id": "ab" * 8,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "service": service,
        "thread_id": 0,
        "start_ns": span_id * 1000,
        "elapsed_us": elapsed_us,
        "status": "ok",
        "attrs": {},
    }


class TestAttribution:
    def test_segments_sum_exactly_to_slot_time(self):
        docs = [
            _slot(10, 100.0, {"gnb.step": 70.0, "uplink.flush": 10.0}),
            _slot(11, 200.0, {"gnb.step": 150.0}, slot=1),
        ]
        report = attribute_slots(docs).to_json()
        total = sum(
            r["total_us"] for r in report["segments"] if r["scope"] == "local"
        )
        assert total == pytest.approx(300.0)  # includes the "other" rows
        assert report["slot_count"] == 2
        assert report["dominant"] == "gnb.step"

    def test_p99_slot_decomposition_matches_measured(self):
        docs = [
            _slot(10 + i, 100.0 + i, {"gnb.step": 80.0}, slot=i)
            for i in range(50)
        ]
        report = attribute_slots(docs).to_json()
        p99 = report["p99_slot"]
        assert p99["segments_sum_us"] == pytest.approx(
            p99["elapsed_us"], rel=1e-6
        )
        assert p99["segments"]["gnb.step"] == pytest.approx(80.0)
        # the p99 block names the slot at the p99 cut, not the worst one
        assert p99["elapsed_us"] == report["slot_p99_us"]

    def test_fallback_rederives_segments_from_child_spans(self):
        slot = _slot(10, 100.0)  # no children_us recorded
        docs = [slot, _child(20, 10, "gnb.step", 60.0)]
        report = attribute_slots(docs).to_json()
        rows = {r["name"]: r for r in report["segments"]}
        assert rows["gnb.step"]["total_us"] == pytest.approx(60.0)
        assert rows["other"]["total_us"] == pytest.approx(40.0)

    def test_remote_children_reported_separately(self):
        slot = _slot(10, 100.0, {"gnb.step": 90.0})
        docs = [slot, _child(30, 10, "coord.ingest", 25.0, service="coord")]
        report = attribute_slots(docs).to_json()
        rows = {(r["name"], r["scope"]) for r in report["segments"]}
        assert ("coord.ingest", "remote") in rows
        # remote time overlaps the slot; it must NOT deflate "other"
        other = next(
            r for r in report["segments"] if r["name"] == "other"
        )
        assert other["total_us"] == pytest.approx(10.0)

    def test_deadline_misses_sorted_and_guilty(self):
        docs = [
            _slot(10, 500.0, {"gnb.step": 450.0}, slot=3),
            _slot(11, 80.0, {"gnb.step": 60.0}, slot=4),
            _slot(12, 900.0, {"uplink.flush": 700.0}, slot=5),
        ]
        report = attribute_slots(docs, budget_us=100.0)
        misses = report.deadline_misses
        assert [m["slot"] for m in misses] == [5, 3]  # worst first
        assert misses[0]["guilty"] == "uplink.flush"
        assert misses[1]["guilty"] == "gnb.step"
        assert "deadline misses: 2" in report.render_table()

    def test_self_time_guilty_when_children_small(self):
        docs = [_slot(10, 500.0, {"gnb.step": 50.0}, slot=0)]
        report = attribute_slots(docs, budget_us=100.0).to_json()
        assert report["deadline_misses"][0]["guilty"] == "self"

    def test_critical_path_follows_biggest_child(self):
        slot = _slot(10, 100.0, {"gnb.step": 90.0})
        docs = [
            slot,
            _child(20, 10, "gnb.step", 90.0),
            _child(21, 20, "plugin.call", 80.0),
            _child(22, 20, "cheap", 5.0),
        ]
        report = attribute_slots(docs).to_json()
        assert [h["name"] for h in report["critical_path"]] == [
            "worker.slot",
            "gnb.step",
            "plugin.call",
        ]

    def test_empty_forest_degrades_gracefully(self):
        report = attribute_slots([]).to_json()
        assert report["slot_count"] == 0
        assert report["segments"] == []
        assert report["p99_slot"] is None
        AttributionReport(report)  # renderable doc shape

    def test_render_table_mentions_dominant_and_budget(self):
        docs = [_slot(10, 100.0, {"gnb.step": 70.0})]
        text = attribute_slots(docs, budget_us=1000.0).render_table()
        assert "dominant segment: gnb.step" in text
        assert "budget=1000us" in text
