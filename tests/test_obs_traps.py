"""Every trap kind raised through PluginHost.call lands in the event log.

One tiny WAT module per spec trap code; each is loaded into a bare
:class:`PluginHost` (sanitizer bypassed - these modules deliberately
misbehave) and invoked through the normal byte-buffer path.  The host must
classify the fault, raise :class:`PluginError`, and emit a structured
event carrying the machine-readable trap code.
"""

import pytest

from repro import obs
from repro.abi.host import PluginError, PluginHost
from repro.obs import OBS
from repro.wasm.wat import assemble

HEADER = '(func (export "alloc") (param i32) (result i32) (i32.const 1024))'

#: trap code -> (module body, expected PluginError.kind, fuel limit)
TRAP_MODULES = {
    "oob": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (i32.load (i32.const 0x7fffffff))))""",
        "trap",
        None,
    ),
    "div0": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (i32.div_s (i32.const 1) (i32.const 0))))""",
        "trap",
        None,
    ),
    "overflow": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (i32.div_s (i32.const -2147483648) (i32.const -1))))""",
        "trap",
        None,
    ),
    "trunc": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (i32.trunc_f64_s (f64.const 4e10))))""",
        "trap",
        None,
    ),
    "unreachable": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (unreachable)))""",
        "trap",
        None,
    ),
    "stack": (
        f"""(module (memory 1) {HEADER}
          (func $r (export "run") (param i32 i32) (result i32)
            (call $r (local.get 0) (local.get 1))))""",
        "trap",
        None,
    ),
    "fuel": (
        f"""(module (memory 1) {HEADER}
          (func (export "run") (param i32 i32) (result i32)
            (loop $top (br $top)) (i32.const 0)))""",
        "fuel",
        10_000,
    ),
}


@pytest.fixture
def telemetry():
    obs.enable()
    obs.reset()
    yield OBS
    obs.reset()
    obs.disable()


@pytest.mark.parametrize("trap_code", sorted(TRAP_MODULES))
def test_trap_kind_produces_structured_event(telemetry, trap_code):
    source, expected_kind, fuel = TRAP_MODULES[trap_code]
    host = PluginHost(assemble(source), name=f"bad-{trap_code}", sanitize=False)
    if fuel is not None:
        host.limits.fuel = fuel

    with pytest.raises(PluginError) as info:
        host.call(b"\x00" * 8)
    assert info.value.kind == expected_kind

    (event,) = telemetry.events.events(kind=f"plugin.{expected_kind}")
    assert event.source == f"bad-{trap_code}"
    assert event.fields["trap_code"] == trap_code
    assert event.fields["entry"] == "run"

    # the failed call is also in the flight recorder with the same outcome
    (rec,) = telemetry.flight.last(1)
    assert rec.outcome == expected_kind
    assert rec.output_bytes is None

    # ... and counted in the registry under its outcome label
    calls = telemetry.registry.counter("waran_plugin_calls_total")
    assert calls.value(plugin=f"bad-{trap_code}", outcome=expected_kind) == 1


def test_abi_violation_produces_event(telemetry):
    """Bad pointers are host-detected faults: kind 'abi', no trap code."""
    source = f"""(module (memory 1) {HEADER}
      (func (export "run") (param i32 i32) (result i32) (i32.const -1)))"""
    host = PluginHost(assemble(source), name="bad-abi", sanitize=False)
    with pytest.raises(PluginError) as info:
        host.call(b"\x00" * 8)
    assert info.value.kind == "abi"
    (event,) = telemetry.events.events(kind="plugin.abi")
    assert event.source == "bad-abi"
    assert "trap_code" not in event.fields
