"""Tests for the `repro fuzz` CLI: campaign mode and corpus replay."""

import json
from pathlib import Path

from repro.cli import main

CORPUS_DIR = str(Path(__file__).parent / "wasm" / "corpus")


class TestCampaign:
    def test_small_campaign_passes(self, capsys):
        assert main(["fuzz", "--seed", "0", "--budget", "40"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "no divergences, no crashes" in out

    def test_json_output_and_determinism(self, capsys):
        assert main(["fuzz", "--seed", "3", "--budget", "40", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["fuzz", "--seed", "3", "--budget", "40", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["digest"] == second["digest"]
        assert first["executed"] == 40
        assert first["failures"] == []

    def test_time_box_zero_executes_nothing(self, capsys):
        assert (
            main(["fuzz", "--seed", "0", "--budget", "40", "--time-box", "0", "--json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["executed"] == 0


class TestReplay:
    def test_replay_shipped_corpus(self, capsys):
        assert main(["fuzz", "--replay", CORPUS_DIR]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "corpus cases" in out

    def test_replay_single_file(self, capsys):
        path = sorted(Path(CORPUS_DIR).glob("*.json"))[0]
        assert main(["fuzz", "--replay", str(path)]) == 0

    def test_replay_catches_stale_expectation(self, tmp_path, capsys):
        case = json.loads(
            (Path(CORPUS_DIR) / "loop-sum.json").read_text()
        )
        case["expect"][0][1] = 123456789  # wrong on purpose
        broken = tmp_path / "stale.json"
        broken.write_text(json.dumps(case))
        assert main(["fuzz", "--replay", str(broken)]) == 1
        assert "expected" in capsys.readouterr().err
