"""rt scenario acceptance tests: the flash-crowd contract, end to end.

The tentpole acceptance criteria for the rt layer, run as regular tests:
a flash crowd with a hostile fuel-hog plugin shows a >=10x deadline-miss
reduction with enforcement on, SLA-lane plugins are never shed, the hog
is quarantined and then re-admitted after probation, and every scenario
is deterministically reproducible (identical digests across runs and -
slow-marked - across all three engines).
"""

from dataclasses import replace

import pytest

from repro.rt.scenarios import (
    SCENARIOS,
    baseline_comparison,
    run_scenario,
    scenario_policy,
)


@pytest.fixture(scope="module")
def comparison():
    """One rt-off/rt-on flash-crowd pair shared by the acceptance tests."""
    return baseline_comparison(seed=0)


class TestFlashCrowdAcceptance:
    def test_baseline_melts_during_the_burst(self, comparison):
        off = comparison["baseline"]
        assert off["counters"]["misses"] >= 50
        assert off["miss_rate"] > 0.2

    def test_miss_reduction_at_least_10x(self, comparison):
        assert comparison["miss_reduction"] >= 10.0
        assert comparison["enforced"]["counters"]["misses"] <= 5

    def test_sla_lane_never_shed(self, comparison):
        shed = comparison["enforced"]["counters"]["shed_by_lane"]
        assert shed.get("sla", 0) == 0

    def test_hog_quarantined_then_readmitted(self, comparison):
        plugins = comparison["enforced"]["plugins"]
        hog = next(p for key, p in plugins.items() if key.endswith("hog"))
        assert hog["overruns"] >= 1  # fuel-cut at its lane budget
        assert hog["quarantines"] >= 1
        assert hog["readmissions"] >= 1
        assert hog["last_verdict"] in ("admit", "probe")

    def test_well_behaved_plugins_untouched(self, comparison):
        plugins = comparison["enforced"]["plugins"]
        for key, st in plugins.items():
            if key.endswith("hog"):
                continue
            assert st["quarantines"] == 0, key
            assert st["overruns"] == 0, key

    def test_enforcement_documented_in_log(self, comparison):
        # the standalone run reproduces the comparison's enforced side
        # bit-exactly and its log carries the verdict-change audit trail
        report = run_scenario("flash_crowd", seed=0)
        assert report.digest == comparison["enforced"]["digest"]
        assert "verdict=quarantine" in report.log
        assert "readmitted" in report.log


class TestDeterminism:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_same_seed_same_digest(self, name):
        a = run_scenario(name, seed=3)
        b = run_scenario(name, seed=3)
        assert a.digest == b.digest
        assert a.log == b.log

    def test_different_seeds_diverge(self):
        assert run_scenario("flash_crowd", seed=0).digest != run_scenario(
            "flash_crowd", seed=1
        ).digest

    def test_policy_is_part_of_the_digest(self):
        default = run_scenario("flash_crowd", seed=0)
        wider = run_scenario(
            "flash_crowd", seed=0,
            policy=replace(scenario_policy("flash_crowd"), budget_us=800.0),
        )
        assert default.digest != wider.digest


class TestHandover:
    def test_mobility_churn_stays_within_budget(self):
        report = run_scenario("handover", seed=0)
        assert report.handovers > 0
        assert report.counters["misses"] == 0
        assert report.delivered_bytes > 0

    def test_handovers_are_deterministic(self):
        a = run_scenario("handover", seed=5)
        b = run_scenario("handover", seed=5)
        assert a.handovers == b.handovers
        assert a.digest == b.digest


class TestMixedSla:
    def test_scarcity_sheds_down_the_lane_ladder(self):
        report = run_scenario("mixed_sla", seed=0)
        shed = report.counters["shed_by_lane"]
        assert shed.get("be", 0) > 0  # best-effort pays first
        assert shed.get("sla", 0) == 0  # the SLA lane never does
        assert report.counters["dispatched"] > 0

    def test_admission_off_disables_verdict_pressure(self):
        policy = replace(scenario_policy("mixed_sla"), admission=False)
        report = run_scenario("mixed_sla", seed=0, policy=policy)
        # lanes still plan and shed, but no plugin is ever rejected
        assert all(p["rejects"] == 0 for p in report.plugins.values())


class TestScenarioApi:
    def test_unknown_scenario_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            run_scenario("nope")
        with pytest.raises(ValueError):
            scenario_policy("nope")


class TestRtCli:
    def test_rt_json_report(self, capsys):
        import json

        from repro.cli import main

        code = main(["rt", "--scenario", "mixed_sla", "--slots", "40", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scenario"] == "mixed_sla"
        assert doc["counters"]["slots"] == 40
        assert doc["attribution"]
        assert doc["digest"]

    def test_rt_baseline_prints_reduction(self, capsys):
        from repro.cli import main

        code = main(["rt", "--baseline", "--slots", "150"])
        assert code == 0
        assert "reduction" in capsys.readouterr().out

    def test_rt_verdict_table_and_overrides(self, capsys):
        from repro.cli import main

        code = main(
            ["rt", "--scenario", "flash_crowd", "--slots", "120",
             "--budget-us", "400", "--lanes", "sla:60;be:40",
             "--verify-determinism"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "byte-identical" in out

    def test_rt_rejects_bad_policy(self, capsys):
        from repro.cli import main

        assert main(["rt", "--policy", "bogus=1"]) == 1
        assert "error" in capsys.readouterr().err


@pytest.mark.slow
class TestEngineMatrix:
    """Fuel metering is engine-identical, so the digests must be too."""

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_digest_identical_across_engines(self, name):
        digests = {
            engine: run_scenario(name, seed=0, engine=engine).digest
            for engine in ("legacy", "threaded", "aot")
        }
        assert len(set(digests.values())) == 1, digests
