"""Tests for the serialization codecs and bit-width adaptation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs import (
    Asn1Field,
    Asn1LiteCodec,
    Asn1Schema,
    CodecError,
    JsonCodec,
    PbField,
    PbMessage,
    PbWireCodec,
)
from repro.codecs.bitadapt import FieldSpec, adapt_message, narrow, widen
from repro.codecs.pbwire import (
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [(0, b"\x00"), (1, b"\x01"), (127, b"\x7f"), (128, b"\x80\x01"), (300, b"\xac\x02")],
    )
    def test_known_values(self, value, encoded):
        assert write_varint(value) == encoded
        assert read_varint(encoded, 0) == (value, len(encoded))

    def test_negative_int64_is_ten_bytes(self):
        assert len(write_varint(-1)) == 10

    def test_truncated(self):
        with pytest.raises(CodecError):
            read_varint(b"\x80", 0)

    @given(st.integers(0, (1 << 64) - 1))
    def test_roundtrip(self, value):
        assert read_varint(write_varint(value), 0)[0] == value

    @given(st.integers(-(1 << 63), (1 << 63) - 1))
    def test_zigzag_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_zigzag_small_negatives_are_small(self):
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2
        assert zigzag_encode(-2) == 3


KPI = PbMessage(
    "Kpi",
    [
        PbField(1, "ue_id", "int64"),
        PbField(2, "cqi", "int64"),
        PbField(3, "throughput", "double"),
        PbField(4, "delta", "sint64"),
        PbField(5, "connected", "bool"),
        PbField(6, "tag", "string"),
        PbField(7, "raw", "bytes"),
        PbField(8, "samples", "double", repeated=True),
    ],
)

REPORT = PbMessage(
    "Report",
    [
        PbField(1, "cell_id", "int64"),
        PbField(2, "kpis", "message", repeated=True, message=KPI),
    ],
)


class TestPbWire:
    def test_roundtrip_all_kinds(self):
        msg = {
            "ue_id": 42,
            "cqi": 15,
            "throughput": 12.5,
            "delta": -3,
            "connected": True,
            "tag": "embb",
            "raw": b"\x00\x01\xff",
            "samples": [1.0, 2.5, -3.25],
        }
        codec = PbWireCodec(KPI)
        assert codec.decode(codec.encode(msg)) == msg

    def test_nested_messages(self):
        msg = {
            "cell_id": 7,
            "kpis": [{"ue_id": 1, "cqi": 9}, {"ue_id": 2, "cqi": 12}],
        }
        codec = PbWireCodec(REPORT)
        assert codec.decode(codec.encode(msg)) == msg

    def test_missing_fields_omitted(self):
        codec = PbWireCodec(KPI)
        assert codec.decode(codec.encode({"ue_id": 5})) == {"ue_id": 5}

    def test_unknown_fields_skipped(self):
        # encode with a schema that has an extra field; decode with KPI
        extended = PbMessage(
            "KpiV2", KPI.fields + [PbField(99, "extra", "string")]
        )
        payload = extended.encode({"ue_id": 1, "extra": "future-feature"})
        assert PbWireCodec(KPI).decode(payload) == {"ue_id": 1}

    def test_negative_int64(self):
        codec = PbWireCodec(KPI)
        assert codec.decode(codec.encode({"ue_id": -12}))["ue_id"] == -12

    def test_packed_repeated_scalars(self):
        codec = PbWireCodec(KPI)
        payload = codec.encode({"samples": [1.0, 2.0]})
        # packed: one tag + length + 16 payload bytes
        assert len(payload) == 1 + 1 + 16

    def test_wire_type_mismatch_rejected(self):
        # field 1 declared varint, give it a length-delimited payload
        bad = write_varint((1 << 3) | 2) + write_varint(3) + b"abc"
        with pytest.raises(CodecError, match="wire type"):
            PbWireCodec(KPI).decode(bad)

    def test_duplicate_field_numbers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PbMessage("Bad", [PbField(1, "a", "int64"), PbField(1, "b", "bool")])

    def test_bad_utf8_rejected(self):
        bad = write_varint((6 << 3) | 2) + write_varint(2) + b"\xff\xfe"
        with pytest.raises(CodecError, match="utf-8"):
            PbWireCodec(KPI).decode(bad)

    @given(
        st.integers(-(1 << 62), 1 << 62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.binary(max_size=64),
    )
    def test_roundtrip_property(self, ue_id, tput, raw):
        codec = PbWireCodec(KPI)
        msg = {"ue_id": ue_id, "throughput": tput, "raw": raw}
        assert codec.decode(codec.encode(msg)) == msg


E2_CONTROL = Asn1Schema(
    "E2Control",
    [
        Asn1Field("msg_type", "int", 0, 15),
        Asn1Field("power", "int", 0, 255),  # vendor A: 8-bit power
        Asn1Field("prb_quota", "int", 0, 275),
        Asn1Field("urgent", "bool"),
        Asn1Field("payload", "bytes", optional=True),
    ],
)


class TestAsn1Lite:
    def test_field_widths_are_per_style(self):
        fields = {f.name: f for f in E2_CONTROL.fields}
        assert fields["msg_type"].width == 4
        assert fields["power"].width == 8
        assert fields["prb_quota"].width == 9  # 276 values -> 9 bits
        assert fields["urgent"].width == 1

    def test_roundtrip(self):
        msg = {"msg_type": 3, "power": 200, "prb_quota": 52, "urgent": True}
        codec = Asn1LiteCodec(E2_CONTROL)
        assert codec.decode(codec.encode(msg)) == msg

    def test_optional_bytes(self):
        msg = {
            "msg_type": 1, "power": 0, "prb_quota": 275, "urgent": False,
            "payload": b"hi",
        }
        codec = Asn1LiteCodec(E2_CONTROL)
        assert codec.decode(codec.encode(msg)) == msg

    def test_bit_size_exact(self):
        msg = {"msg_type": 1, "power": 2, "prb_quota": 3, "urgent": True}
        # presence bit for payload + 4 + 8 + 9 + 1
        assert E2_CONTROL.bit_size(msg) == 1 + 4 + 8 + 9 + 1

    def test_out_of_range_rejected(self):
        codec = Asn1LiteCodec(E2_CONTROL)
        with pytest.raises(CodecError, match="outside"):
            codec.encode({"msg_type": 1, "power": 256, "prb_quota": 0, "urgent": False})

    def test_missing_required_rejected(self):
        codec = Asn1LiteCodec(E2_CONTROL)
        with pytest.raises(CodecError, match="missing"):
            codec.encode({"msg_type": 1})

    def test_truncated_stream_rejected(self):
        codec = Asn1LiteCodec(E2_CONTROL)
        payload = codec.encode(
            {"msg_type": 1, "power": 9, "prb_quota": 0, "urgent": False,
             "payload": b"abcdef"}
        )
        with pytest.raises(CodecError, match="exhausted"):
            codec.decode(payload[:2])

    def test_incompatible_schemas_really_are_incompatible(self):
        """The paper's motivating bug: 8-bit vs 12-bit power fields."""
        vendor_b = Asn1Schema(
            "E2ControlB",
            [
                Asn1Field("msg_type", "int", 0, 15),
                Asn1Field("power", "int", 0, 4095),  # vendor B: 12-bit
                Asn1Field("prb_quota", "int", 0, 275),
                Asn1Field("urgent", "bool"),
            ],
        )
        msg = {"msg_type": 3, "power": 200, "prb_quota": 52, "urgent": True}
        wire_a = Asn1Schema(
            "E2ControlA",
            [f for f in E2_CONTROL.fields if not f.optional],
        ).encode(msg)
        decoded_by_b = vendor_b.decode(wire_a + b"\x00")
        assert decoded_by_b["power"] != msg["power"]  # silent corruption

    @given(
        st.integers(0, 15), st.integers(0, 255), st.integers(0, 275), st.booleans()
    )
    def test_roundtrip_property(self, mt, power, quota, urgent):
        codec = Asn1LiteCodec(E2_CONTROL)
        msg = {"msg_type": mt, "power": power, "prb_quota": quota, "urgent": urgent}
        assert codec.decode(codec.encode(msg)) == msg


class TestJsonCodec:
    def test_roundtrip_with_bytes(self):
        codec = JsonCodec()
        msg = {"a": 1, "b": [1.5, "x"], "raw": b"\x00\xff", "nested": {"c": True}}
        assert codec.decode(codec.encode(msg)) == msg

    def test_deterministic(self):
        codec = JsonCodec()
        assert codec.encode({"b": 1, "a": 2}) == codec.encode({"a": 2, "b": 1})

    def test_bad_payload(self):
        with pytest.raises(CodecError):
            JsonCodec().decode(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(CodecError, match="object"):
            JsonCodec().decode(b"[1,2]")


class TestBitAdapt:
    def test_full_scale_maps_to_full_scale(self):
        assert widen(255, 8, 12) == 4095
        assert widen(0, 8, 12) == 0

    def test_half_scale(self):
        assert widen(128, 8, 12) == pytest.approx(128 * 4095 / 255, abs=1)

    def test_identity(self):
        assert widen(77, 8, 8) == 77

    def test_narrow_roundtrip_within_one_lsb(self):
        for v in range(0, 256, 7):
            wide = widen(v, 8, 12)
            back = narrow(wide, 12, 8)
            assert abs(back - v) <= 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            widen(256, 8, 12)

    def test_adapt_message(self):
        src = {"power": FieldSpec("power", 8)}
        dst = {"power": FieldSpec("power", 12)}
        msg = {"power": 255, "other": 5}
        adapted = adapt_message(msg, src, dst)
        assert adapted == {"power": 4095, "other": 5}

    @given(st.integers(0, 255))
    def test_widen_monotone(self, v):
        if v < 255:
            assert widen(v, 8, 12) <= widen(v + 1, 8, 12)
