"""Tests for the terminal series plotter."""

from repro.experiments.asciiplot import render_series


class TestRenderSeries:
    def test_empty(self):
        assert render_series({}) == "(no data)"

    def test_single_series_bounds(self):
        chart = render_series({"x": [(0.0, 1.0), (1.0, 5.0)]}, width=20, height=6)
        assert "5" in chart
        assert "1" in chart
        assert "* = x" in chart

    def test_two_series_distinct_glyphs(self):
        chart = render_series(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]}, width=20, height=6
        )
        assert "* = a" in chart
        assert "o = b" in chart
        body = chart.split("+")[0]
        assert "*" in body and "o" in body

    def test_constant_series_no_crash(self):
        chart = render_series({"flat": [(0, 3.0), (1, 3.0), (2, 3.0)]})
        assert "flat" in chart

    def test_shape_visible(self):
        """A rising series must put later glyphs on higher rows."""
        rising = [(float(i), float(i)) for i in range(10)]
        chart = render_series({"up": rising}, width=30, height=10)
        rows = [r for r in chart.splitlines() if "|" in r and "+" not in r]
        first_star_row = next(i for i, r in enumerate(rows) if "*" in r)
        last_star_row = max(i for i, r in enumerate(rows) if "*" in r)
        # row 0 is the top: the max value appears above the min value
        assert first_star_row < last_star_row

    def test_y_label_rendered(self):
        chart = render_series({"s": [(0, 0), (1, 1)]}, y_label="Mb/s")
        assert "Mb/s" in chart

    def test_axis_and_ticks(self):
        chart = render_series({"s": [(2.0, 0), (7.0, 1)]}, width=30)
        assert "+---" in chart
        assert "2" in chart and "7" in chart
