"""Checkpoint/restore tests: snapshotting plugin state and recovering it.

The acceptance bar: a restored instance produces identical outputs, fuel
counts and ExecStats to an uninterrupted one, for every scheduler plugin
in the differential suite, under every engine - plus the gNB wiring that
uses checkpoints on the quarantine/release path.
"""

import pytest

from repro import obs
from repro.abi import SchedulerPlugin, wire
from repro.abi.host import PluginError, PluginHost
from repro.channel import FixedMcsChannel
from repro.experiments.fig5d import make_ues
from repro.gnb import FaultPolicy, GnbHost, SliceRuntime, UeContext
from repro.plugins import SCHEDULER_PLUGINS, plugin_wasm
from repro.traffic import FullBufferSource

ENGINES = ["legacy", "threaded", "aot"]


def observe(host: PluginHost, slots) -> list[tuple]:
    """Drive the host and capture everything observable per call."""
    out = []
    for slot in slots:
        payload = wire.pack_sched_input(slot, 20, make_ues(3))
        result = host.call(payload)
        stats = host.instance.store.stats
        out.append(
            (
                result.output,
                result.fuel_used,
                stats.frames,
                stats.max_call_depth,
                stats.max_value_stack,
            )
        )
    return out


class TestRoundTrip:
    @pytest.fixture(autouse=True)
    def telemetry(self):
        # enabled so ExecStats are collected for every call
        obs.enable()
        obs.reset()
        yield
        obs.reset()
        obs.disable()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", SCHEDULER_PLUGINS)
    def test_restored_matches_uninterrupted(self, name, engine):
        wasm = plugin_wasm(name)
        interrupted = PluginHost(wasm, name=name, engine=engine)
        control = PluginHost(wasm, name=name, engine=engine)

        # identical warm-up accumulates identical internal state (PF
        # averages, RR cursors...)
        assert observe(interrupted, range(10)) == observe(control, range(10))

        snapshot = interrupted.checkpoint()
        assert snapshot.plugin == name
        assert snapshot.memory_pages >= 1

        # interrupted diverges: different slots/loads mutate its state
        observe(interrupted, range(100, 120))
        interrupted.restore(snapshot)

        # after restore both hosts continue from the same state: outputs,
        # fuel and ExecStats must be identical call for call
        assert observe(interrupted, range(10, 30)) == observe(control, range(10, 30))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_checkpoint_survives_divergent_scratch_growth(self, engine):
        wasm = plugin_wasm("pf")
        interrupted = PluginHost(wasm, name="pf", engine=engine)
        control = PluginHost(wasm, name="pf", engine=engine)
        warmup = [wire.pack_sched_input(s, 20, make_ues(2)) for s in range(5)]
        for payload in warmup:
            interrupted.call(payload)
            control.call(payload)
        snapshot = interrupted.checkpoint()
        # a much larger input grows the scratch region past the snapshot
        interrupted.call(wire.pack_sched_input(50, 50, make_ues(40)))
        interrupted.restore(snapshot)
        follow = wire.pack_sched_input(5, 20, make_ues(2))
        assert interrupted.call(follow).output == control.call(follow).output


class TestRestoreGuards:
    def test_restore_rejects_checkpoint_from_different_binary(self):
        host_rr = PluginHost(plugin_wasm("rr"), name="rr")
        host_pf = PluginHost(plugin_wasm("pf"), name="pf")
        snapshot = host_rr.checkpoint()
        with pytest.raises(PluginError, match="different binary") as excinfo:
            host_pf.restore(snapshot)
        assert excinfo.value.kind == "load"

    def test_restore_drops_live_corruption(self):
        """Restore rebuilds from the pristine binary, then writes state back."""
        host = PluginHost(plugin_wasm("rr"), name="rr")
        control = PluginHost(plugin_wasm("rr"), name="rr")
        payload = wire.pack_sched_input(0, 20, make_ues(3))
        assert host.call(payload).output == control.call(payload).output
        snapshot = host.checkpoint()
        expected = control.call(payload).output  # the next rr rotation
        # vandalize live linear memory wholesale
        host.instance.memory.data[:] = bytes(len(host.instance.memory.data))
        host.restore(snapshot)
        assert host.call(payload).output == expected


class TestGnbRecoveryPath:
    def make_gnb(self, plugin_name="rr", checkpoint_every=1):
        # no inter-slice scheduler: the single slice gets every PRB every
        # slot, so the plugin is invoked exactly once per slot
        gnb = GnbHost(
            fault_policy=FaultPolicy(quarantine_after=2),
            checkpoint_every=checkpoint_every,
        )
        runtime = gnb.add_slice(SliceRuntime(1, "mvno"))
        runtime.use_plugin(
            SchedulerPlugin.load(plugin_wasm(plugin_name), name=plugin_name)
        )
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(28), FullBufferSource()))
        return gnb

    def test_success_path_takes_checkpoints(self):
        gnb = self.make_gnb(checkpoint_every=5)
        gnb.run(12)
        runtime = gnb.slices[1]
        assert runtime.checkpoints_taken == 2
        assert runtime.last_checkpoint is not None

    def test_release_restores_last_checkpoint(self):
        gnb = self.make_gnb(checkpoint_every=1)
        gnb.run(5)
        runtime = gnb.slices[1]
        assert runtime.last_checkpoint is not None
        gnb.fault_policy.quarantined.add(1)

        assert gnb.release_slice(1) is True
        assert runtime.restores == 1
        assert not gnb.fault_policy.is_quarantined(1)
        gnb.run(5)  # the restored plugin keeps scheduling
        assert gnb.total_delivered_bytes > 0

    def test_release_with_new_binary_swaps_instead(self):
        gnb = self.make_gnb(checkpoint_every=1)
        gnb.run(3)
        runtime = gnb.slices[1]
        gnb.fault_policy.quarantined.add(1)

        assert gnb.release_slice(1, wasm_bytes=plugin_wasm("pf")) is False
        assert runtime.restores == 0
        assert runtime.last_checkpoint is None  # stale state was discarded
        gnb.run(3)
        assert not gnb.fault_policy.events

    def test_release_without_checkpoint_just_releases(self):
        gnb = self.make_gnb(checkpoint_every=0)
        gnb.run(3)
        gnb.fault_policy.quarantined.add(1)
        assert gnb.release_slice(1) is False
        assert not gnb.fault_policy.is_quarantined(1)
