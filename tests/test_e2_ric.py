"""E2-lite + near-RT RIC integration tests."""

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.codecs.bitadapt import widen
from repro.e2 import (
    CommChannel,
    E2MessageError,
    E2NodeAgent,
    WasmFieldAdapter,
    control_request,
    indication,
    setup_request,
    subscription_request,
    validate_message,
    vendors,
)
from repro.e2.comm import AdaptedChannel
from repro.e2.messages import (
    ACTION_SET_SLICE_QUOTA,
    ACTION_SET_TX_POWER,
    MSG_INDICATION,
)
from repro.gnb import GnbHost, SliceRuntime, UeContext
from repro.netio import InProcNetwork
from repro.plugins import plugin_wasm
from repro.ric import (
    MSG_SLICE_KPI,
    MSG_UE_MEAS,
    NearRtRic,
    native_sla_assurance,
    native_traffic_steering,
    pack_xapp_input,
    unpack_xapp_actions,
)
from repro.sched import TargetRateInterSlice
from repro.traffic import FullBufferSource


class TestMessages:
    def test_validate_ok(self):
        assert validate_message(setup_request("gnb1", [1, 2])) == "e2_setup_request"
        assert validate_message(subscription_request(1)) is not None
        assert validate_message(indication(1, 100, [], [])) == MSG_INDICATION

    def test_unknown_type(self):
        with pytest.raises(E2MessageError, match="unknown message type"):
            validate_message({"msg": "bogus"})

    def test_missing_fields(self):
        with pytest.raises(E2MessageError, match="missing"):
            validate_message({"msg": MSG_INDICATION, "slot": 1})

    def test_unknown_action(self):
        with pytest.raises(E2MessageError):
            control_request(1, "reboot_the_world", 0, 0)

    def test_bad_period(self):
        with pytest.raises(E2MessageError):
            subscription_request(1, period_slots=0)


class TestVendorProfiles:
    @pytest.mark.parametrize(
        "profile", [vendors.vendor_a(), vendors.vendor_b(), vendors.vendor_b(b"k" * 16)]
    )
    def test_roundtrip_all_message_types(self, profile):
        msgs = [
            setup_request("gnb1", [1, 2]),
            subscription_request(7, period_slots=50),
            indication(
                7,
                123,
                [{"ue_id": 1, "slice_id": 2, "cqi": 12, "neighbor_cell": 3,
                  "neighbor_cqi": 14, "avg_tput_bps": 5e6, "buffer_bytes": 1000}],
                [{"slice_id": 2, "measured_bps": 4.9e6, "target_bps": 5e6}],
            ),
            control_request(9, ACTION_SET_SLICE_QUOTA, 2, 6_000_000),
        ]
        for msg in msgs:
            decoded = profile.decode(profile.encode(msg))
            assert validate_message(decoded) == msg["msg"]
            assert decoded == msg

    def test_encrypted_payload_is_opaque(self):
        secure = vendors.vendor_b(b"0123456789abcdef")
        msg = control_request(1, ACTION_SET_TX_POWER, 0, 200)
        wire = secure.encode(msg)
        assert b"set_tx_power" not in wire

    def test_cross_vendor_decode_fails(self):
        """The motivating incompatibility: A's bytes into B's decoder."""
        from repro.codecs.base import CodecError
        from repro.e2.messages import E2MessageError as MsgErr

        msg = setup_request("gnb1", [1])
        wire_a = vendors.vendor_a().encode(msg)
        with pytest.raises((CodecError, MsgErr, KeyError)):
            decoded = vendors.vendor_b().decode(wire_a)
            validate_message(decoded)

    def test_wrong_key_garbles(self):
        b1 = vendors.vendor_b(b"A" * 16)
        b2 = vendors.vendor_b(b"B" * 16)
        from repro.codecs.base import CodecError

        wire = b1.encode(setup_request("gnb1", [1]))
        with pytest.raises((CodecError, E2MessageError)):
            validate_message(b2.decode(wire))


class TestWasmFieldAdapter:
    def test_matches_reference_widen(self):
        adapter = WasmFieldAdapter()
        records = [(v, 8, 12) for v in (0, 1, 100, 128, 254, 255)]
        got = adapter.adapt_values(records)
        want = [widen(v, 8, 12) for v, _, _ in records]
        assert got == want

    def test_narrowing(self):
        adapter = WasmFieldAdapter()
        assert adapter.adapt_values([(4095, 12, 8)]) == [255]

    def test_identity(self):
        adapter = WasmFieldAdapter()
        assert adapter.adapt_values([(77, 8, 8)]) == [77]

    def test_adapt_control_rescales_power(self):
        adapter = WasmFieldAdapter()
        msg = control_request(1, ACTION_SET_TX_POWER, 0, 255)
        out = adapter.adapt_control(msg, vendors.vendor_a(), vendors.vendor_b())
        assert out["value"] == 4095

    def test_adapt_control_ignores_other_actions(self):
        adapter = WasmFieldAdapter()
        msg = control_request(1, ACTION_SET_SLICE_QUOTA, 1, 5_000_000)
        out = adapter.adapt_control(msg, vendors.vendor_a(), vendors.vendor_b())
        assert out["value"] == 5_000_000

    def test_out_of_range_value_trapped(self):
        from repro.abi.host import PluginError

        adapter = WasmFieldAdapter()
        with pytest.raises(PluginError):
            adapter.adapt_values([(256, 8, 12)])  # 256 does not fit 8 bits

    def test_adapted_channel_bridges_vendors(self):
        """SI scenario: RIC speaks vendor A, gNB speaks vendor B."""
        net = InProcNetwork()
        ric_ep = net.endpoint("ric")
        gnb_ep = net.endpoint("gnb")
        ric_side = AdaptedChannel(ric_ep, vendors.vendor_a(), vendors.vendor_b())
        gnb_side = CommChannel(gnb_ep, vendors.vendor_b())

        ric_side.send("gnb", control_request(1, ACTION_SET_TX_POWER, 0, 255))
        ((_, msg),) = gnb_side.poll()
        assert msg["value"] == 4095  # re-scaled to vendor B's 12-bit range
        assert gnb_side.decode_failures == 0


def build_network(period_slots=100, vendor=None):
    vendor = vendor or vendors.vendor_a()
    net = InProcNetwork()
    inter = TargetRateInterSlice({1: 5e6}, slot_duration_s=1e-3)
    gnb = GnbHost(inter_slice=inter)
    runtime = gnb.add_slice(SliceRuntime(1, "mvno"))
    runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
    gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(28), FullBufferSource()))
    node = E2NodeAgent(gnb, CommChannel(net.endpoint("gnb1"), vendor), "gnb1")
    ric = NearRtRic(CommChannel(net.endpoint("ric"), vendor), name="ric")
    return net, gnb, node, ric


def run_loop(gnb, node, ric, slots):
    actions = []
    for _ in range(slots):
        gnb.step()
        node.step()
        actions.extend(ric.step())
    return actions


class TestE2NodeAgent:
    def test_setup_and_subscription_flow(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1", period_slots=50)
        run_loop(gnb, node, ric, 120)
        assert ric.nodes["gnb1"]["ready"]
        assert ric.indications_seen >= 2

    def test_indications_carry_kpis(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1", period_slots=20)
        gnb.step()
        node.step()
        ric.step()
        run_loop(gnb, node, ric, 60)
        assert ric.indications_seen >= 2

    def test_control_set_slice_quota(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1")
        run_loop(gnb, node, ric, 5)
        ric.channel.send(
            "gnb1", control_request(42, ACTION_SET_SLICE_QUOTA, 1, 9_000_000)
        )
        run_loop(gnb, node, ric, 5)
        assert gnb.inter_slice.targets_bps[1] == 9_000_000
        assert any(a["request_id"] == 42 and a["success"] for a in ric.acks)

    def test_control_unknown_slice_nacked(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1")
        run_loop(gnb, node, ric, 5)
        ric.channel.send(
            "gnb1", control_request(43, ACTION_SET_SLICE_QUOTA, 99, 1)
        )
        run_loop(gnb, node, ric, 5)
        nack = [a for a in ric.acks if a["request_id"] == 43]
        assert nack and not nack[0]["success"]

    def test_handover_detaches_ue(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1")
        run_loop(gnb, node, ric, 5)
        from repro.e2.messages import ACTION_HANDOVER

        ric.channel.send("gnb1", control_request(44, ACTION_HANDOVER, 1, 2))
        run_loop(gnb, node, ric, 5)
        assert 1 not in gnb.ues


class TestXappWire:
    def test_pack_unpack_actions(self):
        import struct

        payload = struct.pack("<I", 2) + struct.pack("<IIq", 1, 5, 3) + struct.pack(
            "<IIq", 2, 1, 10_000_000
        )
        actions = unpack_xapp_actions(payload)
        assert actions[0].kind == 1 and actions[0].target == 5
        assert actions[1].value == 10_000_000

    def test_truncated_rejected(self):
        from repro.ric.wire import XappWireError
        import struct

        with pytest.raises(XappWireError):
            unpack_xapp_actions(struct.pack("<I", 3) + b"\x00" * 8)


class TestXappPlugins:
    def test_traffic_steering_differential(self):
        ric = NearRtRic(
            CommChannel(InProcNetwork().endpoint("ric"), vendors.vendor_a())
        )
        runtime = ric.load_xapp("ts", plugin_wasm("xapp_ts"), (MSG_UE_MEAS,))
        records = [
            (1, 8, 2, 12, 1e6, 0.0),   # neighbor much better -> handover
            (2, 12, 3, 13, 1e6, 0.0),  # +1 only -> below hysteresis
            (3, 5, 0, 9, 1e6, 0.0),    # no neighbor cell
            (4, 5, 7, 7, 1e6, 0.0),    # exactly +2 -> handover
        ]
        payload = pack_xapp_input(MSG_UE_MEAS, records)
        result = runtime.host.call(payload, entry="on_indication")
        got = unpack_xapp_actions(result.output)
        want = native_traffic_steering(records)
        assert got == want
        assert {a.target for a in got} == {1, 4}

    def test_sla_assurance_differential(self):
        ric = NearRtRic(
            CommChannel(InProcNetwork().endpoint("ric"), vendors.vendor_a())
        )
        runtime = ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        records = [
            (1, 0, 0, 0, 3.0e6, 5.0e6),  # underserved -> boost
            (2, 0, 0, 0, 5.0e6, 5.0e6),  # on target -> nothing
            (3, 0, 0, 0, 6.0e6, 5.0e6),  # over -> trim back
            (4, 0, 0, 0, 1.0e6, 0.0),    # no SLA -> nothing
        ]
        payload = pack_xapp_input(MSG_SLICE_KPI, records)
        result = runtime.host.call(payload, entry="on_indication")
        got = unpack_xapp_actions(result.output)
        assert got == native_sla_assurance(records)
        kinds = {(a.target, a.value) for a in got}
        assert (1, 6_000_000) in kinds
        assert (3, 5_000_000) in kinds

    def test_inter_xapp_messaging(self):
        """xapp_ts publishes handover counts; xapp_sla polls them."""
        ric = NearRtRic(
            CommChannel(InProcNetwork().endpoint("ric"), vendors.vendor_a())
        )
        ts = ric.load_xapp("ts", plugin_wasm("xapp_ts"), (MSG_UE_MEAS,))
        sla = ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        ts.host.call(
            pack_xapp_input(MSG_UE_MEAS, [(1, 5, 2, 10, 0.0, 0.0)]),
            entry="on_indication",
        )
        sla.host.call(
            pack_xapp_input(MSG_SLICE_KPI, [(1, 0, 0, 0, 1e6, 5e6)]),
            entry="on_indication",
        )
        # the SLA xApp saw the published handover count and logged it
        assert ("sla", 7, 1) in ric.xapp_log

    def test_scheduler_plugin_rejected_as_xapp(self):
        """Sanitizer policy: a scheduler plugin lacks on_indication."""
        from repro.abi.host import PluginError
        from repro.abi.sanitizer import SanitizerError

        ric = NearRtRic(
            CommChannel(InProcNetwork().endpoint("ric"), vendors.vendor_a())
        )
        with pytest.raises((SanitizerError, PluginError)):
            ric.load_xapp("bad", plugin_wasm("rr"), (MSG_UE_MEAS,))


class TestClosedLoop:
    def test_sla_xapp_drives_quota_through_e2(self):
        """Full closed loop: gNB underserves -> indication -> SLA xApp ->
        control -> gNB quota raised."""
        net, gnb, node, ric = build_network()
        # configure a quota below the SLA the xApp wants
        gnb.inter_slice.targets_bps[1] = 2e6
        ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        ric.connect("gnb1", period_slots=200)

        # the node reports target_bps = current quota; to give the xApp an
        # SLA reference, patch the report with a fixed SLA of 5 Mb/s
        original = node._build_indication

        def with_sla(sub, slot):
            msg = original(sub, slot)
            for report in msg["slice_reports"]:
                report["target_bps"] = 5e6
            return msg

        node._build_indication = with_sla
        run_loop(gnb, node, ric, 700)
        # the xApp first boosted the 2 Mb/s quota to 1.2 * SLA, then - once
        # the slice measured above SLA - trimmed it back: converged at SLA
        boosts = [c["value"] for c in ric.controls_sent]
        assert 6_000_000 in boosts  # the initial under-SLA boost happened
        assert gnb.inter_slice.targets_bps[1] == pytest.approx(5e6)

    def test_hot_swap_xapp(self):
        ric = NearRtRic(
            CommChannel(InProcNetwork().endpoint("ric"), vendors.vendor_a())
        )
        runtime = ric.load_xapp("ts", plugin_wasm("xapp_ts"), (MSG_UE_MEAS,))
        generation = ric.swap_xapp("ts", plugin_wasm("xapp_ts"))
        assert generation == 1
        result = runtime.host.call(
            pack_xapp_input(MSG_UE_MEAS, []), entry="on_indication"
        )
        assert unpack_xapp_actions(result.output) == []


class TestCqiTableControl:
    def test_set_cqi_table_accepted(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1")
        run_loop(gnb, node, ric, 5)
        from repro.e2.messages import ACTION_SET_CQI_TABLE

        ric.channel.send("gnb1", control_request(50, ACTION_SET_CQI_TABLE, 0, 2))
        run_loop(gnb, node, ric, 5)
        assert node.cqi_table == 2
        assert any(a["request_id"] == 50 and a["success"] for a in ric.acks)

    def test_unsupported_table_nacked(self):
        _, gnb, node, ric = build_network()
        ric.connect("gnb1")
        run_loop(gnb, node, ric, 5)
        from repro.e2.messages import ACTION_SET_CQI_TABLE

        ric.channel.send("gnb1", control_request(51, ACTION_SET_CQI_TABLE, 0, 7))
        run_loop(gnb, node, ric, 5)
        assert node.cqi_table == 1
        nack = [a for a in ric.acks if a["request_id"] == 51]
        assert nack and not nack[0]["success"]
