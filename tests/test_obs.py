"""Unified telemetry: registry, spans, flight recorder, events, CLI."""

import json

import pytest

from repro import obs
from repro.abi import SchedulerPlugin
from repro.abi.host import PluginError, PluginHost
from repro.obs import OBS, Observability
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer, traced
from repro.plugins import plugin_wasm
from repro.sched import UeSchedInfo
from repro.wasm import Instance, decode_module
from repro.wasm.interpreter import ExecStats
from repro.wasm.wat import assemble


@pytest.fixture
def telemetry():
    """Enable the process-wide telemetry for one test, clean before/after."""
    obs.enable()
    obs.reset()
    yield OBS
    obs.reset()
    obs.disable()


def _ues(n=3):
    return [
        UeSchedInfo(i + 1, 20, 12, 50_000, 1e6) for i in range(n)
    ]


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_labels(self):
        reg = MetricsRegistry()
        calls = reg.counter("calls_total", "calls")
        calls.inc(plugin="pf")
        calls.inc(2, plugin="pf")
        calls.inc(plugin="rr")
        assert calls.value(plugin="pf") == 3
        assert calls.value(plugin="rr") == 1
        assert calls.value(plugin="mt") == 0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("pages")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_histogram_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_us")
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050)
        assert snap["min"] == 1 and snap["max"] == 100
        assert snap["p50"] == pytest.approx(50, abs=5)
        assert snap["p99"] == pytest.approx(99, abs=5)

    def test_idempotent_registration_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_json_exposition(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc(5, k="v")
        reg.histogram("h").observe(1.0)
        doc = reg.to_json()
        assert doc["c"]["type"] == "counter"
        assert doc["c"]["series"] == [{"labels": {"k": "v"}, "value": 5.0}]
        assert doc["h"]["series"][0]["count"] == 1
        json.dumps(doc)  # must be serialisable as-is

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("calls_total", "total calls").inc(3, plugin="pf")
        reg.gauge("pages").set(2)
        h = reg.histogram("lat_us")
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            h.observe(v, plugin="pf")
        text = reg.to_prometheus()
        assert "# HELP calls_total total calls" in text
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{plugin="pf"} 3' in text
        assert "pages 2" in text
        assert "# TYPE lat_us summary" in text
        assert 'lat_us{plugin="pf",quantile="0.5"}' in text
        assert 'lat_us_count{plugin="pf"} 6' in text
        assert 'lat_us_sum{plugin="pf"} 21' in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(name='we"ird\\x')
        text = reg.to_prometheus()
        assert 'name="we\\"ird\\\\x"' in text


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x", a=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(b=2)  # must be a no-op, not an error
        assert tracer.finished() == []

    def test_nesting_records_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            with tracer.span("child"):
                pass
        spans = {s.name: s for s in tracer.finished()}
        assert spans["child"].parent_id == parent.span_id
        assert spans["parent"].parent_id is None
        assert spans["child"].elapsed_us >= 0
        # child finished first
        assert tracer.finished()[0].name == "child"

    def test_exception_marks_error_status(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert "RuntimeError" in span.attrs["error"]

    def test_ring_buffer_caps_history(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.finished()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_render_tree_indents_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")

    def test_traced_decorator(self, telemetry):
        @traced("my.op")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert any(s.name == "my.op" for s in telemetry.tracer.finished())


# ---------------------------------------------------------------------------
# observability bundle
# ---------------------------------------------------------------------------


class TestBundle:
    def test_enable_disable_propagates_to_tracer(self):
        bundle = Observability()
        assert not bundle.enabled and not bundle.tracer.enabled
        bundle.enable()
        assert bundle.enabled and bundle.tracer.enabled
        bundle.disable()
        assert not bundle.enabled and not bundle.tracer.enabled

    def test_reset_clears_all_but_keeps_enabled(self):
        bundle = Observability(enabled=True)
        bundle.registry.counter("c").inc()
        with bundle.tracer.span("s"):
            pass
        bundle.events.emit("e")
        bundle.flight.record("p", "run", 0, b"", b"", "ok", 1.0)
        bundle.reset()
        assert bundle.enabled
        assert bundle.registry.to_json() == {}
        assert bundle.tracer.finished() == []
        assert len(bundle.events) == 0
        assert len(bundle.flight) == 0

    def test_to_json_sections(self):
        bundle = Observability(enabled=True)
        bundle.registry.counter("c").inc()
        doc = bundle.to_json()
        assert set(doc) == {"metrics", "spans", "events", "flight"}
        json.dumps(doc)


# ---------------------------------------------------------------------------
# interpreter exec stats
# ---------------------------------------------------------------------------

FIB = """
(module (func $fib (export "fib") (param i32) (result i32)
  (if (result i32) (i32.lt_s (local.get 0) (i32.const 2))
    (then (local.get 0))
    (else (i32.add (call $fib (i32.sub (local.get 0) (i32.const 1)))
                   (call $fib (i32.sub (local.get 0) (i32.const 2))))))))
"""


class TestExecStats:
    def test_frames_and_depth_counted(self):
        inst = Instance(decode_module(assemble(FIB)))
        stats = inst.store.stats = ExecStats()
        assert inst.call("fib", 8) == 21
        # fib(8) enters fib(n) for every node of the call tree: 67 frames
        assert stats.frames == 67
        assert stats.max_call_depth >= 7
        assert stats.max_value_stack >= 2

    def test_stats_off_by_default(self):
        inst = Instance(decode_module(assemble(FIB)))
        assert inst.store.stats is None
        assert inst.call("fib", 5) == 5


# ---------------------------------------------------------------------------
# plugin host integration
# ---------------------------------------------------------------------------


class TestPluginHostTelemetry:
    def test_call_emits_span_tree(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("rr"), name="rr")
        plugin.schedule(52, _ues(), slot=0)
        spans = {s.name: s for s in telemetry.tracer.finished()}
        root = spans["plugin.call"]
        assert root.attrs["plugin"] == "rr"
        assert root.attrs["outcome"] == "ok"
        for child in ("plugin.encode", "plugin.invoke", "plugin.decode"):
            assert spans[child].parent_id == root.span_id
        # children nest inside the parent's interval
        assert spans["plugin.invoke"].start_ns >= root.start_ns
        assert spans["plugin.invoke"].end_ns <= root.end_ns

    def test_fuel_and_instruction_counts_in_registry(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("pf"), name="pf")
        plugin.schedule(52, _ues(), slot=0)
        reg = telemetry.registry
        fuel = reg.histogram("waran_plugin_fuel_used").snapshot(plugin="pf")
        instr = reg.histogram("waran_plugin_instructions").snapshot(plugin="pf")
        assert fuel["count"] == 1 and fuel["sum"] > 0
        assert instr["sum"] == fuel["sum"]
        frames = reg.histogram("waran_wasm_frames").snapshot(plugin="pf")
        assert frames["count"] == 1 and frames["sum"] >= 1
        stack = reg.histogram("waran_wasm_value_stack_peak").snapshot(plugin="pf")
        assert stack["sum"] >= 1
        assert reg.gauge("waran_plugin_memory_pages").value(plugin="pf") >= 1
        assert (
            reg.counter("waran_plugin_calls_total").value(plugin="pf", outcome="ok")
            == 1
        )

    def test_disabled_means_no_telemetry(self):
        obs.disable()
        obs.reset()
        plugin = SchedulerPlugin.load(plugin_wasm("rr"), name="rr")
        plugin.schedule(52, _ues(), slot=0)
        assert OBS.tracer.finished() == []
        assert OBS.registry.to_json() == {}
        assert len(OBS.flight) == 0

    def test_flight_record_captures_call(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("mt"), name="mt")
        call = plugin.schedule(52, _ues(), slot=7)
        (rec,) = telemetry.flight.last(1)
        assert rec.plugin == "mt" and rec.entry == "run"
        assert rec.outcome == "ok" and rec.generation == 0
        assert rec.output_bytes is not None
        assert rec.fuel_used == call.fuel_used
        assert rec.instructions == call.fuel_used
        doc = rec.to_json(max_bytes=8)
        assert doc["input_len"] == len(rec.input_bytes)
        assert "...(+" in doc["input_hex"]
        json.dumps(doc)

    def test_replay_roundtrips_byte_identical(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("pf"), name="pf")
        for slot in range(5):
            plugin.schedule(52, _ues(5), slot=slot)
        for rec in telemetry.flight.records():
            result = plugin.host.replay(rec)
            assert result.output == rec.output_bytes

    def test_replay_on_live_instance(self, telemetry):
        # mt is stateless, so even the live instance reproduces the output;
        # stateful plugins (e.g. rr's rotating pointer) need fresh=True
        plugin = SchedulerPlugin.load(plugin_wasm("mt"), name="mt")
        plugin.schedule(52, _ues(), slot=0)
        (rec,) = telemetry.flight.last(1)
        result = plugin.host.replay(rec, fresh=False)
        assert result.output == rec.output_bytes

    def test_replay_of_stateful_plugin_needs_fresh_instance(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("rr"), name="rr")
        plugin.schedule(52, _ues(), slot=0)
        (rec,) = telemetry.flight.last(1)
        plugin.schedule(52, _ues(), slot=1)  # advances rr's internal state
        assert plugin.host.replay(rec, fresh=True).output == rec.output_bytes

    def test_swap_emits_event_and_counter(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("rr"), name="rr")
        plugin.swap(plugin_wasm("pf"))
        (event,) = telemetry.events.events(kind="plugin.swap")
        assert event.source == "rr" and event.fields["generation"] == 1
        assert (
            telemetry.registry.counter("waran_plugin_swaps_total").value(plugin="rr")
            == 1
        )

    def test_deadline_miss_emits_event(self, telemetry):
        plugin = SchedulerPlugin.load(plugin_wasm("pf"), name="pf")
        plugin.host.limits.deadline_us = 0.0001  # impossible deadline
        with pytest.raises(PluginError) as info:
            plugin.schedule(52, _ues(), slot=0)
        assert info.value.kind == "deadline"
        (event,) = telemetry.events.events(kind="plugin.deadline")
        assert event.source == "pf"
        assert (
            telemetry.registry.counter("waran_plugin_calls_total").value(
                plugin="pf", outcome="deadline"
            )
            == 1
        )
        (rec,) = telemetry.flight.last(1)
        assert rec.outcome == "deadline"


# ---------------------------------------------------------------------------
# gNB fault events
# ---------------------------------------------------------------------------


class TestGnbFaultEvents:
    def test_record_fault_emits_structured_event(self, telemetry):
        from repro.gnb.fault import FaultAction, FaultPolicy

        policy = FaultPolicy(quarantine_after=2)
        assert policy.record_fault(5, 1, "trap", "boom") == FaultAction.FALLBACK
        assert policy.record_fault(6, 1, "trap", "boom") == FaultAction.QUARANTINE
        events = telemetry.events.events(kind="gnb.fault")
        assert [e.fields["action"] for e in events] == ["fallback", "quarantine"]
        assert events[0].fields["slot"] == 5
        assert events[0].source == "slice:1"
        policy.release(1)
        assert telemetry.events.events(kind="gnb.release")

    def test_gnb_step_span_and_slot_counter(self, telemetry):
        from repro.channel.models import FixedMcsChannel
        from repro.gnb.host import GnbHost, SliceRuntime, UeContext
        from repro.traffic.sources import CbrSource

        gnb = GnbHost()
        gnb.add_slice(SliceRuntime(1, "emb"))
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(20), CbrSource(1e6)))
        gnb.run(3)
        assert telemetry.registry.counter("waran_gnb_slots_total").value() == 3
        steps = [s for s in telemetry.tracer.finished() if s.name == "gnb.step"]
        assert len(steps) == 3


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestObsCli:
    @pytest.fixture(autouse=True)
    def _clean_global_obs(self):
        yield
        obs.reset()
        obs.disable()

    def test_json_dump(self, capsys):
        from repro.cli import main

        assert main(["obs", "--calls", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"metrics", "spans", "events", "flight"}
        assert "waran_plugin_calls_total" in doc["metrics"]
        assert any(s["name"] == "plugin.call" for s in doc["spans"])
        assert any(e["kind"] == "plugin.swap" for e in doc["events"])
        assert doc["flight"]  # calls were recorded

    def test_json_single_section(self, capsys):
        from repro.cli import main

        assert main(["obs", "--calls", "2", "--section", "metrics"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"metrics"}

    def test_prometheus_dump(self, capsys):
        from repro.cli import main

        assert main(["obs", "--calls", "2", "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE waran_plugin_calls_total counter" in text
        assert "# TYPE waran_plugin_call_us summary" in text
        assert 'plugin="pf"' in text

    def test_unknown_plugin_rejected(self, capsys):
        from repro.cli import main

        assert main(["obs", "--plugin", "nope"]) == 1
