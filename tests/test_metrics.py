"""Tests for the metrics substrate."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    Accumulator,
    RateMeter,
    ReservoirQuantile,
    StreamingQuantile,
    TimeSeries,
)


class TestAccumulator:
    def test_basic_stats(self):
        acc = Accumulator()
        acc.extend([1.0, 2.0, 3.0, 4.0])
        assert acc.count == 4
        assert acc.mean == 2.5
        assert acc.minimum == 1.0
        assert acc.maximum == 4.0
        assert acc.total == 10.0
        assert acc.variance == pytest.approx(1.25)

    def test_single_sample(self):
        acc = Accumulator()
        acc.add(7.0)
        assert acc.mean == 7.0
        assert acc.variance == 0.0
        assert acc.stddev == 0.0

    def test_merge_equals_sequential(self):
        values = [random.Random(1).gauss(10, 3) for _ in range(500)]
        a, b, whole = Accumulator(), Accumulator(), Accumulator()
        a.extend(values[:200])
        b.extend(values[200:])
        whole.extend(values)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_with_empty(self):
        a = Accumulator()
        a.extend([1.0, 2.0])
        merged = a.merge(Accumulator())
        assert merged.count == 2
        assert merged.mean == 1.5

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_welford_matches_naive(self, values):
        acc = Accumulator()
        acc.extend(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert acc.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


class TestAccumulatorMerge:
    """Parallel Welford merge vs a single pass over the concatenation."""

    @staticmethod
    def _check(left: list, right: list) -> None:
        a, b, whole = Accumulator(), Accumulator(), Accumulator()
        a.extend(left)
        b.extend(right)
        whole.extend(left + right)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total, rel=1e-12, abs=1e-9)
        if whole.count:
            assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
            assert merged.variance == pytest.approx(
                whole.variance, rel=1e-6, abs=1e-9
            )
            assert merged.minimum == whole.minimum
            assert merged.maximum == whole.maximum

    def test_empty_with_empty(self):
        merged = Accumulator().merge(Accumulator())
        assert merged.count == 0
        assert merged.total == 0.0
        assert merged.variance == 0.0
        assert merged.minimum == math.inf and merged.maximum == -math.inf

    def test_one_sided_left(self):
        self._check([3.0, -1.0, 4.0], [])

    def test_one_sided_right(self):
        self._check([], [3.0, -1.0, 4.0])

    def test_single_element_each(self):
        self._check([2.0], [8.0])

    def test_lopsided_sizes(self):
        rng = random.Random(9)
        self._check([rng.gauss(0, 1)], [rng.gauss(5, 2) for _ in range(999)])

    def test_merge_does_not_mutate_inputs(self):
        a, b = Accumulator(), Accumulator()
        a.extend([1.0, 2.0])
        b.extend([10.0])
        before = (a.count, a.mean, b.count, b.mean)
        a.merge(b)
        assert (a.count, a.mean, b.count, b.mean) == before

    def test_merge_is_commutative(self):
        a, b = Accumulator(), Accumulator()
        a.extend([1.0, 2.0, 3.0])
        b.extend([100.0, 200.0])
        ab, ba = a.merge(b), b.merge(a)
        assert ab.count == ba.count
        assert ab.mean == pytest.approx(ba.mean)
        assert ab.variance == pytest.approx(ba.variance)

    @given(
        st.lists(st.floats(-1e6, 1e6), max_size=60),
        st.lists(st.floats(-1e6, 1e6), max_size=60),
    )
    def test_any_split_matches_single_pass(self, left, right):
        self._check(left, right)


class TestStreamingQuantile:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            StreamingQuantile(1.5)

    def test_small_sample_exact(self):
        q = StreamingQuantile(0.5)
        for v in [5.0, 1.0, 3.0]:
            q.add(v)
        assert q.value == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StreamingQuantile(0.5).value

    @pytest.mark.parametrize("target", [0.5, 0.9, 0.99])
    def test_uniform_stream_accuracy(self, target):
        rng = random.Random(42)
        est = StreamingQuantile(target)
        exact = ReservoirQuantile(capacity=200_000)
        for _ in range(20_000):
            v = rng.random()
            est.add(v)
            exact.add(v)
        assert est.value == pytest.approx(exact.quantile(target), abs=0.02)

    def test_exponential_tail(self):
        rng = random.Random(7)
        est = StreamingQuantile(0.99)
        values = [rng.expovariate(1.0) for _ in range(50_000)]
        for v in values:
            est.add(v)
        exact = sorted(values)[int(0.99 * len(values))]
        assert est.value == pytest.approx(exact, rel=0.1)

    def test_monotone_under_sorted_input(self):
        est = StreamingQuantile(0.5)
        for i in range(1000):
            est.add(float(i))
        assert est.value == pytest.approx(500, rel=0.05)


class TestReservoirQuantile:
    def test_exact_below_capacity(self):
        r = ReservoirQuantile(capacity=100)
        r.extend(range(11))
        assert r.quantile(0.5) == 5.0
        assert r.quantile(0.0) == 0.0
        assert r.quantile(1.0) == 10.0

    def test_interpolation(self):
        r = ReservoirQuantile()
        r.extend([0.0, 10.0])
        assert r.quantile(0.25) == 2.5

    def test_subsampling_stays_unbiased(self):
        r = ReservoirQuantile(capacity=500, seed=3)
        for i in range(50_000):
            r.add(float(i % 1000))
        assert r.quantile(0.5) == pytest.approx(500, abs=60)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ReservoirQuantile().quantile(0.5)


class TestRateMeter:
    def test_constant_rate(self):
        meter = RateMeter(window_s=1.0)
        for ms in range(0, 5000):
            meter.add(ms / 1000.0, 125)  # 125 B/ms = 1 Mb/s
        meter.finish(5.0)
        rates = [bps for _, bps in meter.series()]
        assert len(rates) == 5
        for bps in rates:
            assert bps == pytest.approx(1e6, rel=0.01)

    def test_average(self):
        meter = RateMeter()
        meter.add(0.5, 1000)
        meter.add(1.5, 3000)
        assert meter.average_bps(2.0) == pytest.approx(4000 * 8 / 2)

    def test_idle_windows_reported_as_zero(self):
        meter = RateMeter(window_s=1.0)
        meter.add(0.1, 100)
        meter.add(3.5, 100)
        meter.finish(4.0)
        rates = [bps for _, bps in meter.series()]
        assert rates[1] == 0.0
        assert rates[2] == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RateMeter(window_s=0)

    def test_finish_flushes_trailing_partial_window(self):
        """Regression: bytes in the last partial window used to vanish."""
        meter = RateMeter(window_s=1.0)
        meter.add(0.25, 1000)  # no full window ever completes
        meter.finish(0.5)
        ((end, bps),) = meter.series()
        assert end == 0.5
        # rate over the *elapsed* half window, not diluted to the full one
        assert bps == pytest.approx(1000 * 8 / 0.5)

    def test_finish_partial_after_full_windows(self):
        meter = RateMeter(window_s=1.0)
        meter.add(0.5, 1000)  # window [0, 1)
        meter.add(2.25, 600)  # partial window [2, 2.5)
        meter.finish(2.5)
        series = meter.series()
        assert [t for t, _ in series] == [1.0, 2.0, 2.5]
        assert series[0][1] == pytest.approx(8000)
        assert series[1][1] == 0.0
        assert series[2][1] == pytest.approx(600 * 8 / 0.5)

    def test_finish_on_boundary_adds_nothing(self):
        meter = RateMeter(window_s=1.0)
        meter.add(0.5, 1000)
        meter.finish(1.0)
        assert len(meter.series()) == 1
        meter.finish(1.0)  # idempotent at the boundary
        assert len(meter.series()) == 1

    def test_partial_flush_conserves_bytes(self):
        """sum(rate * width) over the series equals total_bytes * 8."""
        meter = RateMeter(window_s=1.0)
        rng = random.Random(4)
        now = 0.0
        for _ in range(200):
            now += rng.uniform(0.001, 0.09)
            meter.add(now, rng.randrange(1, 5000))
        meter.finish(now)
        bits = 0.0
        prev_end = 0.0
        for end, bps in meter.series():
            bits += bps * (end - prev_end)
            prev_end = end
        assert bits == pytest.approx(meter.total_bytes * 8)


class TestTimeSeries:
    def test_record_and_mean(self):
        ts = TimeSeries("x")
        for i in range(10):
            ts.record(i * 0.1, float(i))
        assert ts.mean_between(0.0, 0.5) == pytest.approx(2.0)
        assert ts.last() == 9.0
        assert len(ts) == 10

    def test_mean_of_empty_interval_raises(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.mean_between(5.0, 6.0)

    def test_downsample(self):
        ts = TimeSeries()
        for i in range(100):
            ts.record(i * 0.01, 1.0 if i < 50 else 3.0)
        ds = ts.downsample(0.5)
        assert len(ds) == 2
        assert ds.values[0] == pytest.approx(1.0)
        assert ds.values[1] == pytest.approx(3.0)
