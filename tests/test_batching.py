"""Tests for the batched-uplink framing and the bounded BatchSender."""

import pytest

from repro.netio import (
    BatchError,
    BatchSender,
    InProcNetwork,
    is_batch,
    pack_batch,
    unpack_batch,
)
from repro.netio.framing import MAX_FRAME


class TestBatchFormat:
    def test_roundtrip(self):
        payloads = [b"", b"a", bytes(range(256)), b"tail"]
        assert unpack_batch(pack_batch(payloads)) == payloads

    def test_empty_batch(self):
        assert unpack_batch(pack_batch([])) == []

    def test_is_batch(self):
        assert is_batch(pack_batch([b"x"]))
        assert not is_batch(b"")
        assert not is_batch(b"\x00" * 8)
        assert not is_batch(b"WBA")  # shorter than the header

    def test_bad_magic_rejected(self):
        with pytest.raises(BatchError):
            unpack_batch(b"\x00\x00\x00\x00\x01\x00\x00\x00")

    def test_truncated_entry_rejected(self):
        frame = pack_batch([b"hello world"])
        with pytest.raises(BatchError):
            unpack_batch(frame[:-3])

    def test_truncated_entry_header_rejected(self):
        frame = pack_batch([b"a", b"b"])
        with pytest.raises(BatchError):
            unpack_batch(frame[:-6])  # second entry's length field cut

    def test_trailing_garbage_rejected(self):
        with pytest.raises(BatchError):
            unpack_batch(pack_batch([b"x"]) + b"junk")

    def test_short_frame_rejected(self):
        with pytest.raises(BatchError):
            unpack_batch(b"WB")


def make_sender(**kwargs):
    net = InProcNetwork()
    sink = net.endpoint("sink")
    sender = BatchSender(net.endpoint("src"), "sink", **kwargs)
    return sink, sender


class TestBatchSender:
    def test_offer_flush_delivers(self):
        sink, sender = make_sender()
        assert sender.offer(b"one")
        assert sender.offer(b"two")
        assert sender.queued == 2
        assert sender.flush() == 2
        assert sender.queued == 0
        frames = [payload for _src, payload in sink.drain()]
        assert len(frames) == 1
        assert unpack_batch(frames[0]) == [b"one", b"two"]

    def test_flush_empty_is_noop(self):
        sink, sender = make_sender()
        assert sender.flush() == 0
        assert sink.drain() == []
        assert sender.batches_sent == 0

    def test_backpressure_refuses_and_counts(self):
        sink, sender = make_sender(max_queue=3)
        assert all(sender.offer(bytes([i])) for i in range(3))
        assert not sender.offer(b"overflow")  # refused, not buffered
        assert not sender.offer(b"overflow2")
        assert sender.queued == 3
        assert sender.dropped == 2
        assert sender.offered == 5
        sender.flush()
        assert sender.offer(b"after flush")  # capacity freed

    def test_oversize_payload_dropped(self):
        sink, sender = make_sender()
        assert not sender.offer(b"\x00" * MAX_FRAME)
        assert sender.dropped_oversize == 1
        assert sender.dropped == 1
        assert sender.queued == 0

    def test_max_batch_splits_frames(self):
        sink, sender = make_sender(max_batch=4)
        for i in range(10):
            assert sender.offer(bytes([i]))
        assert sender.flush() == 10
        frames = [payload for _src, payload in sink.drain()]
        assert [len(unpack_batch(f)) for f in frames] == [4, 4, 2]
        # order survives the split
        flat = [p for f in frames for p in unpack_batch(f)]
        assert flat == [bytes([i]) for i in range(10)]

    def test_frame_size_cap_splits_frames(self):
        sink, sender = make_sender(max_batch=10_000)
        chunk = b"\x00" * (6 << 20)  # three don't fit in one 16MiB frame
        for _ in range(3):
            assert sender.offer(chunk)
        sender.flush()
        frames = [payload for _src, payload in sink.drain()]
        assert len(frames) == 2
        assert all(len(f) <= MAX_FRAME for f in frames)

    def test_stats_shape(self):
        _sink, sender = make_sender()
        sender.offer(b"x")
        sender.flush()
        stats = sender.stats()
        assert stats["offered"] == 1
        assert stats["messages_sent"] == 1
        assert stats["batches_sent"] == 1
        assert stats["dropped"] == 0
        assert stats["queued"] == 0
        assert stats["bytes_sent"] > 0

    def test_bad_limits_rejected(self):
        net = InProcNetwork()
        with pytest.raises(ValueError):
            BatchSender(net.endpoint("a"), "b", max_queue=0)
        with pytest.raises(ValueError):
            BatchSender(net.endpoint("c"), "b", max_batch=0)
