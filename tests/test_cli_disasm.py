"""Tests for the CLI and the disassembler."""

import pytest

from repro.cli import main
from repro.plugins import plugin_wasm
from repro.wasm import decode_module
from repro.wasm.disasm import disassemble
from repro.wasm.wat import assemble


class TestDisassembler:
    def test_contains_exports_and_types(self):
        text = disassemble(plugin_wasm("mt"))
        assert '(export "run")' in text
        assert '(export "alloc")' in text
        assert '(import "env" "tbs_bits"' in text
        assert "(memory 2 64)" in text

    def test_all_plugins_disassemble(self):
        from repro.plugins import available_plugins

        for name in available_plugins():
            text = disassemble(plugin_wasm(name))
            assert text.startswith("(module")
            assert text.endswith(")")

    def test_block_structure_indented(self):
        raw = assemble("""(module (func (export "f") (param i32) (result i32)
          (if (result i32) (local.get 0)
            (then (i32.const 1)) (else (i32.const 2)))))""")
        text = disassemble(raw)
        lines = text.splitlines()
        if_line = next(l for l in lines if l.strip() == "if (result i32)")
        body_line = next(l for l in lines if l.strip() == "i32.const 1")
        assert len(body_line) - len(body_line.lstrip()) > len(if_line) - len(
            if_line.lstrip()
        )

    def test_data_segment_escaped(self):
        raw = assemble('(module (memory 1) (data (i32.const 0) "ab\\00"))')
        text = disassemble(raw)
        assert '"ab\\00"' in text

    def test_memarg_printed(self):
        raw = assemble("""(module (memory 1)
          (func (export "f") (result i32)
            (i32.load offset=16 (i32.const 0))))""")
        assert "offset=16" in disassemble(raw)


class TestCli:
    def test_compile_and_sanitize(self, tmp_path, capsys):
        source = tmp_path / "toy.wc"
        source.write_text(
            "memory 2 8;\n"
            "export fn alloc(size: i32) -> i32 { return 1024; }\n"
            "export fn run(p: i32, n: i32) -> i32 { store32(49152, 0); return 49152; }\n"
        )
        out = tmp_path / "toy.wasm"
        assert main(["compile", str(source), "-o", str(out)]) == 0
        assert out.read_bytes()[:4] == b"\x00asm"
        assert main(["sanitize", str(out)]) == 0
        captured = capsys.readouterr()
        assert "OK" in captured.out

    def test_compile_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.wc"
        source.write_text("export fn f() -> i32 { return x; }")
        assert main(["compile", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_sanitize_rejects(self, tmp_path, capsys):
        bad = tmp_path / "bad.wasm"
        bad.write_bytes(b"\x00asm\x01\x00\x00\x00\x0c")
        assert main(["sanitize", str(bad)]) == 1
        assert "REJECTED" in capsys.readouterr().err

    def test_disasm_command(self, tmp_path, capsys):
        binary = tmp_path / "mt.wasm"
        binary.write_bytes(plugin_wasm("mt"))
        assert main(["disasm", str(binary)]) == 0
        assert "(module" in capsys.readouterr().out

    def test_plugins_command(self, capsys):
        assert main(["plugins"]) == 0
        out = capsys.readouterr().out
        assert "rr" in out and "xapp_ts" in out

    def test_fig5a_command_quick(self, capsys):
        assert main(["fig5a", "--duration", "1.0"]) == 0
        assert "all targets met" in capsys.readouterr().out

    def test_fig5d_command_quick(self, capsys):
        assert main(["fig5d", "--calls", "20"]) == 0
        assert "slot duration" in capsys.readouterr().out

    def test_safety_command(self, capsys):
        assert main(["safety"]) == 0
        out = capsys.readouterr().out
        assert "null_deref" in out and "double_free" in out


class TestWatCommand:
    def test_wat_assembles(self, tmp_path, capsys):
        source = tmp_path / "add.wat"
        source.write_text(
            '(module (func (export "add") (param i32 i32) (result i32)\n'
            "  (i32.add (local.get 0) (local.get 1))))"
        )
        out = tmp_path / "add.wasm"
        assert main(["wat", str(source), "-o", str(out)]) == 0
        from repro.wasm import Instance, decode_module

        inst = Instance(decode_module(out.read_bytes()))
        assert inst.call("add", 20, 22) == 42

    def test_wat_reports_errors(self, tmp_path, capsys):
        source = tmp_path / "bad.wat"
        source.write_text("(module (func (frob)))")
        assert main(["wat", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_wat_rejects_invalid_module(self, tmp_path, capsys):
        source = tmp_path / "illtyped.wat"
        source.write_text("(module (func (result i32) nop))")
        assert main(["wat", str(source)]) == 1
