"""Tests for the multi-process scale-out layer (repro.cluster)."""

import json
from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import (
    ClusterError,
    ClusterSpec,
    cell_name,
    run_cluster,
    stable_seed,
    sweep_specs,
)
from repro.cluster.spec import COORD
from repro.e2.batch import (
    BatchedUplinkChannel,
    E2BatchError,
    decode_batch_entry,
    encode_batch_entry,
    iter_batch_frame,
)
from repro.netio.batching import BatchSender, pack_batch
from repro.netio.bus import InProcNetwork

#: small enough for CI, big enough to cross several KPM/flush periods
QUICK = ClusterSpec(workers=2, cells=4, ues=8, slots=60, mode="inline")


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    obs.reset()
    obs.disable()


class TestSpec:
    def test_round_robin_partition_is_exact(self):
        spec = ClusterSpec(workers=3, cells=8)
        shards = [spec.cells_for_worker(k) for k in range(3)]
        flat = sorted(g for shard in shards for g in shard)
        assert flat == list(range(8))  # every cell exactly once
        assert shards[0] == [0, 3, 6]

    def test_ue_distribution_sums_to_total(self):
        spec = ClusterSpec(cells=3, ues=10)
        per_cell = [spec.ues_for_cell(g) for g in range(3)]
        assert sum(per_cell) == 10
        assert max(per_cell) - min(per_cell) <= 1

    def test_json_roundtrip(self):
        spec = ClusterSpec(workers=4, chaos="seed=1,trap=0.01")
        again = ClusterSpec.from_json(spec.to_json())
        assert again == spec

    def test_from_json_ignores_unknown_keys(self):
        doc = ClusterSpec().to_json()
        doc["from_the_future"] = 1
        assert ClusterSpec.from_json(doc) == ClusterSpec()

    def test_validate(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers=0).validate()
        with pytest.raises(ValueError):
            ClusterSpec(mode="threads").validate()
        with pytest.raises(ValueError):
            ClusterSpec(flush_every=0).validate()

    def test_stable_seed_is_process_independent(self):
        assert stable_seed(0, "ch", 2, 5) == stable_seed(0, "ch", 2, 5)
        assert stable_seed(0, "ch", 2, 5) != stable_seed(0, "ch", 2, 6)
        assert stable_seed(1) == 7748076420210162913  # pinned: sha256-derived


class TestE2Batch:
    def test_entry_roundtrip(self):
        entry = encode_batch_entry("cell3", b"\x01\x02\x03")
        assert decode_batch_entry(entry) == ("cell3", b"\x01\x02\x03")

    def test_iter_batch_frame(self):
        frame = pack_batch(
            [encode_batch_entry("a", b"x"), encode_batch_entry("b", b"y")]
        )
        assert list(iter_batch_frame(frame)) == [("a", b"x"), ("b", b"y")]

    def test_malformed_entry_rejected(self):
        with pytest.raises(E2BatchError):
            decode_batch_entry(b"\x05\x00ab")  # node id overruns
        with pytest.raises(E2BatchError):
            decode_batch_entry(b"\x01")

    def test_uplink_channel_counts_backpressure(self):
        from repro.e2 import vendors
        from repro.e2.messages import indication

        net = InProcNetwork()
        net.endpoint(COORD)
        sender = BatchSender(net.endpoint("w"), COORD, max_queue=2)
        channel = BatchedUplinkChannel("cell0", vendors.vendor_b(), sender)
        message = indication(1, 0, [], [])
        for _ in range(5):
            channel.send(COORD, message)
        assert channel.sent == 2
        assert channel.dropped == 3
        assert channel.poll() == []  # one-directional uplink


class TestInlineCluster:
    def test_aggregate_invariant_under_worker_count(self):
        one = run_cluster(replace(QUICK, workers=1))
        two = run_cluster(replace(QUICK, workers=2))
        four = run_cluster(replace(QUICK, workers=4))
        assert one.bytes_digest == two.bytes_digest == four.bytes_digest
        assert one.fault_digest == two.fault_digest == four.fault_digest
        assert one.delivered_bytes == two.delivered_bytes

    def test_report_contents(self):
        report = run_cluster(QUICK)
        assert set(report.bytes_by_cell) == {cell_name(g) for g in range(4)}
        assert report.delivered_bytes == sum(report.bytes_by_cell.values())
        assert report.indications_sent > 0
        assert report.indications_seen == report.indications_sent
        assert report.indications_dropped == 0
        assert report.indications_by_node  # RIC aggregated per node
        assert report.xapp_calls > 0
        assert report.controls_captured  # open-loop actions were captured
        assert report.uplink["batches_sent"] > 0
        assert report.max_worker_seconds > 0
        doc = report.to_json()
        json.dumps(doc)  # fully serialisable
        assert doc["bytes_digest"] == report.bytes_digest

    def test_cluster_metrics_exported(self):
        report = run_cluster(QUICK)
        metrics = report.metrics
        assert metrics["waran_cluster_cells"]["series"]
        offered = metrics["waran_cluster_uplink_offered_total"]["series"]
        assert {e["labels"]["worker"] for e in offered} == {"0", "1"}
        assert metrics["waran_cluster_ingested_messages_total"]["series"][0][
            "value"
        ] == report.indications_seen
        # worker histograms merged count-weighted into one exposition
        slot_us = metrics["waran_cluster_slot_us"]["series"]
        assert sum(e["count"] for e in slot_us) == QUICK.slots * QUICK.workers
        # the RIC's own metrics ride along in the coordinator snapshot
        assert metrics["waran_ric_indications_total"]["series"]

    def test_chaos_composes_and_stays_invariant(self):
        spec = replace(QUICK, slots=80, chaos="seed=5,trap=0.05,fuel_cut=0.02")
        one = run_cluster(replace(spec, workers=1))
        two = run_cluster(replace(spec, workers=2))
        assert one.fault_digest == two.fault_digest
        assert one.bytes_digest == two.bytes_digest
        assert "trap" in one.fault_log or "fuel_cut" in one.fault_log

    def test_engine_selection(self):
        legacy = run_cluster(replace(QUICK, slots=20, engine="legacy"))
        assert legacy.engine == "legacy"

    def test_backpressure_surfaces_in_report(self):
        """A tiny queue with rare flushes must drop - and say so."""
        spec = replace(
            QUICK, workers=1, queue_limit=1, flush_every=1000, kpm_period=1
        )
        report = run_cluster(spec)
        assert report.indications_dropped > 0
        assert report.uplink["dropped"] > 0
        dropped = report.metrics["waran_cluster_uplink_dropped_total"]["series"]
        assert sum(e["value"] for e in dropped) == report.uplink["dropped"]
        # determinism of the *aggregate* physics is untouched by drops
        assert report.bytes_digest == run_cluster(spec).bytes_digest


class TestProcCluster:
    def test_proc_matches_inline(self):
        spec = replace(QUICK, slots=40, ues=4, timeout_s=120)
        inline = run_cluster(spec)
        proc = run_cluster(replace(spec, mode="proc"))
        assert proc.bytes_digest == inline.bytes_digest
        assert proc.fault_digest == inline.fault_digest
        assert proc.indications_seen == inline.indications_seen

    def test_worker_failure_is_surfaced(self):
        spec = replace(
            QUICK, mode="proc", slots=10, chaos="bogus-key=1", timeout_s=60
        )
        with pytest.raises((ClusterError, ValueError)):
            run_cluster(spec)


class TestLoadgen:
    def test_sweep_specs_grid(self):
        base = ClusterSpec(cells=2, ues=4, slots=10)
        specs = list(sweep_specs(base, workers=(1, 2, 4), cells=(2,)))
        assert [s.workers for s in specs] == [1, 2]  # 4 > cells skipped
        assert all(s.cells == 2 for s in specs)

    def test_run_sweep_checks_invariance(self):
        from repro.cluster import run_sweep

        base = replace(QUICK, ues=4, slots=30)
        reports = run_sweep(base, workers=(1, 2))
        assert len(reports) == 2
        assert reports[0].bytes_digest == reports[1].bytes_digest


class TestScaleCli:
    def test_scale_inline_with_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            ["scale", "--workers", "2", "--cells", "2", "--ues", "4",
             "--slots", "30", "--mode", "inline", "--json", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["spec"]["workers"] == 2
        assert doc["delivered_bytes"] > 0
        assert "cluster workers=2" in capsys.readouterr().out

    def test_scale_sweep_and_metrics(self, capsys):
        from repro.cli import main

        code = main(
            ["scale", "--cells", "2", "--ues", "4", "--slots", "30",
             "--mode", "inline", "--sweep", "1,2", "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "invariant across worker counts" in out
        assert "waran_cluster_slot_us" in out

    def test_scale_rejects_bad_spec(self, capsys):
        from repro.cli import main

        assert main(["scale", "--workers", "0"]) == 1
        assert "error" in capsys.readouterr().err
