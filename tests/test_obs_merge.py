"""Tests for cross-process metrics snapshot merging (and its CLI)."""

import json

import pytest

from repro.obs import MetricsRegistry, MergeError, merge_snapshots
from repro.obs.merge import snapshot_to_prometheus


def snap(build) -> dict:
    registry = MetricsRegistry()
    build(registry)
    return registry.to_json()


class TestMergeScalars:
    def test_counters_sum_per_label_set(self):
        s0 = snap(lambda r: r.counter("c", "h").inc(3, worker="0"))
        s1 = snap(lambda r: (r.counter("c").inc(4, worker="0"),
                             r.counter("c").inc(5, worker="1")))
        merged = merge_snapshots([s0, s1])
        series = {tuple(e["labels"].items()): e["value"]
                  for e in merged["c"]["series"]}
        assert series[(("worker", "0"),)] == 7
        assert series[(("worker", "1"),)] == 5
        assert merged["c"]["type"] == "counter"
        assert merged["c"]["help"] == "h"  # first non-empty help wins

    def test_gauges_sum(self):
        s0 = snap(lambda r: r.gauge("g").set(2))
        s1 = snap(lambda r: r.gauge("g").set(3))
        merged = merge_snapshots([s0, s1])
        assert merged["g"]["series"][0]["value"] == 5

    def test_disjoint_metrics_union(self):
        s0 = snap(lambda r: r.counter("only_a").inc())
        s1 = snap(lambda r: r.counter("only_b").inc())
        merged = merge_snapshots([s0, s1])
        assert set(merged) == {"only_a", "only_b"}


class TestMergeHistograms:
    def test_count_sum_min_max_exact(self):
        s0 = snap(lambda r: [r.histogram("h").observe(v) for v in (1.0, 3.0)])
        s1 = snap(lambda r: [r.histogram("h").observe(v) for v in (5.0, 11.0)])
        merged = merge_snapshots([s0, s1])
        entry = merged["h"]["series"][0]
        assert entry["count"] == 4
        assert entry["sum"] == 20.0
        assert entry["mean"] == 5.0
        assert entry["min"] == 1.0
        assert entry["max"] == 11.0

    def test_quantiles_count_weighted(self):
        s0 = snap(lambda r: [r.histogram("h").observe(10.0) for _ in range(3)])
        s1 = snap(lambda r: r.histogram("h").observe(20.0))
        merged = merge_snapshots([s0, s1])
        entry = merged["h"]["series"][0]
        # 3 samples at p50=10, 1 at p50=20 -> weighted 12.5
        assert entry["p50"] == pytest.approx(12.5)

    def test_empty_series_survive(self):
        s0 = snap(lambda r: r.histogram("h"))
        merged = merge_snapshots([s0])
        assert merged["h"]["series"] == []

    def test_identical_shards_exact(self):
        """The sharded-cell case: same distribution -> quantiles exact."""
        def build(r):
            for v in (1.0, 2.0, 3.0):
                r.histogram("h").observe(v)

        merged = merge_snapshots([snap(build), snap(build)])
        entry = merged["h"]["series"][0]
        single = snap(build)["h"]["series"][0]
        assert entry["p50"] == pytest.approx(single["p50"])


class TestMergeInputs:
    def test_accepts_wrapped_documents(self):
        s0 = snap(lambda r: r.counter("c").inc())
        merged = merge_snapshots([{"metrics": s0}, s0])
        assert merged["c"]["series"][0]["value"] == 2

    def test_type_conflict_raises(self):
        s0 = snap(lambda r: r.counter("m").inc())
        s1 = snap(lambda r: r.gauge("m").set(1))
        with pytest.raises(MergeError):
            merge_snapshots([s0, s1])

    def test_garbage_family_raises(self):
        with pytest.raises(MergeError):
            merge_snapshots([{"m": "not a family"}])

    def test_merge_of_nothing(self):
        assert merge_snapshots([]) == {}

    def test_merged_doc_remerges(self):
        """Merge output is a valid snapshot itself (associativity)."""
        s0 = snap(lambda r: r.counter("c").inc(1))
        s1 = snap(lambda r: r.counter("c").inc(2))
        s2 = snap(lambda r: r.counter("c").inc(4))
        once = merge_snapshots([s0, s1, s2])
        staged = merge_snapshots([merge_snapshots([s0, s1]), s2])
        assert once == staged


class TestPrometheusRender:
    def test_renders_all_kinds(self):
        def build(r):
            r.counter("c", "the count").inc(2, node="cell0")
            r.gauge("g").set(7)
            r.histogram("h").observe(4.0)

        text = snapshot_to_prometheus(merge_snapshots([snap(build)]))
        assert '# TYPE c counter' in text
        assert 'c{node="cell0"} 2' in text
        assert "g 7" in text
        assert "# TYPE h summary" in text
        assert 'h{quantile="0.5"} 4' in text
        assert "h_count 1" in text

    def test_label_escaping(self):
        def build(r):
            r.counter("c").inc(1, path='a"b\\c')

        text = snapshot_to_prometheus(merge_snapshots([snap(build)]))
        assert 'path="a\\"b\\\\c"' in text


class TestMergeCli:
    def test_obs_merge_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        s0 = snap(lambda r: r.counter("waran_x_total").inc(1, worker="0"))
        s1 = {"metrics": snap(lambda r: r.counter("waran_x_total").inc(2, worker="1"))}
        p0 = tmp_path / "w0.json"
        p1 = tmp_path / "w1.json"
        p0.write_text(json.dumps(s0))
        p1.write_text(json.dumps(s1))

        assert main(["obs", "merge", str(p0), str(p1)]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert [e["value"] for e in merged["waran_x_total"]["series"]] == [1, 2]

        out = tmp_path / "merged.prom"
        assert main(["obs", "merge", str(p0), str(p1),
                     "--format", "prom", "-o", str(out)]) == 0
        assert 'waran_x_total{worker="0"} 1' in out.read_text()

    def test_obs_merge_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "merge", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_obs_demo_still_works(self, capsys):
        """The merge subcommand must not break the bare obs demo."""
        from repro.cli import main

        assert main(["obs", "--calls", "2", "--section", "metrics"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "metrics" in doc
