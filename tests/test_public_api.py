"""Public API surface checks: docs and exports stay honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.wasm",
    "repro.wacc",
    "repro.abi",
    "repro.codecs",
    "repro.cryptolite",
    "repro.metrics",
    "repro.obs",
    "repro.phy",
    "repro.channel",
    "repro.traffic",
    "repro.sched",
    "repro.gnb",
    "repro.core5g",
    "repro.netio",
    "repro.e2",
    "repro.ric",
    "repro.plugins",
    "repro.hostsim",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_importable_with_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            if package == "repro":
                importlib.import_module(f"repro.{name}")
            else:
                assert hasattr(module, name), f"{package}.__all__ lists {name}"

    def test_version(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The exact code from README.md's quickstart section."""
        from repro.abi import SchedulerPlugin, sanitize_plugin
        from repro.plugins import plugin_wasm
        from repro.sched import UeSchedInfo

        wasm = plugin_wasm("pf")
        sanitize_plugin(wasm)
        plugin = SchedulerPlugin.load(wasm)

        ues = [UeSchedInfo(ue_id=1, mcs=28, cqi=15, buffer_bytes=100_000,
                           avg_tput_bps=5e6)]
        call = plugin.schedule(52, ues, slot=0)
        assert call.grants and call.elapsed_us > 0 and call.fuel_used

        assert plugin.swap(plugin_wasm("rr")) == 1

    def test_package_docstring_snippet_runs(self):
        from repro.abi import SchedulerPlugin
        from repro.plugins import plugin_wasm
        from repro.sched import UeSchedInfo

        plugin = SchedulerPlugin.load(plugin_wasm("pf"))
        ues = [UeSchedInfo(1, 28, 15, 100_000, 5e6)]
        assert plugin.schedule(52, ues, slot=0).grants
