"""Trace-context propagation through the batching and E2 wire formats."""

import pytest

from repro import obs
from repro.e2.batch import (
    E2BatchError,
    decode_batch_entry,
    decode_batch_entry_ex,
    encode_batch_entry,
    iter_batch_frame,
    iter_batch_frame_ex,
)
from repro.netio.batching import (
    BATCH_MAGIC,
    BATCH_MAGIC_TRACED,
    BatchSender,
    batch_trace,
    is_batch,
    is_traced_batch,
    pack_batch,
    unpack_batch,
)
from repro.netio.bus import InProcNetwork
from repro.obs import OBS
from repro.obs.tracing import TraceContext


@pytest.fixture
def telemetry():
    obs.enable()
    obs.reset()
    yield OBS
    obs.reset()
    obs.disable()


CTX = TraceContext(0x0102030405060708, 0x1112131415161718)


class TestTracedBatchFrames:
    def test_untraced_bytes_unchanged(self):
        frame = pack_batch([b"a", b"bb"])
        assert frame[:4] == BATCH_MAGIC.to_bytes(4, "little")
        assert unpack_batch(frame) == [b"a", b"bb"]
        assert batch_trace(frame) is None
        assert not is_traced_batch(frame)

    def test_traced_roundtrip(self):
        frame = pack_batch([b"a", b"bb"], ctx=CTX)
        assert frame[:4] == BATCH_MAGIC_TRACED.to_bytes(4, "little")
        assert is_batch(frame) and is_traced_batch(frame)
        assert unpack_batch(frame) == [b"a", b"bb"]
        assert batch_trace(frame) == CTX

    def test_traced_without_ctx_uses_zero_sentinel(self):
        frame = pack_batch([b"x"], traced=True)
        assert is_traced_batch(frame)
        assert batch_trace(frame) is None  # all-zero ctx means "no parent"
        assert unpack_batch(frame) == [b"x"]

    def test_header_overhead_is_exactly_ctx_len(self):
        plain = pack_batch([b"payload"])
        traced = pack_batch([b"payload"], ctx=CTX)
        assert len(traced) - len(plain) == TraceContext.WIRE_LEN

    def test_sender_emits_traced_frames_inside_span(self, telemetry):
        net = InProcNetwork()
        sender = BatchSender(net.endpoint("w"), "coord")
        sink = net.endpoint("coord")
        with telemetry.tracer.span("worker.slot", slot=7) as slot:
            sender.offer(b"data")
            sender.flush()
            expected = slot.context
        _src, frame = sink.recv()
        assert batch_trace(frame) == expected
        names = [s.name for s in telemetry.tracer.finished()]
        assert "uplink.flush" in names

    def test_sender_untraced_when_disabled(self):
        net = InProcNetwork()
        sender = BatchSender(net.endpoint("w"), "coord")
        sink = net.endpoint("coord")
        sender.offer(b"data")
        sender.flush()
        _src, frame = sink.recv()
        assert not is_traced_batch(frame)

    def test_queue_wait_histogram_recorded(self, telemetry):
        net = InProcNetwork()
        sender = BatchSender(net.endpoint("w"), "coord")
        net.endpoint("coord")
        sender.offer(b"data")
        sender.flush()
        snap = telemetry.registry.histogram(
            "waran_uplink_queue_wait_us", ""
        ).snapshot()
        assert snap["count"] == 1
        assert snap["min"] >= 0


class TestTracedE2Entries:
    def test_v1_roundtrip_unchanged(self):
        entry = encode_batch_entry("cell3", b"\xe2\x01payload")
        assert decode_batch_entry(entry) == ("cell3", b"\xe2\x01payload")
        # v1 payloads may start with any byte; no sniffing happens
        node, payload, ctx = decode_batch_entry_ex(entry, traced=False)
        assert (node, payload, ctx) == ("cell3", b"\xe2\x01payload", None)

    def test_v2_roundtrip_with_ctx(self):
        entry = encode_batch_entry("cell3", b"payload", ctx=CTX)
        node, payload, ctx = decode_batch_entry_ex(entry, traced=True)
        assert (node, payload, ctx) == ("cell3", b"payload", CTX)
        assert decode_batch_entry(entry, traced=True) == ("cell3", b"payload")

    def test_v2_without_ctx(self):
        entry = encode_batch_entry("cell3", b"payload", traced=True)
        node, payload, ctx = decode_batch_entry_ex(entry, traced=True)
        assert (node, payload, ctx) == ("cell3", b"payload", None)

    def test_truncated_ctx_rejected(self):
        entry = encode_batch_entry("n", b"", ctx=CTX)[:-20]
        with pytest.raises(E2BatchError):
            decode_batch_entry_ex(entry, traced=True)

    def test_frame_magic_selects_entry_layout(self):
        v1 = encode_batch_entry("n", b"data")
        v2 = encode_batch_entry("n", b"data", ctx=CTX)
        plain_frame = pack_batch([v1])
        traced_frame = pack_batch([v2], ctx=CTX)
        assert list(iter_batch_frame(plain_frame)) == [("n", b"data")]
        assert list(iter_batch_frame(traced_frame)) == [("n", b"data")]
        [(node, payload, ctx)] = iter_batch_frame_ex(traced_frame)
        assert (node, payload, ctx) == ("n", b"data", CTX)
        [(node, payload, ctx)] = iter_batch_frame_ex(plain_frame)
        assert ctx is None
