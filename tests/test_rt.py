"""rt layer unit tests: lanes, policy, admission, dispatcher, host budgets.

Covers the pure planners (lane splits, policy string round-trips), the
admission state machine (warm-up, demote, reject, quarantine, half-open
probation, re-admission), the dispatcher's two-pass planning and miss
ledger, and the plugin-host end of the contract: a call whose rt budget
undercuts the host's own fuel limit traps with kind ``"deadline"`` at the
cut, the decision rides the flight record, and replay reproduces the
degraded call bit-exactly - including when chaos faults compose.
"""

import pytest

from repro import obs
from repro.abi import wire
from repro.abi.host import HostLimits, PluginError, PluginHost
from repro.chaos.schedule import ChaosConfig, FaultSchedule
from repro.experiments.fig5d import make_ues
from repro.plugins import plugin_wasm
from repro.rt import (
    DEFAULT_LANES,
    DeadlineDispatcher,
    RtPolicy,
    RtRequest,
    Verdict,
    format_lanes,
    parse_lanes,
    plan_lanes,
)


def sched_payload(slot: int = 0, prbs: int = 20, n_ues: int = 3) -> bytes:
    return wire.pack_sched_input(slot, prbs, make_ues(n_ues))


class TestLanes:
    def test_parse_format_round_trip(self):
        lanes = parse_lanes("sla:50;normal:30;be:20")
        assert format_lanes(lanes) == "sla:50;normal:30;be:20"
        assert parse_lanes(format_lanes(lanes)) == lanes

    def test_sla_and_pinned_lanes_are_non_sheddable(self):
        lanes = parse_lanes("gold!:60;sla:20;be:20")
        by_name = {lane.name: lane for lane in lanes}
        assert not by_name["gold"].sheddable
        assert not by_name["sla"].sheddable
        assert by_name["be"].sheddable

    def test_priority_follows_listing_order(self):
        lanes = parse_lanes("be:10;sla:90")
        assert [lane.name for lane in lanes] == ["be", "sla"]
        assert lanes[0].priority < lanes[1].priority

    @pytest.mark.parametrize(
        "text", ["", ":50", "a:0", "a:-1", "a:x", "a:50;a:50"]
    )
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            parse_lanes(text)

    def test_unused_higher_lane_budget_rolls_down(self):
        # nothing in sla or normal: be gets the whole budget
        plan = plan_lanes(
            10_000, [("x", "be"), ("y", "be")], DEFAULT_LANES, min_call_fuel=100
        )
        assert [a.fuel for a in plan] == [5000, 5000]

    def test_sheddable_lane_sheds_below_min_call_fuel(self):
        # 4 be requests into a 2000-fuel be allowance: only 2 get the floor
        plan = plan_lanes(
            2000,
            [("a", "be"), ("b", "be"), ("c", "be"), ("d", "be")],
            parse_lanes("be:100"),
            min_call_fuel=1000,
        )
        fuels = [a.fuel for a in plan]
        assert fuels == [1000, 1000, None, None]

    def test_non_sheddable_lane_never_sheds(self):
        # the same scarcity on the sla lane dispatches everyone anyway
        plan = plan_lanes(
            2000,
            [("a", "sla"), ("b", "sla"), ("c", "sla"), ("d", "sla")],
            DEFAULT_LANES,
            min_call_fuel=1000,
        )
        assert all(a.fuel is not None for a in plan)

    def test_unknown_lane_falls_back_to_lowest_priority(self):
        plan = plan_lanes(
            10_000, [("x", "nonsense")], DEFAULT_LANES, min_call_fuel=100
        )
        assert plan[0].lane == "be"


class TestRtPolicy:
    @pytest.mark.parametrize("text", ["", "on", "default"])
    def test_default_aliases(self, text):
        assert RtPolicy.from_string(text) == RtPolicy()

    def test_string_round_trip(self):
        policy = RtPolicy(
            budget_us=400.0,
            fuel_per_us=25.0,
            lanes=parse_lanes("gold!:60;be:40"),
            admission=False,
            quarantine_after=2,
        )
        assert RtPolicy.from_string(policy.to_string()) == policy

    @pytest.mark.parametrize("text", ["nope=1", "budget_us", "budget_us=x"])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError):
            RtPolicy.from_string(text)

    def test_slot_budget_fuel(self):
        assert RtPolicy(budget_us=400.0, fuel_per_us=50.0).slot_budget_fuel() == 20_000
        # budget_us=0 means the whole slot
        assert RtPolicy(budget_us=0.0, fuel_per_us=50.0).slot_budget_fuel(500.0) == 25_000


def make_dispatcher(**overrides) -> DeadlineDispatcher:
    defaults = dict(
        budget_us=400.0, fuel_per_us=50.0, min_samples=4,
        quarantine_after=2, probation_slots=10, probe_successes=2,
    )
    defaults.update(overrides)
    return DeadlineDispatcher(RtPolicy(**defaults), slot_us=1000.0)


def run_slots(dispatcher, requests, slots, fuel_for, start=0):
    """Drive the dispatcher: each dispatched call reports fuel_for(key, slot)."""
    for slot in range(start, start + slots):
        for decision in dispatcher.plan_slot(slot, requests):
            if not decision.dispatches:
                continue
            fuel = fuel_for(decision.key, slot)
            overrun = (
                decision.fuel_budget is not None and fuel > decision.fuel_budget
            )
            dispatcher.observe_call(
                decision, slot,
                fuel_used=decision.fuel_budget if overrun else fuel,
                elapsed_us=10.0, overrun=overrun,
            )
        dispatcher.settle(slot)


class TestAdmission:
    def test_warming_up_admits(self):
        dispatcher = make_dispatcher()
        decisions = dispatcher.plan_slot(0, [RtRequest(1, "rr", "normal")])
        assert decisions[0].verdict is Verdict.ADMIT
        assert decisions[0].reason == "warming up"

    def test_creeping_p99_demotes_past_the_lane_budget(self):
        # mt rides the be lane (4000-fuel split of the 20000 budget) and
        # creeps from comfortably inside to just over budget/headroom: its
        # windowed p99 crosses, the verdict flips to demote, and - still
        # fitting the slot - it keeps dispatching in the floor lane
        dispatcher = make_dispatcher(quarantine_after=100)
        requests = [RtRequest(2, "pf", "normal"), RtRequest(3, "mt", "be")]
        run_slots(dispatcher, requests, 6, lambda k, s: 3000 if k == "mt" else 500)
        assert dispatcher.admission.state("mt").last_verdict == "admit"
        run_slots(
            dispatcher, requests, 6,
            lambda k, s: 3500 if k == "mt" else 500, start=6,
        )
        st = dispatcher.admission.state("mt")
        assert st.last_verdict == "demote"
        assert st.overruns == 0  # demoted, not cut: 3500 fits the 4000 floor

    def test_runaway_p99_rejects_outright(self):
        # a lone be plugin inherits the whole 20000 budget via rolldown, so
        # its 18000-fuel calls *succeed* and fill the window - but once
        # p99*headroom clears the slot budget nothing can fit it: reject
        dispatcher = make_dispatcher(quarantine_after=100)
        requests = [RtRequest(3, "mt", "be")]
        run_slots(dispatcher, requests, 8, lambda k, s: 18_000)
        st = dispatcher.admission.state("mt")
        assert st.last_verdict == "reject"
        assert st.rejects > 0

    def test_sla_plugin_is_admitted_despite_hot_p99(self):
        dispatcher = make_dispatcher(quarantine_after=100)
        requests = [RtRequest(1, "rr", "sla"), RtRequest(2, "pf", "normal")]
        # rr's p99 sits far above any per-call split, but sla never sheds
        run_slots(dispatcher, requests, 12, lambda k, s: 18_000 if k == "rr" else 300)
        assert dispatcher.admission.state("rr").last_verdict in ("admit", "")
        assert dispatcher.counters.shed_by_lane.get("sla", 0) == 0

    def test_overruns_quarantine_then_probation_readmits(self):
        dispatcher = make_dispatcher()
        requests = [RtRequest(1, "hog", "be")]

        # phase 1: the plugin overruns its budget every slot -> 2 overruns
        # open the breaker -> quarantined
        run_slots(dispatcher, requests, 4, lambda k, s: 10**9)
        st = dispatcher.admission.state("hog")
        assert st.quarantines == 1
        assert st.last_verdict == "quarantine"

        # phase 2: after probation_slots the breaker half-opens, the next
        # dispatches are probes, and in-budget behaviour re-admits
        base = dispatcher.counters.slots
        for slot in range(base, base + 20):
            for decision in dispatcher.plan_slot(slot, requests):
                if decision.dispatches:
                    dispatcher.observe_call(
                        decision, slot, fuel_used=200, elapsed_us=1.0, overrun=False
                    )
            dispatcher.settle(slot)
        st = dispatcher.admission.state("hog")
        assert st.readmissions == 1
        assert st.last_verdict in ("probe", "admit")
        assert any("readmitted" in line for line in dispatcher.events)

    def test_p99_is_exact_order_statistic_over_window(self):
        dispatcher = make_dispatcher(window=16)
        st = dispatcher.admission.state("rr")
        for fuel in range(100, 116):
            dispatcher.admission.observe("rr", 0, fuel, overrun=False)
        assert st.fuel_p99() == sorted(st.window)[int(0.99 * 15)]

    def test_events_log_only_verdict_changes(self):
        dispatcher = make_dispatcher()
        requests = [RtRequest(1, "rr", "normal")]
        run_slots(dispatcher, requests, 6, lambda k, s: 300)
        admits = [e for e in dispatcher.events if "plugin=rr" in e]
        assert len(admits) == 1  # one line for the initial admit, not six


class TestDispatcher:
    def test_observe_only_mode_admits_unbudgeted_and_counts_misses(self):
        dispatcher = make_dispatcher(enforce=False)
        requests = [RtRequest(1, "rr", "sla"), RtRequest(2, "hog", "be")]
        run_slots(dispatcher, requests, 3, lambda k, s: 50_000)
        assert dispatcher.counters.dispatched == 6
        assert dispatcher.counters.degraded == 0
        assert dispatcher.counters.misses == 3  # 100k fuel vs 20k budget
        decisions = dispatcher.plan_slot(99, requests)
        assert all(d.fuel_budget is None for d in decisions)

    def test_plan_is_deterministic(self):
        def run():
            dispatcher = make_dispatcher()
            requests = [
                RtRequest(1, "rr", "sla"),
                RtRequest(2, "pf", "normal"),
                RtRequest(3, "hog", "be"),
            ]
            run_slots(
                dispatcher, requests, 30,
                lambda k, s: 10**9 if k == "hog" and 5 <= s < 15 else 400,
            )
            return list(dispatcher.events), dispatcher.counters.to_json()

        assert run() == run()

    def test_dispatch_order_is_lane_priority_first(self):
        dispatcher = make_dispatcher()
        decisions = dispatcher.plan_slot(
            0,
            [
                RtRequest(1, "mt", "be"),
                RtRequest(2, "pf", "normal"),
                RtRequest(3, "rr", "sla"),
            ],
        )
        assert [d.lane for d in decisions] == ["sla", "normal", "be"]

    def test_scarcity_sheds_best_effort_never_sla(self):
        # 18 plugins across the three lanes with a budget that cannot fit
        # them all: the be lane sheds, the sla lane never does
        dispatcher = make_dispatcher(min_call_fuel=1500)
        lanes = ("sla", "normal", "be")
        requests = [
            RtRequest(sid, f"p{sid}", lanes[sid % 3]) for sid in range(18)
        ]
        run_slots(dispatcher, requests, 4, lambda k, s: 800)
        shed = dispatcher.counters.shed_by_lane
        assert shed.get("be", 0) > 0
        assert shed.get("sla", 0) == 0

    def test_settle_flags_fuel_overrun_slots(self):
        dispatcher = make_dispatcher()
        decisions = dispatcher.plan_slot(0, [RtRequest(1, "rr", "sla")])
        dispatcher.observe_call(
            decisions[0], 0, fuel_used=30_000, elapsed_us=5.0, overrun=False
        )
        assert dispatcher.settle(0) is True
        assert dispatcher.counters.misses == 1
        decisions = dispatcher.plan_slot(1, [RtRequest(1, "rr", "sla")])
        dispatcher.observe_call(
            decisions[0], 1, fuel_used=500, elapsed_us=5.0, overrun=False
        )
        assert dispatcher.settle(1) is False


class TestHostBudgetMapping:
    """The abi end: rt budgets preempt with kind ``deadline``, not ``fuel``."""

    def test_budgeted_exhaustion_is_a_deadline(self):
        host = PluginHost(plugin_wasm("rr"), name="rr")
        with pytest.raises(PluginError) as excinfo:
            host.call(sched_payload(), fuel=300)
        assert excinfo.value.kind == "deadline"
        assert "rt budget" in str(excinfo.value)

    def test_own_limit_exhaustion_is_still_fuel(self):
        host = PluginHost(
            plugin_wasm("rr"), name="rr", limits=HostLimits(fuel=300)
        )
        with pytest.raises(PluginError) as excinfo:
            host.call(sched_payload())
        assert excinfo.value.kind == "fuel"

    def test_budget_wider_than_plugin_cost_runs_clean(self):
        host = PluginHost(plugin_wasm("rr"), name="rr")
        result = host.call(sched_payload(), fuel=500_000)
        assert result.output
        assert result.fuel_used is not None and result.fuel_used < 500_000

    def test_chaos_fuel_cut_keeps_kind_fuel_even_when_budgeted(self):
        # the chaos injection, not the rt budget, was the binding cut: the
        # fault log must attribute it to chaos (kind "fuel"), not rt
        host = PluginHost(
            plugin_wasm("rr"), name="rr",
            chaos=FaultSchedule(ChaosConfig(seed=9, fuel_cut=1.0)),
        )
        with pytest.raises(PluginError) as excinfo:
            host.call(sched_payload(), fuel=100_000)
        assert excinfo.value.kind == "fuel"


class TestFlightRecordReplay:
    """Satellite: rt decisions ride the flight record and replay bit-exactly."""

    @pytest.fixture(autouse=True)
    def telemetry(self):
        obs.enable()
        obs.reset()
        yield
        obs.reset()
        obs.disable()

    def test_rt_attrs_record_effective_budget(self):
        host = PluginHost(plugin_wasm("rr"), name="rr")
        with pytest.raises(PluginError):
            host.call(
                sched_payload(), fuel=300,
                rt={"lane": "be", "verdict": "admit", "fuel": 300},
            )
        record = obs.OBS.flight.records()[-1]
        assert record.outcome == "deadline"
        assert record.attrs["rt"] == {"lane": "be", "verdict": "admit", "fuel": 300}

    @pytest.mark.parametrize("engine", ["legacy", "threaded", "aot"])
    def test_degraded_call_replays_bit_exactly(self, engine):
        host = PluginHost(plugin_wasm("rr"), name="rr", engine=engine)
        with pytest.raises(PluginError) as original:
            host.call(
                sched_payload(), fuel=300,
                rt={"lane": "be", "verdict": "admit", "fuel": 300},
            )
        record = obs.OBS.flight.records()[-1]

        with pytest.raises(PluginError) as replayed:
            host.replay(record)
        assert replayed.value.kind == original.value.kind == "deadline"
        replay_record = obs.OBS.flight.records()[-1]
        assert replay_record.outcome == record.outcome == "deadline"
        assert replay_record.fuel_used == record.fuel_used
        assert replay_record.attrs["rt"] == record.attrs["rt"]

    def test_replay_composes_rt_budget_with_chaos_injection(self):
        # a chaos deadline blowout on a *budgeted* call: both attachments
        # land on the record and the replay reproduces the same outcome
        host = PluginHost(
            plugin_wasm("rr"), name="rr",
            chaos=FaultSchedule(ChaosConfig(seed=9, deadline=1.0)),
        )
        with pytest.raises(PluginError) as original:
            host.call(
                sched_payload(), fuel=100_000,
                rt={"lane": "normal", "verdict": "admit", "fuel": 100_000},
            )
        record = obs.OBS.flight.records()[-1]
        assert record.attrs["chaos"]["kind"] == "deadline"
        assert record.attrs["rt"]["fuel"] == 100_000

        with pytest.raises(PluginError) as replayed:
            host.replay(record)
        assert replayed.value.kind == original.value.kind == "deadline"
        replay_record = obs.OBS.flight.records()[-1]
        assert replay_record.attrs["chaos"] == record.attrs["chaos"]
        assert replay_record.attrs["rt"] == record.attrs["rt"]

    def test_clean_budgeted_call_replays_same_output(self):
        host = PluginHost(plugin_wasm("rr"), name="rr")
        result = host.call(
            sched_payload(), fuel=500_000,
            rt={"lane": "sla", "verdict": "admit", "fuel": 500_000},
        )
        record = obs.OBS.flight.records()[-1]
        replayed = host.replay(record)
        assert replayed.output == result.output
        assert replayed.fuel_used == result.fuel_used
