"""Scaling determinism: aggregates are invariant under deployment shape.

The paper's scale-out claim only holds if *how* you run the sweep -
worker count, wire transport, Wasm engine tier, process vs inline -
never changes *what* the sweep computes.  These tests pin that
invariance: byte-identical scheduled-bytes and fault-log digests across
1/2/4 workers, across inline/tcp/shm, and across all three engines.
"""

from dataclasses import replace

import pytest

from repro import obs
from repro.cluster import ClusterSpec, metro_spec, run_cluster
from repro.wasm.threaded import ENGINES

BASE = ClusterSpec(
    workers=2, cells=4, ues=8, slots=40, mode="inline", timeout_s=120.0
)
#: smaller proc-mode spec: same coverage, bounded spawn cost
PROC = replace(BASE, slots=30, ues=4)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    obs.reset()
    obs.disable()


def _digests(report):
    return (
        report.bytes_digest,
        report.fault_digest,
        report.indications_seen,
    )


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_inline_digests_identical_across_1_2_4_workers(self, engine):
        spec = replace(BASE, engine=engine)
        results = {
            w: _digests(run_cluster(replace(spec, workers=w)))
            for w in (1, 2, 4)
        }
        assert results[1] == results[2] == results[4]

    def test_shm_proc_digests_identical_across_worker_counts(self):
        spec = replace(PROC, mode="proc", transport="shm")
        one = _digests(run_cluster(replace(spec, workers=1)))
        four = _digests(run_cluster(replace(spec, workers=4)))
        assert one == four


class TestTransportInvariance:
    @pytest.mark.parametrize("transport", ("tcp", "shm"))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_proc_transport_matches_inline(self, transport, engine):
        spec = replace(PROC, engine=engine)
        inline = _digests(run_cluster(spec))
        proc = _digests(
            run_cluster(replace(spec, mode="proc", transport=transport))
        )
        assert proc == inline


class TestMetro:
    def test_metro_spec_shape(self):
        spec = metro_spec()
        spec.validate()
        assert spec.cells == 64
        assert spec.mode == "proc" and spec.transport == "shm"
        # every worker gets a non-empty shard at the default worker count
        assert all(spec.cells_for_worker(w) for w in range(spec.workers))
        assert sum(spec.ues_for_cell(g) for g in range(spec.cells)) == spec.ues

    def test_metro_digests_invariant_under_worker_count(self):
        base = replace(metro_spec(slots=8), mode="inline")
        one = _digests(run_cluster(replace(base, workers=1)))
        four = _digests(run_cluster(replace(base, workers=4)))
        assert one == four


class TestObservabilityInvariance:
    def test_trace_and_capture_do_not_change_digests(self):
        plain = _digests(run_cluster(BASE))
        traced = _digests(run_cluster(replace(BASE, trace=True)))
        captured = _digests(run_cluster(replace(BASE, capture=True)))
        assert plain == traced == captured

    def test_chaos_digests_invariant_across_shm_worker_counts(self):
        spec = replace(
            PROC,
            mode="proc",
            transport="shm",
            chaos="seed=5,trap=0.05,fuel_cut=0.02",
        )
        two = run_cluster(spec)
        assert two.fault_log, "chaos spec must actually inject faults"
        one = run_cluster(replace(spec, workers=1))
        assert _digests(one) == _digests(two)
