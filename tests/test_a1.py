"""A1-lite tests: non-RT RIC policies driving the near-RT RIC loop."""

import pytest

from repro.abi import SchedulerPlugin
from repro.channel import FixedMcsChannel
from repro.e2 import CommChannel, E2NodeAgent, vendors
from repro.gnb import GnbHost, SliceRuntime, UeContext
from repro.netio import InProcNetwork
from repro.plugins import plugin_wasm
from repro.ric import MSG_SLICE_KPI, NearRtRic
from repro.ric.a1 import (
    A1Error,
    A1PolicyStore,
    NonRtRic,
    POLICY_SLICE_SLA,
    POLICY_STEERING,
)
from repro.sched import TargetRateInterSlice
from repro.traffic import FullBufferSource


class TestPolicyStore:
    def test_create_and_lookup(self):
        store = A1PolicyStore()
        ack = store.handle({
            "msg": "a1_policy_create", "policy_id": 1,
            "policy_type": POLICY_SLICE_SLA,
            "payload": {"slice_id": 3, "sla_bps": 7e6},
        })
        assert ack["accepted"]
        assert store.slice_sla_bps(3) == 7e6
        assert store.slice_sla_bps(4) is None

    def test_newest_policy_wins(self):
        store = A1PolicyStore()
        for pid, sla in ((1, 5e6), (2, 9e6)):
            store.handle({
                "msg": "a1_policy_create", "policy_id": pid,
                "policy_type": POLICY_SLICE_SLA,
                "payload": {"slice_id": 1, "sla_bps": sla},
            })
        assert store.slice_sla_bps(1) == 9e6

    def test_delete(self):
        store = A1PolicyStore()
        store.handle({
            "msg": "a1_policy_create", "policy_id": 1,
            "policy_type": POLICY_SLICE_SLA,
            "payload": {"slice_id": 1, "sla_bps": 5e6},
        })
        ack = store.handle({"msg": "a1_policy_delete", "policy_id": 1})
        assert ack["accepted"]
        assert store.slice_sla_bps(1) is None

    def test_unsupported_type_nacked(self):
        store = A1PolicyStore()
        ack = store.handle({
            "msg": "a1_policy_create", "policy_id": 1,
            "policy_type": "quantum_beamforming", "payload": {},
        })
        assert not ack["accepted"]

    def test_unknown_message_raises(self):
        with pytest.raises(A1Error):
            A1PolicyStore().handle({"msg": "a1_teleport"})

    def test_steering_policy(self):
        store = A1PolicyStore()
        store.handle({
            "msg": "a1_policy_create", "policy_id": 1,
            "policy_type": POLICY_STEERING, "payload": {"hysteresis": 4},
        })
        assert store.steering_hysteresis() == 4


class TestNonRtRic:
    def test_create_rejects_unknown_type(self):
        net = InProcNetwork()
        nonrt = NonRtRic(net.endpoint("nonrt"))
        net.endpoint("ric")
        with pytest.raises(A1Error):
            nonrt.create_policy("ric", "bogus", {})

    def test_policy_roundtrip_with_ack(self):
        net = InProcNetwork()
        nonrt = NonRtRic(net.endpoint("nonrt"))
        ric = NearRtRic(
            CommChannel(net.endpoint("ric-e2"), vendors.vendor_a()),
            a1_endpoint=net.endpoint("ric"),
        )
        policy_id = nonrt.create_policy(
            "ric", POLICY_SLICE_SLA, {"slice_id": 1, "sla_bps": 6e6}
        )
        ric.step()
        nonrt.poll_acks()
        assert nonrt.acks and nonrt.acks[0]["policy_id"] == policy_id
        assert ric.a1_policies.slice_sla_bps(1) == 6e6


class TestA1DrivenSlaLoop:
    def test_full_chain_smo_to_gnb(self):
        """SMO policy -> near-RT RIC -> SLA xApp -> E2 control -> gNB quota.

        No patching of node reports: the SLA comes in over A1, exactly as
        the architecture intends.
        """
        net = InProcNetwork()
        gnb = GnbHost(inter_slice=TargetRateInterSlice({1: 2e6}, slot_duration_s=1e-3))
        runtime = gnb.add_slice(SliceRuntime(1, "tenant"))
        runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(28), FullBufferSource()))
        vendor = vendors.vendor_a()
        node = E2NodeAgent(gnb, CommChannel(net.endpoint("gnb1"), vendor), "gnb1")
        ric = NearRtRic(
            CommChannel(net.endpoint("ric"), vendor),
            a1_endpoint=net.endpoint("ric-a1"),
        )
        ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        ric.connect("gnb1", period_slots=200)
        nonrt = NonRtRic(net.endpoint("nonrt"))
        nonrt.create_policy("ric-a1", POLICY_SLICE_SLA, {"slice_id": 1, "sla_bps": 5e6})

        for _ in range(700):
            gnb.step()
            node.step()
            ric.step()

        boosts = [c["value"] for c in ric.controls_sent]
        assert 6_000_000 in boosts  # 1.2 * the A1 SLA
        assert gnb.inter_slice.targets_bps[1] == pytest.approx(5e6)

    def test_policy_update_moves_the_loop(self):
        net = InProcNetwork()
        gnb = GnbHost(inter_slice=TargetRateInterSlice({1: 2e6}, slot_duration_s=1e-3))
        runtime = gnb.add_slice(SliceRuntime(1, "tenant"))
        runtime.use_plugin(SchedulerPlugin.load(plugin_wasm("rr"), name="rr"))
        gnb.attach_ue(UeContext(1, 1, FixedMcsChannel(28), FullBufferSource()))
        vendor = vendors.vendor_a()
        node = E2NodeAgent(gnb, CommChannel(net.endpoint("gnb1"), vendor), "gnb1")
        ric = NearRtRic(
            CommChannel(net.endpoint("ric"), vendor),
            a1_endpoint=net.endpoint("ric-a1"),
        )
        ric.load_xapp("sla", plugin_wasm("xapp_sla"), (MSG_SLICE_KPI,))
        ric.connect("gnb1", period_slots=100)
        nonrt = NonRtRic(net.endpoint("nonrt"))
        nonrt.create_policy("ric-a1", POLICY_SLICE_SLA, {"slice_id": 1, "sla_bps": 4e6})

        for _ in range(500):
            gnb.step(); node.step(); ric.step()
        first_quota = gnb.inter_slice.targets_bps[1]
        assert first_quota == pytest.approx(4e6, rel=0.25)

        # operator raises the SLA; the loop follows
        nonrt.create_policy("ric-a1", POLICY_SLICE_SLA, {"slice_id": 1, "sla_bps": 10e6})
        for _ in range(600):
            gnb.step(); node.step(); ric.step()
        assert gnb.inter_slice.targets_bps[1] > first_quota


class TestA1SteeringPolicy:
    def test_hysteresis_param_reaches_xapp(self):
        """A1 steering policy changes the ts xApp's A3 threshold live."""
        from repro.ric import MSG_UE_MEAS, pack_xapp_input, unpack_xapp_actions

        net = InProcNetwork()
        ric = NearRtRic(
            CommChannel(net.endpoint("ric"), vendors.vendor_a()),
            a1_endpoint=net.endpoint("ric-a1"),
        )
        runtime = ric.load_xapp("ts", plugin_wasm("xapp_ts"), (MSG_UE_MEAS,))
        nonrt = NonRtRic(net.endpoint("nonrt"))

        # neighbour is exactly +3: triggers at default hysteresis 2
        records = [(1, 7, 2, 10, 1e6, 0.0)]
        payload = pack_xapp_input(MSG_UE_MEAS, records)
        result = runtime.host.call(payload, entry="on_indication")
        assert len(unpack_xapp_actions(result.output)) == 1

        # operator tightens hysteresis to 5 over A1 -> no more handover
        nonrt.create_policy("ric-a1", POLICY_STEERING, {"hysteresis": 5})
        ric.step()
        result = runtime.host.call(payload, entry="on_indication")
        assert unpack_xapp_actions(result.output) == []
