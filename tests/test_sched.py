"""Tests for native intra- and inter-slice schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    FixedShareInterSlice,
    MaximumThroughputScheduler,
    PriorityInterSlice,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    TargetRateInterSlice,
    UeSchedInfo,
    make_intra_scheduler,
    validate_grants,
)
from repro.sched.types import GrantValidationError


def full(ue_id, mcs=15, avg=0.0):
    return UeSchedInfo(ue_id, mcs, 9, 10_000_000, avg)


def gd(grants):
    return {g.ue_id: g.prbs for g in grants}


ue_strategy = st.builds(
    UeSchedInfo,
    ue_id=st.integers(0, 100),
    mcs=st.integers(0, 28),
    cqi=st.integers(0, 15),
    buffer_bytes=st.integers(0, 5_000_000),
    avg_tput_bps=st.floats(0, 1e8, allow_nan=False),
)


class TestGrantValidation:
    def test_valid(self):
        ues = [full(1), full(2)]
        sched = RoundRobinScheduler()
        grants = sched.schedule(52, ues, 0)
        validate_grants(grants, 52, ues)

    def test_unknown_ue(self):
        from repro.sched.types import UeGrant

        with pytest.raises(GrantValidationError, match="unknown UE"):
            validate_grants([UeGrant(99, 1)], 52, [full(1)])

    def test_duplicate(self):
        from repro.sched.types import UeGrant

        with pytest.raises(GrantValidationError, match="duplicate"):
            validate_grants([UeGrant(1, 1), UeGrant(1, 2)], 52, [full(1)])

    def test_overallocation(self):
        from repro.sched.types import UeGrant

        with pytest.raises(GrantValidationError, match="allocate"):
            validate_grants([UeGrant(1, 53)], 52, [full(1)])

    def test_negative(self):
        from repro.sched.types import UeGrant

        with pytest.raises(GrantValidationError, match="negative"):
            validate_grants([UeGrant(1, -1)], 52, [full(1)])


class TestIntraSchedulers:
    @pytest.mark.parametrize("name", ["rr", "pf", "mt"])
    @given(ues=st.lists(ue_strategy, max_size=10), prbs=st.integers(0, 106))
    @settings(max_examples=30, deadline=None)
    def test_never_overallocates(self, name, ues, prbs):
        seen = {}
        for ue in ues:
            seen[ue.ue_id] = ue
        ues = list(seen.values())
        sched = make_intra_scheduler(name)
        for slot in range(3):
            grants = sched.schedule(prbs, ues, slot)
            validate_grants(grants, prbs, ues)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_intra_scheduler("edf")

    def test_rr_full_utilisation(self):
        grants = RoundRobinScheduler().schedule(52, [full(1), full(2)], 0)
        assert sum(gd(grants).values()) == 52

    def test_rr_skips_empty_buffers(self):
        ues = [full(1), UeSchedInfo(2, 15, 9, 0, 0.0)]
        grants = gd(RoundRobinScheduler().schedule(52, ues, 0))
        assert 2 not in grants
        assert grants[1] == 52

    def test_mt_picks_best_channel(self):
        ues = [full(1, mcs=10), full(2, mcs=28), full(3, mcs=20)]
        grants = gd(MaximumThroughputScheduler().schedule(52, ues, 0))
        assert grants == {2: 52}

    def test_mt_spills_to_second_best(self):
        ues = [
            UeSchedInfo(1, 28, 15, 1000, 0.0),  # small buffer
            full(2, mcs=20),
        ]
        grants = gd(MaximumThroughputScheduler().schedule(52, ues, 0))
        assert grants[1] <= 12  # 1000 B at MCS 28 ~ 11 PRBs
        assert grants[2] >= 40

    def test_pf_metric_balance(self):
        """PF must eventually serve both UEs when averages update."""
        sched = ProportionalFairScheduler()
        avg = {1: 1.0, 2: 1.0}
        served_count = {1: 0, 2: 0}
        tc = 20
        for slot in range(200):
            ues = [
                UeSchedInfo(1, 28, 15, 10_000_000, avg[1]),
                UeSchedInfo(2, 16, 9, 10_000_000, avg[2]),
            ]
            grants = gd(sched.schedule(52, ues, slot))
            from repro.phy.tbs import transport_block_size_bits

            for uid in (1, 2):
                inst = transport_block_size_bits(
                    grants.get(uid, 0), 28 if uid == 1 else 16
                ) * 1000
                avg[uid] = (1 - 1 / tc) * avg[uid] + inst / tc
                if grants.get(uid, 0) > 0:
                    served_count[uid] += 1
        assert served_count[1] > 20
        assert served_count[2] > 20

    def test_pf_alpha_zero_ignores_rate(self):
        sched = ProportionalFairScheduler(alpha=0.0)
        a = UeSchedInfo(1, 28, 15, 1000, 5e6)
        b = UeSchedInfo(2, 0, 1, 1000, 1e6)
        # with alpha=0, only avg matters -> b (lower avg) wins
        assert sched.metric(b) > sched.metric(a)


class TestFixedShareInter:
    def test_split(self):
        inter = FixedShareInterSlice({1: 0.5, 2: 0.5}, work_conserving=False)
        alloc = inter.allocate(52, {1: [full(1)], 2: [full(2)]}, 0)
        assert alloc == {1: 26, 2: 26}

    def test_uneven_split_rounds(self):
        inter = FixedShareInterSlice({1: 2, 2: 1}, work_conserving=False)
        alloc = inter.allocate(52, {1: [full(1)], 2: [full(2)]}, 0)
        assert sum(alloc.values()) == 52
        assert alloc[1] in (34, 35)

    def test_work_conserving_reclaims_idle(self):
        inter = FixedShareInterSlice({1: 0.5, 2: 0.5})
        empty = [UeSchedInfo(2, 15, 9, 0, 0.0)]
        alloc = inter.allocate(52, {1: [full(1)], 2: empty}, 0)
        assert alloc[1] == 52
        assert alloc[2] == 0

    def test_bad_shares(self):
        with pytest.raises(ValueError):
            FixedShareInterSlice({1: 0.0})
        with pytest.raises(ValueError):
            FixedShareInterSlice({1: -1, 2: 2})


class TestTargetRateInter:
    def test_rates_capped_at_target(self):
        """Non-work-conserving: a slice never gets more than its tokens."""
        inter = TargetRateInterSlice({1: 3e6}, slot_duration_s=1e-3)
        delivered = 0
        from repro.phy.tbs import transport_block_size_bits

        for slot in range(2000):
            alloc = inter.allocate(52, {1: [full(1, mcs=28)]}, slot)
            nbytes = transport_block_size_bits(alloc.get(1, 0), 28) // 8
            inter.notify_delivery(1, nbytes)
            delivered += nbytes
        rate = delivered * 8 / 2.0
        assert rate == pytest.approx(3e6, rel=0.1)

    def test_competing_slices_scale_down(self):
        inter = TargetRateInterSlice({1: 50e6, 2: 50e6}, slot_duration_s=1e-3)
        slice_ues = {1: [full(1, mcs=28)], 2: [full(2, mcs=28)]}
        for slot in range(60):
            alloc = inter.allocate(52, slice_ues, slot)
            assert sum(alloc.values()) <= 52
        # both saturated and symmetric
        assert abs(alloc[1] - alloc[2]) <= 1

    def test_no_demand_no_allocation(self):
        inter = TargetRateInterSlice({1: 10e6})
        alloc = inter.allocate(52, {1: [UeSchedInfo(1, 15, 9, 0, 0.0)]}, 0)
        assert alloc[1] == 0

    def test_work_conserving_redistributes(self):
        inter = TargetRateInterSlice(
            {1: 1e6, 2: 1e6}, work_conserving=True, burst_slots=1
        )
        slice_ues = {1: [full(1)], 2: [UeSchedInfo(2, 15, 9, 0, 0.0)]}
        for slot in range(10):
            alloc = inter.allocate(52, slice_ues, slot)
        assert alloc[1] == 52  # slice 1 absorbs everything

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            TargetRateInterSlice({1: -5})


class TestPriorityInter:
    def test_high_priority_first(self):
        inter = PriorityInterSlice({1: 0, 2: 10})
        alloc = inter.allocate(52, {1: [full(1)], 2: [full(2)]}, 0)
        assert alloc[2] == 52
        assert alloc[1] == 0

    def test_leftover_flows_down(self):
        inter = PriorityInterSlice({1: 0, 2: 10})
        small = [UeSchedInfo(2, 28, 15, 500, 0.0)]
        alloc = inter.allocate(52, {1: [full(1)], 2: small}, 0)
        assert alloc[2] <= 6
        assert alloc[1] >= 46
