"""Tier-1 chaos soak: a short ChaosRunner run must hold every invariant.

The full 10k-slot soak lives in ``benchmarks/bench_chaos_soak.py``; this
keeps a ~400-slot version in the default test run so the invariants are
exercised on every commit, under every engine.
"""

import pytest

from repro.chaos import ChaosConfig, ChaosRunner

SEED = 42
SLOTS = 400

#: hotter-than-soak mix so even 400 slots climbs the escalation ladder
HOT = ChaosConfig(
    seed=SEED,
    trap=0.05,
    fuel_cut=0.03,
    bitflip=0.01,
    abi=0.02,
    oversize=0.01,
    deadline=0.02,
    drop=0.03,
    dup=0.02,
    corrupt=0.03,
    delay=0.02,
    fail=0.05,
)


@pytest.mark.parametrize("engine", ["legacy", "threaded", "aot"])
class TestSoakInvariants:
    def test_invariants_hold(self, engine):
        report = ChaosRunner(
            seed=SEED, slots=SLOTS, engine=engine, config=HOT
        ).run()
        assert report.violations == [], report.violations[:5]
        # the schedule exercised both the plugin and transport layers...
        assert report.faults > 0
        assert any(k in report.injection_counts for k in ("drop", "fail", "corrupt"))
        # ...and the recovery machinery actually ran
        assert report.releases > 0
        assert report.recoveries > 0
        assert report.checkpoints > 0

    def test_same_seed_byte_identical_log(self, engine):
        first = ChaosRunner(seed=SEED, slots=SLOTS, engine=engine, config=HOT).run()
        second = ChaosRunner(seed=SEED, slots=SLOTS, engine=engine, config=HOT).run()
        assert first.log == second.log
        assert first.digest == second.digest

    def test_different_seed_different_schedule(self, engine):
        first = ChaosRunner(seed=1, slots=100, engine=engine).run()
        second = ChaosRunner(seed=2, slots=100, engine=engine).run()
        assert first.log != second.log
