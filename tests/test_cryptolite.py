"""Crypto tests, including FIPS-197 known-answer vectors."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cryptolite import (
    AesCtr,
    aes128_decrypt_block,
    aes128_encrypt_block,
    generate_keypair,
)


class TestAesKnownAnswers:
    def test_fips197_appendix_c1(self):
        """FIPS-197 Appendix C.1 AES-128 vector."""
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected
        assert aes128_decrypt_block(key, expected) == plaintext

    def test_fips197_appendix_b(self):
        """FIPS-197 Appendix B worked example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_block_size_enforced(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"k" * 16, b"short")
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"short", b"p" * 16)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, key, block):
        assert aes128_decrypt_block(key, aes128_encrypt_block(key, block)) == block


class TestAesCtr:
    def test_roundtrip_arbitrary_length(self):
        ctr = AesCtr(b"0123456789abcdef", b"nonce123")
        message = b"E2 indication payload " * 7 + b"tail"
        assert ctr.decrypt(ctr.encrypt(message)) == message

    def test_different_nonce_different_stream(self):
        key = b"k" * 16
        a = AesCtr(key, b"nonce--1").encrypt(b"\x00" * 32)
        b = AesCtr(key, b"nonce--2").encrypt(b"\x00" * 32)
        assert a != b

    def test_counter_offset(self):
        ctr = AesCtr(b"k" * 16, b"n" * 8)
        whole = ctr.encrypt(b"\x00" * 32)
        second_block = ctr.process(b"\x00" * 16, initial_counter=1)
        assert whole[16:] == second_block

    def test_nonce_length_enforced(self):
        with pytest.raises(ValueError):
            AesCtr(b"k" * 16, b"short")

    def test_empty_message(self):
        assert AesCtr(b"k" * 16, b"n" * 8).encrypt(b"") == b""


class TestRsa:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(bits=512, seed=1234)

    def test_int_roundtrip(self, keypair):
        m = 123456789
        assert keypair.decrypt_int(keypair.encrypt_int(m)) == m

    def test_bytes_roundtrip(self, keypair):
        message = b"slice quota update"
        ct = keypair.encrypt(message, rng=random.Random(1))
        assert keypair.decrypt(ct) == message

    def test_padding_randomised(self, keypair):
        message = b"m"
        a = keypair.encrypt(message, rng=random.Random(1))
        b = keypair.encrypt(message, rng=random.Random(2))
        assert a != b
        assert keypair.decrypt(a) == keypair.decrypt(b) == message

    def test_message_too_long_rejected(self, keypair):
        with pytest.raises(ValueError, match="too long"):
            keypair.encrypt(b"x" * keypair.byte_length)

    def test_signature_verify(self, keypair):
        digest = b"\x12" * 20
        sig = keypair.sign_digest(digest)
        assert keypair.verify_digest(digest, sig)
        assert not keypair.verify_digest(b"\x13" * 20, sig)

    def test_deterministic_keygen(self):
        a = generate_keypair(bits=256, seed=42)
        b = generate_keypair(bits=256, seed=42)
        assert a.n == b.n and a.d == b.d

    def test_tampered_ciphertext_detected_or_garbled(self, keypair):
        message = b"important"
        ct = bytearray(keypair.encrypt(message, rng=random.Random(3)))
        ct[5] ^= 0xFF
        try:
            out = keypair.decrypt(bytes(ct))
        except ValueError:
            return  # padding check caught it
        assert out != message

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=64)
