"""The cluster load generator: sweep cells x UEs x workers.

Drives :func:`~repro.cluster.coordinator.run_cluster` over a grid of
configurations derived from one base spec, checking on the way that the
aggregate results (scheduled-bytes and fault-log digests) are invariant
under the worker count - the cluster's core determinism claim - and
returning one flat list of reports for the benchmark/CLI layer to table
or serialise.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Sequence

from repro.cluster.coordinator import ClusterError, ClusterReport, run_cluster
from repro.cluster.spec import ClusterSpec


#: the metro deployment target: one worker pool scheduling a city's
#: worth of cells.  The scale-out roadmap grows sweeps toward this.
METRO_CELLS = 64
METRO_UES = 256


def metro_spec(
    workers: int = 4,
    slots: int = 200,
    transport: str = "shm",
    mode: str = "proc",
) -> ClusterSpec:
    """The 64-cell "metro" spec: the largest supported deployment shape.

    Defaults to shared-memory transport - at this cell count the uplink
    frame rate is what separates the backends - with a generous deadline
    so CI-class machines finish.  Digest invariance applies unchanged:
    a metro run at any worker count must agree with ``workers=1``.
    """
    return ClusterSpec(
        workers=workers,
        cells=METRO_CELLS,
        ues=METRO_UES,
        slots=slots,
        mode=mode,
        transport=transport,
        timeout_s=1800.0,
    )


def sweep_specs(
    base: ClusterSpec,
    workers: Sequence[int] = (1, 2, 4),
    cells: Sequence[int] | None = None,
    ues: Sequence[int] | None = None,
) -> Iterator[ClusterSpec]:
    """Yield the cells x UEs x workers grid around ``base``.

    ``None`` for an axis keeps the base value; worker counts larger than
    the cell count are skipped (an idle worker measures nothing).
    """
    for n_cells in cells if cells is not None else (base.cells,):
        for n_ues in ues if ues is not None else (base.ues,):
            for n_workers in workers:
                if n_workers > n_cells:
                    continue
                yield replace(
                    base, workers=n_workers, cells=n_cells, ues=n_ues
                )


def run_sweep(
    base: ClusterSpec,
    workers: Sequence[int] = (1, 2, 4),
    cells: Sequence[int] | None = None,
    ues: Sequence[int] | None = None,
    check_invariance: bool = True,
    progress=None,
) -> list[ClusterReport]:
    """Run the whole grid; optionally verify worker-count invariance.

    With ``check_invariance`` every (cells, ues) group must produce the
    same scheduled-bytes and fault-log digests at every worker count -
    a mismatch raises :class:`ClusterError`, because it means sharding
    changed the physics.
    """
    reports: list[ClusterReport] = []
    digests: dict[tuple[int, int], tuple[str, str, int]] = {}
    for spec in sweep_specs(base, workers=workers, cells=cells, ues=ues):
        if progress is not None:
            progress(spec)
        report = run_cluster(spec)
        reports.append(report)
        if not check_invariance:
            continue
        group = (spec.cells, spec.ues)
        observed = (report.bytes_digest, report.fault_digest, report.delivered_bytes)
        expected = digests.setdefault(group, observed)
        if observed != expected:
            raise ClusterError(
                f"aggregate results changed with the worker count at "
                f"cells={spec.cells} ues={spec.ues} "
                f"workers={spec.workers}: bytes digest "
                f"{observed[0][:12]} != {expected[0][:12]} or fault "
                f"digest {observed[1][:12]} != {expected[1][:12]}"
            )
    return reports
