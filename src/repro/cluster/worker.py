"""The cell worker: one shard of the cluster, one process (or inline).

A worker derives its shard from ``(spec, worker_id)``, steps every hosted
cell slot-synchronously, and coalesces all cells' KPM indications into
the shared batched uplink.  Every ``spec.flush_every`` slots it emits one
``WBR3`` slot-range frame (see :mod:`repro.netio.batching`) carrying the
range's E2 entries, the ``[slot_lo, slot_hi]`` progress header that
doubles as the liveness heartbeat, and - when tracing - the span
documents finished during the range (drained from the tracer, so traces
stream home incrementally).  Finally it ships one ``result`` control
frame to the coordinator carrying:

- per-cell scheduled-bytes totals and deterministic fault logs,
- its process-wide metrics-registry snapshot (merged by the coordinator
  via :func:`repro.obs.merge.merge_snapshots`),
- uplink/backpressure counters (also exported as ``waran_cluster_*``
  metrics inside the snapshot),
- with ``spec.trace``: the spans still open at the end (the streamed
  ranges carry the rest) and its trace context, so the coordinator can
  stitch one cross-process trace (:mod:`repro.obs.traceexport`) - every
  slot becomes a ``worker.slot`` span (children: ``gnb.step``,
  ``e2.encode``, ``uplink.flush``, ``net.send``, ...) parented under the
  coordinator's reserved root,
- with ``spec.capture``: the full-fidelity flight-recorder call stream
  (``repro record`` merges the per-worker streams into one corpus).

With a ``spec.budget_us`` latency budget, slots that overrun it emit a
live ``trace.deadline_miss`` event naming the *guilty segment* - the
child span (or self-time) that cost the most - so SLO violations are
attributable the moment they happen, not only in the offline report.

Control frames share the transport with batched E2 frames and are
distinguished by magic::

    u32 magic 'CLS1' | utf-8 JSON document
"""

from __future__ import annotations

import json
import os
import struct
import time
from typing import Any

from repro import obs
from repro.chaos.schedule import schedule_from_env
from repro.cluster.shard import (
    CellShard,
    build_cell,
    render_cell_log,
    step_operator_loop,
)
from repro.cluster.spec import COORD, ClusterSpec
from repro.e2 import vendors
from repro.netio.batching import BatchSender, encode_span_blob
from repro.netio.bus import Endpoint
from repro.obs.tracing import TraceContext

CLUSTER_MAGIC = 0x31534C43  # 'CLS1' little-endian


def pack_control(doc: dict[str, Any]) -> bytes:
    return struct.pack("<I", CLUSTER_MAGIC) + json.dumps(
        doc, separators=(",", ":"), sort_keys=True
    ).encode()


def unpack_control(data: bytes) -> dict[str, Any] | None:
    """The parsed control document, or ``None`` for non-control frames."""
    if len(data) < 4 or struct.unpack_from("<I", data, 0)[0] != CLUSTER_MAGIC:
        return None
    return json.loads(data[4:].decode())


def _span_capacity(spec: ClusterSpec, cells: int) -> int:
    """Ring-buffer size that keeps a whole traced run (slot spans and
    their per-cell children) instead of silently evicting the early slots.

    Each slot emits the slot span, one gnb.step per cell, a 4-span
    plugin group per scheduled UE (call/invoke/encode/decode) and the
    periodic flush/encode pair; 24 per cell-slot covers the densest
    schedules with slack."""
    per_slot = 24 * max(1, cells) + 8
    return max(4096, spec.slots * per_slot)


def run_worker(
    spec: ClusterSpec,
    worker_id: int,
    endpoint: Endpoint,
    trace_parent: TraceContext | None = None,
) -> dict[str, Any]:
    """Build the shard, run the slot loop, return the result document.

    Enables (and, in its own process, effectively owns) the process-wide
    telemetry registry: the returned snapshot carries everything the
    shard's gNBs, plugins and uplink recorded.  Inline-mode callers reset
    the registry around each worker so snapshots stay per-worker.
    """
    from repro.wasm.threaded import resolve_engine

    obs.enable()
    tracer = obs.OBS.tracer
    service = f"worker{worker_id}"
    tracer.service = service
    engine = resolve_engine(spec.engine)
    schedule = schedule_from_env(spec.chaos) if spec.chaos else None
    profile = vendors.vendor_b()
    sender = BatchSender(
        endpoint, COORD, max_queue=spec.queue_limit, max_batch=spec.max_batch
    )
    prev_flight = None
    if spec.capture:
        # corpus capture: swap in a capture-mode recorder *before* the
        # cells load their plugins, so module binaries get registered
        from repro.obs.flight import FlightRecorder

        shard_cells = len(spec.cells_for_worker(worker_id))
        prev_flight = obs.OBS.flight
        obs.OBS.flight = FlightRecorder(
            capacity=spec.slots * 24 * max(1, shard_cells) + 4096,
            capture=True,
        )
    try:
        return _run_worker_body(
            spec, worker_id, endpoint, trace_parent, sender, cells=[
                build_cell(spec, g, sender, profile, schedule)
                for g in spec.cells_for_worker(worker_id)
            ], engine=engine, schedule=schedule, tracer=tracer,
            service=service,
        )
    finally:
        if prev_flight is not None:
            obs.OBS.flight = prev_flight


def _run_worker_body(
    spec: ClusterSpec,
    worker_id: int,
    endpoint: Endpoint,
    trace_parent: TraceContext | None,
    sender: BatchSender,
    cells: list[CellShard],
    engine: str,
    schedule,
    tracer,
    service: str,
) -> dict[str, Any]:
    if spec.trace:
        tracer.resize(_span_capacity(spec, len(cells)))

    registry = obs.OBS.registry
    label = str(worker_id)
    registry.gauge(
        "waran_cluster_cells", "cells hosted, by worker"
    ).set(len(cells), worker=label)
    if cells and cells[0].gnb.rt is not None:
        # the rt budget is per *cell* and slot (policy-defined, never
        # divided by worker count): an oversubscribed shard sheds load
        # inside each cell's own budget instead of ballooning p99.  The
        # gauge reports the shard's aggregate fuel ceiling per slot.
        registry.gauge(
            "waran_rt_shard_budget_fuel",
            "aggregate per-slot plugin fuel ceiling across hosted cells, "
            "by worker",
        ).set(
            sum(cell.gnb.rt.slot_budget_fuel for cell in cells),
            worker=label,
        )
    #: test hook: REPRO_TEST_WORKER_DIE="<worker>:<slot>" hard-kills this
    #: worker process at that slot (exit code 0 - the nastiest case: the
    #: coordinator sees a clean exit with no result frame)
    die_at = None
    die_spec = os.environ.get("REPRO_TEST_WORKER_DIE")
    if die_spec:
        die_worker, _, die_slot = die_spec.partition(":")
        if int(die_worker) == worker_id:
            die_at = int(die_slot)
    slot_hist = registry.histogram(
        "waran_cluster_slot_us",
        "per-slot shard step time (all hosted cells), by worker (us)",
    )
    budget = spec.budget_us or None
    miss_counter = registry.counter(
        "waran_cluster_deadline_miss_total",
        "slots that overran the latency budget, by worker",
    )

    t0 = time.perf_counter()
    range_start = 0
    with tracer.span(
        "worker.run", parent=trace_parent, worker=worker_id, cells=len(cells)
    ) as run_span:
        run_ctx = run_span.context if run_span is not obs.NULL_SPAN else None
        for slot in range(spec.slots):
            if die_at is not None and slot == die_at:
                os._exit(0)  # simulated hard crash for the fail-fast test
            with tracer.span("worker.slot", slot=slot) as slot_span:
                s0 = time.perf_counter()
                for cell in cells:
                    if cell.stepper is not None:
                        cell.stepper.step(slot)
                    cell.gnb.step()
                    cell.node.step()
                    if schedule is not None or spec.scenario is not None:
                        step_operator_loop(cell, slot, spec.release_after)
                slot_hist.observe((time.perf_counter() - s0) * 1e6, worker=label)
                if (slot + 1) % spec.flush_every == 0:
                    # one WBR3 frame per slot range: E2 entries, the
                    # progress heartbeat (its header names the range even
                    # when no entries queued), and the spans finished so
                    # far - no separate per-flush control message
                    blob = (
                        encode_span_blob(tracer.drain_finished())
                        if spec.trace
                        else b""
                    )
                    sender.flush(
                        slot_range=(range_start, slot),
                        worker=worker_id,
                        spans_blob=blob,
                    )
                    range_start = slot + 1
            if budget and slot_span is not obs.NULL_SPAN:
                elapsed = slot_span.elapsed_us
                if elapsed > budget:
                    guilty, guilty_us = slot_span.guilty_segment()
                    miss_counter.inc(worker=label)
                    obs.OBS.events.emit(
                        "trace.deadline_miss",
                        source=service,
                        slot=slot,
                        elapsed_us=round(elapsed, 1),
                        budget_us=budget,
                        guilty=guilty,
                        guilty_us=round(guilty_us, 1),
                    )
        with tracer.span("uplink.flush.final"):
            blob = (
                encode_span_blob(tracer.drain_finished())
                if spec.trace
                else b""
            )
            sender.flush(
                slot_range=(range_start, spec.slots - 1),
                worker=worker_id,
                spans_blob=blob,
            )
    run_seconds = time.perf_counter() - t0

    for cell in cells:
        cell.gnb.finish_meters()

    stats = sender.stats()
    for key, metric_name in (
        ("offered", "waran_cluster_uplink_offered_total"),
        ("dropped", "waran_cluster_uplink_dropped_total"),
        ("batches_sent", "waran_cluster_uplink_batches_total"),
        ("messages_sent", "waran_cluster_uplink_messages_total"),
        ("bytes_sent", "waran_cluster_uplink_bytes_total"),
    ):
        registry.counter(
            metric_name, f"batched E2 uplink {key.replace('_', ' ')}, by worker"
        ).inc(stats[key], worker=label)

    result = {
        "t": "result",
        "worker": worker_id,
        "engine": engine,
        "cells": [cell.name for cell in cells],
        "slots": spec.slots,
        "run_seconds": run_seconds,
        "delivered_bytes": {
            cell.name: cell.gnb.total_delivered_bytes for cell in cells
        },
        "fault_logs": {
            cell.name: render_cell_log(cell, spec, engine, schedule)
            for cell in cells
        },
        "indications_sent": sum(cell.node.channel.sent for cell in cells),
        "indications_dropped": sum(
            cell.node.channel.dropped for cell in cells
        ),
        "uplink": stats,
        "slot_us": slot_hist.snapshot(worker=label),
        "metrics": registry.to_json(),
    }
    if spec.trace:
        result["service"] = service
        # only the spans finished after the last drain - the slot ranges
        # streamed the rest home already
        result["spans"] = tracer.to_json()
        result["events"] = [
            e.to_json() for e in obs.OBS.events.events("trace.deadline_miss")
        ]
        if run_ctx is not None:
            result["trace"] = run_ctx.to_json()
    if spec.capture:
        from repro.replay.record import flight_to_wire

        recorder = obs.OBS.flight
        records = recorder.records()
        if records and records[0].seq != 1:
            raise RuntimeError(
                f"worker {worker_id} flight recorder overflowed while "
                "capturing; shorten the run"
            )
        result["flight"] = flight_to_wire(recorder)
    return result


def _worker_entry(
    spec_doc: dict,
    worker_id: int,
    conninfo: tuple[str, Any],
    trace_parent: dict | None = None,
) -> None:
    """Process entry point: connect back to the coordinator and run.

    ``conninfo`` selects the wire: ``("tcp", port)`` joins the
    coordinator's TCP network via its port, ``("shm", session)`` joins
    its shared-memory session (the session key plays the role the port
    plays for TCP).
    """
    spec = ClusterSpec.from_json(spec_doc)
    parent = TraceContext.from_json(trace_parent)
    transport, key = conninfo
    if transport == "shm":
        from repro.netio.shm import ShmNetwork

        net = ShmNetwork(session=key)
    else:
        from repro.netio.bus import TcpNetwork

        net = TcpNetwork()
    with net:
        if transport != "shm":
            net.register_peer(COORD, key)
        endpoint = net.endpoint(f"worker{worker_id}")
        endpoint.send(
            COORD, pack_control({"t": "hello", "worker": worker_id})
        )
        try:
            result = run_worker(spec, worker_id, endpoint, trace_parent=parent)
        except Exception as exc:  # surfaced by the coordinator, not lost
            endpoint.send(
                COORD,
                pack_control(
                    {
                        "t": "error",
                        "worker": worker_id,
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                ),
            )
            raise
        endpoint.send(COORD, pack_control(result))
