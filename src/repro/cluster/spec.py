"""The cluster run specification, shared by coordinator and workers.

A :class:`ClusterSpec` fully determines a scale-out run: every worker
process receives the same spec (plus its worker index) and derives its
shard - which cells it hosts, each cell's UE population, channel seeds
and chaos streams - from the spec alone.  Nothing about a cell depends
on *which* worker hosts it, which is what makes aggregate results
invariant under the worker count (see ``docs/SCALING.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, fields

#: the coordinator's well-known endpoint name
COORD = "coord"


def cell_name(cell_id: int) -> str:
    return f"cell{cell_id}"


def stable_seed(*parts: object) -> int:
    """A process-independent 64-bit seed from arbitrary parts.

    ``hash()`` is salted per process, so every cross-process seed in the
    cluster derives through sha256 instead - the same trick the chaos
    layer uses for its per-site RNG streams.
    """
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ClusterSpec:
    """Everything a scale-out run needs, in one picklable record."""

    workers: int = 2
    cells: int = 4
    ues: int = 32  # total, distributed across cells
    slots: int = 400
    seed: int = 0
    engine: str | None = None  # Wasm engine (None = REPRO_WASM_ENGINE)
    chaos: str | None = None  # REPRO_CHAOS-style spec, e.g. "seed=1,trap=0.01"
    kpm_period: int = 10
    #: worker flush cadence in slots - indications queue in the bounded
    #: uplink between flushes
    flush_every: int = 4
    #: bounded uplink queue; overflow is dropped and counted, never buffered
    queue_limit: int = 4096
    max_batch: int = 512
    fuel: int = 2_000_000
    #: slots a quarantined slice waits before the worker's operator loop
    #: releases it (chaos runs only)
    release_after: int = 20
    checkpoint_every: int = 25
    mode: str = "proc"  # "proc" = worker processes, "inline" = same process
    timeout_s: float = 600.0
    #: distributed tracing: workers ship their span collections home and
    #: the report carries a stitched cross-process trace + attribution
    trace: bool = False
    #: per-slot latency budget (us); overruns emit ``trace.deadline_miss``
    #: events naming the guilty segment (0 = no budget tracking)
    budget_us: float = 0.0
    #: rt dispatch policy (an :meth:`repro.rt.RtPolicy.to_string` string,
    #: or ``"on"``/``"default"``); ``None`` keeps unconditional dispatch.
    #: The budget is defined *per cell and slot* - never divided by the
    #: worker count - so oversubscribed shards shed load per cell instead
    #: of ballooning p99, and digests stay worker-count invariant.
    rt: str | None = None
    #: rt stress scenario (``flash_crowd``/``handover``/``mixed_sla``);
    #: replaces the default CBR cell build with the scenario's cells
    scenario: str | None = None
    #: seconds without any frame or heartbeat from a pending worker before
    #: the coordinator raises :class:`WorkerFailed` (0 = only the overall
    #: ``timeout_s`` applies).  Workers heartbeat at the flush cadence.
    liveness_timeout_s: float = 0.0
    #: proc-mode wire: "tcp" (localhost sockets) or "shm" (shared-memory
    #: rings, :class:`repro.netio.shm.ShmNetwork`); inline mode ignores it
    transport: str = "tcp"
    #: corpus capture: each worker swaps in a capture-mode flight
    #: recorder and ships its full call stream home in the result frame
    #: (``repro record`` merges them per worker into one replay corpus)
    capture: bool = False

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.cells < 1:
            raise ValueError("need at least one cell")
        if self.slots < 1:
            raise ValueError("need at least one slot")
        if self.kpm_period < 1 or self.flush_every < 1:
            raise ValueError("kpm_period and flush_every must be positive")
        if self.mode not in ("proc", "inline"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.transport not in ("tcp", "shm"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.budget_us < 0:
            raise ValueError("budget_us must be non-negative")
        if self.liveness_timeout_s < 0:
            raise ValueError("liveness_timeout_s must be non-negative")
        if self.rt is not None:
            from repro.rt.dispatcher import RtPolicy

            RtPolicy.from_string(self.rt)  # raises on a malformed policy
        if self.scenario is not None:
            from repro.rt.scenarios import SCENARIOS

            if self.scenario not in SCENARIOS:
                raise ValueError(
                    f"unknown scenario {self.scenario!r} "
                    f"(expected one of {SCENARIOS})"
                )

    # ----- sharding ---------------------------------------------------------

    def cells_for_worker(self, worker_id: int) -> list[int]:
        """Round-robin shard: cell ``g`` lives on worker ``g % workers``."""
        return [g for g in range(self.cells) if g % self.workers == worker_id]

    def ues_for_cell(self, cell_id: int) -> int:
        """Distribute the total UE population as evenly as cells allow."""
        base, extra = divmod(self.ues, self.cells)
        return base + (1 if cell_id < extra else 0)

    # ----- (de)serialisation for worker processes ---------------------------

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "ClusterSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})
