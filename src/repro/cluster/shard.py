"""Building one gNB cell shard from the cluster spec.

Every cell is an independent slot-synchronous system: a
:class:`~repro.gnb.host.GnbHost` with three plugin-scheduled slices (one
per shipped scheduler plugin), a UE population whose channels and traffic
derive from ``(seed, cell, ue)`` alone, and an
:class:`~repro.e2.node.E2NodeAgent` that is pre-subscribed toward the
coordinator and streams its KPM indications through the worker's shared
batched uplink.

Cell construction is a pure function of the spec and the cell id - never
of the worker hosting it - so per-cell scheduled bytes and fault logs are
byte-identical no matter how the cells are sharded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.abi.host import HostLimits, SchedulerPlugin
from repro.channel.models import MarkovCqiChannel
from repro.cluster.spec import COORD, ClusterSpec, cell_name, stable_seed
from repro.e2.batch import BatchedUplinkChannel
from repro.e2.node import E2NodeAgent
from repro.e2.vendors import VendorProfile
from repro.gnb.fault import FaultPolicy
from repro.gnb.host import GnbHost, SliceRuntime, UeContext
from repro.netio.batching import BatchSender
from repro.sched.inter import TargetRateInterSlice
from repro.traffic.sources import CbrSource

#: per-slice downlink SLA target used by every cell (bps)
SLICE_TARGET_BPS = 5e6


@dataclass
class CellShard:
    """One cell plus the operator-loop state the worker tracks for it."""

    cell_id: int
    name: str
    gnb: GnbHost
    node: E2NodeAgent
    #: scenario mobility driver (handover cells only); stepped every slot
    stepper: object | None = None
    quarantined_at: dict[int, int] = field(default_factory=dict)
    released_at: dict[int, int] = field(default_factory=dict)
    ops_events: list[str] = field(default_factory=list)


def _rt_policy(spec: ClusterSpec):
    """The spec's rt policy (scenario default when only a scenario is set)."""
    from repro.rt.dispatcher import RtPolicy
    from repro.rt.scenarios import scenario_policy

    if spec.rt is not None:
        return RtPolicy.from_string(spec.rt)
    if spec.scenario is not None:
        return scenario_policy(spec.scenario)
    return None


def build_cell(
    spec: ClusterSpec,
    cell_id: int,
    sender: BatchSender,
    profile: VendorProfile,
    schedule=None,
) -> CellShard:
    """Construct cell ``cell_id`` exactly as any worker would."""
    from repro.plugins import SCHEDULER_PLUGINS, plugin_wasm

    name = cell_name(cell_id)
    if spec.scenario is not None:
        return _build_scenario_cell(spec, cell_id, sender, profile, schedule)
    if schedule is not None:
        fault_policy = FaultPolicy(quarantine_after=2, disconnect_after=10)
        checkpoint_every = spec.checkpoint_every
    else:
        fault_policy = FaultPolicy()
        checkpoint_every = 0
    gnb = GnbHost(
        fault_policy=fault_policy,
        checkpoint_every=checkpoint_every,
        rt=_rt_policy(spec),
    )

    targets: dict[int, float] = {}
    for sid, plugin in enumerate(SCHEDULER_PLUGINS, start=1):
        runtime = gnb.add_slice(SliceRuntime(sid, f"{name}/{plugin}"))
        runtime.use_plugin(
            SchedulerPlugin.load(
                plugin_wasm(plugin),
                name=f"{name}/{plugin}",  # chaos site + metric label, per cell
                limits=HostLimits(fuel=spec.fuel),
                engine=spec.engine,
                chaos=schedule,
            )
        )
        targets[sid] = SLICE_TARGET_BPS
    gnb.inter_slice = TargetRateInterSlice(
        targets, slot_duration_s=gnb.carrier.slot_duration_s
    )

    n_slices = len(targets)
    for i in range(spec.ues_for_cell(cell_id)):
        gnb.attach_ue(
            UeContext(
                ue_id=cell_id * 1000 + i + 1,
                slice_id=(i % n_slices) + 1,
                channel=MarkovCqiChannel(
                    initial_cqi=7 + (i % 6),
                    p_step=0.2,
                    seed=stable_seed(spec.seed, "ch", cell_id, i),
                ),
                traffic=CbrSource(rate_bps=(2 + (cell_id + i) % 6) * 1e6),
            )
        )

    node = E2NodeAgent(
        gnb, BatchedUplinkChannel(name, profile, sender), node_id=name
    )
    node.local_subscribe(cell_id + 1, COORD, spec.kpm_period)
    return CellShard(cell_id, name, gnb, node)


def _build_scenario_cell(
    spec: ClusterSpec,
    cell_id: int,
    sender: BatchSender,
    profile: VendorProfile,
    schedule=None,
) -> CellShard:
    """A scenario cell: same pure-function-of-(spec, cell) contract.

    Delegates to :func:`repro.rt.scenarios.build_scenario_gnb`; plugin
    names (admission identity, metric label, chaos site) are namespaced
    per cell, and the handover stepper - when the scenario has one -
    derives every itinerary from the spec alone.
    """
    from repro.rt.scenarios import build_scenario_gnb

    name = cell_name(cell_id)
    gnb, stepper = build_scenario_gnb(
        spec.scenario,
        spec.seed,
        cell_id,
        n_cells=spec.cells,
        policy=_rt_policy(spec),
        engine=spec.engine,
        chaos=schedule,
        fuel=spec.fuel,
        checkpoint_every=spec.checkpoint_every if schedule is not None else 0,
        name_prefix=f"{name}/",
    )
    node = E2NodeAgent(
        gnb, BatchedUplinkChannel(name, profile, sender), node_id=name
    )
    node.local_subscribe(cell_id + 1, COORD, spec.kpm_period)
    return CellShard(cell_id, name, gnb, node, stepper=stepper)


def step_operator_loop(cell: CellShard, slot: int, release_after: int) -> None:
    """The per-cell quarantine/release ladder (deterministic per cell).

    Mirrors the chaos soak's operator: a quarantined slice is released
    after ``release_after`` slots (restoring its last checkpoint when one
    exists); recovery and re-escalation are recorded as fault-log events.
    """
    policy = cell.gnb.fault_policy
    for sid in sorted(policy.quarantined):
        cell.quarantined_at.setdefault(sid, slot)
        if slot - cell.quarantined_at[sid] >= release_after:
            restored = cell.gnb.release_slice(sid)
            del cell.quarantined_at[sid]
            cell.released_at[sid] = slot
            cell.ops_events.append(
                f"slot={slot} release slice={sid} restored={restored}"
            )
    for sid in sorted(cell.released_at):
        if policy.consecutive.get(sid, 0) == 0:
            cell.ops_events.append(f"slot={slot} recovered slice={sid}")
            del cell.released_at[sid]
        elif policy.is_quarantined(sid) or policy.is_disconnected(sid):
            cell.ops_events.append(f"slot={slot} reescalated slice={sid}")
            del cell.released_at[sid]


def render_cell_log(cell: CellShard, spec: ClusterSpec, engine: str, schedule) -> str:
    """The cell's deterministic fault log: a pure function of (seed, cell).

    No timestamps, no worker ids, no process-dependent values - the
    coordinator concatenates these in cell order and digests the result,
    which must match across runs *and* across worker counts.
    """
    lines = [
        f"[{cell.name}] seed={spec.seed} slots={spec.slots} engine={engine}"
    ]
    if schedule is not None:
        prefix = f"plugin:{cell.name}/"
        lines.extend(
            i.describe()
            for i in schedule.injected
            if i.site.startswith(prefix)
        )
    lines.extend(
        f"slot={e.slot} slice={e.slice_id} kind={e.kind} "
        f"action={e.action.value} detail={e.detail}"
        for e in cell.gnb.fault_policy.events
    )
    lines.extend(cell.ops_events)
    if cell.gnb.rt is not None:
        # rt decisions are pure functions of (spec, seed, slot), so the
        # admission log and counters belong in the digested cell log
        lines.append("[rt]")
        lines.extend(cell.gnb.rt.events)
        lines.append(
            f"[rt counters] "
            f"{json.dumps(cell.gnb.rt.counters.to_json(), sort_keys=True)}"
        )
    if cell.stepper is not None:
        lines.append("[mobility]")
        lines.extend(cell.stepper.events)
    # NB: no uplink counters here - backpressure drops depend on which
    # cells share a worker's queue, and this log must not
    lines.append(f"disconnected={sorted(cell.gnb.fault_policy.disconnected)}")
    return "\n".join(lines)
