"""Multi-process scale-out for the WA-RAN testbed.

One near-RT RIC, many gNB shards: a :class:`ClusterCoordinator` spawns N
shared-nothing :mod:`cell workers <repro.cluster.worker>` - separate
processes talking TCP loopback or shared-memory rings
(``transport="shm"``), or inline for deterministic single-process runs -
each hosting a subset of the cells with its own
Wasm plugins, threaded engine and (optional) chaos schedule.  Workers
coalesce per-slot KPM indications into a **batched E2 uplink** with a
bounded queue and explicit backpressure counters; the coordinator
demultiplexes the batches for the RIC, captures its control actions, and
merges every worker's metrics snapshot into one aggregate exposition.

Sharding never changes the physics: each cell is a pure function of
``(spec, cell_id)``, so aggregate scheduled-bytes and fault-log digests
are byte-identical across runs *and* across worker counts (see
``docs/SCALING.md``).  Entry points: ``repro scale`` on the CLI,
:func:`run_cluster` and :func:`run_sweep` from code, and
``benchmarks/bench_cluster.py`` for the scaling figure.
"""

from __future__ import annotations

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterError,
    ClusterReport,
    WorkerFailed,
    run_cluster,
)
from repro.cluster.loadgen import metro_spec, run_sweep, sweep_specs
from repro.cluster.shard import CellShard, build_cell
from repro.cluster.spec import ClusterSpec, cell_name, stable_seed
from repro.cluster.worker import run_worker

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterReport",
    "ClusterSpec",
    "CellShard",
    "WorkerFailed",
    "build_cell",
    "cell_name",
    "metro_spec",
    "run_cluster",
    "run_sweep",
    "run_worker",
    "stable_seed",
    "sweep_specs",
]
