"""The cluster coordinator: owns the near-RT RIC, aggregates the shards.

:class:`ClusterCoordinator` spawns N :mod:`cell workers
<repro.cluster.worker>` (separate processes over :class:`TcpNetwork`, or
inline over :class:`InProcNetwork` for deterministic single-process
runs), demultiplexes their batched E2 uplink frames into per-node
messages for the one :class:`~repro.ric.host.NearRtRic`, and merges the
workers' metrics-registry snapshots with its own registry into a single
aggregate exposition.

Control actions the RIC's xApps emit toward shard nodes are *captured*
at the coordinator (counted per node, visible as
``waran_cluster_controls_captured_total``) rather than delivered: the
uplink is one-directional by design, which is exactly what keeps
per-cell results independent of worker interleaving.  See
``docs/SCALING.md`` for the architecture and determinism argument.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.cluster.spec import COORD, ClusterSpec, cell_name
from repro.cluster.worker import _worker_entry, run_worker, unpack_control
from repro.e2 import vendors
from repro.e2.batch import E2BatchError, iter_batch_frame
from repro.e2.comm import CommChannel
from repro.netio.batching import (
    BatchError,
    batch_spans,
    batch_trace,
    is_batch,
    range_info,
)
from repro.netio.bus import InProcNetwork, TcpNetwork
from repro.obs.attribution import attribute_slots
from repro.obs.merge import DEFAULT_GAUGE_MODES, merge_snapshots
from repro.obs.traceexport import merge_span_collections, trace_digest
from repro.obs.tracing import TraceContext
from repro.ric.host import NearRtRic
from repro.ric.wire import MSG_SLICE_KPI


class ClusterError(RuntimeError):
    """A worker died, timed out, or sent garbage."""


class WorkerFailed(ClusterError):
    """A specific worker died or went silent mid-run.

    Carries the worker id and the last slot it reported completing (via
    its flush-cadence progress heartbeats; -1 = died before any), so an
    operator knows exactly where the run stopped instead of staring at a
    blocked recv.
    """

    def __init__(self, worker: int, last_slot: int, detail: str):
        self.worker = worker
        self.last_slot = last_slot
        super().__init__(
            f"worker {worker} failed after slot {last_slot}: {detail}"
        )


@dataclass
class ClusterReport:
    """Aggregate results of one scale-out run."""

    spec: ClusterSpec
    engine: str = ""
    wall_seconds: float = 0.0
    #: slowest worker's slot-loop time - the cluster's critical path
    max_worker_seconds: float = 0.0
    worker_seconds: list[float] = field(default_factory=list)
    slot_rate: float = 0.0  # slots/sec through the slowest worker
    cell_slot_rate: float = 0.0  # cell-slots/sec across the cluster
    p50_slot_us: float = 0.0
    p99_slot_us: float = 0.0
    delivered_bytes: int = 0
    bytes_by_cell: dict[str, int] = field(default_factory=dict)
    fault_log: str = ""
    indications_sent: int = 0
    indications_dropped: int = 0
    indications_seen: int = 0
    indications_by_node: dict[str, int] = field(default_factory=dict)
    controls_captured: dict[str, int] = field(default_factory=dict)
    uplink: dict[str, int] = field(default_factory=dict)
    xapp_calls: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    #: with ``spec.trace``: the stitched cross-process span documents
    #: (coordinator + every worker), the structural trace digest, the
    #: per-slot latency-attribution doc, and live deadline-miss events
    spans: list[dict] = field(default_factory=list, repr=False)
    trace_digest: str = ""
    attribution: dict[str, Any] = field(default_factory=dict)
    deadline_misses: list[dict] = field(default_factory=list)
    #: with ``spec.capture``: one wire-form flight capture per worker
    #: (worker-id order) for :func:`repro.replay.record.flight_from_wire`
    flights: list[dict] = field(default_factory=list, repr=False)

    @property
    def bytes_digest(self) -> str:
        """sha256 over per-cell scheduled bytes, in cell order."""
        text = "\n".join(
            f"{name}={self.bytes_by_cell[name]}"
            for name in sorted(self.bytes_by_cell)
        )
        return hashlib.sha256(text.encode()).hexdigest()

    @property
    def fault_digest(self) -> str:
        return hashlib.sha256(self.fault_log.encode()).hexdigest()

    def summary(self) -> str:
        spec = self.spec
        return (
            f"cluster workers={spec.workers} cells={spec.cells} "
            f"ues={spec.ues} slots={spec.slots} seed={spec.seed} "
            f"engine={self.engine} mode={spec.mode}: "
            f"{self.slot_rate:.1f} slots/s ({self.cell_slot_rate:.1f} "
            f"cell-slots/s), slot p50={self.p50_slot_us:.0f}us "
            f"p99={self.p99_slot_us:.0f}us; "
            f"bytes={self.delivered_bytes} [{self.bytes_digest[:12]}] "
            f"faults[{self.fault_digest[:12]}]; "
            f"indications sent={self.indications_sent} "
            f"seen={self.indications_seen} "
            f"dropped={self.indications_dropped}; "
            f"controls={sum(self.controls_captured.values())}"
            + (
                f"; p99 blame: {self.attribution.get('dominant', '?')} "
                f"({len(self.deadline_misses)} deadline misses)"
                if self.attribution
                else ""
            )
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "spec": self.spec.to_json(),
            "engine": self.engine,
            "wall_seconds": self.wall_seconds,
            "max_worker_seconds": self.max_worker_seconds,
            "worker_seconds": self.worker_seconds,
            "slot_rate": self.slot_rate,
            "cell_slot_rate": self.cell_slot_rate,
            "p50_slot_us": self.p50_slot_us,
            "p99_slot_us": self.p99_slot_us,
            "delivered_bytes": self.delivered_bytes,
            "bytes_by_cell": self.bytes_by_cell,
            "bytes_digest": self.bytes_digest,
            "fault_digest": self.fault_digest,
            "indications_sent": self.indications_sent,
            "indications_dropped": self.indications_dropped,
            "indications_seen": self.indications_seen,
            "indications_by_node": self.indications_by_node,
            "controls_captured": self.controls_captured,
            "uplink": self.uplink,
            "xapp_calls": self.xapp_calls,
            "metrics": self.metrics,
        }
        if self.attribution:
            doc["attribution"] = self.attribution
            doc["trace"] = {
                "digest": self.trace_digest,
                "span_count": len(self.spans),
                "deadline_misses": self.deadline_misses,
            }
        return doc


class ClusterCoordinator:
    """Runs one cluster: spawn, ingest, aggregate, merge."""

    def __init__(self, spec: ClusterSpec):
        spec.validate()
        self.spec = spec
        self.ric: NearRtRic | None = None
        self._ingress: dict[str, Any] = {}
        self._results: dict[int, dict] = {}
        self._frames_ingested = 0
        self._messages_ingested = 0
        self._ingest_failures = 0
        #: last slot each worker's WBR3 range headers reported complete
        self._progress: dict[int, int] = {}
        #: span docs streamed home inside WBR3 frames, per worker
        self._streamed: dict[int, list[dict]] = {}
        #: the reserved root trace context every worker parents under
        self._root_ctx: TraceContext | None = None

    # ----- RIC fabric -------------------------------------------------------

    def _build_ric(self) -> None:
        from repro.plugins import plugin_wasm

        net = InProcNetwork()
        ric_endpoint = net.endpoint("ric")
        for g in range(self.spec.cells):
            self._ingress[cell_name(g)] = net.endpoint(cell_name(g))
        self.ric = NearRtRic(
            CommChannel(ric_endpoint, vendors.vendor_b()), name="ric"
        )
        self.ric.load_xapp(
            "sla",
            plugin_wasm("xapp_sla"),
            (MSG_SLICE_KPI,),
            engine=self.spec.engine,
        )
        for g in range(self.spec.cells):
            self.ric.register_node(cell_name(g), subscription_id=g + 1)

    def _ingest_frame(self, data: bytes) -> None:
        """Demultiplex one batched uplink frame into the RIC's fabric.

        The ingest span parents under the *producing worker slot's* trace
        context carried in the frame header, so the coordinator's demux
        work appears inside that slot's cross-process span tree.  A
        ``WBR3`` range header additionally updates the worker's progress
        watermark (its heartbeat) and collects any streamed span docs.
        """
        self._frames_ingested += 1
        info = range_info(data)
        if info is not None:
            prev = self._progress.get(info.worker, -1)
            if info.slot_hi >= info.slot_lo and info.slot_hi > prev:
                self._progress[info.worker] = info.slot_hi
            if self.spec.trace and info.spans_len:
                try:
                    self._streamed.setdefault(info.worker, []).extend(
                        batch_spans(data)
                    )
                except (BatchError, ValueError):
                    self._ingest_failures += 1
        messages = 0
        # span-blob bytes stay out of the attr: the blob compresses float
        # timings, so its length would wobble the structural trace digest
        demux_bytes = len(data) - (info.spans_len if info else 0)
        with obs.OBS.tracer.span(
            "coord.ingest", parent=batch_trace(data), bytes=demux_bytes
        ) as span:
            try:
                for node, payload in iter_batch_frame(data):
                    ingress = self._ingress.get(node)
                    if ingress is None:
                        self._ingest_failures += 1
                        continue
                    ingress.send("ric", payload)
                    messages += 1
            except (BatchError, E2BatchError):
                self._ingest_failures += 1
            span.set(messages=messages)
        self._messages_ingested += messages

    # ----- run modes --------------------------------------------------------

    def run(self) -> ClusterReport:
        """Execute the whole scale-out run and return the aggregate report."""
        obs.enable()
        obs.reset()
        tracer = obs.OBS.tracer
        tracer.service = "coord"
        if self.spec.trace:
            # the root identity is *reserved*, not held open as a live
            # span: inline mode resets telemetry around each worker, and
            # a live root would not survive that.  The root span document
            # is synthesised at finalize time instead.
            self._root_ctx = tracer.reserve_context()
            tracer.resize(max(tracer.capacity, self.spec.slots * 16))
        t0 = time.perf_counter()
        if self.spec.mode == "inline":
            snapshots = self._run_inline()
        else:
            snapshots = self._run_proc()
        report = self._finalize(snapshots, time.perf_counter() - t0)
        return report

    def _run_inline(self) -> list[dict]:
        """Workers run sequentially in this process over in-proc queues.

        The registry is reset around each worker so every snapshot is
        per-worker, exactly as separate processes would produce; the
        coordinator's own registry (RIC + ingest metrics) is rebuilt
        afterwards and merged last.
        """
        net = InProcNetwork()
        coord_endpoint = net.endpoint(COORD)
        snapshots: list[dict] = []
        for worker_id in range(self.spec.workers):
            obs.reset()
            result = run_worker(
                self.spec,
                worker_id,
                net.endpoint(f"worker{worker_id}"),
                trace_parent=self._root_ctx,
            )
            self._results[worker_id] = result
            snapshots.append(result["metrics"])
        obs.reset()
        obs.OBS.tracer.service = "coord"  # run_worker relabelled the tracer
        self._build_ric()
        with obs.OBS.tracer.span("coord.drain"):
            for _source, data in coord_endpoint.drain():
                if is_batch(data):
                    self._ingest_frame(data)
            self._drain_ric()
        return snapshots

    def _run_proc(self) -> list[dict]:
        """Workers run as real processes; frames stream in as they arrive.

        ``spec.transport`` picks the wire: localhost TCP, or
        shared-memory rings (workers join the coordinator's shm session
        by key, the way they'd join a TCP network by port).
        """
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        parent_doc = self._root_ctx.to_json() if self._root_ctx else None
        if self.spec.transport == "shm":
            from repro.netio.shm import ShmNetwork

            net = ShmNetwork()
            conninfo: tuple[str, Any] = ("shm", net.session)
        else:
            net = TcpNetwork()
            conninfo = ("tcp", 0)
        with net:
            coord_endpoint = net.endpoint(COORD)
            if conninfo[0] == "tcp":
                conninfo = ("tcp", coord_endpoint.port)  # type: ignore[attr-defined]
            self._build_ric()
            with obs.OBS.tracer.span(
                "coord.spawn", workers=self.spec.workers
            ):
                # covers spec serialisation + interpreter spawn - the
                # fixed cost every proc-mode run pays before slot 0
                procs = {
                    worker_id: ctx.Process(
                        target=_worker_entry,
                        args=(
                            self.spec.to_json(),
                            worker_id,
                            conninfo,
                            parent_doc,
                        ),
                        daemon=True,
                    )
                    for worker_id in range(self.spec.workers)
                }
                for proc in procs.values():
                    proc.start()
            try:
                self._pump(coord_endpoint, procs)
            finally:
                for proc in procs.values():
                    proc.join(timeout=10)
                    if proc.is_alive():  # pragma: no cover - hung worker
                        proc.terminate()
        with obs.OBS.tracer.span("coord.drain"):
            self._drain_ric()
        return [self._results[k]["metrics"] for k in sorted(self._results)]

    def _pump(self, endpoint, procs) -> None:
        """Overlap uplink ingestion with worker compute and monitoring.

        A dedicated drain thread consumes the coordinator endpoint -
        demultiplexing uplink frames into the RIC fabric and stepping the
        RIC whenever the wire goes momentarily quiet - while this thread
        watches process exit codes, per-worker liveness, and the overall
        deadline.  Worker compute therefore never waits on coordinator
        ingestion (and vice versa); the two only meet at the bounded
        transport.  Shared state is GIL-atomic (dict/set item ops), and
        worker failures found by either thread surface here.
        """
        start = time.monotonic()
        deadline = start + self.spec.timeout_s
        liveness = self.spec.liveness_timeout_s or None
        pending = set(procs)
        for worker_id in procs:
            self._progress.setdefault(worker_id, -1)
        last_seen = {w: start for w in procs}
        dead_since: dict[int, float] = {}
        stop = threading.Event()
        failure: list[ClusterError] = []

        def drain_loop() -> None:
            dirty = False
            while True:
                item = endpoint.recv(timeout=0.05)
                if item is None:
                    if dirty:
                        # batch RIC dispatch per drain burst instead of
                        # per frame: ingest stays ahead of the wire
                        self.ric.step()
                        dirty = False
                    if stop.is_set():
                        return
                    continue
                source, data = item
                if source.startswith("worker"):
                    try:
                        last_seen[int(source[6:])] = time.monotonic()
                    except (ValueError, KeyError):
                        pass
                if is_batch(data):
                    self._ingest_frame(data)
                    dirty = True
                    continue
                with obs.OBS.tracer.span(
                    "coord.result.decode", bytes=len(data)
                ):
                    doc = unpack_control(data)
                if doc is None:
                    self._ingest_failures += 1
                elif doc.get("t") == "result":
                    self._results[int(doc["worker"])] = doc
                    pending.discard(int(doc["worker"]))
                elif doc.get("t") == "progress":
                    worker = int(doc["worker"])
                    slot = int(doc["slot"])
                    if slot > self._progress.get(worker, -1):
                        self._progress[worker] = slot
                elif doc.get("t") == "error":
                    worker = int(doc.get("worker", -1))
                    failure.append(
                        WorkerFailed(
                            worker,
                            self._progress.get(worker, -1),
                            str(doc.get("detail")),
                        )
                    )
                    return

        drain = threading.Thread(
            target=drain_loop, name="coord-drain", daemon=True
        )
        drain.start()
        try:
            while pending and not failure:
                time.sleep(0.05)
                now = time.monotonic()
                for worker_id in sorted(pending.copy()):
                    proc = procs[worker_id]
                    if proc.exitcode is not None:
                        if proc.exitcode != 0:
                            raise WorkerFailed(
                                worker_id,
                                self._progress[worker_id],
                                f"exited with code {proc.exitcode} "
                                "before reporting",
                            )
                        # clean exit without a result frame: allow a short
                        # grace for in-flight frames to drain, then fail
                        died = dead_since.setdefault(worker_id, now)
                        if now - died > 2.0 and worker_id in pending:
                            raise WorkerFailed(
                                worker_id,
                                self._progress[worker_id],
                                "exited cleanly without reporting a result",
                            )
                    elif liveness and now - last_seen[worker_id] > liveness:
                        raise WorkerFailed(
                            worker_id,
                            self._progress[worker_id],
                            f"no frame or heartbeat for {liveness:.0f}s "
                            "(liveness_timeout_s)",
                        )
                if now > deadline:
                    raise ClusterError(
                        f"workers {sorted(pending)} did not report within "
                        f"{self.spec.timeout_s:.0f}s"
                    )
        finally:
            stop.set()
            drain.join(timeout=10)
        if failure:
            raise failure[0]

    def _drain_ric(self) -> None:
        """Dispatch everything queued at the RIC until it goes quiet."""
        assert self.ric is not None
        while True:
            before = self.ric.indications_seen
            self.ric.step()
            if self.ric.indications_seen == before:
                return

    # ----- aggregation ------------------------------------------------------

    def _finalize(self, snapshots: list[dict], wall: float) -> ClusterReport:
        if len(self._results) != self.spec.workers:
            raise ClusterError(
                f"only {len(self._results)}/{self.spec.workers} workers "
                "reported"
            )
        spec = self.spec
        results = [self._results[k] for k in sorted(self._results)]
        registry = obs.OBS.registry
        registry.gauge("waran_cluster_workers", "worker count").set(
            spec.workers
        )
        registry.counter(
            "waran_cluster_ingested_batches_total",
            "batched uplink frames the coordinator demultiplexed",
        ).inc(self._frames_ingested)
        registry.counter(
            "waran_cluster_ingested_messages_total",
            "E2 messages recovered from batched frames",
        ).inc(self._messages_ingested)
        registry.counter(
            "waran_cluster_ingest_failures_total",
            "uplink frames or entries the coordinator could not place",
        ).inc(self._ingest_failures)
        controls: dict[str, int] = {}
        for name, ingress in sorted(self._ingress.items()):
            captured = len(ingress.drain())
            if captured:
                controls[name] = captured
                registry.counter(
                    "waran_cluster_controls_captured_total",
                    "xApp control actions captured at the coordinator "
                    "(one-directional uplink), by node",
                ).inc(captured, node=name)

        report = ClusterReport(spec)
        report.wall_seconds = wall
        report.engine = results[0]["engine"] if results else ""
        report.worker_seconds = [r["run_seconds"] for r in results]
        report.max_worker_seconds = max(report.worker_seconds, default=0.0)
        if report.max_worker_seconds > 0:
            report.slot_rate = spec.slots / report.max_worker_seconds
            report.cell_slot_rate = (
                spec.slots * spec.cells / report.max_worker_seconds
            )
        qn = p50w = p99w = 0
        for r in results:
            snap = r.get("slot_us", {})
            count = snap.get("count", 0)
            if count and "p50" in snap:
                qn += count
                p50w += snap["p50"] * count
                p99w += snap["p99"] * count
        if qn:
            report.p50_slot_us = p50w / qn
            report.p99_slot_us = p99w / qn
        for r in results:
            report.bytes_by_cell.update(
                {name: int(n) for name, n in r["delivered_bytes"].items()}
            )
            report.indications_sent += r["indications_sent"]
            report.indications_dropped += r["indications_dropped"]
            for key, value in r["uplink"].items():
                report.uplink[key] = report.uplink.get(key, 0) + value
        report.delivered_bytes = sum(report.bytes_by_cell.values())
        logs: dict[str, str] = {}
        for r in results:
            logs.update(r["fault_logs"])
        report.fault_log = (
            "\n".join(logs[name] for name in sorted(logs)) + "\n"
        )
        assert self.ric is not None
        report.indications_seen = self.ric.indications_seen
        report.indications_by_node = dict(self.ric.indications_by_node)
        report.controls_captured = controls
        report.xapp_calls = sum(
            runtime.calls for runtime in self.ric.xapps.values()
        )
        report.metrics = merge_snapshots(
            snapshots + [registry.to_json()],
            gauge_modes=DEFAULT_GAUGE_MODES,
        )
        if spec.capture:
            report.flights = [
                r["flight"] for r in results if r.get("flight") is not None
            ]
        if spec.trace and self._root_ctx is not None:
            self._stitch_trace(report, results, wall)
        return report

    def _stitch_trace(
        self, report: ClusterReport, results: list[dict], wall: float
    ) -> None:
        """Merge every process's span collection into one stitched trace."""
        ctx = self._root_ctx
        assert ctx is not None
        coord_spans = obs.OBS.tracer.to_json()
        # synthesise the reserved root: cluster.run spans the whole wall
        # time and every worker.run parents under it by reserved id
        coord_spans.append(
            {
                "trace_id": f"{ctx.trace_id:016x}",
                "span_id": ctx.span_id,
                "parent_id": None,
                "name": "cluster.run",
                "service": "coord",
                "thread_id": 0,
                "start_ns": min(
                    (int(d["start_ns"]) for d in coord_spans), default=0
                ),
                "elapsed_us": wall * 1e6,
                "status": "ok",
                "attrs": {
                    "workers": self.spec.workers,
                    "cells": self.spec.cells,
                    "mode": self.spec.mode,
                },
            }
        )
        collections = [("coord", coord_spans)]
        for r in results:
            worker = int(r["worker"])
            # spans streamed home in WBR3 range frames, then whatever was
            # still unfinished when the worker built its result
            spans = self._streamed.get(worker, []) + r.get("spans", [])
            collections.append(
                (r.get("service", f"worker{worker}"), spans)
            )
            report.deadline_misses.extend(r.get("events", []))
        report.spans = merge_span_collections(collections)
        report.trace_digest = trace_digest(report.spans)
        report.attribution = attribute_slots(
            report.spans,
            slot_name="worker.slot",
            budget_us=self.spec.budget_us or None,
        ).to_json()


def run_cluster(spec: ClusterSpec) -> ClusterReport:
    """Convenience wrapper: one spec in, one aggregate report out."""
    return ClusterCoordinator(spec).run()
