"""The ``waran`` command line: plugin toolchain + experiment runner.

Usage (``python -m repro <command>``)::

    python -m repro compile plugin.wc -o plugin.wasm   # WACC -> Wasm
    python -m repro sanitize plugin.wasm               # deployment check
    python -m repro disasm plugin.wasm                 # inspect a binary
    python -m repro plugins                            # list shipped plugins
    python -m repro fig5a [--duration 10]              # run an experiment
    python -m repro fig5b | fig5c | fig5d | safety
    python -m repro obs [--format json|prom]           # telemetry demo dump
    python -m repro obs merge w0.json w1.json          # merge metric snapshots
    python -m repro chaos --seed 42 --slots 10000      # fault-injection soak
    python -m repro scale --workers 4 --cells 8        # multi-process scale-out
    python -m repro fuzz --seed 0 --budget 500         # differential fuzzing
    python -m repro fuzz --replay tests/wasm/corpus    # replay the corpus
    python -m repro record --workload chaos -o s.wrc   # capture a soak
    python -m repro reduce s.wrc -o s.min.wrc          # shrink the corpus
    python -m repro replay-bench s.min.wrc --engines all  # standalone bench
"""

from __future__ import annotations

import argparse
import sys


def _cmd_compile(args) -> int:
    from repro.wacc import WaccError, compile_source

    source = open(args.source, encoding="utf-8").read()
    try:
        raw = compile_source(source, optimize=not args.no_opt)
    except WaccError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = args.output or args.source.rsplit(".", 1)[0] + ".wasm"
    with open(out, "wb") as f:
        f.write(raw)
    print(f"{args.source} -> {out} ({len(raw)} bytes)")
    return 0


def _cmd_sanitize(args) -> int:
    from repro.abi import SanitizerError, sanitize_plugin

    raw = open(args.binary, "rb").read()
    try:
        report = sanitize_plugin(raw)
    except SanitizerError as exc:
        print(f"REJECTED: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {report.n_funcs} functions, {report.n_exports} exports")
    print(f"   imports: {report.imports_used or 'none'}")
    print(f"   memory: {report.memory_min_pages}..{report.memory_max_pages} pages")
    for warning in report.warnings:
        print(f"   warning: {warning}")
    return 0


def _cmd_wat(args) -> int:
    from repro.wasm import decode_module, validate_module
    from repro.wasm.wat import WatError, assemble

    source = open(args.source, encoding="utf-8").read()
    try:
        raw = assemble(source)
        validate_module(decode_module(raw))
    except (WatError, Exception) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = args.output or args.source.rsplit(".", 1)[0] + ".wasm"
    with open(out, "wb") as f:
        f.write(raw)
    print(f"{args.source} -> {out} ({len(raw)} bytes)")
    return 0


def _cmd_disasm(args) -> int:
    from repro.wasm.disasm import disassemble

    raw = open(args.binary, "rb").read()
    try:
        if args.threaded:
            from repro.wasm.threaded import dump_threaded

            print(dump_threaded(raw))
        elif args.aot:
            from repro.wasm.aot import dump_aot

            print(dump_aot(raw, fueled=args.fueled))
        else:
            print(disassemble(raw))
    except BrokenPipeError:  # e.g. `waran disasm x.wasm | head`
        pass
    return 0


def _cmd_aot(args) -> int:
    from repro.wasm.aot import dump_aot

    raw = open(args.dump, "rb").read()
    text = dump_aot(raw, fueled=args.fueled)
    out = args.output or args.dump.rsplit(".", 1)[0] + ".aot.py"
    with open(out, "w", encoding="utf-8") as f:
        f.write(text)
        if not text.endswith("\n"):
            f.write("\n")
    print(f"{args.dump} -> {out} ({len(text.splitlines())} lines)")
    return 0


def _cmd_plugins(args) -> int:
    from repro.plugins import available_plugins, plugin_wasm

    for name in available_plugins():
        raw = plugin_wasm(name)
        print(f"{name:16s} {len(raw):6d} bytes")
    return 0


def _cmd_fig5a(args) -> int:
    from repro.experiments import run_fig5a

    result = run_fig5a(duration_s=args.duration)
    print(f"{'MVNO':12s} {'target':>8s} {'achieved':>9s} {'ratio':>6s}")
    for name, target, achieved, ratio in result.rows():
        print(f"{name:12s} {target:6.1f}Mb {achieved:7.2f}Mb {ratio:6.3f}")
    print("all targets met" if result.all_targets_met() else "TARGETS MISSED")
    return 0 if result.all_targets_met() else 1


def _cmd_fig5b(args) -> int:
    from repro.experiments import run_fig5b
    from repro.experiments.asciiplot import render_series
    from repro.experiments.fig5b import UE_MCS

    result = run_fig5b(phase_duration_s=args.duration)
    series = {
        f"MCS{UE_MCS[ue]}": [(t, v / 1e6) for t, v in result.series[ue]]
        for ue in sorted(UE_MCS)
    }
    print(render_series(series, y_label="Mb/s"))
    print(f"\n(phases: MT 0..{args.duration:.0f}s, "
          f"PF ..{2 * args.duration:.0f}s, RR ..{3 * args.duration:.0f}s)")
    print("per-phase mean rates (Mb/s), UEs at MCS 20/24/28:")
    for phase, means in result.phase_means.items():
        print(f"  {phase.upper():3s}: " + "  ".join(
            f"UE{u}={means[u]:5.2f}" for u in sorted(means)))
    checks = result.shape_holds()
    for check, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return 0 if all(checks.values()) else 1


def _cmd_fig5c(args) -> int:
    from repro.experiments import run_fig5c

    from repro.experiments.asciiplot import render_series

    result = run_fig5c(duration_s=args.duration)
    print(render_series(
        {"leak in plugin": result.plugin_series,
         "leak native": result.native_series},
        y_label="MiB",
    ))
    print("\nhost memory increase (MiB): plugin vs native leak")
    for (t, plugin_mib), (_t, native_mib) in zip(
        result.plugin_series, result.native_series
    ):
        print(f"  t={t:5.1f}s  plugin={plugin_mib:6.2f}  native={native_mib:7.2f}")
    ok = result.plugin_is_bounded() and result.native_grows_linearly()
    return 0 if ok else 1


def _cmd_fig5d(args) -> int:
    from repro.experiments import run_fig5d

    result = run_fig5d(calls=args.calls)
    print(f"{'plugin':6s} {'UEs':>4s} {'p50 us':>8s} {'p99 us':>8s} {'mean us':>8s}")
    for plugin, n_ues, p50, p99, mean in result.rows():
        print(f"{plugin:6s} {n_ues:4d} {p50:8.1f} {p99:8.1f} {mean:8.1f}")
    print(f"slot duration: {result.slot_duration_us:.0f} us; "
          f"grows with UEs: {result.grows_with_ues()}")
    return 0


def _cmd_obs(args) -> int:
    """Run a short instrumented workload, then dump the telemetry."""
    import json

    from repro import obs
    from repro.abi import SchedulerPlugin
    from repro.experiments.fig5d import make_ues
    from repro.plugins import available_plugins, plugin_wasm

    obs.enable()
    obs.reset()

    if args.plugin not in available_plugins():
        print(f"error: unknown plugin {args.plugin!r}", file=sys.stderr)
        return 1
    plugin = SchedulerPlugin.load(plugin_wasm(args.plugin), name=args.plugin)
    plugin.host.limits.fuel = 10_000_000
    ues = make_ues(5)
    for slot in range(args.calls):
        plugin.schedule(52, ues, slot)
    # a hot swap and a deliberately bad call so events/flight show faults too
    plugin.swap(plugin_wasm(args.plugin))
    try:
        plugin.host.call(b"\x00" * 4)  # truncated input: ABI violation
    except Exception:
        pass

    bundle = obs.OBS
    if args.tree:
        print(bundle.tracer.render_tree())
        return 0
    if args.top:
        totals: dict[str, list[float]] = {}
        for span in bundle.tracer.finished():
            totals.setdefault(span.name, []).append(span.elapsed_us)
        rows = sorted(
            totals.items(), key=lambda kv: -sum(kv[1])
        )[: args.top]
        print(f"{'span':24s} {'count':>7s} {'total ms':>9s} {'max us':>9s}")
        for name, samples in rows:
            print(
                f"{name:24s} {len(samples):7d} "
                f"{sum(samples) / 1000.0:9.2f} {max(samples):9.1f}"
            )
        return 0
    if args.format == "prom":
        sys.stdout.write(bundle.registry.to_prometheus())
        return 0
    sections = {
        "metrics": lambda: bundle.registry.to_json(),
        "spans": lambda: bundle.tracer.to_json(),
        "events": lambda: bundle.events.to_json(),
        "flight": lambda: bundle.flight.to_json(),
    }
    if args.section == "all":
        doc = {name: build() for name, build in sections.items()}
    else:
        doc = {args.section: sections[args.section]()}
    print(json.dumps(doc, indent=2))
    return 0


def _cmd_obs_merge(args) -> int:
    """Merge per-process metrics snapshots into one exposition."""
    import json

    from repro.obs import (
        DEFAULT_GAUGE_MODES,
        MergeError,
        merge_snapshots,
        snapshot_to_prometheus,
    )

    docs = []
    for path in args.snapshots:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
    gauge_modes = dict(DEFAULT_GAUGE_MODES)
    for item in args.gauge_mode or ():
        name, sep, mode = item.partition("=")
        if not sep:
            print(
                f"error: --gauge-mode wants NAME=MODE, got {item!r}",
                file=sys.stderr,
            )
            return 1
        gauge_modes[name] = mode
    try:
        merged = merge_snapshots(docs, gauge_modes=gauge_modes)
    except MergeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.format == "prom":
        text = snapshot_to_prometheus(merged)
    else:
        text = json.dumps(merged, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"{len(docs)} snapshots -> {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_scale(args) -> int:
    """Run the multi-process cluster (or a worker-count sweep)."""
    import json

    from repro.cluster import ClusterError, ClusterSpec, run_cluster, run_sweep

    spec = ClusterSpec(
        workers=args.workers,
        cells=args.cells,
        ues=args.ues,
        slots=args.slots,
        seed=args.seed,
        engine=args.engine,
        chaos=args.chaos,
        mode=args.mode,
        transport=args.transport,
        timeout_s=args.timeout,
        rt=args.rt,
        scenario=args.scenario,
        liveness_timeout_s=args.liveness_timeout,
    )
    try:
        spec.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    try:
        if args.sweep:
            workers = sorted({int(w) for w in args.sweep.split(",")})
            print(f"{'workers':>7s} {'slots/s':>9s} {'cell-slots/s':>12s} "
                  f"{'p50 us':>8s} {'p99 us':>8s}  digest")
            reports = run_sweep(spec, workers=workers)
            for report in reports:
                print(f"{report.spec.workers:7d} {report.slot_rate:9.1f} "
                      f"{report.cell_slot_rate:12.1f} "
                      f"{report.p50_slot_us:8.0f} {report.p99_slot_us:8.0f}  "
                      f"{report.bytes_digest[:12]}")
            print("aggregate digests invariant across worker counts")
            report = reports[-1]
        else:
            report = run_cluster(spec)
            print(report.summary())
            if args.verify_determinism:
                again = run_cluster(spec)
                same = (
                    again.bytes_digest == report.bytes_digest
                    and again.fault_digest == report.fault_digest
                )
                print("determinism: "
                      f"{'byte-identical' if same else 'DIVERGED'}")
                if not same:
                    return 1
    except ClusterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.to_json(), f, indent=2)
        print(f"report -> {args.json}")
    if args.metrics:
        from repro.obs import snapshot_to_prometheus

        sys.stdout.write(snapshot_to_prometheus(report.metrics))
    return 0


def _cmd_trace(args) -> int:
    """Trace one cluster run and attribute every microsecond of its p99."""
    import json

    from repro.cluster import ClusterError, ClusterSpec, run_cluster
    from repro.obs import (
        AttributionReport,
        render_span_tree,
        write_chrome_trace,
    )

    spec = ClusterSpec(
        workers=args.workers,
        cells=args.cells,
        ues=args.ues,
        slots=args.slots,
        seed=args.seed,
        engine=args.engine,
        mode=args.mode,
        transport=args.transport,
        timeout_s=args.timeout,
        trace=True,
        budget_us=args.budget_us,
    )
    try:
        spec.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        report = run_cluster(spec)
    except ClusterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.digest_only:
        print(report.trace_digest)
        return 0
    print(report.summary())
    print()
    print(AttributionReport(report.attribution).render_table())
    if args.tree:
        print()
        print(render_span_tree(report.spans))
    if args.out:
        n = write_chrome_trace(args.out, report.spans)
        print(
            f"\n{n} events -> {args.out} "
            "(load in chrome://tracing or ui.perfetto.dev)"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "spec": spec.to_json(),
                    "trace_digest": report.trace_digest,
                    "span_count": len(report.spans),
                    "attribution": report.attribution,
                    "deadline_misses": report.deadline_misses,
                },
                f,
                indent=2,
            )
        print(f"attribution -> {args.json}")
    return 0


def _cmd_chaos(args) -> int:
    """Run the seeded chaos soak and report its invariants."""
    from repro.chaos import ChaosRunner

    try:
        runner = ChaosRunner(
            seed=args.seed, slots=args.slots, engine=args.engine, rt=args.rt
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = runner.run()
    print(report.summary())
    if args.verify_determinism:
        again = ChaosRunner(
            seed=args.seed, slots=args.slots, engine=args.engine, rt=args.rt
        ).run()
        same = again.log == report.log
        print(f"determinism: {'byte-identical' if same else 'DIVERGED'}")
        if not same:
            return 1
    if args.log:
        with open(args.log, "w", encoding="utf-8") as f:
            f.write(report.log)
        print(f"fault/event log -> {args.log} "
              f"({len(report.log.splitlines())} lines)")
    for violation in report.violations:
        print(f"violation: {violation}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_rt(args) -> int:
    """Run an rt stress scenario and report admission + deadline behavior."""
    import json
    from dataclasses import replace

    from repro import obs
    from repro.obs.attribution import attribute_slots
    from repro.rt.dispatcher import RtPolicy
    from repro.rt.lanes import parse_lanes
    from repro.rt.scenarios import (
        baseline_comparison,
        run_scenario,
        scenario_policy,
        scenario_slots,
    )

    try:
        policy = scenario_policy(args.scenario)
        updates: dict = {}
        if args.budget_us is not None:
            updates["budget_us"] = args.budget_us
        if args.fuel_per_us is not None:
            updates["fuel_per_us"] = args.fuel_per_us
        if args.lanes is not None:
            updates["lanes"] = parse_lanes(args.lanes)
        if args.admission is not None:
            updates["admission"] = args.admission == "on"
        if args.no_enforce:
            updates["enforce"] = False
        if args.policy is not None:
            policy = RtPolicy.from_string(args.policy)
        policy = replace(policy, **updates)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    slots = args.slots or scenario_slots(args.scenario)

    if args.baseline:
        cmp = baseline_comparison(
            seed=args.seed, slots=slots, engine=args.engine
        )
        if args.json:
            print(json.dumps(cmp, indent=2))
            return 0
        off, on = cmp["baseline"]["counters"], cmp["enforced"]["counters"]
        print(
            f"flash_crowd seed={args.seed} slots={slots}: "
            f"misses rt-off={off['misses']} rt-on={on['misses']} "
            f"(reduction {cmp['miss_reduction']:g}x)"
        )
        print(
            f"rt-on: dispatched={on['dispatched']} degraded={on['degraded']} "
            f"overruns={on['overruns']} shed={on['shed_by_lane']}"
        )
        return 0

    obs.enable()
    obs.reset()
    # keep the whole run's gnb.step spans for attribution (no eviction)
    obs.OBS.tracer.resize(max(obs.OBS.tracer.capacity, slots * 64))
    report = run_scenario(
        args.scenario, seed=args.seed, slots=slots,
        policy=policy, engine=args.engine,
    )
    attribution = attribute_slots(
        obs.OBS.tracer.to_json(),
        slot_name="gnb.step",
        budget_us=policy.budget_us or None,
    )
    if args.verify_determinism:
        again = run_scenario(
            args.scenario, seed=args.seed, slots=slots,
            policy=policy, engine=args.engine,
        )
        same = again.digest == report.digest
        if not args.json:
            print(
                f"determinism: {'byte-identical' if same else 'DIVERGED'}"
            )
        if not same:
            print(
                f"error: digest diverged between runs: "
                f"{report.digest[:16]} != {again.digest[:16]}",
                file=sys.stderr,
            )
            return 1

    if args.json:
        doc = report.to_json()
        doc["attribution"] = attribution.to_json()
        print(json.dumps(doc, indent=2))
        return 0

    c = report.counters
    print(
        f"{report.name} seed={report.seed} slots={report.slots} "
        f"engine={report.engine}: dispatched={c['dispatched']} "
        f"degraded={c['degraded']} overruns={c['overruns']} "
        f"misses={c['misses']} (rate {report.miss_rate:.4f}) "
        f"shed={c['shed_by_lane']}"
    )
    print(
        f"quarantines={report.quarantines} "
        f"readmissions={report.readmissions} handovers={report.handovers} "
        f"delivered_bytes={report.delivered_bytes}"
    )
    if report.suggested_fuel_per_us:
        print(
            f"calibrator suggests fuel_per_us="
            f"{report.suggested_fuel_per_us:g} for this engine "
            f"(policy pins {policy.fuel_per_us:g})"
        )
    print(f"digest: {report.digest}")
    print()
    print(
        f"{'plugin':20s} {'lane':7s} {'verdict':10s} {'p99 fuel':>9s} "
        f"{'overrun':>7s} {'reject':>6s} {'quar':>5s} {'readmit':>7s}"
    )
    for key in sorted(report.plugins):
        st = report.plugins[key]
        p99 = st["fuel_p99"]
        print(
            f"{key:20s} {st['lane']:7s} {st['last_verdict'] or '-':10s} "
            f"{p99 if p99 is not None else '-':>9} "
            f"{st['overruns']:>7d} {st['rejects']:>6d} "
            f"{st['quarantines']:>5d} {st['readmissions']:>7d}"
        )
    print()
    print(attribution.render_table())
    if args.log:
        with open(args.log, "w", encoding="utf-8") as f:
            f.write(report.log + "\n")
        print(f"\nadmission/fault log -> {args.log} "
              f"({len(report.log.splitlines())} lines)")
    return 0


def _cmd_safety(args) -> int:
    from repro.experiments import run_safety_table

    result = run_safety_table()
    for row in result.rows:
        print(f"{row.fault:12s} plugin: {row.plugin_outcome:24s} "
              f"host alive: {row.plugin_host_alive}")
        print(f"{'':12s} native: {row.native_outcome:24s} "
              f"process alive: {row.native_process_alive}")
    ok = result.sandbox_always_survives() and result.native_always_dies()
    return 0 if ok else 1


def _cmd_record(args) -> int:
    """Capture a live workload as a standalone replay corpus."""
    from repro.replay import record_workload, reduce_corpus, save_corpus

    try:
        corpus = record_workload(
            args.workload,
            seed=args.seed,
            slots=args.slots,
            engine=args.engine,
            rt=args.rt,
            phase_duration_s=args.phase_duration,
            workers=args.workers,
            cells=args.cells,
            ues=args.ues,
            mode=args.cluster_mode,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"recorded {args.workload}: {corpus.total_calls} calls across "
        f"{len(corpus.streams)} streams, {len(corpus.modules)} modules"
    )
    if args.reduce:
        corpus, report = reduce_corpus(
            corpus, max_per_class=args.max_per_class, engine=args.engine
        )
        print(report.summary())
    out = args.output or f"{args.workload}-seed{args.seed}.wrc"
    size = save_corpus(out, corpus)
    print(
        f"corpus -> {out} ({size} bytes, fidelity "
        f"{corpus.fidelity_digest()[:16]})"
    )
    return 0


def _cmd_reduce(args) -> int:
    """Reduce a recorded corpus: dedupe, sample, verify, shrink modules."""
    import json

    from repro.replay import (
        CorpusError,
        load_corpus,
        reduce_corpus,
        save_corpus,
    )

    try:
        corpus = load_corpus(args.corpus)
    except CorpusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    reduced, report = reduce_corpus(
        corpus,
        max_per_class=args.max_per_class,
        shrink_modules=not args.no_shrink_modules,
        max_checks=args.max_checks,
        engine=args.engine,
    )
    out = args.output or args.corpus.rsplit(".", 1)[0] + ".min.wrc"
    size = save_corpus(out, reduced)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.summary())
    print(
        f"corpus -> {out} ({size} bytes, fidelity "
        f"{reduced.fidelity_digest()[:16]})"
    )
    return 0


def _cmd_replay_bench(args) -> int:
    """Replay a corpus standalone; fail unless bit-identical to the recording."""
    import json

    from repro.replay import CorpusError, load_corpus, replay_corpus
    from repro.wasm.threaded import ENGINES

    try:
        corpus = load_corpus(args.corpus)
    except CorpusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    engines = (
        list(ENGINES) if args.engines == "all" else args.engines.split(",")
    )
    for engine in engines:
        if engine not in ENGINES:
            print(
                f"error: unknown engine {engine!r} (expected one of "
                f"{ENGINES} or 'all')", file=sys.stderr,
            )
            return 1
    doc = {
        "schema": "waran-bench-replay/1",
        "corpus": args.corpus,
        "meta": corpus.meta,
        "fidelity_digest": corpus.fidelity_digest(),
        "engines": {},
    }
    ok = True
    for engine in engines:
        report = replay_corpus(corpus, engine=engine)
        doc["engines"][engine] = report.to_json()
        ok = ok and report.ok
        print(report.summary())
        if args.verbose or not report.ok:
            for stream in report.streams:
                flag = "ok" if stream.ok else "MISMATCH"
                print(
                    f"  [{flag}] {stream.plugin} gen={stream.generation} "
                    f"calls={stream.calls} matched={stream.matched} "
                    f"mean={stream.mean_us:.1f}us p99={stream.p99_us:.1f}us "
                    f"fuel={stream.fuel_total}"
                )
                for mismatch in stream.mismatches[:4]:
                    print(f"      {json.dumps(mismatch, sort_keys=True)}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
        print(f"report -> {args.json}")
    print("fidelity: bit-identical" if ok else "fidelity: MISMATCH",
          file=sys.stdout if ok else sys.stderr)
    return 0 if ok else 1


def _load_seed_modules(path: str) -> list[bytes]:
    """Module binaries from a ``.wrc`` corpus file or a directory of them."""
    import os

    from repro.replay import load_corpus

    paths = (
        sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".wrc")
        )
        if os.path.isdir(path)
        else [path]
    )
    modules: dict[str, bytes] = {}
    for corpus_path in paths:
        modules.update(load_corpus(corpus_path).modules)
    return [modules[sha] for sha in sorted(modules)]


def _cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import check_case, load_case, run_campaign
    from repro.fuzz.corpus import corpus_paths
    from repro.wasm.threaded import ENGINES

    if args.replay:
        import os

        if not os.path.exists(args.replay):
            print(f"error: no such corpus path: {args.replay}", file=sys.stderr)
            return 1
        paths = (
            corpus_paths(args.replay)
            if os.path.isdir(args.replay)
            else [args.replay]
        )
        problems: list[str] = []
        for path in paths:
            case = load_case(path)
            engines = ENGINES if case.mode == "diff" else ("threaded",)
            for engine in engines:
                problems.extend(
                    f"[{engine}] {p}" for p in check_case(case, engine)
                )
        if args.json:
            print(json.dumps({"replayed": len(paths), "problems": problems},
                             indent=2))
        else:
            print(f"replayed {len(paths)} corpus cases")
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
        return 1 if problems else 0

    seed_modules = None
    if args.seed_corpus:
        from repro.replay import CorpusError

        try:
            seed_modules = _load_seed_modules(args.seed_corpus)
        except (CorpusError, OSError) as exc:
            print(f"error: --seed-corpus: {exc}", file=sys.stderr)
            return 1
        if not seed_modules:
            print(
                f"error: no modules in seed corpus {args.seed_corpus}",
                file=sys.stderr,
            )
            return 1
    report = run_campaign(
        args.seed,
        args.budget,
        mutate_ratio=args.mutate_ratio,
        fuel=args.fuel,
        time_box=args.time_box,
        corpus_dir=args.corpus_dir,
        do_shrink=not args.no_shrink,
        seed_modules=seed_modules,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        counts = " ".join(
            f"{k}={v}" for k, v in sorted(report.class_counts.items())
        )
        print(
            f"fuzz seed={report.seed} executed={report.executed}/"
            f"{report.budget} generated={report.generated} "
            f"mutated={report.mutated} seeded={report.seeded} "
            f"elapsed={report.elapsed:.2f}s"
        )
        print(f"mutant classes: {counts or '(none)'}")
        print(f"digest: {report.digest}")
        for failure in report.failures:
            where = f" -> {failure.corpus_path}" if failure.corpus_path else ""
            print(
                f"FAIL i={failure.iteration} {failure.kind}: "
                f"{failure.detail}{where}",
                file=sys.stderr,
            )
        print("no divergences, no crashes" if report.ok
              else f"{len(report.failures)} failure(s)")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="waran", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile WACC source to Wasm")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("--no-opt", action="store_true", help="disable inlining")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("wat", help="assemble WAT text to Wasm")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=_cmd_wat)

    p = sub.add_parser("sanitize", help="pre-deployment plugin check")
    p.add_argument("binary")
    p.set_defaults(fn=_cmd_sanitize)

    p = sub.add_parser("disasm", help="disassemble a Wasm binary")
    p.add_argument("binary")
    p.add_argument(
        "--threaded",
        action="store_true",
        help="dump the threaded-code lowering (slots, fuel costs, fusions)",
    )
    p.add_argument(
        "--aot",
        action="store_true",
        help="dump the AOT lowering: generated Python next to the Wasm body",
    )
    p.add_argument(
        "--fueled",
        action="store_true",
        help="with --aot: dump the fuel-metered variant of the source",
    )
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser(
        "aot",
        help="AOT tier utilities: dump generated Python source to a file",
        description="Compiles every function of a Wasm module to Python "
        "source (the aot engine tier) and writes the annotated listing to "
        "a file for inspection and debugging.",
    )
    p.add_argument("--dump", metavar="MODULE.wasm", required=True)
    p.add_argument("-o", "--output", help="default: <module>.aot.py")
    p.add_argument(
        "--fueled",
        action="store_true",
        help="dump the fuel-metered variant of the source",
    )
    p.set_defaults(fn=_cmd_aot)

    p = sub.add_parser("plugins", help="list shipped plugins")
    p.set_defaults(fn=_cmd_plugins)

    p = sub.add_parser("fig5a", help="MVNO co-existence experiment")
    p.add_argument("--duration", type=float, default=10.0)
    p.set_defaults(fn=_cmd_fig5a)

    p = sub.add_parser("fig5b", help="live scheduler swap experiment")
    p.add_argument("--duration", type=float, default=8.0, help="per phase")
    p.set_defaults(fn=_cmd_fig5b)

    p = sub.add_parser("fig5c", help="memory leak confinement experiment")
    p.add_argument("--duration", type=float, default=20.0)
    p.set_defaults(fn=_cmd_fig5c)

    p = sub.add_parser("fig5d", help="plugin execution time experiment")
    p.add_argument("--calls", type=int, default=1000)
    p.set_defaults(fn=_cmd_fig5d)

    p = sub.add_parser("safety", help="memory-safety comparison table")
    p.set_defaults(fn=_cmd_safety)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak of the full gNB+RIC system",
        description="Runs the ChaosRunner soak harness: a gNB with three "
        "plugin-scheduled slices, an E2 node agent and a near-RT RIC under "
        "a seeded schedule of plugin, ABI and transport faults, asserting "
        "the §6A invariants (host never raises, every non-disconnected "
        "slice served every slot, bounded recovery after release).",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--slots", type=int, default=10_000)
    p.add_argument(
        "--engine",
        choices=["legacy", "threaded", "aot"],
        default=None,
        help="Wasm engine (default: REPRO_WASM_ENGINE or threaded)",
    )
    p.add_argument(
        "--log", metavar="PATH", help="write the fault/event log to a file"
    )
    p.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run twice and require byte-identical fault/event logs",
    )
    p.add_argument(
        "--rt", metavar="POLICY", default=None,
        help='rt dispatch policy string (or "on" for defaults): composes '
        "deadline budgets and admission control with the chaos faults",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "rt",
        help="real-time dispatch: deadline budgets, lanes, admission",
        description="Runs one of the rt stress scenarios (flash_crowd, "
        "handover, mixed_sla) through the deadline-aware dispatcher: "
        "per-call fuel budgets derived from the slot-time budget, priority "
        "lanes (SLA dispatches first and is never shed), and latency-driven "
        "admission control with circuit-breaker probation.  Prints "
        "per-plugin admission verdicts and the deadline-miss attribution "
        "table; every number is a deterministic function of "
        "(scenario, seed, slot).",
    )
    p.add_argument(
        "--scenario",
        choices=["flash_crowd", "handover", "mixed_sla"],
        default="flash_crowd",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--slots", type=int, default=None,
        help="run length (default: the scenario's, e.g. flash_crowd=300)",
    )
    p.add_argument(
        "--budget-us", type=float, default=None,
        help="slot-time budget for plugin work per cell and slot",
    )
    p.add_argument(
        "--fuel-per-us", type=float, default=None,
        help="pinned fuel<->time exchange rate (policy, not measurement)",
    )
    p.add_argument(
        "--lanes", metavar="SPEC", default=None,
        help='priority lanes, e.g. "sla:50;normal:30;be:20" '
        '("!" pins a lane non-sheddable; "sla" always is)',
    )
    p.add_argument(
        "--admission", choices=["on", "off"], default=None,
        help="p99-driven admission control (default: on)",
    )
    p.add_argument(
        "--no-enforce", action="store_true",
        help="observe-only baseline: plan budgets and count misses "
        "but never cut or shed",
    )
    p.add_argument(
        "--policy", metavar="SPEC", default=None,
        help="full RtPolicy string (overrides the scenario default; "
        "individual flags still apply on top)",
    )
    p.add_argument(
        "--engine",
        choices=["legacy", "threaded", "aot"],
        default=None,
        help="Wasm engine (default: REPRO_WASM_ENGINE or threaded)",
    )
    p.add_argument(
        "--baseline", action="store_true",
        help="run the acceptance comparison: flash crowd rt-off vs rt-on, "
        "reporting the deadline-miss-rate reduction factor",
    )
    p.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run twice and require byte-identical report digests",
    )
    p.add_argument(
        "--log", metavar="PATH",
        help="write the admission/fault/mobility log to a file",
    )
    p.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    p.set_defaults(fn=_cmd_rt)

    p = sub.add_parser(
        "obs",
        help="run an instrumented demo workload and dump telemetry",
        description="Exercises a scheduler plugin with telemetry enabled, "
        "then dumps metrics, spans, events and the flight recorder as JSON "
        "(or the metrics registry as Prometheus text).",
    )
    p.add_argument("--format", choices=["json", "prom"], default="json")
    p.add_argument(
        "--section",
        choices=["all", "metrics", "spans", "events", "flight"],
        default="all",
        help="JSON output only: which telemetry section to dump",
    )
    p.add_argument("--calls", type=int, default=25, help="demo plugin calls")
    p.add_argument("--plugin", default="pf", help="demo scheduler plugin")
    p.add_argument(
        "--tree",
        action="store_true",
        help="print the recorded span forest as an indented tree and exit",
    )
    p.add_argument(
        "--top",
        type=int,
        metavar="N",
        help="print the N most expensive span names (by total time) and exit",
    )
    p.set_defaults(fn=_cmd_obs)
    obs_sub = p.add_subparsers(dest="obs_command", metavar="merge")
    pm = obs_sub.add_parser(
        "merge",
        help="merge metrics snapshots from several processes",
        description="Merges per-process MetricsRegistry snapshots (JSON "
        "files, either bare registry dumps or whole telemetry bundles with "
        "a 'metrics' section) into one aggregate exposition - the same "
        "merge path the cluster coordinator uses for its workers.",
    )
    pm.add_argument("snapshots", nargs="+", metavar="snap.json")
    pm.add_argument("--format", choices=["json", "prom"], default="json")
    pm.add_argument("-o", "--output", help="write instead of printing")
    pm.add_argument(
        "--gauge-mode",
        action="append",
        metavar="NAME=MODE",
        help="merge mode for a gauge: sum, max or last (repeatable; "
        "defaults cover the known high-water-mark gauges)",
    )
    pm.set_defaults(fn=_cmd_obs_merge)

    p = sub.add_parser(
        "scale",
        help="multi-process scale-out: sharded gNB workers + one RIC",
        description="Spawns N shared-nothing cell-worker processes, each "
        "hosting a shard of the cells with its own Wasm plugins (and chaos "
        "schedule, if any), streaming KPM indications to the coordinator's "
        "near-RT RIC over the batched E2 uplink.  Aggregate scheduled-bytes "
        "and fault-log digests are invariant across runs and worker counts.",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cells", type=int, default=4)
    p.add_argument("--ues", type=int, default=32, help="total UE population")
    p.add_argument("--slots", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=["legacy", "threaded", "aot"],
        default=None,
        help="Wasm engine (default: REPRO_WASM_ENGINE or threaded)",
    )
    p.add_argument(
        "--chaos",
        metavar="SPEC",
        help="REPRO_CHAOS-style fault spec, e.g. seed=1,trap=0.01",
    )
    p.add_argument(
        "--mode",
        choices=["proc", "inline"],
        default="proc",
        help="proc = worker processes, inline = sequential in-process",
    )
    p.add_argument(
        "--transport",
        choices=["tcp", "shm"],
        default="tcp",
        help="proc-mode wire: localhost sockets or shared-memory rings",
    )
    p.add_argument(
        "--sweep",
        metavar="W1,W2,...",
        help="sweep worker counts (e.g. 1,2,4) and verify digest invariance",
    )
    p.add_argument(
        "--verify-determinism",
        action="store_true",
        help="run twice and require byte-identical aggregate digests",
    )
    p.add_argument("--json", metavar="PATH", help="write the full report")
    p.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged cross-process metrics as Prometheus text",
    )
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-run worker deadline (seconds)")
    p.add_argument(
        "--rt", metavar="POLICY", default=None,
        help='rt dispatch policy string (or "on" for defaults); the '
        "budget is per cell and slot, never divided by worker count",
    )
    p.add_argument(
        "--scenario",
        choices=["flash_crowd", "handover", "mixed_sla"],
        default=None,
        help="replace the default CBR cells with an rt stress scenario",
    )
    p.add_argument(
        "--liveness-timeout", type=float, default=0.0, metavar="SECONDS",
        help="fail fast with WorkerFailed when a worker goes silent this "
        "long (0 = only --timeout applies)",
    )
    p.set_defaults(fn=_cmd_scale)

    p = sub.add_parser(
        "trace",
        help="trace a cluster run and attribute its per-slot latency",
        description="Runs the scale-out cluster with distributed tracing "
        "on: every worker slot becomes a span, trace context rides the "
        "batched E2 uplink, and the coordinator stitches one cross-process "
        "trace.  Prints the latency-attribution table (which segment owns "
        "the p99, exact decomposition of the p99 slot, critical path, "
        "deadline misses) and can export a Chrome/Perfetto trace file.",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cells", type=int, default=4)
    p.add_argument("--ues", type=int, default=32, help="total UE population")
    p.add_argument("--slots", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=["legacy", "threaded", "aot"],
        default=None,
        help="Wasm engine (default: REPRO_WASM_ENGINE or threaded)",
    )
    p.add_argument(
        "--mode",
        choices=["proc", "inline"],
        default="proc",
        help="proc = worker processes, inline = sequential in-process",
    )
    p.add_argument(
        "--transport",
        choices=["tcp", "shm"],
        default="tcp",
        help="proc-mode wire: localhost sockets or shared-memory rings",
    )
    p.add_argument(
        "--budget-us",
        type=float,
        default=0.0,
        help="per-slot latency budget; overruns become deadline_miss "
        "events naming the guilty segment",
    )
    p.add_argument(
        "--out",
        metavar="TRACE.json",
        help="write the stitched Chrome/Perfetto trace-event file",
    )
    p.add_argument(
        "--json", metavar="PATH", help="write the attribution report as JSON"
    )
    p.add_argument(
        "--tree",
        action="store_true",
        help="also print the stitched span forest as an indented tree",
    )
    p.add_argument(
        "--digest-only",
        action="store_true",
        help="print only the structural trace digest (CI determinism check)",
    )
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-run worker deadline (seconds)")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "fuzz",
        help="generative differential fuzzing of the Wasm engines",
        description="Generates seeded arbitrary-but-valid Wasm modules and "
        "runs each under the legacy, threaded and aot engines plus "
        "cross-engine checkpoint/restore round trips, requiring identical "
        "results, trap "
        "codes, fuel and exec stats; a fraction of iterations corrupt the "
        "binary instead and assert the decoder/validator reject it cleanly. "
        "Failures are shrunk to minimal corpus reproducers.  The campaign "
        "digest is deterministic for a given seed and budget.",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=int, default=500,
                   help="number of fuzz iterations")
    p.add_argument("--time-box", type=float, default=None, metavar="SECONDS",
                   help="stop early after this many seconds")
    p.add_argument("--mutate-ratio", type=float, default=0.3,
                   help="fraction of iterations that mutate instead of run")
    p.add_argument("--fuel", type=int, default=25_000,
                   help="per-call instruction budget")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="write shrunk reproducers for failures here")
    p.add_argument("--no-shrink", action="store_true",
                   help="save failing cases without minimizing them")
    p.add_argument("--replay", metavar="PATH",
                   help="replay a corpus case file or directory and exit")
    p.add_argument("--seed-corpus", metavar="PATH",
                   help="bias mutations with module binaries from a replay "
                   "corpus (.wrc file or directory of them)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.set_defaults(fn=_cmd_fuzz)

    from repro.replay.record import RECORDABLE_WORKLOADS

    p = sub.add_parser(
        "record",
        help="capture a live workload as a standalone replay corpus",
        description="Runs an existing deterministic workload (chaos soak, "
        "rt stress scenario, the Fig-5b hot-swap experiment or a "
        "multi-worker cluster sweep) with the "
        "flight recorder in corpus-capture mode and serialises every "
        "per-plugin call stream - module bytes, ABI inputs, fuel budgets, "
        "chaos/rt attributes - into a versioned .wrc corpus that "
        "'repro replay-bench' can re-execute without any RAN around it.",
    )
    p.add_argument("--workload", choices=RECORDABLE_WORKLOADS,
                   default="chaos")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--slots", type=int, default=None,
                   help="override the workload's slot count")
    p.add_argument("--engine", choices=["legacy", "threaded", "aot"],
                   default=None)
    p.add_argument("--rt", metavar="POLICY",
                   help="rt dispatch policy string ('on' for defaults)")
    p.add_argument("--phase-duration", type=float, default=0.4,
                   metavar="SECONDS", help="fig5b phase length")
    p.add_argument("--workers", type=int, default=2,
                   help="cluster workload: worker count")
    p.add_argument("--cells", type=int, default=4,
                   help="cluster workload: cell count")
    p.add_argument("--ues", type=int, default=8,
                   help="cluster workload: total UE population")
    p.add_argument("--cluster-mode", choices=["inline", "proc"],
                   default="inline",
                   help="cluster workload: worker execution mode")
    p.add_argument("--reduce", action="store_true",
                   help="reduce the corpus inline before saving")
    p.add_argument("--max-per-class", type=int, default=3,
                   help="representatives kept per call class when reducing")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="corpus path (default <workload>-seed<N>.wrc)")
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser(
        "reduce",
        help="shrink a recorded replay corpus while it stays faithful",
        description="Dedupes calls by (module, input-shape, trap/fuel "
        "equivalence class), keeps a few representatives per class, "
        "re-verifies each standalone (rebasing deterministic divergences), "
        "then minimises module bodies with the fuzzer's shrinking "
        "machinery under a bit-exact replay predicate.",
    )
    p.add_argument("corpus", help=".wrc corpus to reduce")
    p.add_argument("--max-per-class", type=int, default=3,
                   help="representatives kept per call class")
    p.add_argument("--no-shrink-modules", action="store_true",
                   help="skip the module-body shrinking pass")
    p.add_argument("--max-checks", type=int, default=120,
                   help="shrinker predicate evaluations per module")
    p.add_argument("--engine", choices=["legacy", "threaded", "aot"],
                   default=None, help="engine used for verification replays")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="output path (default <input>.min.wrc)")
    p.add_argument("--json", action="store_true",
                   help="print the reduction report as JSON")
    p.set_defaults(fn=_cmd_reduce)

    p = sub.add_parser(
        "replay-bench",
        help="execute a replay corpus standalone and benchmark it",
        description="Rebuilds one plugin host per recorded call stream and "
        "re-executes every call under the requested engines, checking "
        "outputs, traps and fuel bit-exactly against the corpus "
        "expectations while measuring per-call latency.  Exits non-zero "
        "on any fidelity mismatch.",
    )
    p.add_argument("corpus", help=".wrc corpus to replay")
    p.add_argument("--engines", default="threaded",
                   help="comma-separated engine list, or 'all' "
                   "(default: threaded)")
    p.add_argument("--json", metavar="FILE",
                   help="write the full waran-bench-replay/1 report here")
    p.add_argument("--verbose", action="store_true",
                   help="print per-stream fidelity and timing lines")
    p.set_defaults(fn=_cmd_replay_bench)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `waran plugins | head`
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":
    raise SystemExit(main())
