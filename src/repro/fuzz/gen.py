"""Seeded typed generator of arbitrary-but-valid Wasm MVP modules.

The generator is a recursive-descent expression/statement builder over the
module's own typing rules: every produced module passes
:func:`repro.wasm.validator.validate_module` by construction (and the
generator asserts it, so a validation failure here is itself a finding).

Determinism: all choices come from a caller-supplied ``random.Random``;
the same seed always yields the same module bytes and call plan.

Termination: direct calls only target strictly lower-indexed functions
(the call graph is a DAG) and generated loops count down a reserved local,
so bodies terminate without fuel — except the deliberate trap/recursion
paths (masked ``call_indirect`` selectors, unmasked memory addresses),
which the oracle bounds with fuel and the call-depth limit.  Those paths
are the point: traps must be identical across engines.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.wasm import opcodes as op
from repro.wasm.encoder import encode_module
from repro.wasm.module import (
    Code,
    DataSegment,
    ElemSegment,
    Export,
    Global,
    Instr,
    Module,
)
from repro.wasm.validator import validate_module
from repro.wasm.wtypes import FuncType, GlobalType, Limits, ValType

I32, I64, F32, F64 = ValType.I32, ValType.I64, ValType.F32, ValType.F64
ALL_TYPES = (I32, I64, F32, F64)

# ---------------------------------------------------------------------------
# opcode signature tables (result-type keyed)
# ---------------------------------------------------------------------------

#: (t, t) -> t arithmetic/bitwise binops
BIN_ARITH: dict[ValType, tuple[int, ...]] = {
    I32: (
        op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_DIV_S, op.I32_DIV_U,
        op.I32_REM_S, op.I32_REM_U, op.I32_AND, op.I32_OR, op.I32_XOR,
        op.I32_SHL, op.I32_SHR_S, op.I32_SHR_U, op.I32_ROTL, op.I32_ROTR,
    ),
    I64: (
        op.I64_ADD, op.I64_SUB, op.I64_MUL, op.I64_DIV_S, op.I64_DIV_U,
        op.I64_REM_S, op.I64_REM_U, op.I64_AND, op.I64_OR, op.I64_XOR,
        op.I64_SHL, op.I64_SHR_S, op.I64_SHR_U, op.I64_ROTL, op.I64_ROTR,
    ),
    F32: (
        op.F32_ADD, op.F32_SUB, op.F32_MUL, op.F32_DIV, op.F32_MIN,
        op.F32_MAX, op.F32_COPYSIGN,
    ),
    F64: (
        op.F64_ADD, op.F64_SUB, op.F64_MUL, op.F64_DIV, op.F64_MIN,
        op.F64_MAX, op.F64_COPYSIGN,
    ),
}

#: (u, u) -> i32 comparisons, keyed by operand type
CMP_OPS: dict[ValType, tuple[int, ...]] = {
    I32: (
        op.I32_EQ, op.I32_NE, op.I32_LT_S, op.I32_LT_U, op.I32_GT_S,
        op.I32_GT_U, op.I32_LE_S, op.I32_LE_U, op.I32_GE_S, op.I32_GE_U,
    ),
    I64: (
        op.I64_EQ, op.I64_NE, op.I64_LT_S, op.I64_LT_U, op.I64_GT_S,
        op.I64_GT_U, op.I64_LE_S, op.I64_LE_U, op.I64_GE_S, op.I64_GE_U,
    ),
    F32: (op.F32_EQ, op.F32_NE, op.F32_LT, op.F32_GT, op.F32_LE, op.F32_GE),
    F64: (op.F64_EQ, op.F64_NE, op.F64_LT, op.F64_GT, op.F64_LE, op.F64_GE),
}

#: result type -> [(source type, opcode)] unary/conversion producers
UNARY: dict[ValType, tuple[tuple[ValType, int], ...]] = {
    I32: (
        (I32, op.I32_CLZ), (I32, op.I32_CTZ), (I32, op.I32_POPCNT),
        (I32, op.I32_EQZ), (I64, op.I64_EQZ), (I64, op.I32_WRAP_I64),
        (F32, op.I32_TRUNC_F32_S), (F32, op.I32_TRUNC_F32_U),
        (F64, op.I32_TRUNC_F64_S), (F64, op.I32_TRUNC_F64_U),
        (F32, op.I32_REINTERPRET_F32),
        (I32, op.I32_EXTEND8_S), (I32, op.I32_EXTEND16_S),
    ),
    I64: (
        (I64, op.I64_CLZ), (I64, op.I64_CTZ), (I64, op.I64_POPCNT),
        (I32, op.I64_EXTEND_I32_S), (I32, op.I64_EXTEND_I32_U),
        (F32, op.I64_TRUNC_F32_S), (F32, op.I64_TRUNC_F32_U),
        (F64, op.I64_TRUNC_F64_S), (F64, op.I64_TRUNC_F64_U),
        (F64, op.I64_REINTERPRET_F64),
        (I64, op.I64_EXTEND8_S), (I64, op.I64_EXTEND16_S),
        (I64, op.I64_EXTEND32_S),
    ),
    F32: (
        (F32, op.F32_ABS), (F32, op.F32_NEG), (F32, op.F32_CEIL),
        (F32, op.F32_FLOOR), (F32, op.F32_TRUNC), (F32, op.F32_NEAREST),
        (F32, op.F32_SQRT),
        (I32, op.F32_CONVERT_I32_S), (I32, op.F32_CONVERT_I32_U),
        (I64, op.F32_CONVERT_I64_S), (I64, op.F32_CONVERT_I64_U),
        (F64, op.F32_DEMOTE_F64), (I32, op.F32_REINTERPRET_I32),
    ),
    F64: (
        (F64, op.F64_ABS), (F64, op.F64_NEG), (F64, op.F64_CEIL),
        (F64, op.F64_FLOOR), (F64, op.F64_TRUNC), (F64, op.F64_NEAREST),
        (F64, op.F64_SQRT),
        (I32, op.F64_CONVERT_I32_S), (I32, op.F64_CONVERT_I32_U),
        (I64, op.F64_CONVERT_I64_S), (I64, op.F64_CONVERT_I64_U),
        (F32, op.F64_PROMOTE_F32), (I64, op.F64_REINTERPRET_I64),
    ),
}

LOAD_OPS: dict[ValType, tuple[int, ...]] = {
    I32: (op.I32_LOAD, op.I32_LOAD8_S, op.I32_LOAD8_U, op.I32_LOAD16_S,
          op.I32_LOAD16_U),
    I64: (op.I64_LOAD, op.I64_LOAD8_S, op.I64_LOAD8_U, op.I64_LOAD16_S,
          op.I64_LOAD16_U, op.I64_LOAD32_S, op.I64_LOAD32_U),
    F32: (op.F32_LOAD,),
    F64: (op.F64_LOAD,),
}

STORE_OPS: dict[ValType, tuple[int, ...]] = {
    I32: (op.I32_STORE, op.I32_STORE8, op.I32_STORE16),
    I64: (op.I64_STORE, op.I64_STORE8, op.I64_STORE16, op.I64_STORE32),
    F32: (op.F32_STORE,),
    F64: (op.F64_STORE,),
}

#: safe address mask: page 0 always exists, worst access is mask+offset+8
ADDR_MASK = 0x7FF
MAX_SAFE_OFFSET = 0xFF

_I32_POOL = (0, 1, 2, 3, 7, -1, -2, 0x7FFFFFFF, -0x80000000, 0xFF, 1 << 16)
_I64_POOL = (0, 1, -1, 0x7FFFFFFFFFFFFFFF, -0x8000000000000000,
             0x100000000, -0x80000000)
_F_POOL = (0.0, -0.0, 1.0, -1.5, 2.5, 1e10, -1e-3, math.inf, -math.inf,
           math.nan)


class GeneratorError(AssertionError):
    """The generator produced an invalid module — a bug in the fuzzer."""


@dataclass
class GenConfig:
    """Size/shape knobs for one generated module."""

    max_funcs: int = 4
    max_params: int = 3
    max_locals: int = 4
    max_stmts: int = 5
    max_depth: int = 3
    max_globals: int = 3
    min_calls: int = 2
    max_calls: int = 5
    #: probability a memory address expression is left unmasked (may trap)
    p_wild_addr: float = 0.08
    #: probability a call_indirect selector is a masked expression
    p_wild_select: float = 0.3
    table_prob: float = 0.5
    data_prob: float = 0.5


@dataclass
class GeneratedModule:
    """One fuzz case: the module bytes plus a deterministic call plan."""

    wasm: bytes
    calls: list[tuple[str, tuple]]
    module: Module = field(repr=False, default=None)


class _FuncCtx:
    """Per-function generation state."""

    def __init__(self, params: tuple[ValType, ...], locals_: tuple[ValType, ...]):
        self.types = tuple(params) + tuple(locals_)
        #: label depth of enclosing blocks (for br_if targets)
        self.label_depth = 0
        #: local indices reserved as live loop counters (never overwritten)
        self.reserved: set[int] = set()

    def locals_of(self, t: ValType, writable: bool = False) -> list[int]:
        return [
            i for i, lt in enumerate(self.types)
            if lt == t and not (writable and i in self.reserved)
        ]


class ModuleGen:
    """Generates one valid module (and call plan) per :meth:`generate`."""

    def __init__(self, rng: random.Random, config: GenConfig | None = None):
        self.rng = rng
        self.cfg = config or GenConfig()

    # ----- value helpers ---------------------------------------------------

    def _const(self, t: ValType) -> Instr:
        rng = self.rng
        if t == I32:
            v = rng.choice(_I32_POOL) if rng.random() < 0.6 else rng.randrange(
                -(1 << 31), 1 << 31)
            if v > 0x7FFFFFFF:
                v -= 1 << 32
            return (op.I32_CONST, v)
        if t == I64:
            v = rng.choice(_I64_POOL) if rng.random() < 0.6 else rng.randrange(
                -(1 << 63), 1 << 63)
            return (op.I64_CONST, v)
        v = rng.choice(_F_POOL) if rng.random() < 0.6 else rng.uniform(-1e6, 1e6)
        return (op.F32_CONST if t == F32 else op.F64_CONST, v)

    def arg_for(self, t: ValType):
        """An interesting call argument of type ``t``."""
        return self._const(t)[1]

    # ----- expressions -----------------------------------------------------

    def expr(self, ctx: _FuncCtx, t: ValType, depth: int) -> list[Instr]:
        """Instructions leaving exactly one ``t`` on the stack."""
        rng = self.rng
        if depth <= 0:
            return self._leaf(ctx, t)
        choices = ["leaf", "binop", "unop", "cmp", "load", "select", "if",
                   "block", "binop", "unop"]
        if any(ft.results == (t,) for ft in self._callable):
            choices.append("call")
        if self._table_funcs and any(
            self._funcsigs[i].results == (t,) for i in self._table_funcs
        ):
            choices.append("call_indirect")
        kind = rng.choice(choices)
        if kind == "leaf":
            return self._leaf(ctx, t)
        if kind == "binop":
            a = self.expr(ctx, t, depth - 1)
            b = self.expr(ctx, t, depth - 1)
            return a + b + [(rng.choice(BIN_ARITH[t]), None)]
        if kind == "unop":
            src, opcode = rng.choice(UNARY[t])
            return self.expr(ctx, src, depth - 1) + [(opcode, None)]
        if kind == "cmp":
            if t != I32:
                return self._leaf(ctx, t)
            u = rng.choice(ALL_TYPES)
            a = self.expr(ctx, u, depth - 1)
            b = self.expr(ctx, u, depth - 1)
            return a + b + [(rng.choice(CMP_OPS[u]), None)]
        if kind == "load":
            addr = self._addr(ctx, depth - 1)
            offset = rng.randrange(MAX_SAFE_OFFSET)
            return addr + [(rng.choice(LOAD_OPS[t]), (0, offset))]
        if kind == "select":
            a = self.expr(ctx, t, depth - 1)
            b = self.expr(ctx, t, depth - 1)
            cond = self.expr(ctx, I32, depth - 1)
            return a + b + cond + [(op.SELECT, None)]
        if kind == "if":
            cond = self.expr(ctx, I32, depth - 1)
            ctx.label_depth += 1
            arm_a = self.expr(ctx, t, depth - 1)
            arm_b = self.expr(ctx, t, depth - 1)
            ctx.label_depth -= 1
            return (cond + [(op.IF, t)] + arm_a + [(op.ELSE, None)]
                    + arm_b + [(op.END, None)])
        if kind == "block":
            # block (result t): e1, cond, br_if 0 (carrying e1), else drop+e2
            ctx.label_depth += 1
            e1 = self.expr(ctx, t, depth - 1)
            cond = self.expr(ctx, I32, depth - 1)
            e2 = self.expr(ctx, t, depth - 1)
            ctx.label_depth -= 1
            return ([(op.BLOCK, t)] + e1 + cond + [(op.BR_IF, 0)]
                    + [(op.DROP, None)] + e2 + [(op.END, None)])
        if kind == "call":
            idx, ft = rng.choice(
                [(i, ft) for i, ft in enumerate(self._callable)
                 if ft.results == (t,)]
            )
            out: list[Instr] = []
            for p in ft.params:
                out += self.expr(ctx, p, depth - 1)
            return out + [(op.CALL, idx)]
        # call_indirect
        candidates = [
            i for i in self._table_funcs if self._funcsigs[i].results == (t,)
        ]
        target = rng.choice(candidates)
        ft = self._funcsigs[target]
        out = []
        for p in ft.params:
            out += self.expr(ctx, p, depth - 1)
        if rng.random() < self.cfg.p_wild_select:
            sel = (self.expr(ctx, I32, 0)
                   + [(op.I32_CONST, max(3, len(self._table_funcs))),
                      (op.I32_REM_U, None)])
        else:
            sel = [(op.I32_CONST, target)]
        return out + sel + [(op.CALL_INDIRECT, self._type_index(ft))]

    def _leaf(self, ctx: _FuncCtx, t: ValType) -> list[Instr]:
        rng = self.rng
        opts = ["const"]
        if ctx.locals_of(t):
            opts += ["local", "local"]
        if any(g.gtype.valtype == t for g in self._globals):
            opts.append("global")
        kind = rng.choice(opts)
        if kind == "local":
            return [(op.LOCAL_GET, rng.choice(ctx.locals_of(t)))]
        if kind == "global":
            idx = rng.choice(
                [i for i, g in enumerate(self._globals) if g.gtype.valtype == t]
            )
            return [(op.GLOBAL_GET, idx)]
        return [self._const(t)]

    def _addr(self, ctx: _FuncCtx, depth: int) -> list[Instr]:
        """An i32 address expression, usually masked in-bounds."""
        base = self.expr(ctx, I32, depth)
        if self.rng.random() < self.cfg.p_wild_addr:
            return base  # may trap: both engines must agree on the oob
        return base + [(op.I32_CONST, ADDR_MASK), (op.I32_AND, None)]

    # ----- statements ------------------------------------------------------

    def stmts(self, ctx: _FuncCtx, depth: int, count: int | None = None) -> list[Instr]:
        rng = self.rng
        n = rng.randrange(1, self.cfg.max_stmts + 1) if count is None else count
        out: list[Instr] = []
        for _ in range(n):
            out += self._stmt(ctx, depth)
        return out

    def _stmt(self, ctx: _FuncCtx, depth: int) -> list[Instr]:
        rng = self.rng
        choices = ["set", "store", "drop", "nop", "memgrow", "set", "store"]
        if self._globals_mutable:
            choices.append("gset")
        if depth > 0:
            choices += ["if", "loop", "block", "br_table"]
        if any(not ft.results for ft in self._callable):
            choices.append("callv")
        kind = rng.choice(choices)
        if kind == "set":
            t = rng.choice(ALL_TYPES)
            writable = ctx.locals_of(t, writable=True)
            if not writable:
                return [(op.NOP, None)]
            idx = rng.choice(writable)
            value = self.expr(ctx, t, depth)
            if rng.random() < 0.25:
                return value + [(op.LOCAL_TEE, idx), (op.DROP, None)]
            return value + [(op.LOCAL_SET, idx)]
        if kind == "gset":
            idx = rng.choice(self._globals_mutable)
            t = self._globals[idx].gtype.valtype
            return self.expr(ctx, t, depth) + [(op.GLOBAL_SET, idx)]
        if kind == "store":
            t = rng.choice(ALL_TYPES)
            addr = self._addr(ctx, depth)
            value = self.expr(ctx, t, depth)
            offset = rng.randrange(MAX_SAFE_OFFSET)
            return addr + value + [(rng.choice(STORE_OPS[t]), (0, offset))]
        if kind == "drop":
            t = rng.choice(ALL_TYPES)
            return self.expr(ctx, t, depth) + [(op.DROP, None)]
        if kind == "nop":
            return [(op.NOP, None)]
        if kind == "memgrow":
            return [(op.I32_CONST, rng.randrange(3)), (op.MEMORY_GROW, None),
                    (op.DROP, None)]
        if kind == "if":
            cond = self.expr(ctx, I32, depth - 1)
            ctx.label_depth += 1
            then = self.stmts(ctx, depth - 1)
            els = self.stmts(ctx, depth - 1) if rng.random() < 0.5 else None
            ctx.label_depth -= 1
            out = cond + [(op.IF, None)] + then
            if els is not None:
                out += [(op.ELSE, None)] + els
            return out + [(op.END, None)]
        if kind == "loop":
            return self._bounded_loop(ctx, depth)
        if kind == "block":
            ctx.label_depth += 1
            body = self.stmts(ctx, depth - 1)
            cond = self.expr(ctx, I32, depth - 1)
            tail = self.stmts(ctx, depth - 1)
            ctx.label_depth -= 1
            return ([(op.BLOCK, None)] + body + cond + [(op.BR_IF, 0)]
                    + tail + [(op.END, None)])
        if kind == "br_table":
            sel = self.expr(ctx, I32, depth - 1)
            ctx.label_depth += 3
            a = self.stmts(ctx, depth - 1, count=1)
            b = self.stmts(ctx, depth - 1, count=1)
            ctx.label_depth -= 3
            return (
                [(op.BLOCK, None), (op.BLOCK, None), (op.BLOCK, None)]
                + sel
                + [(op.I32_CONST, 3), (op.I32_REM_U, None),
                   (op.BR_TABLE, ((0, 1), 2)), (op.END, None)]
                + a + [(op.END, None)] + b + [(op.END, None)]
            )
        # callv: call a void function for its side effects
        idx, ft = rng.choice(
            [(i, ft) for i, ft in enumerate(self._callable) if not ft.results]
        )
        out: list[Instr] = []
        for p in ft.params:
            out += self.expr(ctx, p, depth)
        return out + [(op.CALL, idx)]

    def _bounded_loop(self, ctx: _FuncCtx, depth: int) -> list[Instr]:
        rng = self.rng
        counters = ctx.locals_of(I32, writable=True)
        if not counters:
            return [(op.NOP, None)]
        counter = rng.choice(counters)
        ctx.reserved.add(counter)
        iters = rng.randrange(1, 7)
        ctx.label_depth += 1
        body = self.stmts(ctx, depth - 1)
        ctx.label_depth -= 1
        ctx.reserved.discard(counter)
        return (
            [(op.I32_CONST, iters), (op.LOCAL_SET, counter), (op.LOOP, None)]
            + body
            + [(op.LOCAL_GET, counter), (op.I32_CONST, 1), (op.I32_SUB, None),
               (op.LOCAL_TEE, counter), (op.BR_IF, 0), (op.END, None)]
        )

    # ----- module assembly -------------------------------------------------

    def _type_index(self, ft: FuncType) -> int:
        try:
            return self._types.index(ft)
        except ValueError:
            self._types.append(ft)
            return len(self._types) - 1

    def generate(self) -> GeneratedModule:
        rng = self.rng
        cfg = self.cfg
        self._types: list[FuncType] = []
        self._globals: list[Global] = []
        self._callable: list[FuncType] = []  # funcs fully generated so far
        self._funcsigs: list[FuncType] = []  # all planned signatures
        self._table_funcs: list[int] = []

        for _ in range(rng.randrange(cfg.max_globals + 1)):
            t = rng.choice(ALL_TYPES)
            mutable = rng.random() < 0.8
            self._globals.append(
                Global(GlobalType(t, mutable), ((self._const(t)), (op.END, None)))
            )
        self._globals_mutable = [
            i for i, g in enumerate(self._globals) if g.gtype.mutable
        ]

        n_funcs = rng.randrange(1, cfg.max_funcs + 1)
        for _ in range(n_funcs):
            params = tuple(
                rng.choice(ALL_TYPES)
                for _ in range(rng.randrange(cfg.max_params + 1))
            )
            results = (rng.choice(ALL_TYPES),) if rng.random() < 0.8 else ()
            self._funcsigs.append(FuncType(params, results))

        has_table = rng.random() < cfg.table_prob and n_funcs > 0
        if has_table:
            self._table_funcs = list(range(n_funcs))

        codes: list[Code] = []
        func_type_indices: list[int] = []
        for i, ft in enumerate(self._funcsigs):
            # while generating func i, direct calls may target funcs < i only
            self._callable = self._funcsigs[:i]
            n_locals = rng.randrange(1, cfg.max_locals + 1)
            locals_ = (I32,) + tuple(
                rng.choice(ALL_TYPES) for _ in range(n_locals - 1)
            )
            ctx = _FuncCtx(ft.params, locals_)
            body = self.stmts(ctx, cfg.max_depth)
            if ft.results:
                result_t = ft.results[0]
                if rng.random() < 0.2:
                    # occasional early conditional return
                    cond = self.expr(ctx, I32, 1)
                    ctx.label_depth += 1
                    val = self.expr(ctx, result_t, 1)
                    ctx.label_depth -= 1
                    body += (cond + [(op.IF, None)] + val
                             + [(op.RETURN, None), (op.END, None)])
                body += self.expr(ctx, result_t, cfg.max_depth)
            body.append((op.END, None))
            codes.append(Code(tuple(locals_), tuple(body)))
            func_type_indices.append(self._type_index(ft))
        self._callable = self._funcsigs

        mod = Module()
        mod.types = self._types
        mod.funcs = func_type_indices
        mod.codes = codes
        mod.mems = [Limits(1, 2)]
        mod.globals = self._globals
        mod.exports = [
            Export(f"f{i}", "func", i) for i in range(n_funcs)
        ]
        if has_table:
            # one extra null slot so wild call_indirect selectors can land
            # on an uninitialized element (a trap both engines must match)
            mod.tables = [Limits(n_funcs + 1, n_funcs + 1)]
            mod.elems = [
                ElemSegment(0, ((op.I32_CONST, 0), (op.END, None)),
                            tuple(range(n_funcs)))
            ]
        if rng.random() < cfg.data_prob:
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 33)))
            mod.datas = [
                DataSegment(0, ((op.I32_CONST, rng.randrange(64)), (op.END, None)),
                            payload)
            ]

        try:
            validate_module(mod)
        except Exception as exc:  # noqa: BLE001 - reported as generator bug
            raise GeneratorError(f"generated module fails validation: {exc}") from exc
        wasm = encode_module(mod)

        n_calls = rng.randrange(cfg.min_calls, cfg.max_calls + 1)
        calls = []
        for _ in range(n_calls):
            idx = rng.randrange(n_funcs)
            ft = self._funcsigs[idx]
            args = tuple(self.arg_for(p) for p in ft.params)
            calls.append((f"f{idx}", args))
        return GeneratedModule(wasm=wasm, calls=calls, module=mod)
