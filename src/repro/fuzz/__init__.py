"""Generative Wasm fuzzing and differential conformance (``repro.fuzz``).

The paper's safety claims (§5D) rest on the Wasm runtime faithfully
implementing MVP semantics, and the repo now carries *two* engines (legacy
and threaded) plus checkpoint/restore that must agree
instruction-for-instruction.  This package is the machinery that keeps
them honest beyond the hand-written plugin suite:

- :mod:`repro.fuzz.gen` — a seeded typed module generator: arbitrary but
  *valid* MVP modules (locals, globals, memory ops, blocks/loops/br_if,
  br_table, calls, call_indirect, i32/i64/f32/f64 arithmetic) plus a call
  plan of interesting arguments;
- :mod:`repro.fuzz.oracle` — the differential oracle: every module runs
  under the legacy engine, the threaded engine, a mid-run
  ``capture_state()``/``restore_state()`` round trip, and a cross-engine
  restore, asserting identical results, trap codes, fuel and ExecStats;
- :mod:`repro.fuzz.mutate` — corrupts valid binaries to exercise the
  decoder/validator error paths: arbitrary bytes must be *classified*
  (accepted or rejected with a :class:`~repro.wasm.traps.WasmError`),
  never crash the host;
- :mod:`repro.fuzz.shrink` — minimizes a failing module + call plan to a
  small reproducer;
- :mod:`repro.fuzz.corpus` — the ``tests/wasm/corpus/`` regression-corpus
  format (JSON with WAT or hex module text) that pytest replays forever;
- :mod:`repro.fuzz.runner` — the deterministic campaign driver behind the
  ``repro fuzz`` CLI (seed, budget, time-box, digest).
"""

from repro.fuzz.corpus import CorpusCase, check_case, load_case, save_case
from repro.fuzz.gen import GenConfig, GeneratedModule, ModuleGen
from repro.fuzz.mutate import MutationCrash, classify_bytes, mutate_bytes
from repro.fuzz.oracle import CallPlan, DiffResult, differential, run_trace
from repro.fuzz.runner import FuzzReport, run_campaign
from repro.fuzz.shrink import shrink

__all__ = [
    "GenConfig",
    "GeneratedModule",
    "ModuleGen",
    "CallPlan",
    "DiffResult",
    "differential",
    "run_trace",
    "MutationCrash",
    "classify_bytes",
    "mutate_bytes",
    "CorpusCase",
    "check_case",
    "load_case",
    "save_case",
    "FuzzReport",
    "run_campaign",
    "shrink",
]
