"""The regression corpus: minimized reproducers pytest replays forever.

Each case is one JSON file under ``tests/wasm/corpus/``:

```json
{
  "name": "i32-div-overflow",
  "note": "INT_MIN / -1 must trap with code 'overflow'",
  "wat": "(module ...)"            // or "wasm_hex": "0061736d01..."
  "fuel": 25000,
  "mode": "diff",                  // "diff" (default) or "classify"
  "calls": [["f0", [-2147483648, -1]]],
  "expect": [["trap", "overflow"]]
}
```

``diff`` cases run the call plan under **every** engine and compare each
outcome against ``expect`` (values use strict JSON: non-finite floats are
the strings ``"nan"``/``"inf"``/``"-inf"``; a ``"nan"`` expectation only
checks NaN-ness).  ``classify`` cases (saved from mutation-crash findings)
assert :func:`repro.fuzz.mutate.classify_bytes` classifies the bytes
without a host crash.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.oracle import CallPlan, DEFAULT_FUEL
from repro.wasm.instance import Instance, Store
from repro.wasm.decoder import decode_module
from repro.wasm.traps import Trap


def encode_value(value):
    """JSON-safe encoding of one call argument or result."""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    return value


def decode_value(value):
    if value == "nan":
        return math.nan
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return value


def _values_match(expected, actual) -> bool:
    if isinstance(expected, float) and math.isnan(expected):
        return isinstance(actual, float) and math.isnan(actual)
    if isinstance(expected, float) or isinstance(actual, float):
        if not isinstance(actual, (int, float)) or actual is None:
            return False
        if isinstance(actual, float) and math.isnan(actual):
            return False
        return float(expected) == float(actual) and (
            math.copysign(1.0, float(expected))
            == math.copysign(1.0, float(actual))
        )
    return expected == actual


@dataclass
class CorpusCase:
    """One replayable reproducer."""

    name: str
    wasm: bytes
    calls: CallPlan = field(default_factory=list)
    expect: list = field(default_factory=list)  # [kind, payload] per call
    fuel: int = DEFAULT_FUEL
    note: str = ""
    mode: str = "diff"  # "diff" | "classify"
    wat: str | None = None  # original text, kept for readability


def expected_outcomes(wasm: bytes, calls: CallPlan, fuel: int = DEFAULT_FUEL) -> list:
    """Compute a case's ``expect`` list under the legacy (reference) engine.

    Values are raw (decoded) Python values; :func:`save_case` JSON-encodes
    them on the way to disk.
    """
    instance = Instance(decode_module(wasm), store=Store(), engine="legacy")
    expect = []
    for name, args in calls:
        try:
            value = instance.call(name, *args, fuel=fuel)
            expect.append(["ok", value])
        except Trap as trap:
            expect.append(["trap", trap.code])
    return expect


def load_case(path: str | Path) -> CorpusCase:
    path = Path(path)
    raw = json.loads(path.read_text())
    if "wat" in raw:
        from repro.wasm.wat import assemble

        wasm = assemble(raw["wat"])
    else:
        wasm = bytes.fromhex(raw["wasm_hex"])
    calls = [
        (name, tuple(decode_value(a) for a in args))
        for name, args in raw.get("calls", [])
    ]
    expect = [
        [kind, decode_value(payload)] for kind, payload in raw.get("expect", [])
    ]
    return CorpusCase(
        name=raw.get("name", path.stem),
        wasm=wasm,
        calls=calls,
        expect=expect,
        fuel=raw.get("fuel", DEFAULT_FUEL),
        note=raw.get("note", ""),
        mode=raw.get("mode", "diff"),
        wat=raw.get("wat"),
    )


def save_case(path: str | Path, case: CorpusCase) -> None:
    raw: dict = {"name": case.name, "note": case.note, "mode": case.mode}
    if case.wat is not None:
        raw["wat"] = case.wat
    else:
        raw["wasm_hex"] = case.wasm.hex()
    raw["fuel"] = case.fuel
    raw["calls"] = [
        [name, [encode_value(a) for a in args]] for name, args in case.calls
    ]
    raw["expect"] = [
        [kind, encode_value(payload)] for kind, payload in case.expect
    ]
    Path(path).write_text(json.dumps(raw, indent=2, allow_nan=False) + "\n")


def check_case(case: CorpusCase, engine: str) -> list[str]:
    """Replay one case under one engine; return mismatch descriptions."""
    if case.mode == "classify":
        from repro.fuzz.mutate import classify_bytes

        classify_bytes(case.wasm)  # raises MutationCrash on regression
        return []
    problems: list[str] = []
    instance = Instance(decode_module(case.wasm), store=Store(), engine=engine)
    for i, ((name, args), expected) in enumerate(zip(case.calls, case.expect)):
        want_kind, want_payload = expected
        try:
            value = instance.call(name, *args, fuel=case.fuel)
            got_kind, got_payload = "ok", value
        except Trap as trap:
            got_kind, got_payload = "trap", trap.code
        if want_kind != got_kind:
            problems.append(
                f"{case.name}[{i}] {name}: expected {want_kind}"
                f"({want_payload!r}), got {got_kind}({got_payload!r})"
            )
        elif want_kind == "trap":
            if want_payload != got_payload:
                problems.append(
                    f"{case.name}[{i}] {name}: expected trap code "
                    f"{want_payload!r}, got {got_payload!r}"
                )
        elif not _values_match(want_payload, got_payload):
            problems.append(
                f"{case.name}[{i}] {name}: expected {want_payload!r}, "
                f"got {got_payload!r}"
            )
    return problems


def corpus_paths(directory: str | Path) -> list[Path]:
    return sorted(Path(directory).glob("*.json"))
