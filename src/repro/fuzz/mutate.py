"""Binary mutation: corrupt valid modules to exercise decoder error paths.

The property under test is *crash-freedom with classification*: an
arbitrary byte string fed to the runtime must either be accepted or be
rejected with a :class:`~repro.wasm.traps.WasmError` subclass — never an
``IndexError`` out of the LEB reader, never a ``MemoryError`` from an
attacker-chosen allocation size, never an unclassified crash.  Mutants
that still decode and validate get pushed all the way through the
differential oracle, so near-miss binaries also exercise every engine.
"""

from __future__ import annotations

import random

from repro.fuzz.oracle import CallPlan, differential
from repro.wasm.decoder import decode_module
from repro.wasm.traps import WasmError
from repro.wasm.validator import validate_module
from repro.wasm.wtypes import ValType

#: instantiation guards: a mutated header can declare multi-GiB memories or
#: tables; decoding those is fine, *allocating* them is not.  Mutants above
#: these caps are classified without being instantiated.
MAX_MUTANT_MEMORY_PAGES = 64
MAX_MUTANT_TABLE_ELEMS = 65_536

#: fuel for running mutant exports — mutants earn no long schedules
MUTANT_FUEL = 2_000


class MutationCrash(Exception):
    """A mutated binary escaped the WasmError taxonomy (host crash)."""

    def __init__(self, wasm: bytes, stage: str, cause: BaseException):
        super().__init__(
            f"host crash in {stage}: {type(cause).__name__}: {cause}"
        )
        self.wasm = wasm
        self.stage = stage
        self.cause = cause


def mutate_bytes(rng: random.Random, wasm: bytes) -> bytes:
    """Apply 1-4 random byte-level corruptions to a module binary."""
    data = bytearray(wasm)
    for _ in range(rng.randrange(1, 5)):
        if not data:
            break
        strategy = rng.randrange(7)
        pos = rng.randrange(len(data))
        if strategy == 0:  # flip one bit
            data[pos] ^= 1 << rng.randrange(8)
        elif strategy == 1:  # overwrite one byte
            data[pos] = rng.randrange(256)
        elif strategy == 2:  # delete a short slice
            del data[pos : pos + rng.randrange(1, 5)]
        elif strategy == 3:  # insert random bytes
            data[pos:pos] = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 5))
            )
        elif strategy == 4:  # truncate the tail
            del data[pos:]
        elif strategy == 5:  # duplicate a slice in place
            chunk = bytes(data[pos : pos + rng.randrange(1, 9)])
            data[pos:pos] = chunk
        else:  # set a byte to a LEB-continuation-heavy value
            data[pos] = rng.choice((0x80, 0xFF, 0x7F, 0x00))
    return bytes(data)


def _default_args(params) -> tuple:
    return tuple(0 if p in (ValType.I32, ValType.I64) else 0.0 for p in params)


def classify_bytes(wasm: bytes, fuel: int = MUTANT_FUEL) -> str:
    """Classify an arbitrary byte string's journey through the runtime.

    Returns one of ``"decode-error"``, ``"validation-error"``,
    ``"skipped-imports"``, ``"skipped-huge"``, ``"diverged"`` or ``"ok"``.
    Raises :class:`MutationCrash` if any stage dies with a
    non-:class:`~repro.wasm.traps.WasmError` exception.
    """
    try:
        module = decode_module(wasm)
    except WasmError:
        return "decode-error"
    except MemoryError as exc:
        # a decoder that allocates attacker-sized buffers IS the bug
        raise MutationCrash(wasm, "decode", exc) from exc
    except Exception as exc:  # noqa: BLE001 - the whole point of the fuzzer
        raise MutationCrash(wasm, "decode", exc) from exc

    try:
        validate_module(module)
    except WasmError:
        return "validation-error"
    except Exception as exc:  # noqa: BLE001
        raise MutationCrash(wasm, "validate", exc) from exc

    if module.imports:
        # generated modules import nothing; a mutant that conjured imports
        # cannot be linked meaningfully
        return "skipped-imports"
    if module.mems and module.mems[0].minimum > MAX_MUTANT_MEMORY_PAGES:
        return "skipped-huge"
    if module.tables and module.tables[0].minimum > MAX_MUTANT_TABLE_ELEMS:
        return "skipped-huge"

    # still a valid module: run it through the full differential oracle with
    # synthesized zero arguments for every exported function
    calls: CallPlan = [
        (export.name, _default_args(module.func_type(export.index).params))
        for export in module.exports
        if export.kind == "func"
    ]
    try:
        result = differential(wasm, calls, fuel=fuel)
    except WasmError:
        # e.g. LinkError from an out-of-bounds data segment: fine, but it
        # must not depend on the engine — differential() records that case
        # itself, so reaching here means a non-differential link failure
        return "link-error"
    except Exception as exc:  # noqa: BLE001
        raise MutationCrash(wasm, "execute", exc) from exc
    return "ok" if result.ok else "diverged"
