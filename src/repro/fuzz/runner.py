"""The deterministic fuzz-campaign driver behind ``repro fuzz``.

Each iteration derives its own ``random.Random`` from
``sha256(f"{seed}:{i}")``, so iteration *i* of seed *s* always produces
the same module, mutation and call plan regardless of how many iterations
ran before it, whether a time-box cut the campaign short, or what Python's
global RNG state is.  The campaign digest folds every module hash and
canonical outcome into one SHA-256, so two runs with the same seed and
budget must report the same digest — the CI determinism gate.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.corpus import CorpusCase, expected_outcomes, save_case
from repro.fuzz.gen import GenConfig, GeneratorError, ModuleGen
from repro.fuzz.mutate import MutationCrash, classify_bytes, mutate_bytes
from repro.fuzz.oracle import DEFAULT_FUEL, differential
from repro.fuzz.shrink import shrink
from repro.wasm.traps import WasmError


@dataclass
class Failure:
    """One fuzz finding: a divergence, host crash, or generator bug."""

    iteration: int
    kind: str  # "divergence" | "crash" | "mutation-crash" | "generator-bug"
    detail: str
    module_sha: str
    corpus_path: str | None = None


@dataclass
class FuzzReport:
    """Outcome of one campaign; ``digest`` is the determinism fingerprint."""

    seed: int
    budget: int
    executed: int = 0
    generated: int = 0
    mutated: int = 0
    seeded: int = 0
    class_counts: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    digest: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "executed": self.executed,
            "generated": self.generated,
            "mutated": self.mutated,
            "seeded": self.seeded,
            "class_counts": dict(sorted(self.class_counts.items())),
            "failures": [
                {
                    "iteration": f.iteration,
                    "kind": f.kind,
                    "detail": f.detail,
                    "module_sha": f.module_sha,
                    "corpus_path": f.corpus_path,
                }
                for f in self.failures
            ],
            "digest": self.digest,
            "elapsed": round(self.elapsed, 3),
            "ok": self.ok,
        }


def _iteration_rng(seed: int, i: int) -> random.Random:
    material = hashlib.sha256(f"{seed}:{i}".encode()).digest()
    return random.Random(int.from_bytes(material[:8], "big"))


def _write_reproducer(
    corpus_dir: str | None, case: CorpusCase, seed: int, i: int
) -> str | None:
    if corpus_dir is None:
        return None
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz-seed{seed}-i{i}.json"
    save_case(path, case)
    return str(path)


def run_campaign(
    seed: int,
    budget: int,
    *,
    mutate_ratio: float = 0.3,
    fuel: int = DEFAULT_FUEL,
    time_box: float | None = None,
    corpus_dir: str | None = None,
    do_shrink: bool = True,
    config: GenConfig | None = None,
    seed_modules: list[bytes] | None = None,
) -> FuzzReport:
    """Run ``budget`` seeded iterations (or until ``time_box`` seconds pass).

    A ``mutate_ratio`` fraction of iterations corrupt the generated module
    and classify it (decoder/validator robustness); the rest run the full
    differential oracle.  Failing cases are shrunk and written as corpus
    reproducers when ``corpus_dir`` is given.  Never raises on findings —
    they land in :attr:`FuzzReport.failures`.

    ``seed_modules`` (e.g. the plugin binaries of a recorded replay
    corpus, ``repro fuzz --seed-corpus``) biases half of the mutation
    iterations to corrupt a *real* module instead of a generated one -
    realistic section layouts, import-heavy preambles and scheduler
    control flow that the generator does not produce.  Determinism is
    preserved: the pick is driven by the per-iteration RNG over the
    caller-sorted list, and every mutant's sha still folds into the
    campaign digest (a different seed list is a different campaign).
    """
    report = FuzzReport(seed=seed, budget=budget)
    digest = hashlib.sha256()
    started = time.monotonic()
    deadline = started + time_box if time_box is not None else None

    for i in range(budget):
        if deadline is not None and time.monotonic() >= deadline:
            break
        report.executed += 1
        rng = _iteration_rng(seed, i)
        try:
            generated = ModuleGen(rng, config).generate()
        except GeneratorError as exc:
            digest.update(f"{i}:genbug".encode())
            report.failures.append(
                Failure(i, "generator-bug", str(exc), module_sha="")
            )
            continue
        module_sha = hashlib.sha256(generated.wasm).hexdigest()

        if rng.random() < mutate_ratio:
            report.mutated += 1
            base = generated.wasm
            if seed_modules and rng.random() < 0.5:
                base = seed_modules[rng.randrange(len(seed_modules))]
                report.seeded += 1
            mutant = mutate_bytes(rng, base)
            mutant_sha = hashlib.sha256(mutant).hexdigest()
            try:
                verdict = classify_bytes(mutant)
            except MutationCrash as exc:
                digest.update(f"{i}:mut:{mutant_sha}:crash".encode())
                case = CorpusCase(
                    name=f"fuzz-seed{seed}-i{i}",
                    wasm=mutant,
                    mode="classify",
                    note=f"mutation crash: {exc}",
                    fuel=fuel,
                )
                path = _write_reproducer(corpus_dir, case, seed, i)
                report.failures.append(
                    Failure(i, "mutation-crash", str(exc), mutant_sha, path)
                )
                continue
            report.class_counts[verdict] = report.class_counts.get(verdict, 0) + 1
            digest.update(f"{i}:mut:{mutant_sha}:{verdict}".encode())
            if verdict == "diverged":
                report.failures.append(
                    Failure(
                        i,
                        "divergence",
                        "mutated-but-valid module diverged between engines",
                        mutant_sha,
                        _write_reproducer(
                            corpus_dir,
                            CorpusCase(
                                name=f"fuzz-seed{seed}-i{i}",
                                wasm=mutant,
                                mode="classify",
                                note="engine divergence on mutated module",
                                fuel=fuel,
                            ),
                            seed,
                            i,
                        ),
                    )
                )
            continue

        report.generated += 1
        try:
            result = differential(generated.wasm, generated.calls, fuel=fuel)
        except Exception as exc:  # noqa: BLE001 - host crash on a valid module
            digest.update(f"{i}:gen:{module_sha}:crash".encode())
            case = CorpusCase(
                name=f"fuzz-seed{seed}-i{i}",
                wasm=generated.wasm,
                calls=generated.calls,
                mode="classify",
                note=f"host crash on generated module: "
                f"{type(exc).__name__}: {exc}",
                fuel=fuel,
            )
            path = _write_reproducer(corpus_dir, case, seed, i)
            report.failures.append(
                Failure(
                    i,
                    "crash",
                    f"{type(exc).__name__}: {exc}",
                    module_sha,
                    path,
                )
            )
            continue

        digest.update(f"{i}:gen:{module_sha}:".encode())
        digest.update(result.digest_material.encode())
        if result.ok:
            continue

        # a real divergence: shrink it, save it, record it
        wasm, calls = generated.wasm, generated.calls
        if do_shrink:

            def still_diverges(candidate_wasm, candidate_calls):
                try:
                    return not differential(
                        candidate_wasm, candidate_calls, fuel=fuel
                    ).ok
                except WasmError:
                    return False

            wasm, calls = shrink(wasm, calls, still_diverges)
        try:
            expect = expected_outcomes(wasm, calls, fuel=fuel)
        except WasmError:
            expect = []
        case = CorpusCase(
            name=f"fuzz-seed{seed}-i{i}",
            wasm=wasm,
            calls=calls,
            expect=expect,
            fuel=fuel,
            note=f"engine divergence: {result.reason}",
        )
        path = _write_reproducer(corpus_dir, case, seed, i)
        report.failures.append(
            Failure(i, "divergence", result.reason or "", module_sha, path)
        )

    report.digest = digest.hexdigest()
    report.elapsed = time.monotonic() - started
    return report
