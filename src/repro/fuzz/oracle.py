"""The differential conformance oracle.

Every fuzz case runs through a three-way engine differential whose legs
must agree observation-for-observation:

1. the **legacy** engine, full call plan;
2. the **threaded** engine, full call plan;
3. the **aot** engine (generated-Python tier), full call plan;
4. **checkpoint/restore**: the threaded and aot runs capture
   :class:`~repro.wasm.instance.InstanceState` mid-plan; fresh instances
   restore it and re-run the tail — the tail outcomes must match the
   uninterrupted run;
5. **cross-engine restore**: snapshots cross the engine boundary in both
   directions along the ladder (legacy→threaded, threaded→legacy,
   aot→threaded, legacy→aot) and the tail is re-run.

Compared per call: result value (bit-exact for floats), trap code, fuel
consumed, and :class:`~repro.wasm.interpreter.ExecStats`.  Compared at the
checkpoint and at the end: a canonical hash of linear memory plus every
mutable global.  Anything short of equality is a :class:`DiffResult` with
``ok=False``; any non-:class:`~repro.wasm.traps.WasmError` exception is a
host crash and propagates to the campaign runner as a finding.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.wasm.decoder import decode_module
from repro.wasm.instance import Instance, InstanceState, Store
from repro.wasm.interpreter import ExecStats
from repro.wasm.traps import Trap, WasmError

#: a call plan: ``(export_name, args)`` pairs executed in order
CallPlan = list[tuple[str, tuple]]

#: default per-call instruction budget — enough for every generated body,
#: small enough that runaway call_indirect recursion traps quickly
DEFAULT_FUEL = 25_000


def canon_value(value) -> object:
    """Hashable canonical form of one call result.

    Floats are canonicalized to their IEEE-754 double bit pattern so that
    NaN payloads and signed zeros compare deterministically; ints stay
    ints (``Instance.call`` already returns the signed interpretation).
    """
    if value is None:
        return "void"
    if isinstance(value, float):
        return ("f", struct.pack("<d", value).hex())
    return ("i", value)


def canon_state(state: InstanceState) -> tuple:
    """Canonical form of a snapshot: memory digest + mutable global values."""
    mem = hashlib.sha256(state.memory).hexdigest()
    return (mem, tuple((i, canon_value(v)) for i, v in state.globals))


def _call_outcome(instance: Instance, name: str, args: tuple, fuel: int) -> tuple:
    """One canonical outcome tuple: kind, payload, fuel used, exec stats."""
    stats = ExecStats()
    instance.store.stats = stats
    try:
        value = instance.call(name, *args, fuel=fuel)
        kind, payload = "ok", canon_value(value)
    except Trap as trap:
        kind, payload = "trap", trap.code
    finally:
        instance.store.stats = None
    left = instance.store.fuel if instance.store.fuel is not None else fuel
    return (
        kind,
        payload,
        fuel - left,
        stats.frames,
        stats.max_call_depth,
        stats.max_value_stack,
    )


@dataclass
class Trace:
    """One leg's observations: per-call outcomes plus state snapshots."""

    engine: str
    outcomes: list[tuple] = field(default_factory=list)
    checkpoint: InstanceState | None = None
    final: tuple | None = None  # canon_state at end of plan
    #: set instead of outcomes when instantiation itself failed
    instantiate_error: str | None = None


def run_trace(
    wasm: bytes,
    calls: CallPlan,
    engine: str,
    fuel: int = DEFAULT_FUEL,
    capture_at: int | None = None,
    restore_from: InstanceState | None = None,
) -> Trace:
    """Decode, instantiate and run a call plan under one engine.

    ``capture_at=k`` snapshots state just before call ``k``;
    ``restore_from`` writes a snapshot into the fresh instance before any
    calls (the restore-and-replay leg).  Instantiation failures are
    recorded, not raised — every engine must fail identically.
    """
    trace = Trace(engine=engine)
    module = decode_module(wasm)
    try:
        instance = Instance(module, store=Store(), engine=engine)
    except WasmError as exc:
        trace.instantiate_error = f"{type(exc).__name__}: {exc}"
        return trace
    if restore_from is not None:
        instance.restore_state(restore_from)
    for i, (name, args) in enumerate(calls):
        if capture_at is not None and i == capture_at:
            trace.checkpoint = instance.capture_state()
        trace.outcomes.append(_call_outcome(instance, name, args, fuel))
    trace.final = canon_state(instance.capture_state())
    return trace


@dataclass
class DiffResult:
    """Verdict of one differential run."""

    ok: bool
    reason: str | None
    legs: dict[str, Trace]
    calls: CallPlan
    fuel: int

    @property
    def digest_material(self) -> str:
        """Deterministic text folded into the campaign digest."""
        ref = self.legs.get("legacy")
        if ref is None:
            return "no-legs"
        if ref.instantiate_error is not None:
            return f"instantiate:{ref.instantiate_error}"
        return repr(ref.outcomes) + repr(ref.final)


def differential(wasm: bytes, calls: CallPlan, fuel: int = DEFAULT_FUEL) -> DiffResult:
    """Run every oracle leg; return the first divergence found (if any)."""
    split = len(calls) // 2
    legs: dict[str, Trace] = {}

    def fail(reason: str) -> DiffResult:
        return DiffResult(False, reason, legs, calls, fuel)

    legacy = run_trace(wasm, calls, "legacy", fuel, capture_at=split)
    threaded = run_trace(wasm, calls, "threaded", fuel, capture_at=split)
    aot = run_trace(wasm, calls, "aot", fuel, capture_at=split)
    legs["legacy"] = legacy
    legs["threaded"] = threaded
    legs["aot"] = aot

    # -- legs 1-3: full-plan agreement (legacy is the reference) -------------
    if legacy.instantiate_error or threaded.instantiate_error or aot.instantiate_error:
        if (
            legacy.instantiate_error != threaded.instantiate_error
            or legacy.instantiate_error != aot.instantiate_error
        ):
            return fail(
                "instantiation divergence: legacy="
                f"{legacy.instantiate_error!r} threaded="
                f"{threaded.instantiate_error!r} aot="
                f"{aot.instantiate_error!r}"
            )
        return DiffResult(True, None, legs, calls, fuel)
    for other in (threaded, aot):
        for i, (a, b) in enumerate(zip(legacy.outcomes, other.outcomes)):
            if a != b:
                return fail(
                    f"call {i} ({calls[i][0]}): legacy={a} {other.engine}={b}"
                )
        if legacy.final != other.final:
            return fail(
                f"final state divergence: legacy={legacy.final} "
                f"{other.engine}={other.final}"
            )
        if (legacy.checkpoint is None) != (other.checkpoint is None):
            return fail("checkpoint taken in one engine only")
        if legacy.checkpoint is not None and canon_state(
            legacy.checkpoint
        ) != canon_state(other.checkpoint):
            return fail(
                f"checkpoint state divergence at call {split}: "
                f"legacy={canon_state(legacy.checkpoint)} "
                f"{other.engine}={canon_state(other.checkpoint)}"
            )

    # -- restore-and-replay the tail, incl. cross-engine hops ----------------
    if legacy.checkpoint is not None:
        tail = calls[split:]
        expected = threaded.outcomes[split:]
        for leg_name, engine, snapshot in (
            ("restore-threaded", "threaded", threaded.checkpoint),
            ("restore-cross", "threaded", legacy.checkpoint),
            ("restore-legacy", "legacy", threaded.checkpoint),
            ("restore-aot", "aot", aot.checkpoint),
            ("restore-aot-to-threaded", "threaded", aot.checkpoint),
            ("restore-legacy-to-aot", "aot", legacy.checkpoint),
        ):
            replay = run_trace(wasm, tail, engine, fuel, restore_from=snapshot)
            legs[leg_name] = replay
            if replay.instantiate_error is not None:
                return fail(f"{leg_name}: {replay.instantiate_error}")
            for i, (a, b) in enumerate(zip(expected, replay.outcomes)):
                if a != b:
                    return fail(
                        f"{leg_name} call {split + i} ({tail[i][0]}): "
                        f"continuous={a} replayed={b}"
                    )
            if replay.final != threaded.final:
                return fail(
                    f"{leg_name} final state: continuous={threaded.final} "
                    f"replayed={replay.final}"
                )

    return DiffResult(True, None, legs, calls, fuel)
