"""Reproducer minimization.

Given a failing fuzz case (module bytes + call plan) and a predicate that
re-checks the failure, shrink both dimensions while the predicate stays
true:

1. drop calls from the plan (greedy one-at-a-time);
2. simplify the module — replace whole function bodies with a trivial
   body, drop data/element segments and globals, and delete instruction
   windows of shrinking size.

Every module candidate is re-validated before the predicate runs, so the
shrinker only ever proposes *valid* modules (for divergence findings the
failure is about execution, not decoding).  The total number of predicate
evaluations is budgeted — shrinking is best-effort, never the long pole
of a campaign.
"""

from __future__ import annotations

from repro.fuzz.oracle import CallPlan
from repro.wasm import opcodes as op
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.module import Code, Module
from repro.wasm.validator import validate_module
from repro.wasm.wtypes import ValType

_TRIVIAL_RESULT = {
    ValType.I32: (op.I32_CONST, 0),
    ValType.I64: (op.I64_CONST, 0),
    ValType.F32: (op.F32_CONST, 0.0),
    ValType.F64: (op.F64_CONST, 0.0),
}


def _trivial_body(module: Module, type_index: int) -> tuple:
    results = module.types[type_index].results
    body = tuple(_TRIVIAL_RESULT[t] for t in results)
    return body + ((op.END, None),)


def _clone(module: Module) -> Module:
    return Module(
        types=list(module.types),
        imports=list(module.imports),
        funcs=list(module.funcs),
        tables=list(module.tables),
        mems=list(module.mems),
        globals=list(module.globals),
        exports=list(module.exports),
        start=module.start,
        elems=list(module.elems),
        codes=list(module.codes),
        datas=list(module.datas),
    )


def _encode_if_valid(module: Module) -> bytes | None:
    try:
        validate_module(module)
    except Exception:  # noqa: BLE001 - invalid candidate, skip it
        return None
    return encode_module(module)


def shrink(
    wasm: bytes,
    calls: CallPlan,
    still_fails,
    max_checks: int = 400,
) -> tuple[bytes, CallPlan]:
    """Minimize ``(wasm, calls)`` under ``still_fails(wasm, calls) -> bool``.

    Returns the smallest failing pair found within the evaluation budget.
    The input pair is assumed to fail; if the predicate is flaky the
    original pair is returned unchanged.
    """
    checks = [0]

    def fails(candidate_wasm: bytes, candidate_calls: CallPlan) -> bool:
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        try:
            return bool(still_fails(candidate_wasm, candidate_calls))
        except Exception:  # noqa: BLE001 - crash findings also count
            return True

    if not fails(wasm, calls):
        return wasm, calls

    # -- 1: drop calls -------------------------------------------------------
    i = 0
    while i < len(calls) and len(calls) > 1:
        candidate = calls[:i] + calls[i + 1 :]
        if fails(wasm, candidate):
            calls = candidate
        else:
            i += 1

    # -- 2: simplify the module ---------------------------------------------
    module = decode_module(wasm)

    # 2a: trivialize whole function bodies
    for fi in range(len(module.codes)):
        candidate = _clone(module)
        candidate.codes[fi] = Code(
            (), _trivial_body(module, module.funcs[fi])
        )
        enc = _encode_if_valid(candidate)
        if enc is not None and fails(enc, calls):
            module, wasm = candidate, enc

    # 2b: drop data segments, element segments + table, and globals
    for strip in ("datas", "elems", "globals"):
        candidate = _clone(module)
        setattr(candidate, strip, [])
        if strip == "elems":
            candidate.tables = []
        enc = _encode_if_valid(candidate)
        if enc is not None and fails(enc, calls):
            module, wasm = candidate, enc

    # 2c: delete instruction windows (largest first), re-validating each
    for window in (16, 8, 4, 2, 1):
        for fi in range(len(module.codes)):
            start = 0
            while start < len(module.codes[fi].body) - 1:
                body = module.codes[fi].body
                if start + window >= len(body):  # never delete the final end
                    break
                candidate = _clone(module)
                candidate.codes[fi] = Code(
                    module.codes[fi].locals,
                    body[:start] + body[start + window :],
                )
                enc = _encode_if_valid(candidate)
                if enc is not None and fails(enc, calls):
                    module, wasm = candidate, enc
                else:
                    start += 1
                if checks[0] >= max_checks:
                    return wasm, calls

    return wasm, calls
