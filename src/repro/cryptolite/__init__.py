"""Educational from-scratch crypto for communication-plugin payloads.

The paper (§4B) names AES and RSA as encryption choices for the
operator-customised RIC <-> E2-node wire protocol.  This package implements
both from first principles so the encryption code path can run offline:

- :mod:`repro.cryptolite.aes` - AES-128 per FIPS-197, with ECB and CTR
  modes (CTR is what the communication plugins use);
- :mod:`repro.cryptolite.rsa` - textbook RSA keygen/encrypt/decrypt over
  Python big integers, plus a tiny PKCS#1-v1.5-style random padder.

**Not for production**: pure-Python, non-constant-time, and textbook RSA
has no OAEP.  Within this reproduction they exist to exercise the same
code path the paper describes (encrypting E2 payloads inside plugins).
"""

from repro.cryptolite.aes import AesCtr, aes128_decrypt_block, aes128_encrypt_block
from repro.cryptolite.rsa import RsaKeyPair, generate_keypair

__all__ = [
    "aes128_encrypt_block",
    "aes128_decrypt_block",
    "AesCtr",
    "RsaKeyPair",
    "generate_keypair",
]
