"""Textbook RSA over Python big integers.

Key generation uses Miller-Rabin probable primes from a seedable PRNG (so
tests are deterministic).  Encryption pads with a PKCS#1-v1.5-style random
non-zero filler.  Educational grade: no OAEP, not constant-time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_E = 65537

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if candidate % _E == 1:
            continue  # gcd(e, p-1) must be 1; cheap pre-filter
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass
class RsaKeyPair:
    """An RSA key pair: modulus n, public exponent e, private exponent d."""

    n: int
    e: int
    d: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # ----- raw bigint operations -------------------------------------------

    def encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("message integer out of range")
        return pow(m, self.e, self.n)

    def decrypt_int(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext integer out of range")
        return pow(c, self.d, self.n)

    # ----- byte-level with simple v1.5-style padding -------------------------

    def encrypt(self, message: bytes, rng: random.Random | None = None) -> bytes:
        """Encrypt up to ``byte_length - 11`` bytes with random padding."""
        rng = rng or random.Random()
        k = self.byte_length
        if len(message) > k - 11:
            raise ValueError(f"message too long ({len(message)} > {k - 11})")
        pad_len = k - 3 - len(message)
        padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
        block = b"\x00\x02" + padding + b"\x00" + message
        return self.encrypt_int(int.from_bytes(block, "big")).to_bytes(k, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        k = self.byte_length
        if len(ciphertext) != k:
            raise ValueError("ciphertext length mismatch")
        block = self.decrypt_int(int.from_bytes(ciphertext, "big")).to_bytes(k, "big")
        if block[0:2] != b"\x00\x02":
            raise ValueError("bad padding header")
        try:
            sep = block.index(0, 2)
        except ValueError:
            raise ValueError("bad padding: no separator") from None
        return block[sep + 1 :]

    # ----- signatures (sign with d, verify with e) -----------------------------

    def sign_digest(self, digest: bytes) -> bytes:
        k = self.byte_length
        if len(digest) > k - 1:
            raise ValueError("digest too long")
        return self.decrypt_int(int.from_bytes(digest, "big")).to_bytes(k, "big")

    def verify_digest(self, digest: bytes, signature: bytes) -> bool:
        recovered = self.encrypt_int(int.from_bytes(signature, "big"))
        return recovered == int.from_bytes(digest, "big")


def generate_keypair(bits: int = 1024, seed: int | None = None) -> RsaKeyPair:
    """Generate an RSA key pair with an ``bits``-bit modulus."""
    if bits < 128:
        raise ValueError("modulus too small to be meaningful")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(_E, -1, phi)
        except ValueError:
            continue
        if n.bit_length() >= bits - 1:
            return RsaKeyPair(n=n, e=_E, d=d)
