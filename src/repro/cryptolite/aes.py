"""AES-128 per FIPS-197, pure Python.

Implements the forward and inverse cipher over 16-byte blocks, plus a CTR
mode stream wrapper.  The S-box is generated from the algebraic definition
(multiplicative inverse in GF(2^8) followed by the affine map) rather than
pasted as a magic table, and the test suite pins the FIPS-197 Appendix C
known-answer vectors.
"""

from __future__ import annotations

_NB = 4  # columns per state
_NK = 4  # key words (AES-128)
_NR = 10  # rounds (AES-128)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # multiplicative inverses via exponentiation (a^254 = a^-1 in GF(2^8))
    def inverse(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        power = a
        exponent = 254
        while exponent:
            if exponent & 1:
                result = _gmul(result, power)
            power = _gmul(power, power)
            exponent >>= 1
        return result

    sbox = bytearray(256)
    for value in range(256):
        inv = inverse(value)
        # affine transformation: b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63
        b = inv
        x = inv
        for _ in range(4):
            x = ((x << 1) | (x >> 7)) & 0xFF
            b ^= x
        sbox[value] = b ^ 0x63
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _expand_key(key: bytes) -> list[list[int]]:
    """Key expansion: 16-byte key -> (NR+1) round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(_NK)]
    for i in range(_NK, _NB * (_NR + 1)):
        temp = list(words[i - 1])
        if i % _NK == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [_SBOX[b] for b in temp]  # SubWord
            temp[0] ^= _RCON[i // _NK - 1]
        words.append([words[i - _NK][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(_NR + 1):
        rk = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def _add_round_key(state: list[int], rk: list[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


def _sub_bytes(state: list[int], box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


# state layout: column-major, state[r + 4c] is row r column c


def _shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _inv_shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[-r:] + row[:-r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
        state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = (
            _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
        )
        state[4 * c + 1] = (
            _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
        )
        state[4 * c + 2] = (
            _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
        )
        state[4 * c + 3] = (
            _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)
        )


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block."""
    if len(block) != 16:
        raise ValueError("block must be 16 bytes")
    round_keys = _expand_key(key)
    state = list(block)
    _add_round_key(state, round_keys[0])
    for r in range(1, _NR):
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[r])
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[_NR])
    return bytes(state)


def aes128_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 16-byte block."""
    if len(block) != 16:
        raise ValueError("block must be 16 bytes")
    round_keys = _expand_key(key)
    state = list(block)
    _add_round_key(state, round_keys[_NR])
    for r in range(_NR - 1, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[r])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


class AesCtr:
    """AES-128 in counter mode: a symmetric stream over arbitrary lengths.

    Encryption and decryption are the same operation; the 16-byte block
    counter starts from ``nonce || counter`` with a 64-bit big-endian
    counter in the low half.
    """

    def __init__(self, key: bytes, nonce: bytes):
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes")
        self._round_keys_key = bytes(key)
        self.nonce = bytes(nonce)

    def process(self, data: bytes, initial_counter: int = 0) -> bytes:
        out = bytearray()
        counter = initial_counter
        for start in range(0, len(data), 16):
            counter_block = self.nonce + counter.to_bytes(8, "big")
            keystream = aes128_encrypt_block(self._round_keys_key, counter_block)
            chunk = data[start : start + 16]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
            counter += 1
        return bytes(out)

    encrypt = process
    decrypt = process
