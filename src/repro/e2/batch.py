"""Batched E2 uplink: many indications, one frame.

A cluster worker hosts several cells, each with its own
:class:`~repro.e2.node.E2NodeAgent`.  Instead of one transport frame per
KPM indication, every cell's agent writes into one shared
:class:`~repro.netio.batching.BatchSender`; the worker flushes it every
few slots, so the coordinator receives a handful of coalesced frames per
flush interval regardless of how many cells the worker runs.

Each batch entry carries its originating node so the coordinator can
demultiplex the frame back into per-node messages for the RIC::

    u16 node_len | node (utf-8) | vendor-encoded message payload

The entry rides inside the generic ``WBAT`` batch format of
:mod:`repro.netio.batching`.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.e2 import messages
from repro.e2.vendors import VendorProfile
from repro.netio.batching import BatchSender, unpack_batch


class E2BatchError(ValueError):
    """Malformed batched-uplink entry."""


def encode_batch_entry(node: str, payload: bytes) -> bytes:
    """Prefix a vendor-encoded message with its originating node id."""
    raw = node.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise E2BatchError("node id too long")
    return struct.pack("<H", len(raw)) + raw + payload


def decode_batch_entry(entry: bytes) -> tuple[str, bytes]:
    """Split one batch entry back into ``(node, payload)``."""
    if len(entry) < 2:
        raise E2BatchError("short batch entry")
    (node_len,) = struct.unpack_from("<H", entry, 0)
    if 2 + node_len > len(entry):
        raise E2BatchError("node id overruns entry")
    node = entry[2 : 2 + node_len].decode("utf-8")
    return node, entry[2 + node_len :]


def iter_batch_frame(frame: bytes) -> Iterator[tuple[str, bytes]]:
    """Yield every ``(node, payload)`` in one received batch frame."""
    for entry in unpack_batch(frame):
        yield decode_batch_entry(entry)


class BatchedUplinkChannel:
    """The worker-side channel an :class:`E2NodeAgent` sends through.

    Implements the ``send``/``poll`` surface of
    :class:`~repro.e2.comm.CommChannel`, but ``send`` *enqueues* the
    vendor-encoded message into the shared :class:`BatchSender` instead of
    hitting the transport - the worker decides when to flush.  Refused
    enqueues (backpressure) are counted per channel, so the operator can
    see exactly which cell's telemetry was shed.

    The uplink is one-directional by design (shared-nothing workers);
    ``poll`` always returns nothing.
    """

    def __init__(self, source: str, profile: VendorProfile, sender: BatchSender):
        self.source = source
        self.profile = profile
        self.sender = sender
        self.sent = 0
        self.dropped = 0
        self.decode_failures = 0  # CommChannel surface; nothing inbound

    @property
    def name(self) -> str:
        return self.source

    def send(self, dest: str, message: dict[str, Any]) -> None:
        messages.validate_message(message)
        entry = encode_batch_entry(self.source, self.profile.encode(message))
        if self.sender.offer(entry):
            self.sent += 1
        else:
            self.dropped += 1

    def poll(self, timeout: float | None = 0.0) -> list[tuple[str, dict[str, Any]]]:
        return []
