"""Batched E2 uplink: many indications, one frame.

A cluster worker hosts several cells, each with its own
:class:`~repro.e2.node.E2NodeAgent`.  Instead of one transport frame per
KPM indication, every cell's agent writes into one shared
:class:`~repro.netio.batching.BatchSender`; the worker flushes it every
few slots, so the coordinator receives a handful of coalesced frames per
flush interval regardless of how many cells the worker runs.

Each batch entry carries its originating node so the coordinator can
demultiplex the frame back into per-node messages for the RIC.  Two
entry layouts exist, and the *frame magic* of the containing batch is
authoritative for which one is in use (no payload sniffing - vendor
payloads may be encrypted bytes that could mimic any marker)::

    v1 (inside 'WBAT' frames):
        u16 node_len | node (utf-8) | vendor-encoded payload
    v2 (inside 'WBT2' frames):
        u16 node_len | node (utf-8) | u8 flags
        | [16-byte trace context if flags & 1] | payload

v2 exists for distributed tracing: the producing slot span's
:class:`~repro.obs.tracing.TraceContext` rides *per entry* (on top of
the per-frame context in the ``WBT2`` batch header), so indications
batched across several slots still attribute to the exact slot that
produced them.  Traced entries only ever travel in traced frames - both
the channel below and :class:`~repro.netio.batching.BatchSender` key off
the same process-wide tracer-enabled flag - and untraced runs put bytes
on the wire identical to before this format existed.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.e2 import messages
from repro.e2.vendors import VendorProfile
from repro.netio.batching import BatchSender, is_traced_batch, unpack_batch
from repro.obs import OBS
from repro.obs.tracing import TraceContext

_FLAG_TRACE = 0x01


class E2BatchError(ValueError):
    """Malformed batched-uplink entry."""


def encode_batch_entry(
    node: str,
    payload: bytes,
    ctx: TraceContext | None = None,
    traced: bool = False,
) -> bytes:
    """Prefix a vendor-encoded message with its originating node id.

    ``traced`` (implied by a non-``None`` ``ctx``) selects the v2 layout;
    the caller must then ship the entry in a traced (``WBT2``) frame.
    """
    raw = node.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise E2BatchError("node id too long")
    head = struct.pack("<H", len(raw)) + raw
    if ctx is not None:
        return head + bytes((_FLAG_TRACE,)) + ctx.pack() + payload
    if traced:
        return head + b"\x00" + payload
    return head + payload


def decode_batch_entry_ex(
    entry: bytes, traced: bool = False
) -> tuple[str, bytes, TraceContext | None]:
    """Split one batch entry into ``(node, payload, trace-context)``.

    ``traced`` says which layout the entry uses - pass the containing
    frame's :func:`~repro.netio.batching.is_traced_batch`.
    """
    if len(entry) < 2:
        raise E2BatchError("short batch entry")
    (node_len,) = struct.unpack_from("<H", entry, 0)
    if 2 + node_len > len(entry):
        raise E2BatchError("node id overruns entry")
    node = entry[2 : 2 + node_len].decode("utf-8")
    rest = entry[2 + node_len :]
    if not traced:
        return node, rest, None
    if not rest:
        raise E2BatchError("traced entry missing flags byte")
    flags, rest = rest[0], rest[1:]
    ctx = None
    if flags & _FLAG_TRACE:
        if len(rest) < TraceContext.WIRE_LEN:
            raise E2BatchError("entry trace context truncated")
        ctx = TraceContext.unpack(rest[: TraceContext.WIRE_LEN])
        rest = rest[TraceContext.WIRE_LEN :]
    return node, rest, ctx


def decode_batch_entry(entry: bytes, traced: bool = False) -> tuple[str, bytes]:
    """Split one batch entry back into ``(node, payload)``."""
    node, payload, _ctx = decode_batch_entry_ex(entry, traced=traced)
    return node, payload


def iter_batch_frame(frame: bytes) -> Iterator[tuple[str, bytes]]:
    """Yield every ``(node, payload)`` in one received batch frame."""
    traced = is_traced_batch(frame)
    for entry in unpack_batch(frame):
        yield decode_batch_entry(entry, traced=traced)


def iter_batch_frame_ex(
    frame: bytes,
) -> Iterator[tuple[str, bytes, TraceContext | None]]:
    """Yield every ``(node, payload, trace-context)`` in one batch frame."""
    traced = is_traced_batch(frame)
    for entry in unpack_batch(frame):
        yield decode_batch_entry_ex(entry, traced=traced)


class BatchedUplinkChannel:
    """The worker-side channel an :class:`E2NodeAgent` sends through.

    Implements the ``send``/``poll`` surface of
    :class:`~repro.e2.comm.CommChannel`, but ``send`` *enqueues* the
    vendor-encoded message into the shared :class:`BatchSender` instead of
    hitting the transport - the worker decides when to flush.  Refused
    enqueues (backpressure) are counted per channel, so the operator can
    see exactly which cell's telemetry was shed.

    When tracing is live, the vendor encode is timed as an ``e2.encode``
    span and the active slot span's context is stamped into the entry, so
    the coordinator can attribute each indication to its producing slot.

    The uplink is one-directional by design (shared-nothing workers);
    ``poll`` always returns nothing.
    """

    def __init__(self, source: str, profile: VendorProfile, sender: BatchSender):
        self.source = source
        self.profile = profile
        self.sender = sender
        self.sent = 0
        self.dropped = 0
        self.decode_failures = 0  # CommChannel surface; nothing inbound

    @property
    def name(self) -> str:
        return self.source

    def send(self, dest: str, message: dict[str, Any]) -> None:
        messages.validate_message(message)
        tracer = OBS.tracer
        if tracer.enabled:
            with tracer.span("e2.encode", node=self.source):
                payload = self.profile.encode(message)
            entry = encode_batch_entry(
                self.source, payload, ctx=tracer.current(), traced=True
            )
        else:
            entry = encode_batch_entry(self.source, self.profile.encode(message))
        if self.sender.offer(entry):
            self.sent += 1
        else:
            self.dropped += 1

    def poll(self, timeout: float | None = 0.0) -> list[tuple[str, dict[str, Any]]]:
        return []
