"""Vendor profiles: each vendor's wire-level dialect.

A profile fixes three things the O-RAN spec leaves open (and which
therefore break multivendor deployments): the payload codec, optional
payload encryption, and the bit width of quantized control fields such as
transmit power.  ``VENDOR_A`` and ``VENDOR_B`` are deliberately
incompatible in all three, reproducing the paper's integration problem;
the system integrator's Wasm adapter (:mod:`repro.e2.comm`) bridges them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.codecs import Codec, JsonCodec, PbField, PbMessage, PbWireCodec
from repro.codecs.base import CodecError
from repro.cryptolite import AesCtr

_UE_REPORT = PbMessage(
    "UeReport",
    [
        PbField(1, "ue_id", "int64"),
        PbField(2, "slice_id", "int64"),
        PbField(3, "cqi", "int64"),
        PbField(4, "neighbor_cell", "int64"),
        PbField(5, "neighbor_cqi", "int64"),
        PbField(6, "avg_tput_bps", "double"),
        PbField(7, "buffer_bytes", "int64"),
    ],
)

_SLICE_REPORT = PbMessage(
    "SliceReport",
    [
        PbField(1, "slice_id", "int64"),
        PbField(2, "measured_bps", "double"),
        PbField(3, "target_bps", "double"),
    ],
)

#: one flat schema covering every E2-lite message type (proto3 style:
#: absent fields are simply omitted on the wire)
E2_PB_SCHEMA = PbMessage(
    "E2Message",
    [
        PbField(1, "msg", "string"),
        PbField(2, "node_id", "string"),
        PbField(3, "served_slices", "int64", repeated=True),
        PbField(4, "service_models", "string", repeated=True),
        PbField(5, "subscription_id", "int64"),
        PbField(6, "service_model", "string"),
        PbField(7, "period_slots", "int64"),
        PbField(8, "accepted", "bool"),
        PbField(9, "slot", "int64"),
        PbField(10, "ue_reports", "message", repeated=True, message=_UE_REPORT),
        PbField(11, "slice_reports", "message", repeated=True, message=_SLICE_REPORT),
        PbField(12, "request_id", "int64"),
        PbField(13, "action", "string"),
        PbField(14, "target", "int64"),
        PbField(15, "value", "int64"),
        PbField(16, "success", "bool"),
        PbField(17, "detail", "string"),
    ],
)


@dataclass
class VendorProfile:
    """One vendor's E2 dialect: codec + encryption + field widths."""

    name: str
    codec: Codec
    power_bits: int = 8
    aes_key: bytes | None = None
    _nonce_counter: int = field(default=0, repr=False)

    @property
    def power_max(self) -> int:
        return (1 << self.power_bits) - 1

    def encode(self, message: dict[str, Any]) -> bytes:
        payload = self.codec.encode(message)
        if self.aes_key is not None:
            self._nonce_counter += 1
            nonce = self._nonce_counter.to_bytes(8, "big")
            payload = nonce + AesCtr(self.aes_key, nonce).encrypt(payload)
        return payload

    def decode(self, payload: bytes) -> dict[str, Any]:
        if self.aes_key is not None:
            if len(payload) < 8:
                raise CodecError("ciphertext too short for nonce")
            nonce, body = payload[:8], payload[8:]
            payload = AesCtr(self.aes_key, nonce).decrypt(body)
        return self.codec.decode(payload)


def vendor_a() -> VendorProfile:
    """Vendor A: plaintext JSON, 8-bit power fields."""
    return VendorProfile("vendorA", JsonCodec(), power_bits=8)


def vendor_b(aes_key: bytes | None = None) -> VendorProfile:
    """Vendor B: protobuf wire format, 12-bit power fields, optional AES."""
    return VendorProfile(
        "vendorB", PbWireCodec(E2_PB_SCHEMA), power_bits=12, aes_key=aes_key
    )


#: module-level convenience instances (stateless unless encrypted)
VENDOR_A = vendor_a()
VENDOR_B = vendor_b()
