"""E2AP-flavoured message schema.

Messages are plain dicts with a ``msg`` discriminator, built by the helper
constructors here and checked by :func:`validate_message`.  Serialization
is the vendor profile's business (:mod:`repro.e2.vendors`); these builders
define the *semantic* layer both sides must agree on.
"""

from __future__ import annotations

from typing import Any

MSG_SETUP_REQUEST = "e2_setup_request"
MSG_SETUP_RESPONSE = "e2_setup_response"
MSG_SUBSCRIPTION_REQUEST = "ric_subscription_request"
MSG_SUBSCRIPTION_RESPONSE = "ric_subscription_response"
MSG_INDICATION = "ric_indication"
MSG_CONTROL_REQUEST = "ric_control_request"
MSG_CONTROL_ACK = "ric_control_ack"

#: service model identifiers (KPM-like reporting, RC-like control)
SM_KPM = "kpm-lite"
SM_RC = "rc-lite"

#: control action names the RC-lite service model defines
ACTION_SET_SLICE_QUOTA = "set_slice_quota"
ACTION_SET_TX_POWER = "set_tx_power"
ACTION_HANDOVER = "handover"
ACTION_SET_CQI_TABLE = "set_cqi_table"

_ALL_TYPES = {
    MSG_SETUP_REQUEST,
    MSG_SETUP_RESPONSE,
    MSG_SUBSCRIPTION_REQUEST,
    MSG_SUBSCRIPTION_RESPONSE,
    MSG_INDICATION,
    MSG_CONTROL_REQUEST,
    MSG_CONTROL_ACK,
}

_ALL_ACTIONS = {
    ACTION_SET_SLICE_QUOTA,
    ACTION_SET_TX_POWER,
    ACTION_HANDOVER,
    ACTION_SET_CQI_TABLE,
}


class E2MessageError(ValueError):
    """Semantically invalid E2-lite message."""


def setup_request(node_id: str, served_slices: list[int]) -> dict[str, Any]:
    return {
        "msg": MSG_SETUP_REQUEST,
        "node_id": node_id,
        "served_slices": list(served_slices),
        "service_models": [SM_KPM, SM_RC],
    }


def setup_response(node_id: str, accepted: bool = True) -> dict[str, Any]:
    return {"msg": MSG_SETUP_RESPONSE, "node_id": node_id, "accepted": accepted}


def subscription_request(
    subscription_id: int, service_model: str = SM_KPM, period_slots: int = 100
) -> dict[str, Any]:
    if period_slots <= 0:
        raise E2MessageError("report period must be positive")
    return {
        "msg": MSG_SUBSCRIPTION_REQUEST,
        "subscription_id": subscription_id,
        "service_model": service_model,
        "period_slots": period_slots,
    }


def subscription_response(subscription_id: int, accepted: bool = True) -> dict[str, Any]:
    return {
        "msg": MSG_SUBSCRIPTION_RESPONSE,
        "subscription_id": subscription_id,
        "accepted": accepted,
    }


def indication(
    subscription_id: int,
    slot: int,
    ue_reports: list[dict[str, Any]],
    slice_reports: list[dict[str, Any]],
) -> dict[str, Any]:
    """A KPM-lite report.

    ``ue_reports`` entries: ue_id, slice_id, cqi, neighbor_cell,
    neighbor_cqi, avg_tput_bps, buffer_bytes.
    ``slice_reports`` entries: slice_id, measured_bps, target_bps.
    """
    return {
        "msg": MSG_INDICATION,
        "subscription_id": subscription_id,
        "slot": slot,
        "ue_reports": ue_reports,
        "slice_reports": slice_reports,
    }


def control_request(
    request_id: int, action: str, target: int, value: int
) -> dict[str, Any]:
    if action not in _ALL_ACTIONS:
        raise E2MessageError(f"unknown control action {action!r}")
    return {
        "msg": MSG_CONTROL_REQUEST,
        "request_id": request_id,
        "action": action,
        "target": target,
        "value": value,
    }


def control_ack(request_id: int, success: bool, detail: str = "") -> dict[str, Any]:
    return {
        "msg": MSG_CONTROL_ACK,
        "request_id": request_id,
        "success": success,
        "detail": detail,
    }


_REQUIRED_FIELDS = {
    MSG_SETUP_REQUEST: {"node_id", "served_slices", "service_models"},
    MSG_SETUP_RESPONSE: {"node_id", "accepted"},
    MSG_SUBSCRIPTION_REQUEST: {"subscription_id", "service_model", "period_slots"},
    MSG_SUBSCRIPTION_RESPONSE: {"subscription_id", "accepted"},
    MSG_INDICATION: {"subscription_id", "slot", "ue_reports", "slice_reports"},
    MSG_CONTROL_REQUEST: {"request_id", "action", "target", "value"},
    MSG_CONTROL_ACK: {"request_id", "success"},
}


def validate_message(message: dict[str, Any]) -> str:
    """Check the discriminator and required fields; returns the type."""
    msg_type = message.get("msg")
    if msg_type not in _ALL_TYPES:
        raise E2MessageError(f"unknown message type {msg_type!r}")
    missing = _REQUIRED_FIELDS[msg_type] - set(message)
    if missing:
        raise E2MessageError(f"{msg_type} missing fields {sorted(missing)}")
    if msg_type == MSG_CONTROL_REQUEST and message["action"] not in _ALL_ACTIONS:
        raise E2MessageError(f"unknown control action {message['action']!r}")
    return msg_type
