"""The E2-node agent embedded in a gNB.

Answers setup/subscription requests, streams KPM-lite indications on the
subscribed period, and executes RC-lite control actions through the
narrow set of gNB controls the host chooses to expose - the "host
functions which provide access to specific control processes" of §4B,
here at the E2-node level: slice quota changes, CQI table selection,
transmit power, and handover execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.supervisor import CircuitOpenError, Supervisor
from repro.e2 import messages
from repro.e2.comm import CommChannel
from repro.gnb.host import GnbHost
from repro.netio.bus import NetworkError
from repro.obs import OBS
from repro.sched.inter import TargetRateInterSlice


@dataclass
class _Subscription:
    subscription_id: int
    subscriber: str
    service_model: str
    period_slots: int
    last_report_slot: int = -1


class E2NodeAgent:
    """One gNB's E2 agent, speaking some vendor dialect over a channel."""

    def __init__(
        self,
        gnb: GnbHost,
        channel: CommChannel,
        node_id: str,
        supervisor: Supervisor | None = None,
    ):
        self.gnb = gnb
        self.channel = channel
        self.node_id = node_id
        #: optional supervisor: outbound sends (responses, acks, KPM
        #: indications) get retry+backoff and a per-RIC circuit breaker
        self.supervisor = supervisor
        self.sends_abandoned = 0
        self.subscriptions: dict[int, _Subscription] = {}
        self.tx_power: int | None = None
        self.cqi_table: int = 1
        self.controls_applied: list[dict[str, Any]] = []
        self._last_slice_bytes: dict[int, int] = {}

    def _send(self, dest: str, message: dict[str, Any]) -> bool:
        """Supervised send: a dead RIC link must not crash the node agent."""
        if self.supervisor is None:
            self.channel.send(dest, message)
            return True
        try:
            self.supervisor.call(
                f"ric:{dest}",
                self.channel.send,
                dest,
                message,
                retry_on=(NetworkError, OSError),
            )
            return True
        except (CircuitOpenError, NetworkError, OSError):
            self.sends_abandoned += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "waran_e2node_sends_abandoned_total",
                    "E2-node sends dropped after retries were exhausted or "
                    "the RIC breaker was open",
                ).inc(node=self.node_id, dest=dest)
            return False

    def local_subscribe(
        self,
        subscription_id: int,
        subscriber: str,
        period_slots: int,
        service_model: str = messages.SM_KPM,
    ) -> None:
        """Install a subscription without the wire handshake.

        Cluster shards are pre-subscribed by their spec: the coordinator
        knows every cell's reporting period up front, so the worker skips
        the setup/subscription round-trip (the uplink is one-directional)
        and starts streaming indications toward ``subscriber`` directly.
        """
        if period_slots <= 0:
            raise messages.E2MessageError("report period must be positive")
        self.subscriptions[subscription_id] = _Subscription(
            subscription_id, subscriber, service_model, period_slots
        )

    # ----- control-plane message handling ------------------------------------

    def handle_messages(self) -> None:
        for source, message in self.channel.poll():
            msg_type = message["msg"]
            if msg_type == messages.MSG_SETUP_REQUEST:
                self._send(
                    source, messages.setup_response(self.node_id, accepted=True)
                )
            elif msg_type == messages.MSG_SUBSCRIPTION_REQUEST:
                sub = _Subscription(
                    message["subscription_id"],
                    source,
                    message["service_model"],
                    message["period_slots"],
                )
                self.subscriptions[sub.subscription_id] = sub
                self._send(
                    source,
                    messages.subscription_response(sub.subscription_id, True),
                )
            elif msg_type == messages.MSG_CONTROL_REQUEST:
                success, detail = self._apply_control(message)
                self._send(
                    source,
                    messages.control_ack(message["request_id"], success, detail),
                )

    def _apply_control(self, message: dict[str, Any]) -> tuple[bool, str]:
        action = message["action"]
        target = message["target"]
        value = message["value"]
        try:
            if action == messages.ACTION_SET_SLICE_QUOTA:
                inter = self.gnb.inter_slice
                if not isinstance(inter, TargetRateInterSlice):
                    return False, "inter-slice scheduler has no rate targets"
                if target not in inter.targets_bps:
                    return False, f"unknown slice {target}"
                inter.targets_bps[target] = float(value)
            elif action == messages.ACTION_SET_TX_POWER:
                self.tx_power = value
            elif action == messages.ACTION_SET_CQI_TABLE:
                from repro.phy.mcs import CQI_TABLES

                if value not in CQI_TABLES:
                    return False, f"unsupported CQI table {value}"
                self.cqi_table = value
            elif action == messages.ACTION_HANDOVER:
                if target not in self.gnb.ues:
                    return False, f"unknown UE {target}"
                self.gnb.detach_ue(target)
            else:  # pragma: no cover - validate_message rejects these
                return False, f"unsupported action {action}"
        except Exception as exc:  # defensive: controls must never kill the node
            return False, f"control failed: {exc}"
        self.controls_applied.append(dict(message))
        return True, ""

    # ----- KPM-lite reporting ----------------------------------------------------

    def step(self) -> None:
        """Run once per slot, after the gNB's own step."""
        if self.supervisor is not None:
            self.supervisor.tick()
        self.handle_messages()
        slot = self.gnb.slot
        for sub in self.subscriptions.values():
            due = (
                sub.last_report_slot < 0
                or slot - sub.last_report_slot >= sub.period_slots
            )
            if due:
                sub.last_report_slot = slot
                self._send(sub.subscriber, self._build_indication(sub, slot))

    def _build_indication(self, sub: _Subscription, slot: int) -> dict[str, Any]:
        ue_reports = []
        for ue in self.gnb.ues.values():
            ue_reports.append(
                {
                    "ue_id": ue.ue_id,
                    "slice_id": ue.slice_id,
                    "cqi": ue.current_cqi,
                    "neighbor_cell": ue.neighbor_cell,
                    "neighbor_cqi": ue.neighbor_cqi(slot),
                    "avg_tput_bps": ue.avg_tput_bps,
                    "buffer_bytes": ue.buffer.occupancy_bytes,
                }
            )
        slice_reports = []
        period_s = sub.period_slots * self.gnb.carrier.slot_duration_s
        for sid, runtime in self.gnb.slices.items():
            total = runtime.meter.total_bytes
            delta = total - self._last_slice_bytes.get(sid, 0)
            self._last_slice_bytes[sid] = total
            target = 0.0
            inter = self.gnb.inter_slice
            if isinstance(inter, TargetRateInterSlice):
                target = inter.targets_bps.get(sid, 0.0)
            slice_reports.append(
                {
                    "slice_id": sid,
                    "measured_bps": delta * 8 / period_s if period_s > 0 else 0.0,
                    "target_bps": target,
                }
            )
        return messages.indication(
            sub.subscription_id, slot, ue_reports, slice_reports
        )
