"""Communication channels and the system-integrator adapter plugin.

:class:`CommChannel` binds a vendor profile to a transport endpoint: every
outgoing message is encoded (and optionally encrypted) in the vendor's
dialect, every incoming payload decoded.  Feeding vendor A's bytes to
vendor B's channel fails exactly the way mismatched O-RAN gear fails.

:class:`WasmFieldAdapter` is the paper's fix: a sandboxed plugin the SI
deploys between dialects that re-scales quantized fields (8-bit power ->
12-bit power) without either vendor changing a line of device code.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.abi.host import PluginHost
from repro.codecs.base import CodecError
from repro.e2 import messages
from repro.e2.vendors import VendorProfile
from repro.netio.bus import Endpoint
from repro.obs import OBS


class CommChannel:
    """A vendor-dialect channel over one transport endpoint."""

    def __init__(self, endpoint: Endpoint, profile: VendorProfile):
        self.endpoint = endpoint
        self.profile = profile
        self.sent = 0
        self.received = 0
        #: payloads the host decoder could not parse (dialect mismatch,
        #: corruption); guard verdicts are counted separately - see
        #: :attr:`guard_rejections`
        self.decode_failures = 0
        #: payloads the sandboxed guard rejected before decoding (hostile
        #: or structurally unsafe bytes) - a different operational signal
        #: than a codec failure, so never folded into ``decode_failures``
        self.guard_rejections = 0

    @property
    def name(self) -> str:
        return self.endpoint.name

    def send(self, dest: str, message: dict[str, Any]) -> None:
        messages.validate_message(message)
        self.endpoint.send(dest, self.profile.encode(message))
        self.sent += 1

    def poll(self, timeout: float | None = 0.0) -> list[tuple[str, dict[str, Any]]]:
        """Decode all queued messages; counts (and skips) undecodable ones."""
        out = []
        while True:
            item = self.endpoint.recv(timeout=timeout if not out else 0.0)
            if item is None:
                return out
            source, payload = item
            try:
                message = self.profile.decode(payload)
                messages.validate_message(message)
            except (CodecError, messages.E2MessageError):
                self.decode_failures += 1
                continue
            self.received += 1
            out.append((source, message))


_ADAPT_MAGIC = 0x5741524E


class WasmFieldAdapter:
    """The SI's field-width adapter, hosted as a sandboxed Wasm plugin."""

    def __init__(self, wasm_bytes: bytes | None = None):
        if wasm_bytes is None:
            from repro.plugins import plugin_wasm

            wasm_bytes = plugin_wasm("adapt_fields")
        self.host = PluginHost(
            wasm_bytes,
            name="adapt_fields",
            output_record_bytes=8,
            allowed_imports=frozenset({"log"}),
        )

    def adapt_values(self, records: list[tuple[int, int, int]]) -> list[int]:
        """Re-scale ``(value, from_bits, to_bits)`` records in the sandbox."""
        payload = bytearray(struct.pack("<IIII", _ADAPT_MAGIC, 1, 0, len(records)))
        for value, from_bits, to_bits in records:
            payload += struct.pack("<III", value, from_bits, to_bits)
        result = self.host.call(bytes(payload))
        (count,) = struct.unpack_from("<I", result.output, 0)
        values = []
        for i in range(count):
            _index, adapted = struct.unpack_from("<II", result.output, 4 + i * 8)
            values.append(adapted)
        return values

    def adapt_control(
        self,
        message: dict[str, Any],
        source: VendorProfile,
        target: VendorProfile,
    ) -> dict[str, Any]:
        """Convert a control request between vendor power scales."""
        if (
            message.get("msg") == messages.MSG_CONTROL_REQUEST
            and message.get("action") == messages.ACTION_SET_TX_POWER
            and source.power_bits != target.power_bits
        ):
            (adapted,) = self.adapt_values(
                [(message["value"], source.power_bits, target.power_bits)]
            )
            return {**message, "value": adapted}
        return message


class MessageGuard:
    """A sandboxed structural validator for incoming wire payloads (§3B).

    Runs the ``guard_pbwire`` Wasm plugin over every received payload
    before the host decoder parses it; malformed or hostile bytes are
    rejected (or trap) inside the sandbox, so decoder exploits never reach
    the host process.
    """

    def __init__(self, wasm_bytes: bytes | None = None):
        if wasm_bytes is None:
            from repro.plugins import plugin_wasm

            wasm_bytes = plugin_wasm("guard_pbwire")
        self.host = PluginHost(
            wasm_bytes,
            name="guard",
            output_record_bytes=8,
            allowed_imports=frozenset({"log"}),
        )
        self.accepted = 0
        self.rejected = 0
        self.last_fail_code = 0

    def check(self, payload: bytes) -> bool:
        """True iff the payload is structurally safe to decode."""
        from repro.abi.host import PluginError

        header = struct.pack("<IIII", _ADAPT_MAGIC, 1, 0, len(payload))
        try:
            result = self.host.call(header + payload)
            _count, verdict, fail_code = struct.unpack_from(
                "<III", result.output, 0
            )
        except PluginError:
            self.rejected += 1
            self.last_fail_code = -1
            return False
        if verdict == 1:
            self.accepted += 1
            return True
        self.rejected += 1
        self.last_fail_code = fail_code
        return False


class GuardedChannel(CommChannel):
    """A channel whose inbound path is screened by a :class:`MessageGuard`."""

    def __init__(self, endpoint: Endpoint, profile: VendorProfile,
                 guard: MessageGuard | None = None):
        super().__init__(endpoint, profile)
        self.guard = guard or MessageGuard()

    def poll(self, timeout: float | None = 0.0) -> list[tuple[str, dict[str, Any]]]:
        out = []
        while True:
            item = self.endpoint.recv(timeout=timeout if not out else 0.0)
            if item is None:
                return out
            source, payload = item
            if not self.guard.check(payload):
                self.guard_rejections += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "waran_e2_guard_rejections_total",
                        "inbound payloads rejected by the sandboxed guard",
                    ).inc(channel=self.name)
                continue
            try:
                message = self.profile.decode(payload)
                messages.validate_message(message)
            except (CodecError, messages.E2MessageError):
                self.decode_failures += 1
                continue
            self.received += 1
            out.append((source, message))


class AdaptedChannel(CommChannel):
    """A channel that transparently re-encodes into the peer's dialect.

    This is the SI deployment of §3B: the local side speaks ``profile``,
    the remote side speaks ``peer_profile``; control messages pass through
    the Wasm adapter and are *encoded with the peer's codec* so the remote
    device needs no changes at all.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        profile: VendorProfile,
        peer_profile: VendorProfile,
        adapter: WasmFieldAdapter | None = None,
    ):
        super().__init__(endpoint, profile)
        self.peer_profile = peer_profile
        self.adapter = adapter or WasmFieldAdapter()

    def send(self, dest: str, message: dict[str, Any]) -> None:
        messages.validate_message(message)
        adapted = self.adapter.adapt_control(message, self.profile, self.peer_profile)
        self.endpoint.send(dest, self.peer_profile.encode(adapted))
        self.sent += 1

    def poll(self, timeout: float | None = 0.0) -> list[tuple[str, dict[str, Any]]]:
        out = []
        while True:
            item = self.endpoint.recv(timeout=timeout if not out else 0.0)
            if item is None:
                return out
            source, payload = item
            try:
                message = self.peer_profile.decode(payload)
                messages.validate_message(message)
                message = self.adapter.adapt_control(
                    message, self.peer_profile, self.profile
                )
            except (CodecError, messages.E2MessageError):
                self.decode_failures += 1
                continue
            self.received += 1
            out.append((source, message))
