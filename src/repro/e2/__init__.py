"""E2-lite: the RIC <-> gNB interface, WA-RAN style.

The paper's position (§3B, §4B) is that the *standardised* E2 interface is
where multivendor integration breaks, and that WA-RAN should wrap the wire
protocol in plugins on both sides instead.  This package provides:

- :mod:`repro.e2.messages` - an E2AP-flavoured message set (Setup,
  Subscription, Indication, Control) with KPM-like report payloads and
  RC-like control actions;
- :mod:`repro.e2.vendors` - vendor profiles: each vendor picks its codec
  (JSON / pbwire / asn1lite), optional AES-CTR payload encryption, and its
  field widths (the 8-bit vs 12-bit power example);
- :mod:`repro.e2.comm` - the communication channel that applies a vendor
  profile to an endpoint, and the Wasm *adapter* that converts between
  mismatched vendor field scales;
- :mod:`repro.e2.node` - the E2-node agent embedded in a gNB: answers
  subscriptions, streams KPM indications, executes control actions through
  exposed gNB controls;
- :mod:`repro.e2.batch` - the batched uplink the cluster workers use:
  many per-slot indications coalesced into one frame, with bounded queues
  and explicit backpressure counters.
"""

from repro.e2.messages import (
    MSG_CONTROL_ACK,
    MSG_CONTROL_REQUEST,
    MSG_INDICATION,
    MSG_SETUP_REQUEST,
    MSG_SETUP_RESPONSE,
    MSG_SUBSCRIPTION_REQUEST,
    MSG_SUBSCRIPTION_RESPONSE,
    E2MessageError,
    control_request,
    indication,
    setup_request,
    subscription_request,
    validate_message,
)
from repro.e2.vendors import VendorProfile, VENDOR_A, VENDOR_B
from repro.e2.comm import CommChannel, WasmFieldAdapter
from repro.e2.node import E2NodeAgent
from repro.e2.batch import (
    BatchedUplinkChannel,
    E2BatchError,
    decode_batch_entry,
    encode_batch_entry,
    iter_batch_frame,
)

__all__ = [
    "E2MessageError",
    "MSG_SETUP_REQUEST",
    "MSG_SETUP_RESPONSE",
    "MSG_SUBSCRIPTION_REQUEST",
    "MSG_SUBSCRIPTION_RESPONSE",
    "MSG_INDICATION",
    "MSG_CONTROL_REQUEST",
    "MSG_CONTROL_ACK",
    "setup_request",
    "subscription_request",
    "indication",
    "control_request",
    "validate_message",
    "VendorProfile",
    "VENDOR_A",
    "VENDOR_B",
    "CommChannel",
    "WasmFieldAdapter",
    "E2NodeAgent",
    "BatchedUplinkChannel",
    "E2BatchError",
    "encode_batch_entry",
    "decode_batch_entry",
    "iter_batch_frame",
]
