"""Decoder for the standard WebAssembly binary format (MVP).

Follows the grammar of the Wasm 1.0 spec: magic + version header, then a
sequence of sections in non-decreasing id order (custom sections may appear
anywhere).  Section payloads are length-delimited; the decoder enforces that
each section consumes exactly its declared size.
"""

from __future__ import annotations

import hashlib
import struct

from repro.wasm import leb128, opcodes
from repro.wasm.module import (
    Code,
    DataSegment,
    ElemSegment,
    Export,
    Global,
    Import,
    Instr,
    Module,
)
from repro.wasm.traps import DecodeError
from repro.wasm.wtypes import EMPTY_BLOCK, FUNCREF, FuncType, GlobalType, Limits, ValType

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

#: Hard cap on memory limits in pages (spec: 2**16 pages = 4 GiB).
MAX_PAGES = 1 << 16

_EXPORT_KINDS = {0: "func", 1: "table", 2: "mem", 3: "global"}


class _Reader:
    """Cursor over a byte buffer with bounds-checked primitive reads."""

    def __init__(self, data: bytes, pos: int = 0, end: int | None = None):
        self.data = data
        self.pos = pos
        self.end = len(data) if end is None else end

    def eof(self) -> bool:
        return self.pos >= self.end

    def bytes(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise DecodeError("unexpected end of section or function")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def byte(self) -> int:
        if self.pos >= self.end:
            raise DecodeError("unexpected end of section or function")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def u32(self) -> int:
        value, self.pos = leb128.decode_u(self.data[: self.end], self.pos, 32)
        return value

    def s32(self) -> int:
        value, self.pos = leb128.decode_s(self.data[: self.end], self.pos, 32)
        return value

    def s64(self) -> int:
        value, self.pos = leb128.decode_s(self.data[: self.end], self.pos, 64)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.bytes(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.bytes(8))[0]

    def name(self) -> str:
        length = self.u32()
        raw = self.bytes(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"malformed UTF-8 name: {exc}") from None

    def valtype(self) -> ValType:
        return ValType.from_byte(self.byte())

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            return Limits(self.u32(), self.u32())
        raise DecodeError(f"invalid limits flag 0x{flag:02x}")

    def blocktype(self) -> ValType | None:
        byte = self.byte()
        if byte == EMPTY_BLOCK:
            return None
        return ValType.from_byte(byte)


def _read_instr(r: _Reader) -> Instr:
    op = r.byte()
    info = opcodes.OP_TABLE.get(op)
    if info is None:
        raise DecodeError(f"unknown opcode 0x{op:02x}")
    imm = info.imm
    if imm == "none":
        return (op, None)
    if imm == "block":
        return (op, r.blocktype())
    if imm in ("label", "func", "local", "global"):
        return (op, r.u32())
    if imm == "br_table":
        count = r.u32()
        targets = tuple(r.u32() for _ in range(count))
        return (op, (targets, r.u32()))
    if imm == "call_ind":
        type_index = r.u32()
        table = r.byte()
        if table != 0x00:
            raise DecodeError("call_indirect reserved byte must be zero")
        return (op, type_index)
    if imm == "mem":
        return (op, (r.u32(), r.u32()))
    if imm == "mem_misc":
        if r.byte() != 0x00:
            raise DecodeError("memory.size/grow reserved byte must be zero")
        return (op, None)
    if imm == "i32":
        return (op, r.s32())
    if imm == "i64":
        return (op, r.s64())
    if imm == "f32":
        return (op, r.f32())
    if imm == "f64":
        return (op, r.f64())
    raise AssertionError(f"unhandled immediate kind {imm!r}")


def _read_expr(r: _Reader) -> tuple[Instr, ...]:
    """Read instructions up to and including the matching outer ``end``.

    Used for full function bodies and for constant initializer expressions;
    tracks block nesting so inner ``end`` opcodes don't terminate early.
    """
    out: list[Instr] = []
    depth = 0
    while True:
        instr = _read_instr(r)
        out.append(instr)
        op = instr[0]
        if op in (opcodes.BLOCK, opcodes.LOOP, opcodes.IF):
            depth += 1
        elif op == opcodes.END:
            if depth == 0:
                return tuple(out)
            depth -= 1


def _decode_type_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        form = r.byte()
        if form != 0x60:
            raise DecodeError(f"invalid functype form 0x{form:02x}")
        params = tuple(r.valtype() for _ in range(r.u32()))
        results = tuple(r.valtype() for _ in range(r.u32()))
        if len(results) > 1:
            raise DecodeError("multi-value results not supported (MVP)")
        mod.types.append(FuncType(params, results))


def _decode_import_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        module = r.name()
        name = r.name()
        kind = r.byte()
        if kind == 0x00:
            mod.imports.append(Import(module, name, "func", r.u32()))
        elif kind == 0x01:
            if r.byte() != FUNCREF:
                raise DecodeError("imported table must be funcref")
            mod.imports.append(Import(module, name, "table", r.limits()))
        elif kind == 0x02:
            limits = r.limits()
            limits.validate(MAX_PAGES, "memory")
            mod.imports.append(Import(module, name, "mem", limits))
        elif kind == 0x03:
            valtype = r.valtype()
            mut = r.byte()
            if mut not in (0, 1):
                raise DecodeError(f"invalid global mutability 0x{mut:02x}")
            mod.imports.append(
                Import(module, name, "global", GlobalType(valtype, bool(mut)))
            )
        else:
            raise DecodeError(f"invalid import kind 0x{kind:02x}")


def _decode_global_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        valtype = r.valtype()
        mut = r.byte()
        if mut not in (0, 1):
            raise DecodeError(f"invalid global mutability 0x{mut:02x}")
        init = _read_expr(r)
        mod.globals.append(Global(GlobalType(valtype, bool(mut)), init))


def _decode_export_section(r: _Reader, mod: Module) -> None:
    seen: set[str] = set()
    for _ in range(r.u32()):
        name = r.name()
        if name in seen:
            raise DecodeError(f"duplicate export name {name!r}")
        seen.add(name)
        kind_byte = r.byte()
        if kind_byte not in _EXPORT_KINDS:
            raise DecodeError(f"invalid export kind 0x{kind_byte:02x}")
        mod.exports.append(Export(name, _EXPORT_KINDS[kind_byte], r.u32()))


def _decode_elem_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        table_index = r.u32()
        if table_index != 0:
            raise DecodeError("only table 0 supported (MVP)")
        offset = _read_expr(r)
        funcs = tuple(r.u32() for _ in range(r.u32()))
        mod.elems.append(ElemSegment(table_index, offset, funcs))


def _decode_code_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        body_size = r.u32()
        body_end = r.pos + body_size
        if body_end > r.end:
            raise DecodeError("function body overruns section")
        sub = _Reader(r.data, r.pos, body_end)
        locals_: list[ValType] = []
        for _ in range(sub.u32()):
            count = sub.u32()
            valtype = sub.valtype()
            if len(locals_) + count > 50_000:
                raise DecodeError("too many locals")
            locals_.extend([valtype] * count)
        body = _read_expr(sub)
        if not sub.eof():
            raise DecodeError("junk after function body end")
        r.pos = body_end
        mod.codes.append(Code(tuple(locals_), body))


def _decode_data_section(r: _Reader, mod: Module) -> None:
    for _ in range(r.u32()):
        mem_index = r.u32()
        if mem_index != 0:
            raise DecodeError("only memory 0 supported (MVP)")
        offset = _read_expr(r)
        payload = r.bytes(r.u32())
        mod.datas.append(DataSegment(mem_index, offset, payload))


def decode_module(data: bytes) -> Module:
    """Decode a binary Wasm module.

    Raises :class:`DecodeError` for any malformed input; never raises
    anything else for arbitrary bytes (fuzz-safe by construction, enforced
    by the property tests).
    """
    if len(data) < 8:
        raise DecodeError("module too short for header")
    if data[:4] != MAGIC:
        raise DecodeError("bad magic number")
    if data[4:8] != VERSION:
        raise DecodeError(f"unsupported version {data[4:8]!r}")

    mod = Module()
    r = _Reader(data, 8)
    last_id = 0
    num_funcs_declared = 0
    while not r.eof():
        section_id = r.byte()
        size = r.u32()
        payload_end = r.pos + size
        if payload_end > len(data):
            raise DecodeError("section size overruns module")
        sub = _Reader(data, r.pos, payload_end)
        if section_id == 0:
            mod.customs.append((sub.name(), sub.bytes(payload_end - sub.pos)))
        else:
            if section_id <= last_id:
                raise DecodeError(
                    f"section id {section_id} out of order (after {last_id})"
                )
            if section_id > 11:
                raise DecodeError(f"unknown section id {section_id}")
            last_id = section_id
            if section_id == 1:
                _decode_type_section(sub, mod)
            elif section_id == 2:
                _decode_import_section(sub, mod)
            elif section_id == 3:
                for _ in range(sub.u32()):
                    mod.funcs.append(sub.u32())
                num_funcs_declared = len(mod.funcs)
            elif section_id == 4:
                for _ in range(sub.u32()):
                    if sub.byte() != FUNCREF:
                        raise DecodeError("table must be funcref")
                    mod.tables.append(sub.limits())
            elif section_id == 5:
                for _ in range(sub.u32()):
                    limits = sub.limits()
                    limits.validate(MAX_PAGES, "memory")
                    mod.mems.append(limits)
            elif section_id == 6:
                _decode_global_section(sub, mod)
            elif section_id == 7:
                _decode_export_section(sub, mod)
            elif section_id == 8:
                mod.start = sub.u32()
            elif section_id == 9:
                _decode_elem_section(sub, mod)
            elif section_id == 10:
                _decode_code_section(sub, mod)
            elif section_id == 11:
                _decode_data_section(sub, mod)
            if not sub.eof():
                raise DecodeError(f"section {section_id} has trailing bytes")
        r.pos = payload_end

    if len(mod.codes) != num_funcs_declared:
        raise DecodeError(
            f"function section declares {num_funcs_declared} functions but "
            f"code section has {len(mod.codes)} bodies"
        )
    mod.content_hash = hashlib.sha256(data).hexdigest()
    return mod
