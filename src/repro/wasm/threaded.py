"""Threaded-code backend: function bodies compiled to pre-bound closures.

The legacy interpreter (:mod:`repro.wasm.interpreter`) dispatches through
a tag ``elif`` ladder and resolves branch label heights at run time.  This
module is the wasm3-style alternative: a one-time per-function translation
pass lowers each body into a flat array of Python closures, one per
original instruction slot, where

- every handler is pre-bound: immediates, numeric handler functions and
  the *next pc* live in closure cells, so the hot loop is just
  ``pc = slots[pc](stack, locals_, frame)`` - no opcode decode, no tag
  compare chain;
- all control flow is resolved at compile time: branch targets, the
  stack height to truncate to and the branch arity come from a static
  stack-height analysis (validated Wasm has a fixed operand-stack height
  at every reachable program point), so there is no label stack at all;
- dominant instruction sequences are fused into **superinstructions**
  (``local.get local.get <binop>``, ``<const> <binop>``,
  ``local.get <const> i32.add <load>`` with a folded effective address,
  ``<cmp> br_if``, ``local.set local.get`` as a tee, and friends), each
  executing several original instructions in one dispatch.

Semantics are bit-identical to the legacy engine by construction: traps,
trap codes, :class:`~repro.wasm.interpreter.ExecStats` and fuel are
preserved exactly - fuel is charged per *original* instruction (a fused
slot carries the cost of every instruction it covers), so
retired-instruction counts stay comparable across engines.  Fusion never
covers a group whose interior is a branch target, and an instruction that
can trap is only fused in the *final* position of its group so the fuel
charged at trap time matches the legacy engine to the unit.

Engine selection: ``REPRO_WASM_ENGINE=legacy|threaded`` (default
``threaded``), overridable per :class:`~repro.wasm.instance.Instance`
via its ``engine=`` argument for differential testing.
"""

from __future__ import annotations

import os

from repro.wasm import opcodes as op
from repro.wasm.interpreter import (
    BINOPS,
    LOADS,
    MASK32,
    MASK64,
    STORES,
    UNOPS,
    control_map_for,
    f32_round,
    prepared_for,
)
from repro.wasm.module import Code, Module
from repro.wasm.traps import FuelExhausted, StackExhausted, Trap
from repro.wasm.wtypes import FuncType

# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

ENGINES = ("threaded", "legacy", "aot")
DEFAULT_ENGINE = "threaded"


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the engine name: explicit arg > ``REPRO_WASM_ENGINE`` > default."""
    name = engine or os.environ.get("REPRO_WASM_ENGINE") or DEFAULT_ENGINE
    name = name.strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown wasm engine {name!r} (expected one of {', '.join(ENGINES)})"
        )
    return name


# ---------------------------------------------------------------------------
# static analysis: stack heights and fully resolved branches
# ---------------------------------------------------------------------------

_CONST_OPS = {op.I32_CONST, op.I64_CONST, op.F32_CONST, op.F64_CONST}

#: integer ops that can trap mid-stream; only fusable in final position
_TRAPPING_BINOPS = {
    op.I32_DIV_S, op.I32_DIV_U, op.I32_REM_S, op.I32_REM_U,
    op.I64_DIV_S, op.I64_DIV_U, op.I64_REM_S, op.I64_REM_U,
}
_TRAPPING_UNOPS = {
    op.I32_TRUNC_F32_S, op.I32_TRUNC_F32_U, op.I32_TRUNC_F64_S,
    op.I32_TRUNC_F64_U, op.I64_TRUNC_F32_S, op.I64_TRUNC_F32_U,
    op.I64_TRUNC_F64_S, op.I64_TRUNC_F64_U,
}


def _const_value(opcode: int, imm):
    if opcode == op.I32_CONST:
        return imm & MASK32
    if opcode == op.I64_CONST:
        return imm & MASK64
    if opcode == op.F32_CONST:
        return f32_round(imm)
    return imm


class _CtrlFrame:
    """Compile-time control frame: enough to resolve any branch statically."""

    __slots__ = ("kind", "entry", "arity", "target", "label_arity", "dead_entry")

    def __init__(self, kind: int, entry: int, arity: int, target: int,
                 dead_entry: bool = False):
        self.kind = kind  # op.BLOCK / op.LOOP / op.IF / 0 for the function
        self.entry = entry  # operand-stack height at block entry
        self.arity = arity  # block *result* arity (for the height after end)
        self.target = target  # pc a branch to this label jumps to
        # a branch to a loop re-enters the top and carries no values
        self.label_arity = 0 if kind == op.LOOP else arity
        # was the enclosing code already unreachable when this frame opened?
        # (the end of a block you cannot enter is itself unreachable)
        self.dead_entry = dead_entry


def _analyze(module: Module, code: Code, result_arity: int):
    """One linear pass: per-pc static stack heights + resolved branches.

    Returns ``(heights, branches, jump_targets)`` where ``heights[pc]`` is
    the operand-stack height *before* pc (``None`` in validator-unreachable
    code, which can never execute), ``branches[pc]`` holds resolved
    ``(target, arity, dest_height)`` data for control instructions, and
    ``jump_targets`` is the set of pcs control can reach non-sequentially
    (fusion must not swallow one into a group's interior).
    """
    body = code.body
    n = len(body)
    control = control_map_for(code)
    heights: list[int | None] = [None] * n
    branches: dict[int, object] = {}
    jump_targets: set[int] = set()

    frames = [_CtrlFrame(0, 0, result_arity, n)]
    height = 0
    unreachable = False

    def _resolve(depth: int) -> tuple[int, int, int]:
        fr = frames[-1 - depth]
        jump_targets.add(fr.target)
        return (fr.target, fr.label_arity, fr.entry)

    for pc, (opcode, imm) in enumerate(body):
        heights[pc] = None if unreachable else height
        if opcode == op.BLOCK:
            end_pc, _ = control[pc]
            frames.append(_CtrlFrame(
                op.BLOCK, height, 0 if imm is None else 1, end_pc + 1, unreachable
            ))
        elif opcode == op.LOOP:
            frames.append(_CtrlFrame(
                op.LOOP, height, 0 if imm is None else 1, pc + 1, unreachable
            ))
            jump_targets.add(pc + 1)
        elif opcode == op.IF:
            if not unreachable:
                height -= 1
            end_pc, else_pc = control[pc]
            false_target = (else_pc + 1) if else_pc is not None else end_pc
            branches[pc] = false_target
            jump_targets.add(false_target)
            frames.append(_CtrlFrame(
                op.IF, height, 0 if imm is None else 1, end_pc + 1, unreachable
            ))
        elif opcode == op.ELSE:
            fr = frames[-1]
            height = fr.entry
            unreachable = fr.dead_entry
            end_pc = fr.target - 1
            branches[pc] = end_pc
            jump_targets.add(end_pc)
        elif opcode == op.END:
            fr = frames.pop() if len(frames) > 1 else frames[0]
            height = fr.entry + fr.arity
            unreachable = fr.dead_entry
        elif opcode == op.BR:
            branches[pc] = _resolve(imm)
            height = frames[-1].entry
            unreachable = True
        elif opcode == op.BR_IF:
            if not unreachable:
                height -= 1
            branches[pc] = _resolve(imm)
        elif opcode == op.BR_TABLE:
            targets, default = imm
            if not unreachable:
                height -= 1
            branches[pc] = (
                [_resolve(t) for t in targets],
                _resolve(default),
                height if not unreachable else None,
            )
            height = frames[-1].entry
            unreachable = True
        elif opcode == op.RETURN:
            height = frames[-1].entry
            unreachable = True
        elif opcode == op.UNREACHABLE:
            height = frames[-1].entry
            unreachable = True
        elif unreachable:
            continue
        elif opcode == op.CALL:
            ft = module.func_type(imm)
            height += len(ft.results) - len(ft.params)
        elif opcode == op.CALL_INDIRECT:
            ft = module.types[imm]
            height += len(ft.results) - len(ft.params) - 1
        elif opcode in (op.LOCAL_GET, op.GLOBAL_GET, op.MEMORY_SIZE):
            height += 1
        elif opcode in _CONST_OPS:
            height += 1
        elif opcode in BINOPS or opcode in (op.LOCAL_SET, op.GLOBAL_SET, op.DROP):
            height -= 1
        elif opcode in STORES or opcode == op.SELECT:
            height -= 2
        # unops, local.tee, loads, memory.grow, nop: net zero

    return heights, branches, jump_targets


# ---------------------------------------------------------------------------
# closure emitters (one small factory per slot shape)
# ---------------------------------------------------------------------------


def _dead_slot(stack, locals_, frame):  # pragma: no cover - unreachable code
    raise AssertionError("threaded code entered an unreachable slot")


def _e_nop(nxt):
    def run(stack, locals_, frame):
        return nxt
    return run


def _e_local_get(i, nxt):
    def run(stack, locals_, frame):
        stack.append(locals_[i])
        return nxt
    return run


def _e_local_get2(a, b, nxt):
    def run(stack, locals_, frame):
        stack.append(locals_[a])
        stack.append(locals_[b])
        return nxt
    return run


def _e_const(c, nxt):
    def run(stack, locals_, frame):
        stack.append(c)
        return nxt
    return run


def _e_local_set(i, nxt):
    def run(stack, locals_, frame):
        locals_[i] = stack.pop()
        return nxt
    return run


def _e_local_tee(i, nxt):
    def run(stack, locals_, frame):
        locals_[i] = stack[-1]
        return nxt
    return run


def _e_const_set(c, i, nxt):
    def run(stack, locals_, frame):
        locals_[i] = c
        return nxt
    return run


def _e_binop(f, nxt):
    def run(stack, locals_, frame):
        b = stack.pop()
        stack[-1] = f(stack[-1], b)
        return nxt
    return run


def _e_unop(f, nxt):
    def run(stack, locals_, frame):
        stack[-1] = f(stack[-1])
        return nxt
    return run


def _e_ll_binop(a, b, f, nxt):
    def run(stack, locals_, frame):
        stack.append(f(locals_[a], locals_[b]))
        return nxt
    return run


def _e_lc_binop(a, c, f, nxt):
    def run(stack, locals_, frame):
        stack.append(f(locals_[a], c))
        return nxt
    return run


def _e_c_binop(c, f, nxt):
    def run(stack, locals_, frame):
        stack[-1] = f(stack[-1], c)
        return nxt
    return run


def _e_ll_binop_set(a, b, f, d, nxt):
    def run(stack, locals_, frame):
        locals_[d] = f(locals_[a], locals_[b])
        return nxt
    return run


def _e_lc_binop_set(a, c, f, d, nxt):
    def run(stack, locals_, frame):
        locals_[d] = f(locals_[a], c)
        return nxt
    return run


def _e_ll_binop_br_if(a, b, f, t, nxt):
    def run(stack, locals_, frame):
        if f(locals_[a], locals_[b]):
            return t
        return nxt
    return run


def _e_lc_binop_br_if(a, c, f, t, nxt):
    def run(stack, locals_, frame):
        if f(locals_[a], c):
            return t
        return nxt
    return run


def _e_binop_br_if(f, t, nxt):
    def run(stack, locals_, frame):
        b = stack.pop()
        if f(stack.pop(), b):
            return t
        return nxt
    return run


def _e_unop_br_if(f, t, nxt):
    def run(stack, locals_, frame):
        if f(stack.pop()):
            return t
        return nxt
    return run


# ----- memory ---------------------------------------------------------------


def _e_load_i(off, size, signed, mask, nxt):
    def run(stack, locals_, frame):
        stack[-1] = frame.mem.load_int(stack[-1] + off, size, signed) & mask
        return nxt
    return run


def _e_load_i_local(a, off, size, signed, mask, nxt):
    def run(stack, locals_, frame):
        stack.append(frame.mem.load_int(locals_[a] + off, size, signed) & mask)
        return nxt
    return run


def _e_load_i_local_const(a, c, off, size, signed, mask, nxt):
    def run(stack, locals_, frame):
        addr = ((locals_[a] + c) & MASK32) + off
        stack.append(frame.mem.load_int(addr, size, signed) & mask)
        return nxt
    return run


def _e_load_f32(off, nxt):
    def run(stack, locals_, frame):
        stack[-1] = frame.mem.load_f32(stack[-1] + off)
        return nxt
    return run


def _e_load_f32_local(a, off, nxt):
    def run(stack, locals_, frame):
        stack.append(frame.mem.load_f32(locals_[a] + off))
        return nxt
    return run


def _e_load_f64(off, nxt):
    def run(stack, locals_, frame):
        stack[-1] = frame.mem.load_f64(stack[-1] + off)
        return nxt
    return run


def _e_load_f64_local(a, off, nxt):
    def run(stack, locals_, frame):
        stack.append(frame.mem.load_f64(locals_[a] + off))
        return nxt
    return run


def _e_store_i(off, size, nxt):
    def run(stack, locals_, frame):
        value = stack.pop()
        frame.mem.store_int(stack.pop() + off, value, size)
        return nxt
    return run


def _e_store_f32(off, nxt):
    def run(stack, locals_, frame):
        value = stack.pop()
        frame.mem.store_f32(stack.pop() + off, value)
        return nxt
    return run


def _e_store_f64(off, nxt):
    def run(stack, locals_, frame):
        value = stack.pop()
        frame.mem.store_f64(stack.pop() + off, value)
        return nxt
    return run


def _e_memory_size(nxt):
    def run(stack, locals_, frame):
        stack.append(frame.mem.size_pages)
        return nxt
    return run


def _e_memory_grow(nxt):
    def run(stack, locals_, frame):
        stack[-1] = frame.mem.grow(stack[-1]) & MASK32
        return nxt
    return run


# ----- globals / parametric -------------------------------------------------


def _e_global_get(i, nxt):
    def run(stack, locals_, frame):
        stack.append(frame.globals[i].value)
        return nxt
    return run


def _e_global_set(i, nxt):
    def run(stack, locals_, frame):
        frame.globals[i].value = stack.pop()
        return nxt
    return run


def _e_drop(nxt):
    def run(stack, locals_, frame):
        stack.pop()
        return nxt
    return run


def _e_select(nxt):
    def run(stack, locals_, frame):
        cond = stack.pop()
        b = stack.pop()
        if not cond:
            stack[-1] = b
        return nxt
    return run


# ----- control --------------------------------------------------------------


def _e_jump(t):
    def run(stack, locals_, frame):
        return t
    return run


def _e_br_trunc(t, h, arity):
    if arity:
        def run(stack, locals_, frame):
            v = stack[-1]
            del stack[h:]
            stack.append(v)
            return t
    else:
        def run(stack, locals_, frame):
            del stack[h:]
            return t
    return run


def _e_br_if_fast(t, nxt):
    def run(stack, locals_, frame):
        if stack.pop():
            return t
        return nxt
    return run


def _e_br_if_trunc(t, h, arity, nxt):
    if arity:
        def run(stack, locals_, frame):
            if stack.pop():
                v = stack[-1]
                del stack[h:]
                stack.append(v)
                return t
            return nxt
    else:
        def run(stack, locals_, frame):
            if stack.pop():
                del stack[h:]
                return t
            return nxt
    return run


def _e_if(false_target, nxt):
    def run(stack, locals_, frame):
        if stack.pop():
            return nxt
        return false_target
    return run


def _e_br_table(resolved, default):
    n_targets = len(resolved)

    def run(stack, locals_, frame):
        index = stack.pop()
        target, fixup = resolved[index] if index < n_targets else default
        if fixup is None:
            return target
        h, arity = fixup
        if arity:
            v = stack[-1]
            del stack[h:]
            stack.append(v)
        else:
            del stack[h:]
        return target
    return run


def _e_unreachable(stack, locals_, frame):
    raise Trap("unreachable executed", code="unreachable")


def _e_call(func_index, nxt):
    def run(stack, locals_, frame):
        store = frame.store
        fuel = frame.fuel
        if fuel is not None:
            store.fuel = fuel
        # invoke_addr directly (not invoke_index) so a wasm call costs the
        # same number of Python frames as in the legacy engine - deep
        # plugin recursion must hit StackExhausted, not RecursionError
        instance = frame.instance
        results = instance.invoke_addr(
            instance.func_addrs[func_index], stack, frame.depth + 1
        )
        if fuel is not None:
            frame.fuel = store.fuel
        stack.extend(results)
        return nxt
    return run


def _e_call_indirect(expected: FuncType, nxt):
    def run(stack, locals_, frame):
        elem_index = stack.pop()
        instance = frame.instance
        table = instance.table
        if table is None or elem_index >= len(table.elements):
            raise Trap("undefined element", code="table_oob")
        func_addr = table.elements[elem_index]
        if func_addr is None:
            raise Trap("uninitialized element", code="table_null")
        store = frame.store
        actual = store.funcs[func_addr].functype
        if actual != expected:
            raise Trap(
                f"indirect call type mismatch: {actual} != {expected}",
                code="sig",
            )
        fuel = frame.fuel
        if fuel is not None:
            store.fuel = fuel
        results = instance.invoke_addr(func_addr, stack, frame.depth + 1)
        if fuel is not None:
            frame.fuel = store.fuel
        stack.extend(results)
        return nxt
    return run


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class ThreadedCode:
    """One function body lowered to a flat closure array.

    ``slots[pc]`` executes the instruction(s) at ``pc`` and returns the
    next pc; ``costs[pc]`` is the fuel charge (== number of original
    instructions the slot retires); ``descs[pc]`` is a human-readable
    mnemonic for ``repro disasm --threaded``.
    """

    __slots__ = (
        "slots", "costs", "descs", "local_defaults", "max_stack",
        "n_instrs", "n_fused",
    )

    def __init__(self, slots, costs, descs, local_defaults, max_stack):
        self.slots = slots
        self.costs = costs
        self.descs = descs
        self.local_defaults = local_defaults
        self.max_stack = max_stack
        self.n_instrs = len(slots)
        self.n_fused = sum(1 for c in costs if c > 1)

    def listing(self) -> list[str]:
        """Per-slot lowered-code listing (pc, fuel cost, mnemonic)."""
        lines = []
        for pc, desc in enumerate(self.descs):
            cost = self.costs[pc]
            marker = f"x{cost}" if cost > 1 else "  "
            lines.append(f"  {pc:04d} {marker} {desc}")
        return lines


def _mn(body, pc) -> str:
    """Spec mnemonic (+ immediate) of the original instruction at pc."""
    opcode, imm = body[pc]
    info = op.OP_TABLE[opcode]
    if info.imm == "none" or imm is None:
        return info.name
    if info.imm == "mem":
        _align, offset = imm
        return f"{info.name} offset={offset}" if offset else info.name
    if info.imm == "br_table":
        targets, default = imm
        return info.name + " " + " ".join(str(t) for t in (*targets, default))
    if info.imm == "block":
        return f"{info.name} (result {imm.short})"
    return f"{info.name} {imm}"


def compile_threaded(module: Module, code: Code, functype: FuncType) -> ThreadedCode:
    """Lower one validated function body to threaded code."""
    body = code.body
    n = len(body)
    result_arity = len(functype.results)
    heights, branches, jump_targets = _analyze(module, code, result_arity)

    # the legacy lowering supplies the per-function static stack bound so
    # ExecStats stays bit-identical across engines (and it is memoized on
    # the Code object, so this costs nothing when both engines are used)
    prep = prepared_for(code)

    slots: list = [None] * n
    costs = [1] * n
    descs = [""] * n

    def _fusable(start: int, length: int) -> bool:
        if start + length > n or heights[start] is None:
            return False
        return all(start + i not in jump_targets for i in range(1, length))

    pc = 0
    while pc < n:
        opcode, imm = body[pc]
        emitted = _try_fuse(
            module, body, pc, heights, branches, jump_targets,
            slots, costs, descs, _fusable,
        )
        if emitted:
            pc += emitted
            continue
        slots[pc] = _emit_plain(module, body, pc, n, heights, branches)
        descs[pc] = _mn(body, pc)
        pc += 1

    return ThreadedCode(slots, costs, descs, prep.local_defaults, prep.max_stack)


def _emit_plain(module, body, pc, n, heights, branches):
    """Emit the single-instruction closure for the slot at pc."""
    opcode, imm = body[pc]
    nxt = pc + 1

    if opcode == op.LOCAL_GET:
        return _e_local_get(imm, nxt)
    if opcode in _CONST_OPS:
        return _e_const(_const_value(opcode, imm), nxt)
    if opcode in BINOPS:
        return _e_binop(BINOPS[opcode], nxt)
    if opcode in UNOPS:
        return _e_unop(UNOPS[opcode], nxt)
    if opcode == op.LOCAL_SET:
        return _e_local_set(imm, nxt)
    if opcode == op.LOCAL_TEE:
        return _e_local_tee(imm, nxt)
    if opcode in LOADS:
        size, signed, kind = LOADS[opcode]
        offset = imm[1]
        if kind == "f32":
            return _e_load_f32(offset, nxt)
        if kind == "f64":
            return _e_load_f64(offset, nxt)
        mask = MASK64 if kind == "i64" else MASK32
        return _e_load_i(offset, size, signed, mask, nxt)
    if opcode in STORES:
        size, kind = STORES[opcode]
        offset = imm[1]
        if kind == "f32":
            return _e_store_f32(offset, nxt)
        if kind == "f64":
            return _e_store_f64(offset, nxt)
        return _e_store_i(offset, size, nxt)
    if opcode in (op.BLOCK, op.LOOP, op.NOP, op.END):
        return _e_nop(nxt)
    if opcode == op.IF:
        return _e_if(branches[pc], nxt)
    if opcode == op.ELSE:
        return _e_jump(branches[pc])
    if opcode == op.BR:
        target, arity, dest_h = branches[pc]
        h = heights[pc]
        if h is None:
            return _dead_slot
        if h == dest_h + arity:
            return _e_jump(target)
        return _e_br_trunc(target, dest_h, arity)
    if opcode == op.BR_IF:
        target, arity, dest_h = branches[pc]
        h = heights[pc]
        if h is None:
            return _dead_slot
        if h - 1 == dest_h + arity:
            return _e_br_if_fast(target, nxt)
        return _e_br_if_trunc(target, dest_h, arity, nxt)
    if opcode == op.BR_TABLE:
        resolved_targets, resolved_default, h = branches[pc]
        if h is None:
            return _dead_slot

        def _fixup(res):
            target, arity, dest_h = res
            if h == dest_h + arity:
                return (target, None)
            return (target, (dest_h, arity))

        return _e_br_table(
            [_fixup(r) for r in resolved_targets], _fixup(resolved_default)
        )
    if opcode == op.RETURN:
        return _e_jump(n)
    if opcode == op.CALL:
        return _e_call(imm, nxt)
    if opcode == op.CALL_INDIRECT:
        return _e_call_indirect(module.types[imm], nxt)
    if opcode == op.GLOBAL_GET:
        return _e_global_get(imm, nxt)
    if opcode == op.GLOBAL_SET:
        return _e_global_set(imm, nxt)
    if opcode == op.DROP:
        return _e_drop(nxt)
    if opcode == op.SELECT:
        return _e_select(nxt)
    if opcode == op.MEMORY_SIZE:
        return _e_memory_size(nxt)
    if opcode == op.MEMORY_GROW:
        return _e_memory_grow(nxt)
    if opcode == op.UNREACHABLE:
        return _e_unreachable
    raise Trap(f"cannot compile opcode 0x{opcode:02x}", code="internal")


def _try_fuse(
    module, body, pc, heights, branches, jump_targets, slots, costs, descs, fusable
) -> int:
    """Try to emit a superinstruction starting at pc.

    On success fills ``slots[pc]`` (interior slots become dead fillers),
    sets the fuel cost to the group length, and returns the group length;
    returns 0 when nothing matched.
    """
    n = len(body)

    def o(i):
        return body[pc + i][0] if pc + i < n else -1

    def im(i):
        return body[pc + i][1]

    def commit(closure, length, parts):
        slots[pc] = closure
        costs[pc] = length
        descs[pc] = "{" + "; ".join(parts) + "}"
        for i in range(1, length):
            slots[pc + i] = _dead_slot
            descs[pc + i] = f"  .. folded into slot {pc}"
        return length

    def br_if_fast(at):
        """Fused-branch target if the br_if at `at` needs no stack fixup."""
        target, arity, dest_h = branches[at]
        h = heights[at]
        if h is not None and h - 1 == dest_h + arity:
            return target
        return None

    op0 = o(0)

    # --- length-4 patterns -------------------------------------------------
    if op0 == op.LOCAL_GET and fusable(pc, 4):
        if (
            o(1) == op.LOCAL_GET
            and o(2) in BINOPS
            and o(2) not in _TRAPPING_BINOPS
        ):
            f = BINOPS[o(2)]
            if o(3) == op.LOCAL_SET:
                return commit(
                    _e_ll_binop_set(im(0), im(1), f, im(3), pc + 4),
                    4, [_mn(body, pc + i) for i in range(4)],
                )
            if o(3) == op.BR_IF:
                target = br_if_fast(pc + 3)
                if target is not None:
                    return commit(
                        _e_ll_binop_br_if(im(0), im(1), f, target, pc + 4),
                        4, [_mn(body, pc + i) for i in range(4)],
                    )
        if o(1) in _CONST_OPS:
            c = _const_value(o(1), im(1))
            if o(2) in BINOPS and o(2) not in _TRAPPING_BINOPS:
                f = BINOPS[o(2)]
                if o(3) == op.LOCAL_SET:
                    return commit(
                        _e_lc_binop_set(im(0), c, f, im(3), pc + 4),
                        4, [_mn(body, pc + i) for i in range(4)],
                    )
                if o(3) == op.BR_IF:
                    target = br_if_fast(pc + 3)
                    if target is not None:
                        return commit(
                            _e_lc_binop_br_if(im(0), c, f, target, pc + 4),
                            4, [_mn(body, pc + i) for i in range(4)],
                        )
            if o(2) == op.I32_ADD and o(3) in LOADS:
                size, signed, kind = LOADS[o(3)]
                if kind not in ("f32", "f64"):
                    mask = MASK64 if kind == "i64" else MASK32
                    offset = im(3)[1]
                    return commit(
                        _e_load_i_local_const(
                            im(0), c, offset, size, signed, mask, pc + 4
                        ),
                        4, [_mn(body, pc + i) for i in range(4)],
                    )

    # --- length-3 patterns -------------------------------------------------
    if op0 == op.LOCAL_GET and fusable(pc, 3):
        if o(1) == op.LOCAL_GET and o(2) in BINOPS:
            return commit(
                _e_ll_binop(im(0), im(1), BINOPS[o(2)], pc + 3),
                3, [_mn(body, pc + i) for i in range(3)],
            )
        if o(1) in _CONST_OPS and o(2) in BINOPS:
            return commit(
                _e_lc_binop(im(0), _const_value(o(1), im(1)), BINOPS[o(2)], pc + 3),
                3, [_mn(body, pc + i) for i in range(3)],
            )

    # --- length-2 patterns -------------------------------------------------
    if fusable(pc, 2):
        two = [_mn(body, pc), _mn(body, pc + 1)]
        if op0 in _CONST_OPS:
            c = _const_value(op0, im(0))
            if o(1) in BINOPS:
                return commit(_e_c_binop(c, BINOPS[o(1)], pc + 2), 2, two)
            if o(1) == op.LOCAL_SET:
                return commit(_e_const_set(c, im(1), pc + 2), 2, two)
        if op0 in BINOPS and op0 not in _TRAPPING_BINOPS and o(1) == op.BR_IF:
            target = br_if_fast(pc + 1)
            if target is not None:
                return commit(
                    _e_binop_br_if(BINOPS[op0], target, pc + 2), 2, two
                )
        if op0 in UNOPS and op0 not in _TRAPPING_UNOPS and o(1) == op.BR_IF:
            target = br_if_fast(pc + 1)
            if target is not None:
                return commit(_e_unop_br_if(UNOPS[op0], target, pc + 2), 2, two)
        if op0 == op.LOCAL_SET and o(1) == op.LOCAL_GET and im(0) == im(1):
            return commit(_e_local_tee(im(0), pc + 2), 2, two)
        if op0 == op.LOCAL_GET:
            if o(1) in LOADS:
                size, signed, kind = LOADS[o(1)]
                offset = im(1)[1]
                if kind == "f32":
                    return commit(_e_load_f32_local(im(0), offset, pc + 2), 2, two)
                if kind == "f64":
                    return commit(_e_load_f64_local(im(0), offset, pc + 2), 2, two)
                mask = MASK64 if kind == "i64" else MASK32
                return commit(
                    _e_load_i_local(im(0), offset, size, signed, mask, pc + 2),
                    2, two,
                )
            if o(1) == op.LOCAL_GET:
                return commit(_e_local_get2(im(0), im(1), pc + 2), 2, two)

    return 0


def threaded_for(module: Module, code: Code, functype: FuncType) -> ThreadedCode:
    """Memoized :func:`compile_threaded` (cached on the ``Code`` object)."""
    cached = getattr(code, "_threaded", None)
    if cached is None:
        cached = compile_threaded(module, code, functype)
        object.__setattr__(code, "_threaded", cached)
    return cached


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


class _Frame:
    """Per-call runtime state shared with the slot closures.

    Compiled slots are instance-independent (that is what makes them
    shareable through the cross-instance code cache); everything an
    instruction needs beyond the operand stack and locals arrives here.
    """

    __slots__ = ("instance", "store", "mem", "globals", "depth", "fuel")

    def __init__(self, instance, store, depth):
        self.instance = instance
        self.store = store
        self.mem = instance.memory
        self.globals = instance.globals
        self.depth = depth
        self.fuel = None


def execute_threaded(store, instance, tcode: ThreadedCode, args: list,
                     result_arity: int, depth: int):
    """Run one threaded-compiled function body.

    The contract (arguments, results, traps, fuel, stats) is identical to
    :func:`repro.wasm.interpreter.execute`.
    """
    if depth > store.max_call_depth:
        raise StackExhausted(depth)

    stats = store.stats
    if stats is not None:
        stats.frames += 1
        if depth > stats.max_call_depth:
            stats.max_call_depth = depth
        if tcode.max_stack > stats.max_value_stack:
            stats.max_value_stack = tcode.max_stack

    slots = tcode.slots
    n = tcode.n_instrs
    locals_: list = args + tcode.local_defaults.copy()
    stack: list = []
    frame = _Frame(instance, store, depth)
    pc = 0

    if store.fuel is None:
        while pc < n:
            pc = slots[pc](stack, locals_, frame)
        return stack[len(stack) - result_arity:] if result_arity else []

    frame.fuel = store.fuel
    costs = tcode.costs
    try:
        while pc < n:
            fuel = frame.fuel - costs[pc]
            if fuel < 0:
                frame.fuel = 0
                raise FuelExhausted()
            frame.fuel = fuel
            pc = slots[pc](stack, locals_, frame)
    finally:
        store.fuel = frame.fuel

    return stack[len(stack) - result_arity:] if result_arity else []


# ---------------------------------------------------------------------------
# diagnostics (repro disasm --threaded)
# ---------------------------------------------------------------------------


def dump_threaded(module_or_bytes) -> str:
    """Human-readable lowered code for every function of a module."""
    from repro.wasm.decoder import decode_module
    from repro.wasm.validator import validate_module

    if isinstance(module_or_bytes, (bytes, bytearray)):
        module = decode_module(bytes(module_or_bytes))
    else:
        module = module_or_bytes
    validate_module(module)

    exports_by_index = {}
    for export in module.exports:
        if export.kind == "func":
            exports_by_index.setdefault(export.index, []).append(export.name)

    n_imported = module.num_imported_funcs
    lines = []
    for i, code in enumerate(module.codes):
        func_index = n_imported + i
        functype = module.func_type(func_index)
        tcode = threaded_for(module, code, functype)
        names = "".join(f' (export "{n}")' for n in exports_by_index.get(func_index, []))
        fused_instrs = sum(c for c in tcode.costs if c > 1)
        lines.append(
            f"func {func_index}{names}: {tcode.n_instrs} instrs, "
            f"{tcode.n_fused} superinstructions covering {fused_instrs}"
        )
        lines.extend(tcode.listing())
    return "\n".join(lines)
