"""Wasm disassembler: binary module -> readable WAT-style text.

Part of the WA-RAN toolchain story (§6D): operators receiving a
third-party plugin binary can inspect exactly what they are about to
deploy.  The output uses the flat instruction syntax with indentation for
block structure; for supported modules it re-assembles to an equivalent
module (checked by round-trip tests).
"""

from __future__ import annotations

from repro.wasm import opcodes as op
from repro.wasm.decoder import decode_module
from repro.wasm.module import Module
from repro.wasm.wtypes import ValType


def _valtype(vt: ValType) -> str:
    return vt.short


def _sig(params, results) -> str:
    parts = []
    if params:
        parts.append("(param " + " ".join(_valtype(p) for p in params) + ")")
    if results:
        parts.append("(result " + " ".join(_valtype(r) for r in results) + ")")
    return " ".join(parts)


def _escape(payload: bytes) -> str:
    out = []
    for byte in payload:
        if 32 <= byte < 127 and chr(byte) not in '"\\':
            out.append(chr(byte))
        else:
            out.append(f"\\{byte:02x}")
    return "".join(out)


def _format_instr(instr, indent: int) -> tuple[str, int]:
    """Return (line, new_indent)."""
    opcode, imm = instr
    info = op.OP_TABLE[opcode]
    name = info.name
    if opcode == op.END:
        indent = max(indent - 1, 0)
        return ("  " * indent + "end", indent)
    if opcode == op.ELSE:
        return ("  " * max(indent - 1, 0) + "else", indent)

    text = name
    kind = info.imm
    if kind == "block":
        if imm is not None:
            text += f" (result {_valtype(imm)})"
    elif kind in ("label", "func", "local", "global"):
        text += f" {imm}"
    elif kind == "br_table":
        targets, default = imm
        text += " " + " ".join(str(t) for t in (*targets, default))
    elif kind == "call_ind":
        text += f" (type {imm})"
    elif kind == "mem":
        align, offset = imm
        if offset:
            text += f" offset={offset}"
        if align:
            text += f" align={1 << align}"
    elif kind in ("i32", "i64"):
        text += f" {imm}"
    elif kind in ("f32", "f64"):
        text += f" {imm!r}".replace("'", "")
    line = "  " * indent + text
    if opcode in (op.BLOCK, op.LOOP, op.IF):
        indent += 1
    return (line, indent)


def disassemble(module_or_bytes) -> str:
    """Disassemble a module (or raw bytes) to WAT-style text."""
    if isinstance(module_or_bytes, (bytes, bytearray)):
        module = decode_module(bytes(module_or_bytes))
    else:
        module = module_or_bytes
    assert isinstance(module, Module)

    lines = ["(module"]
    for i, ft in enumerate(module.types):
        lines.append(f"  (type {i} (func {_sig(ft.params, ft.results)}))".rstrip())

    for imp in module.imports:
        if imp.kind == "func":
            ft = module.types[imp.desc]
            lines.append(
                f'  (import "{imp.module}" "{imp.name}" '
                f"(func {_sig(ft.params, ft.results)}))"
            )
        elif imp.kind == "mem":
            maximum = f" {imp.desc.maximum}" if imp.desc.maximum is not None else ""
            lines.append(
                f'  (import "{imp.module}" "{imp.name}" '
                f"(memory {imp.desc.minimum}{maximum}))"
            )
        else:
            lines.append(f'  (import "{imp.module}" "{imp.name}" ({imp.kind} ...))')

    for mem in module.mems:
        maximum = f" {mem.maximum}" if mem.maximum is not None else ""
        lines.append(f"  (memory {mem.minimum}{maximum})")

    for table in module.tables:
        maximum = f" {table.maximum}" if table.maximum is not None else ""
        lines.append(f"  (table {table.minimum}{maximum} funcref)")

    for i, glob in enumerate(module.globals):
        mut = f"(mut {_valtype(glob.gtype.valtype)})" if glob.gtype.mutable else _valtype(
            glob.gtype.valtype
        )
        init, _ = _format_instr(glob.init[0], 0)
        lines.append(f"  (global {i} {mut} ({init.strip()}))")

    exports_by_index = {}
    for export in module.exports:
        exports_by_index.setdefault((export.kind, export.index), []).append(export.name)

    n_imported = module.num_imported_funcs
    for i, code in enumerate(module.codes):
        func_index = n_imported + i
        ft = module.func_type(func_index)
        names = exports_by_index.get(("func", func_index), [])
        export_text = "".join(f' (export "{n}")' for n in names)
        lines.append(f"  (func {func_index}{export_text} {_sig(ft.params, ft.results)}".rstrip())
        if code.locals:
            lines.append(
                "    (local " + " ".join(_valtype(l) for l in code.locals) + ")"
            )
        indent = 2
        for instr in code.body[:-1]:  # skip the final function end
            line, indent = _format_instr(instr, indent)
            lines.append(line)
        lines.append("  )")

    for elem in module.elems:
        offset, _ = _format_instr(elem.offset[0], 0)
        funcs = " ".join(str(f) for f in elem.func_indices)
        lines.append(f"  (elem ({offset.strip()}) {funcs})")

    for seg in module.datas:
        offset, _ = _format_instr(seg.offset[0], 0)
        lines.append(f'  (data ({offset.strip()}) "{_escape(seg.payload)}")')

    for name in exports_by_index.get(("mem", 0), []):
        lines.append(f'  (export "{name}" (memory 0))')

    lines.append(")")
    return "\n".join(lines)
