"""Instantiation, linking and the embedder API.

A :class:`Store` owns runtime objects (function instances, fuel budget,
limits); an :class:`Instance` is one instantiated module inside a store.
Hosts expose capabilities to plugins exclusively through
:class:`HostFunc` imports — the capability-security model WA-RAN relies on:
a plugin can only ever touch what the host explicitly wires in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.wasm import opcodes as op
from repro.wasm.aot import AotCode, execute_aot
from repro.wasm.interpreter import MASK32, MASK64, PreparedCode, execute, f32_round
from repro.wasm.memory import Memory
from repro.wasm.module import Module
from repro.wasm.threaded import ThreadedCode, execute_threaded, resolve_engine
from repro.wasm.traps import LinkError, Trap
from repro.wasm.validator import validate_module
from repro.wasm.wtypes import FuncType, GlobalType, Limits, ValType


class Store:
    """Shared runtime state: the function address space, fuel and limits.

    ``fuel`` is the instruction budget: ``None`` disables metering; an int
    is decremented once per executed instruction and raises
    :class:`FuelExhausted` at zero.  Hosts typically set fuel per plugin
    call via :meth:`Instance.call`.
    """

    def __init__(self, fuel: int | None = None, max_call_depth: int = 300):
        self.funcs: list[FuncInstance] = []
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        #: optional :class:`repro.wasm.interpreter.ExecStats`; when set the
        #: interpreter updates it once per function frame (see ExecStats)
        self.stats = None

    def alloc_func(self, func: "FuncInstance") -> int:
        self.funcs.append(func)
        return len(self.funcs) - 1


@dataclass
class HostFunc:
    """A host capability callable from Wasm.

    ``fn`` receives ``(caller, *args)`` where ``caller`` is the calling
    :class:`Instance` (giving access to its sandboxed memory) and args are
    raw stack values.  It returns ``None``, a single value, or a tuple.
    """

    functype: FuncType
    fn: Callable[..., Any]
    name: str = "<host>"


class ModuleFunc:
    """A Wasm-defined function: compiled code plus its defining instance.

    ``prepared`` is a legacy :class:`PreparedCode`, a
    :class:`~repro.wasm.threaded.ThreadedCode` or an
    :class:`~repro.wasm.aot.AotCode`, depending on the instance's
    engine; :meth:`Instance.invoke_addr` dispatches on it.
    """

    __slots__ = ("functype", "prepared", "instance")

    def __init__(
        self,
        functype: FuncType,
        prepared: "PreparedCode | ThreadedCode | AotCode",
        instance: "Instance",
    ):
        self.functype = functype
        self.prepared = prepared
        self.instance = instance


FuncInstance = Any  # HostFunc | ModuleFunc


class GlobalInstance:
    __slots__ = ("gtype", "value")

    def __init__(self, gtype: GlobalType, value):
        self.gtype = gtype
        self.value = value


class Table:
    """A funcref table: elements are store function addresses or ``None``."""

    def __init__(self, limits: Limits):
        self.limits = limits
        self.elements: list[int | None] = [None] * limits.minimum


def _eval_const(instance: "Instance", expr) -> Any:
    opcode, imm = expr[0]
    if opcode == op.I32_CONST:
        return imm & MASK32
    if opcode == op.I64_CONST:
        return imm & MASK64
    if opcode == op.F32_CONST:
        return f32_round(imm)
    if opcode == op.F64_CONST:
        return imm
    if opcode == op.GLOBAL_GET:
        return instance.globals[imm].value
    raise LinkError(f"unsupported constant opcode 0x{opcode:02x}")


def _normalize_arg(value, valtype: ValType):
    if valtype == ValType.I32:
        return int(value) & MASK32
    if valtype == ValType.I64:
        return int(value) & MASK64
    if valtype == ValType.F32:
        return f32_round(float(value))
    return float(value)


@dataclass(frozen=True)
class InstanceState:
    """A restorable snapshot of one instance's mutable Wasm-level state.

    Captures linear memory and mutable globals — everything a deterministic
    module's behaviour depends on between calls.  Host-level bookkeeping
    (e.g. the plugin scratch region) lives one layer up, in
    :class:`repro.abi.host.PluginCheckpoint`, which wraps this.
    """

    memory: bytes
    globals: tuple[tuple[int, Any], ...]  # (index, value), mutable only

    @property
    def memory_pages(self) -> int:
        return len(self.memory) // 65536


class Instance:
    """One instantiated module.

    ``imports`` maps ``module -> name -> object`` where the object is a
    :class:`HostFunc`, a :class:`Memory`, a :class:`Table`, a
    :class:`GlobalInstance`, or an exported object from another instance.
    """

    def __init__(
        self,
        module: Module,
        imports: Mapping[str, Mapping[str, Any]] | None = None,
        store: Store | None = None,
        validate: bool = True,
        engine: str | None = None,
    ):
        if validate:
            validate_module(module)
        self.module = module
        #: which interpreter compiles and runs this instance's functions:
        #: explicit arg > ``REPRO_WASM_ENGINE`` env > ``"threaded"``
        self.engine = resolve_engine(engine)
        self.store = store if store is not None else Store()
        imports = imports or {}

        self.func_addrs: list[int] = []
        self.globals: list[GlobalInstance] = []
        self.memory: Memory | None = None
        self.table: Table | None = None

        # --- link imports (in declaration order, per index space) ----------
        for imp in module.imports:
            try:
                provided = imports[imp.module][imp.name]
            except KeyError:
                raise LinkError(
                    f"missing import {imp.module}.{imp.name} ({imp.kind})"
                ) from None
            if imp.kind == "func":
                expected = module.types[imp.desc]
                if isinstance(provided, HostFunc):
                    if provided.functype != expected:
                        raise LinkError(
                            f"import {imp.module}.{imp.name}: signature "
                            f"{provided.functype} != expected {expected}"
                        )
                    self.func_addrs.append(self.store.alloc_func(provided))
                elif isinstance(provided, ExportedFunc):
                    if provided.functype != expected:
                        raise LinkError(
                            f"import {imp.module}.{imp.name}: signature "
                            f"{provided.functype} != expected {expected}"
                        )
                    self.func_addrs.append(provided.addr)
                else:
                    raise LinkError(
                        f"import {imp.module}.{imp.name} is not a function"
                    )
            elif imp.kind == "mem":
                if not isinstance(provided, Memory):
                    raise LinkError(f"import {imp.module}.{imp.name} is not a memory")
                if provided.size_pages < imp.desc.minimum:
                    raise LinkError(
                        f"imported memory too small: {provided.size_pages} "
                        f"< {imp.desc.minimum} pages"
                    )
                self.memory = provided
            elif imp.kind == "table":
                if not isinstance(provided, Table):
                    raise LinkError(f"import {imp.module}.{imp.name} is not a table")
                self.table = provided
            elif imp.kind == "global":
                if not isinstance(provided, GlobalInstance):
                    raise LinkError(f"import {imp.module}.{imp.name} is not a global")
                if provided.gtype != imp.desc:
                    raise LinkError(
                        f"import {imp.module}.{imp.name}: global type mismatch"
                    )
                self.globals.append(provided)

        # --- allocate module-defined entities -------------------------------
        # compiled bodies come from the process-wide cache: instances of the
        # same module bytes share one lowering per engine
        from repro.wasm.codecache import compiled_bodies

        bodies = compiled_bodies(module, self.engine)
        for i, type_index in enumerate(module.funcs):
            functype = module.types[type_index]
            self.func_addrs.append(
                self.store.alloc_func(ModuleFunc(functype, bodies[i], self))
            )

        if module.mems:
            self.memory = Memory(module.mems[0])
        if module.tables:
            self.table = Table(module.tables[0])

        for glob in module.globals:
            value = _eval_const(self, glob.init)
            self.globals.append(GlobalInstance(glob.gtype, value))

        # --- element and data segments (bounds-checked) ---------------------
        for elem in module.elems:
            offset = _eval_const(self, elem.offset)
            if self.table is None:
                raise LinkError("element segment without table")
            if offset + len(elem.func_indices) > len(self.table.elements):
                raise LinkError("element segment out of table bounds")
            for j, func_index in enumerate(elem.func_indices):
                self.table.elements[offset + j] = self.func_addrs[func_index]

        for seg in module.datas:
            offset = _eval_const(self, seg.offset)
            if self.memory is None:
                raise LinkError("data segment without memory")
            if offset + len(seg.payload) > self.memory.size_bytes:
                raise LinkError("data segment out of memory bounds")
            self.memory.write(offset, seg.payload)

        self._exports = module.export_map()

        if module.start is not None:
            self.invoke_index(module.start, [], 0)

    # ----- state snapshot (checkpoint/restore) -------------------------

    def capture_state(self) -> InstanceState:
        """Snapshot linear memory and mutable globals."""
        memory = bytes(self.memory.data) if self.memory is not None else b""
        mutable = tuple(
            (index, glob.value)
            for index, glob in enumerate(self.globals)
            if glob.gtype.mutable
        )
        return InstanceState(memory=memory, globals=mutable)

    def restore_state(self, state: InstanceState) -> None:
        """Write a snapshot back into this instance.

        Intended for a *fresh* instance of the same module: memory is grown
        to the snapshot size if needed and overwritten, mutable globals are
        replaced.  Raises :class:`LinkError` if memory cannot reach the
        snapshot size (limits mismatch — snapshot from a different module).
        """
        if state.memory and self.memory is not None:
            deficit = state.memory_pages - self.memory.size_pages
            if deficit > 0 and self.memory.grow(deficit) < 0:
                raise LinkError(
                    f"cannot grow memory to snapshot size "
                    f"({state.memory_pages} pages)"
                )
            self.memory.data[: len(state.memory)] = state.memory
        for index, value in state.globals:
            self.globals[index].value = value

    # ------------------------------------------------------------------

    def export_names(self) -> list[str]:
        return sorted(self._exports)

    def get_export(self, name: str):
        """Return the runtime object behind an export (func handle, memory...)."""
        export = self._exports.get(name)
        if export is None:
            raise LinkError(f"no export named {name!r}")
        if export.kind == "func":
            addr = self.func_addrs[export.index]
            return ExportedFunc(self.store.funcs[addr].functype, addr, self)
        if export.kind == "mem":
            return self.memory
        if export.kind == "table":
            return self.table
        return self.globals[export.index]

    def exports(self) -> dict[str, Any]:
        return {name: self.get_export(name) for name in self._exports}

    def call(self, name: str, *args, fuel: int | None = "unset"):
        """Call an exported function by name.

        ``fuel`` (if given, including ``None``) replaces the store's fuel
        budget for this call.  Returns a single value, or ``None`` for
        void functions.  Integer results are returned in *signed*
        interpretation (the natural embedding for Python callers).
        """
        export = self._exports.get(name)
        if export is None or export.kind != "func":
            raise LinkError(f"no exported function named {name!r}")
        if fuel != "unset":
            self.store.fuel = fuel
        addr = self.func_addrs[export.index]
        functype = self.store.funcs[addr].functype
        if len(args) != len(functype.params):
            raise TypeError(
                f"{name} expects {len(functype.params)} args, got {len(args)}"
            )
        stack = [
            _normalize_arg(a, vt) for a, vt in zip(args, functype.params)
        ]
        results = self.invoke_addr(addr, stack, 0)
        if not functype.results:
            return None
        value = results[0]
        rt = functype.results[0]
        if rt == ValType.I32:
            return value - (1 << 32) if value & 0x80000000 else value
        if rt == ValType.I64:
            return value - (1 << 64) if value & (1 << 63) else value
        return value

    # ----- internal invocation (used by the interpreter for `call`) -------

    def invoke_index(self, func_index: int, stack: list, depth: int) -> Sequence:
        """Invoke by module-level function index; pops args from ``stack``."""
        return self.invoke_addr(self.func_addrs[func_index], stack, depth)

    def invoke_addr(self, addr: int, stack: list, depth: int) -> Sequence:
        func = self.store.funcs[addr]
        n_params = len(func.functype.params)
        if n_params:
            args = stack[len(stack) - n_params :]
            del stack[len(stack) - n_params :]
        else:
            args = []
        if isinstance(func, HostFunc):
            result = func.fn(self, *args)
            result_types = func.functype.results
            # fast path: single scalar result (the overwhelmingly common case)
            if (
                len(result_types) == 1
                and not isinstance(result, tuple)
                and result is not None
            ):
                rt = result_types[0]
                if rt is ValType.I32:
                    return (int(result) & MASK32,)
                if rt is ValType.I64:
                    return (int(result) & MASK64,)
                return (_normalize_arg(result, rt),)
            if result is None:
                results: list = []
            elif isinstance(result, tuple):
                results = list(result)
            else:
                results = [result]
            if len(results) != len(result_types):
                raise Trap(
                    f"host function {func.name} returned {len(results)} values, "
                    f"declared {len(result_types)}",
                    code="host",
                )
            return [
                _normalize_arg(v, vt) for v, vt in zip(results, result_types)
            ]
        prepared = func.prepared
        if prepared.__class__ is ThreadedCode:
            return execute_threaded(
                self.store,
                func.instance,
                prepared,
                args,
                len(func.functype.results),
                depth,
            )
        if prepared.__class__ is AotCode:
            return execute_aot(
                self.store,
                func.instance,
                prepared,
                args,
                len(func.functype.results),
                depth,
            )
        return execute(
            self.store,
            func.instance,
            prepared,
            args,
            len(func.functype.results),
            depth,
        )


@dataclass
class ExportedFunc:
    """Handle to an exported function, usable as an import elsewhere."""

    functype: FuncType
    addr: int
    instance: Instance

    def __call__(self, *args):
        stack = [
            _normalize_arg(a, vt) for a, vt in zip(args, self.functype.params)
        ]
        results = self.instance.invoke_addr(self.addr, stack, 0)
        return results[0] if self.functype.results else None
