"""WebAssembly MVP opcode table.

Each opcode is listed with its canonical spec mnemonic and the kind of
immediate operands it carries in the binary format.  The decoder,
validator, interpreter and assembler all key off this single table so the
instruction set cannot drift between components.

Immediate kinds:

- ``none``        no immediates
- ``block``       a block type (0x40 empty or a value type)
- ``label``       one label index (u32)
- ``br_table``    vector of label indices plus default
- ``func``        function index (u32)
- ``call_ind``    type index + reserved table byte
- ``local``       local index (u32)
- ``global``      global index (u32)
- ``mem``         alignment + offset (two u32s)
- ``mem_misc``    single reserved zero byte (memory.size / memory.grow)
- ``i32``/``i64`` signed LEB literal
- ``f32``/``f64`` IEEE-754 little-endian literal
"""

from __future__ import annotations

from dataclasses import dataclass

# --- control ---------------------------------------------------------------
UNREACHABLE = 0x00
NOP = 0x01
BLOCK = 0x02
LOOP = 0x03
IF = 0x04
ELSE = 0x05
END = 0x0B
BR = 0x0C
BR_IF = 0x0D
BR_TABLE = 0x0E
RETURN = 0x0F
CALL = 0x10
CALL_INDIRECT = 0x11

# --- parametric ------------------------------------------------------------
DROP = 0x1A
SELECT = 0x1B

# --- variable --------------------------------------------------------------
LOCAL_GET = 0x20
LOCAL_SET = 0x21
LOCAL_TEE = 0x22
GLOBAL_GET = 0x23
GLOBAL_SET = 0x24

# --- memory ----------------------------------------------------------------
I32_LOAD = 0x28
I64_LOAD = 0x29
F32_LOAD = 0x2A
F64_LOAD = 0x2B
I32_LOAD8_S = 0x2C
I32_LOAD8_U = 0x2D
I32_LOAD16_S = 0x2E
I32_LOAD16_U = 0x2F
I64_LOAD8_S = 0x30
I64_LOAD8_U = 0x31
I64_LOAD16_S = 0x32
I64_LOAD16_U = 0x33
I64_LOAD32_S = 0x34
I64_LOAD32_U = 0x35
I32_STORE = 0x36
I64_STORE = 0x37
F32_STORE = 0x38
F64_STORE = 0x39
I32_STORE8 = 0x3A
I32_STORE16 = 0x3B
I64_STORE8 = 0x3C
I64_STORE16 = 0x3D
I64_STORE32 = 0x3E
MEMORY_SIZE = 0x3F
MEMORY_GROW = 0x40

# --- numeric constants -----------------------------------------------------
I32_CONST = 0x41
I64_CONST = 0x42
F32_CONST = 0x43
F64_CONST = 0x44

# --- i32 comparisons -------------------------------------------------------
I32_EQZ = 0x45
I32_EQ = 0x46
I32_NE = 0x47
I32_LT_S = 0x48
I32_LT_U = 0x49
I32_GT_S = 0x4A
I32_GT_U = 0x4B
I32_LE_S = 0x4C
I32_LE_U = 0x4D
I32_GE_S = 0x4E
I32_GE_U = 0x4F

# --- i64 comparisons -------------------------------------------------------
I64_EQZ = 0x50
I64_EQ = 0x51
I64_NE = 0x52
I64_LT_S = 0x53
I64_LT_U = 0x54
I64_GT_S = 0x55
I64_GT_U = 0x56
I64_LE_S = 0x57
I64_LE_U = 0x58
I64_GE_S = 0x59
I64_GE_U = 0x5A

# --- float comparisons -----------------------------------------------------
F32_EQ = 0x5B
F32_NE = 0x5C
F32_LT = 0x5D
F32_GT = 0x5E
F32_LE = 0x5F
F32_GE = 0x60
F64_EQ = 0x61
F64_NE = 0x62
F64_LT = 0x63
F64_GT = 0x64
F64_LE = 0x65
F64_GE = 0x66

# --- i32 arithmetic --------------------------------------------------------
I32_CLZ = 0x67
I32_CTZ = 0x68
I32_POPCNT = 0x69
I32_ADD = 0x6A
I32_SUB = 0x6B
I32_MUL = 0x6C
I32_DIV_S = 0x6D
I32_DIV_U = 0x6E
I32_REM_S = 0x6F
I32_REM_U = 0x70
I32_AND = 0x71
I32_OR = 0x72
I32_XOR = 0x73
I32_SHL = 0x74
I32_SHR_S = 0x75
I32_SHR_U = 0x76
I32_ROTL = 0x77
I32_ROTR = 0x78

# --- i64 arithmetic --------------------------------------------------------
I64_CLZ = 0x79
I64_CTZ = 0x7A
I64_POPCNT = 0x7B
I64_ADD = 0x7C
I64_SUB = 0x7D
I64_MUL = 0x7E
I64_DIV_S = 0x7F
I64_DIV_U = 0x80
I64_REM_S = 0x81
I64_REM_U = 0x82
I64_AND = 0x83
I64_OR = 0x84
I64_XOR = 0x85
I64_SHL = 0x86
I64_SHR_S = 0x87
I64_SHR_U = 0x88
I64_ROTL = 0x89
I64_ROTR = 0x8A

# --- f32 arithmetic --------------------------------------------------------
F32_ABS = 0x8B
F32_NEG = 0x8C
F32_CEIL = 0x8D
F32_FLOOR = 0x8E
F32_TRUNC = 0x8F
F32_NEAREST = 0x90
F32_SQRT = 0x91
F32_ADD = 0x92
F32_SUB = 0x93
F32_MUL = 0x94
F32_DIV = 0x95
F32_MIN = 0x96
F32_MAX = 0x97
F32_COPYSIGN = 0x98

# --- f64 arithmetic --------------------------------------------------------
F64_ABS = 0x99
F64_NEG = 0x9A
F64_CEIL = 0x9B
F64_FLOOR = 0x9C
F64_TRUNC = 0x9D
F64_NEAREST = 0x9E
F64_SQRT = 0x9F
F64_ADD = 0xA0
F64_SUB = 0xA1
F64_MUL = 0xA2
F64_DIV = 0xA3
F64_MIN = 0xA4
F64_MAX = 0xA5
F64_COPYSIGN = 0xA6

# --- conversions -----------------------------------------------------------
I32_WRAP_I64 = 0xA7
I32_TRUNC_F32_S = 0xA8
I32_TRUNC_F32_U = 0xA9
I32_TRUNC_F64_S = 0xAA
I32_TRUNC_F64_U = 0xAB
I64_EXTEND_I32_S = 0xAC
I64_EXTEND_I32_U = 0xAD
I64_TRUNC_F32_S = 0xAE
I64_TRUNC_F32_U = 0xAF
I64_TRUNC_F64_S = 0xB0
I64_TRUNC_F64_U = 0xB1
F32_CONVERT_I32_S = 0xB2
F32_CONVERT_I32_U = 0xB3
F32_CONVERT_I64_S = 0xB4
F32_CONVERT_I64_U = 0xB5
F32_DEMOTE_F64 = 0xB6
F64_CONVERT_I32_S = 0xB7
F64_CONVERT_I32_U = 0xB8
F64_CONVERT_I64_S = 0xB9
F64_CONVERT_I64_U = 0xBA
F64_PROMOTE_F32 = 0xBB
I32_REINTERPRET_F32 = 0xBC
I64_REINTERPRET_F64 = 0xBD
F32_REINTERPRET_I32 = 0xBE
F64_REINTERPRET_I64 = 0xBF

# --- sign extension (post-MVP but universally supported) --------------------
I32_EXTEND8_S = 0xC0
I32_EXTEND16_S = 0xC1
I64_EXTEND8_S = 0xC2
I64_EXTEND16_S = 0xC3
I64_EXTEND32_S = 0xC4


@dataclass(frozen=True)
class OpInfo:
    """Static metadata about one opcode."""

    name: str
    imm: str  # immediate kind, see module docstring


OP_TABLE: dict[int, OpInfo] = {
    UNREACHABLE: OpInfo("unreachable", "none"),
    NOP: OpInfo("nop", "none"),
    BLOCK: OpInfo("block", "block"),
    LOOP: OpInfo("loop", "block"),
    IF: OpInfo("if", "block"),
    ELSE: OpInfo("else", "none"),
    END: OpInfo("end", "none"),
    BR: OpInfo("br", "label"),
    BR_IF: OpInfo("br_if", "label"),
    BR_TABLE: OpInfo("br_table", "br_table"),
    RETURN: OpInfo("return", "none"),
    CALL: OpInfo("call", "func"),
    CALL_INDIRECT: OpInfo("call_indirect", "call_ind"),
    DROP: OpInfo("drop", "none"),
    SELECT: OpInfo("select", "none"),
    LOCAL_GET: OpInfo("local.get", "local"),
    LOCAL_SET: OpInfo("local.set", "local"),
    LOCAL_TEE: OpInfo("local.tee", "local"),
    GLOBAL_GET: OpInfo("global.get", "global"),
    GLOBAL_SET: OpInfo("global.set", "global"),
    I32_LOAD: OpInfo("i32.load", "mem"),
    I64_LOAD: OpInfo("i64.load", "mem"),
    F32_LOAD: OpInfo("f32.load", "mem"),
    F64_LOAD: OpInfo("f64.load", "mem"),
    I32_LOAD8_S: OpInfo("i32.load8_s", "mem"),
    I32_LOAD8_U: OpInfo("i32.load8_u", "mem"),
    I32_LOAD16_S: OpInfo("i32.load16_s", "mem"),
    I32_LOAD16_U: OpInfo("i32.load16_u", "mem"),
    I64_LOAD8_S: OpInfo("i64.load8_s", "mem"),
    I64_LOAD8_U: OpInfo("i64.load8_u", "mem"),
    I64_LOAD16_S: OpInfo("i64.load16_s", "mem"),
    I64_LOAD16_U: OpInfo("i64.load16_u", "mem"),
    I64_LOAD32_S: OpInfo("i64.load32_s", "mem"),
    I64_LOAD32_U: OpInfo("i64.load32_u", "mem"),
    I32_STORE: OpInfo("i32.store", "mem"),
    I64_STORE: OpInfo("i64.store", "mem"),
    F32_STORE: OpInfo("f32.store", "mem"),
    F64_STORE: OpInfo("f64.store", "mem"),
    I32_STORE8: OpInfo("i32.store8", "mem"),
    I32_STORE16: OpInfo("i32.store16", "mem"),
    I64_STORE8: OpInfo("i64.store8", "mem"),
    I64_STORE16: OpInfo("i64.store16", "mem"),
    I64_STORE32: OpInfo("i64.store32", "mem"),
    MEMORY_SIZE: OpInfo("memory.size", "mem_misc"),
    MEMORY_GROW: OpInfo("memory.grow", "mem_misc"),
    I32_CONST: OpInfo("i32.const", "i32"),
    I64_CONST: OpInfo("i64.const", "i64"),
    F32_CONST: OpInfo("f32.const", "f32"),
    F64_CONST: OpInfo("f64.const", "f64"),
    I32_EQZ: OpInfo("i32.eqz", "none"),
    I32_EQ: OpInfo("i32.eq", "none"),
    I32_NE: OpInfo("i32.ne", "none"),
    I32_LT_S: OpInfo("i32.lt_s", "none"),
    I32_LT_U: OpInfo("i32.lt_u", "none"),
    I32_GT_S: OpInfo("i32.gt_s", "none"),
    I32_GT_U: OpInfo("i32.gt_u", "none"),
    I32_LE_S: OpInfo("i32.le_s", "none"),
    I32_LE_U: OpInfo("i32.le_u", "none"),
    I32_GE_S: OpInfo("i32.ge_s", "none"),
    I32_GE_U: OpInfo("i32.ge_u", "none"),
    I64_EQZ: OpInfo("i64.eqz", "none"),
    I64_EQ: OpInfo("i64.eq", "none"),
    I64_NE: OpInfo("i64.ne", "none"),
    I64_LT_S: OpInfo("i64.lt_s", "none"),
    I64_LT_U: OpInfo("i64.lt_u", "none"),
    I64_GT_S: OpInfo("i64.gt_s", "none"),
    I64_GT_U: OpInfo("i64.gt_u", "none"),
    I64_LE_S: OpInfo("i64.le_s", "none"),
    I64_LE_U: OpInfo("i64.le_u", "none"),
    I64_GE_S: OpInfo("i64.ge_s", "none"),
    I64_GE_U: OpInfo("i64.ge_u", "none"),
    F32_EQ: OpInfo("f32.eq", "none"),
    F32_NE: OpInfo("f32.ne", "none"),
    F32_LT: OpInfo("f32.lt", "none"),
    F32_GT: OpInfo("f32.gt", "none"),
    F32_LE: OpInfo("f32.le", "none"),
    F32_GE: OpInfo("f32.ge", "none"),
    F64_EQ: OpInfo("f64.eq", "none"),
    F64_NE: OpInfo("f64.ne", "none"),
    F64_LT: OpInfo("f64.lt", "none"),
    F64_GT: OpInfo("f64.gt", "none"),
    F64_LE: OpInfo("f64.le", "none"),
    F64_GE: OpInfo("f64.ge", "none"),
    I32_CLZ: OpInfo("i32.clz", "none"),
    I32_CTZ: OpInfo("i32.ctz", "none"),
    I32_POPCNT: OpInfo("i32.popcnt", "none"),
    I32_ADD: OpInfo("i32.add", "none"),
    I32_SUB: OpInfo("i32.sub", "none"),
    I32_MUL: OpInfo("i32.mul", "none"),
    I32_DIV_S: OpInfo("i32.div_s", "none"),
    I32_DIV_U: OpInfo("i32.div_u", "none"),
    I32_REM_S: OpInfo("i32.rem_s", "none"),
    I32_REM_U: OpInfo("i32.rem_u", "none"),
    I32_AND: OpInfo("i32.and", "none"),
    I32_OR: OpInfo("i32.or", "none"),
    I32_XOR: OpInfo("i32.xor", "none"),
    I32_SHL: OpInfo("i32.shl", "none"),
    I32_SHR_S: OpInfo("i32.shr_s", "none"),
    I32_SHR_U: OpInfo("i32.shr_u", "none"),
    I32_ROTL: OpInfo("i32.rotl", "none"),
    I32_ROTR: OpInfo("i32.rotr", "none"),
    I64_CLZ: OpInfo("i64.clz", "none"),
    I64_CTZ: OpInfo("i64.ctz", "none"),
    I64_POPCNT: OpInfo("i64.popcnt", "none"),
    I64_ADD: OpInfo("i64.add", "none"),
    I64_SUB: OpInfo("i64.sub", "none"),
    I64_MUL: OpInfo("i64.mul", "none"),
    I64_DIV_S: OpInfo("i64.div_s", "none"),
    I64_DIV_U: OpInfo("i64.div_u", "none"),
    I64_REM_S: OpInfo("i64.rem_s", "none"),
    I64_REM_U: OpInfo("i64.rem_u", "none"),
    I64_AND: OpInfo("i64.and", "none"),
    I64_OR: OpInfo("i64.or", "none"),
    I64_XOR: OpInfo("i64.xor", "none"),
    I64_SHL: OpInfo("i64.shl", "none"),
    I64_SHR_S: OpInfo("i64.shr_s", "none"),
    I64_SHR_U: OpInfo("i64.shr_u", "none"),
    I64_ROTL: OpInfo("i64.rotl", "none"),
    I64_ROTR: OpInfo("i64.rotr", "none"),
    F32_ABS: OpInfo("f32.abs", "none"),
    F32_NEG: OpInfo("f32.neg", "none"),
    F32_CEIL: OpInfo("f32.ceil", "none"),
    F32_FLOOR: OpInfo("f32.floor", "none"),
    F32_TRUNC: OpInfo("f32.trunc", "none"),
    F32_NEAREST: OpInfo("f32.nearest", "none"),
    F32_SQRT: OpInfo("f32.sqrt", "none"),
    F32_ADD: OpInfo("f32.add", "none"),
    F32_SUB: OpInfo("f32.sub", "none"),
    F32_MUL: OpInfo("f32.mul", "none"),
    F32_DIV: OpInfo("f32.div", "none"),
    F32_MIN: OpInfo("f32.min", "none"),
    F32_MAX: OpInfo("f32.max", "none"),
    F32_COPYSIGN: OpInfo("f32.copysign", "none"),
    F64_ABS: OpInfo("f64.abs", "none"),
    F64_NEG: OpInfo("f64.neg", "none"),
    F64_CEIL: OpInfo("f64.ceil", "none"),
    F64_FLOOR: OpInfo("f64.floor", "none"),
    F64_TRUNC: OpInfo("f64.trunc", "none"),
    F64_NEAREST: OpInfo("f64.nearest", "none"),
    F64_SQRT: OpInfo("f64.sqrt", "none"),
    F64_ADD: OpInfo("f64.add", "none"),
    F64_SUB: OpInfo("f64.sub", "none"),
    F64_MUL: OpInfo("f64.mul", "none"),
    F64_DIV: OpInfo("f64.div", "none"),
    F64_MIN: OpInfo("f64.min", "none"),
    F64_MAX: OpInfo("f64.max", "none"),
    F64_COPYSIGN: OpInfo("f64.copysign", "none"),
    I32_WRAP_I64: OpInfo("i32.wrap_i64", "none"),
    I32_TRUNC_F32_S: OpInfo("i32.trunc_f32_s", "none"),
    I32_TRUNC_F32_U: OpInfo("i32.trunc_f32_u", "none"),
    I32_TRUNC_F64_S: OpInfo("i32.trunc_f64_s", "none"),
    I32_TRUNC_F64_U: OpInfo("i32.trunc_f64_u", "none"),
    I64_EXTEND_I32_S: OpInfo("i64.extend_i32_s", "none"),
    I64_EXTEND_I32_U: OpInfo("i64.extend_i32_u", "none"),
    I64_TRUNC_F32_S: OpInfo("i64.trunc_f32_s", "none"),
    I64_TRUNC_F32_U: OpInfo("i64.trunc_f32_u", "none"),
    I64_TRUNC_F64_S: OpInfo("i64.trunc_f64_s", "none"),
    I64_TRUNC_F64_U: OpInfo("i64.trunc_f64_u", "none"),
    F32_CONVERT_I32_S: OpInfo("f32.convert_i32_s", "none"),
    F32_CONVERT_I32_U: OpInfo("f32.convert_i32_u", "none"),
    F32_CONVERT_I64_S: OpInfo("f32.convert_i64_s", "none"),
    F32_CONVERT_I64_U: OpInfo("f32.convert_i64_u", "none"),
    F32_DEMOTE_F64: OpInfo("f32.demote_f64", "none"),
    F64_CONVERT_I32_S: OpInfo("f64.convert_i32_s", "none"),
    F64_CONVERT_I32_U: OpInfo("f64.convert_i32_u", "none"),
    F64_CONVERT_I64_S: OpInfo("f64.convert_i64_s", "none"),
    F64_CONVERT_I64_U: OpInfo("f64.convert_i64_u", "none"),
    F64_PROMOTE_F32: OpInfo("f64.promote_f32", "none"),
    I32_REINTERPRET_F32: OpInfo("i32.reinterpret_f32", "none"),
    I64_REINTERPRET_F64: OpInfo("i64.reinterpret_f64", "none"),
    F32_REINTERPRET_I32: OpInfo("f32.reinterpret_i32", "none"),
    F64_REINTERPRET_I64: OpInfo("f64.reinterpret_i64", "none"),
    I32_EXTEND8_S: OpInfo("i32.extend8_s", "none"),
    I32_EXTEND16_S: OpInfo("i32.extend16_s", "none"),
    I64_EXTEND8_S: OpInfo("i64.extend8_s", "none"),
    I64_EXTEND16_S: OpInfo("i64.extend16_s", "none"),
    I64_EXTEND32_S: OpInfo("i64.extend32_s", "none"),
}

#: mnemonic -> opcode, for the assembler.
NAME_TO_OP: dict[str, int] = {info.name: op for op, info in OP_TABLE.items()}
