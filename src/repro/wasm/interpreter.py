"""The Wasm execution engine: numeric semantics plus the interpreter loop.

Integer values are represented as unsigned Python ints in ``[0, 2**N)``;
floats as Python floats (f32 results are rounded through a 4-byte pack).
The interpreter assumes a *validated* module: it performs no type checks at
run time, only the dynamic checks the spec requires (memory bounds, table
bounds, signature checks for ``call_indirect``, div-by-zero, trunc range,
stack depth, fuel).
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable

from repro.wasm import opcodes as op
from repro.wasm.module import Code, Instr
from repro.wasm.traps import FuelExhausted, StackExhausted, Trap

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
SIGN32 = 0x80000000
SIGN64 = 0x8000000000000000

# ---------------------------------------------------------------------------
# numeric helpers
# ---------------------------------------------------------------------------


def to_signed(value: int, bits: int) -> int:
    """Reinterpret an unsigned representation as two's-complement signed."""
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def f32_round(x: float) -> float:
    """Round a Python float to the nearest f32 value."""
    try:
        return struct.unpack("<f", struct.pack("<f", x))[0]
    except OverflowError:
        return math.inf if x > 0 else -math.inf


def _idiv_s(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        raise Trap("integer divide by zero", code="div0")
    if sa == -(1 << (bits - 1)) and sb == -1:
        raise Trap("integer overflow", code="overflow")
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_unsigned(q, bits)


def _idiv_u(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero", code="div0")
    return a // b


def _irem_s(a: int, b: int, bits: int) -> int:
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        raise Trap("integer divide by zero", code="div0")
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return to_unsigned(r, bits)


def _irem_u(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero", code="div0")
    return a % b


def _clz(value: int, bits: int) -> int:
    return bits - value.bit_length() if value else bits


def _ctz(value: int, bits: int) -> int:
    return (value & -value).bit_length() - 1 if value else bits


def _rotl(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value << count) | (value >> (bits - count))) & mask


def _rotr(value: int, count: int, bits: int) -> int:
    return _rotl(value, bits - (count % bits), bits)


def _fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:  # min(-0, +0) must be -0
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def _fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def _fnearest(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    rounded = float(round(x))  # Python round is round-half-to-even
    if rounded == 0.0:
        return math.copysign(0.0, x)
    return rounded


def _ftrunc(x: float) -> float:
    if math.isnan(x) or math.isinf(x) or x == 0.0:
        return x
    result = float(math.trunc(x))
    if result == 0.0:
        return math.copysign(0.0, x)
    return result


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if math.isnan(a) or a == 0.0:
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf if sign > 0 else -math.inf
    return a / b


def _trunc_to_int(x: float, lo: int, hi: int, what: str) -> int:
    if math.isnan(x):
        raise Trap(f"invalid conversion to integer ({what} of NaN)", code="trunc")
    if math.isinf(x):
        raise Trap(f"integer overflow ({what} of infinity)", code="trunc")
    t = math.trunc(x)
    if not lo <= t <= hi:
        raise Trap(f"integer overflow ({what} of {x!r})", code="trunc")
    return t


def _reinterpret_f2i(x: float, fmt: str, bits: int) -> int:
    return int.from_bytes(struct.pack(fmt, x), "little")


def _reinterpret_i2f(value: int, bits: int, fmt: str) -> float:
    return struct.unpack(fmt, value.to_bytes(bits // 8, "little"))[0]


# ---------------------------------------------------------------------------
# dispatch tables: opcode -> python function over raw stack values
# ---------------------------------------------------------------------------

BINOPS: dict[int, Callable[[Any, Any], Any]] = {
    op.I32_ADD: lambda a, b: (a + b) & MASK32,
    op.I32_SUB: lambda a, b: (a - b) & MASK32,
    op.I32_MUL: lambda a, b: (a * b) & MASK32,
    op.I32_DIV_S: lambda a, b: _idiv_s(a, b, 32),
    op.I32_DIV_U: _idiv_u,
    op.I32_REM_S: lambda a, b: _irem_s(a, b, 32),
    op.I32_REM_U: _irem_u,
    op.I32_AND: lambda a, b: a & b,
    op.I32_OR: lambda a, b: a | b,
    op.I32_XOR: lambda a, b: a ^ b,
    op.I32_SHL: lambda a, b: (a << (b % 32)) & MASK32,
    op.I32_SHR_U: lambda a, b: a >> (b % 32),
    op.I32_SHR_S: lambda a, b: to_unsigned(to_signed(a, 32) >> (b % 32), 32),
    op.I32_ROTL: lambda a, b: _rotl(a, b, 32),
    op.I32_ROTR: lambda a, b: _rotr(a, b, 32),
    op.I64_ADD: lambda a, b: (a + b) & MASK64,
    op.I64_SUB: lambda a, b: (a - b) & MASK64,
    op.I64_MUL: lambda a, b: (a * b) & MASK64,
    op.I64_DIV_S: lambda a, b: _idiv_s(a, b, 64),
    op.I64_DIV_U: _idiv_u,
    op.I64_REM_S: lambda a, b: _irem_s(a, b, 64),
    op.I64_REM_U: _irem_u,
    op.I64_AND: lambda a, b: a & b,
    op.I64_OR: lambda a, b: a | b,
    op.I64_XOR: lambda a, b: a ^ b,
    op.I64_SHL: lambda a, b: (a << (b % 64)) & MASK64,
    op.I64_SHR_U: lambda a, b: a >> (b % 64),
    op.I64_SHR_S: lambda a, b: to_unsigned(to_signed(a, 64) >> (b % 64), 64),
    op.I64_ROTL: lambda a, b: _rotl(a, b, 64),
    op.I64_ROTR: lambda a, b: _rotr(a, b, 64),
    # comparisons produce i32 0/1
    op.I32_EQ: lambda a, b: int(a == b),
    op.I32_NE: lambda a, b: int(a != b),
    op.I32_LT_S: lambda a, b: int(to_signed(a, 32) < to_signed(b, 32)),
    op.I32_LT_U: lambda a, b: int(a < b),
    op.I32_GT_S: lambda a, b: int(to_signed(a, 32) > to_signed(b, 32)),
    op.I32_GT_U: lambda a, b: int(a > b),
    op.I32_LE_S: lambda a, b: int(to_signed(a, 32) <= to_signed(b, 32)),
    op.I32_LE_U: lambda a, b: int(a <= b),
    op.I32_GE_S: lambda a, b: int(to_signed(a, 32) >= to_signed(b, 32)),
    op.I32_GE_U: lambda a, b: int(a >= b),
    op.I64_EQ: lambda a, b: int(a == b),
    op.I64_NE: lambda a, b: int(a != b),
    op.I64_LT_S: lambda a, b: int(to_signed(a, 64) < to_signed(b, 64)),
    op.I64_LT_U: lambda a, b: int(a < b),
    op.I64_GT_S: lambda a, b: int(to_signed(a, 64) > to_signed(b, 64)),
    op.I64_GT_U: lambda a, b: int(a > b),
    op.I64_LE_S: lambda a, b: int(to_signed(a, 64) <= to_signed(b, 64)),
    op.I64_LE_U: lambda a, b: int(a <= b),
    op.I64_GE_S: lambda a, b: int(to_signed(a, 64) >= to_signed(b, 64)),
    op.I64_GE_U: lambda a, b: int(a >= b),
    op.F32_EQ: lambda a, b: int(a == b),
    op.F32_NE: lambda a, b: int(a != b),
    op.F32_LT: lambda a, b: int(a < b),
    op.F32_GT: lambda a, b: int(a > b),
    op.F32_LE: lambda a, b: int(a <= b),
    op.F32_GE: lambda a, b: int(a >= b),
    op.F64_EQ: lambda a, b: int(a == b),
    op.F64_NE: lambda a, b: int(a != b),
    op.F64_LT: lambda a, b: int(a < b),
    op.F64_GT: lambda a, b: int(a > b),
    op.F64_LE: lambda a, b: int(a <= b),
    op.F64_GE: lambda a, b: int(a >= b),
    op.F32_ADD: lambda a, b: f32_round(a + b),
    op.F32_SUB: lambda a, b: f32_round(a - b),
    op.F32_MUL: lambda a, b: f32_round(a * b),
    op.F32_DIV: lambda a, b: f32_round(_fdiv(a, b)),
    op.F32_MIN: lambda a, b: f32_round(_fmin(a, b)),
    op.F32_MAX: lambda a, b: f32_round(_fmax(a, b)),
    op.F32_COPYSIGN: lambda a, b: math.copysign(a, b) if not math.isnan(a) else a,
    op.F64_ADD: lambda a, b: a + b,
    op.F64_SUB: lambda a, b: a - b,
    op.F64_MUL: lambda a, b: a * b,
    op.F64_DIV: _fdiv,
    op.F64_MIN: _fmin,
    op.F64_MAX: _fmax,
    op.F64_COPYSIGN: lambda a, b: math.copysign(a, b) if not math.isnan(a) else a,
}

UNOPS: dict[int, Callable[[Any], Any]] = {
    op.I32_EQZ: lambda a: int(a == 0),
    op.I64_EQZ: lambda a: int(a == 0),
    op.I32_CLZ: lambda a: _clz(a, 32),
    op.I32_CTZ: lambda a: _ctz(a, 32),
    op.I32_POPCNT: lambda a: bin(a).count("1"),
    op.I64_CLZ: lambda a: _clz(a, 64),
    op.I64_CTZ: lambda a: _ctz(a, 64),
    op.I64_POPCNT: lambda a: bin(a).count("1"),
    op.F32_ABS: lambda a: abs(a),
    op.F32_NEG: lambda a: -a if not math.isnan(a) else math.copysign(math.nan, -math.copysign(1.0, a)),
    op.F32_CEIL: lambda a: f32_round(math.ceil(a)) if math.isfinite(a) and a != 0 else a,
    op.F32_FLOOR: lambda a: f32_round(math.floor(a)) if math.isfinite(a) and a != 0 else a,
    op.F32_TRUNC: lambda a: f32_round(_ftrunc(a)),
    op.F32_NEAREST: lambda a: f32_round(_fnearest(a)),
    op.F32_SQRT: lambda a: f32_round(math.sqrt(a)) if a >= 0 else math.nan,
    op.F64_ABS: lambda a: abs(a),
    op.F64_NEG: lambda a: -a if not math.isnan(a) else math.copysign(math.nan, -math.copysign(1.0, a)),
    op.F64_CEIL: lambda a: float(math.ceil(a)) if math.isfinite(a) and a != 0 else a,
    op.F64_FLOOR: lambda a: float(math.floor(a)) if math.isfinite(a) and a != 0 else a,
    op.F64_TRUNC: _ftrunc,
    op.F64_NEAREST: _fnearest,
    op.F64_SQRT: lambda a: math.sqrt(a) if a >= 0 else math.nan,
    op.I32_WRAP_I64: lambda a: a & MASK32,
    op.I32_TRUNC_F32_S: lambda a: to_unsigned(_trunc_to_int(a, -SIGN32, SIGN32 - 1, "i32.trunc_f32_s"), 32),
    op.I32_TRUNC_F32_U: lambda a: _trunc_to_int(a, 0, MASK32, "i32.trunc_f32_u"),
    op.I32_TRUNC_F64_S: lambda a: to_unsigned(_trunc_to_int(a, -SIGN32, SIGN32 - 1, "i32.trunc_f64_s"), 32),
    op.I32_TRUNC_F64_U: lambda a: _trunc_to_int(a, 0, MASK32, "i32.trunc_f64_u"),
    op.I64_EXTEND_I32_S: lambda a: to_unsigned(to_signed(a, 32), 64),
    op.I64_EXTEND_I32_U: lambda a: a,
    op.I64_TRUNC_F32_S: lambda a: to_unsigned(_trunc_to_int(a, -SIGN64, SIGN64 - 1, "i64.trunc_f32_s"), 64),
    op.I64_TRUNC_F32_U: lambda a: _trunc_to_int(a, 0, MASK64, "i64.trunc_f32_u"),
    op.I64_TRUNC_F64_S: lambda a: to_unsigned(_trunc_to_int(a, -SIGN64, SIGN64 - 1, "i64.trunc_f64_s"), 64),
    op.I64_TRUNC_F64_U: lambda a: _trunc_to_int(a, 0, MASK64, "i64.trunc_f64_u"),
    op.F32_CONVERT_I32_S: lambda a: f32_round(float(to_signed(a, 32))),
    op.F32_CONVERT_I32_U: lambda a: f32_round(float(a)),
    op.F32_CONVERT_I64_S: lambda a: f32_round(float(to_signed(a, 64))),
    op.F32_CONVERT_I64_U: lambda a: f32_round(float(a)),
    op.F32_DEMOTE_F64: f32_round,
    op.F64_CONVERT_I32_S: lambda a: float(to_signed(a, 32)),
    op.F64_CONVERT_I32_U: lambda a: float(a),
    op.F64_CONVERT_I64_S: lambda a: float(to_signed(a, 64)),
    op.F64_CONVERT_I64_U: lambda a: float(a),
    op.F64_PROMOTE_F32: lambda a: a,
    op.I32_REINTERPRET_F32: lambda a: _reinterpret_f2i(a, "<f", 32),
    op.I64_REINTERPRET_F64: lambda a: _reinterpret_f2i(a, "<d", 64),
    op.F32_REINTERPRET_I32: lambda a: _reinterpret_i2f(a, 32, "<f"),
    op.F64_REINTERPRET_I64: lambda a: _reinterpret_i2f(a, 64, "<d"),
    op.I32_EXTEND8_S: lambda a: to_unsigned(to_signed(a & 0xFF, 8), 32),
    op.I32_EXTEND16_S: lambda a: to_unsigned(to_signed(a & 0xFFFF, 16), 32),
    op.I64_EXTEND8_S: lambda a: to_unsigned(to_signed(a & 0xFF, 8), 64),
    op.I64_EXTEND16_S: lambda a: to_unsigned(to_signed(a & 0xFFFF, 16), 64),
    op.I64_EXTEND32_S: lambda a: to_unsigned(to_signed(a & MASK32, 32), 64),
}

#: loads: opcode -> (size, signed, result kind).  The kind names the result
#: type so the unsigned-representation mask is always the *result* width
#: (an i64.load masked at 32 bits would silently truncate the top half).
LOADS: dict[int, tuple[int, bool, str]] = {
    op.I32_LOAD: (4, False, "i32"),
    op.I64_LOAD: (8, False, "i64"),
    op.F32_LOAD: (4, False, "f32"),
    op.F64_LOAD: (8, False, "f64"),
    op.I32_LOAD8_S: (1, True, "i32"),
    op.I32_LOAD8_U: (1, False, "i32"),
    op.I32_LOAD16_S: (2, True, "i32"),
    op.I32_LOAD16_U: (2, False, "i32"),
    op.I64_LOAD8_S: (1, True, "i64"),
    op.I64_LOAD8_U: (1, False, "i64"),
    op.I64_LOAD16_S: (2, True, "i64"),
    op.I64_LOAD16_U: (2, False, "i64"),
    op.I64_LOAD32_S: (4, True, "i64"),
    op.I64_LOAD32_U: (4, False, "i64"),
}

#: stores: opcode -> (size, is_float)
STORES: dict[int, tuple[int, str]] = {
    op.I32_STORE: (4, "i"),
    op.I64_STORE: (8, "i"),
    op.F32_STORE: (4, "f32"),
    op.F64_STORE: (8, "f64"),
    op.I32_STORE8: (1, "i"),
    op.I32_STORE16: (2, "i"),
    op.I64_STORE8: (1, "i"),
    op.I64_STORE16: (2, "i"),
    op.I64_STORE32: (4, "i"),
}


def build_control_map(body: tuple[Instr, ...]) -> dict[int, tuple[int, int | None]]:
    """Map each block/loop/if pc to ``(end_pc, else_pc)``.

    Computed once per function body (see :func:`control_map_for`) so
    branches are O(1) at run time.
    """
    result: dict[int, tuple[int, int | None]] = {}
    stack: list[tuple[int, int | None]] = []  # (start_pc, else_pc)
    for pc, (opcode, _imm) in enumerate(body):
        if opcode in (op.BLOCK, op.LOOP, op.IF):
            stack.append((pc, None))
        elif opcode == op.ELSE:
            start, _ = stack.pop()
            stack.append((start, pc))
        elif opcode == op.END:
            if stack:
                start, else_pc = stack.pop()
                result[start] = (pc, else_pc)
    return result


def control_map_for(code: Code) -> dict[int, tuple[int, int | None]]:
    """Memoized :func:`build_control_map` for a :class:`Code` body.

    Every instantiation of a module used to recompute the map per
    function; caching it on the (immutable) ``Code`` object makes repeat
    instantiation - hot swaps, multi-UE coexistence runs - pay it once.
    """
    cached = getattr(code, "_control_map", None)
    if cached is None:
        cached = build_control_map(code.body)
        object.__setattr__(code, "_control_map", cached)
    return cached


# ---------------------------------------------------------------------------
# precompiled dispatch: each instruction becomes a (tag, ...) tuple so the
# hot loop needs no dict membership tests or control-map lookups
# ---------------------------------------------------------------------------

T_LOCAL_GET = 0
T_CONST = 1
T_BINOP = 2
T_UNOP = 3
T_LOCAL_SET = 4
T_LOCAL_TEE = 5
T_LOAD_I = 6
T_LOAD_F32 = 7
T_LOAD_F64 = 8
T_STORE_I = 9
T_STORE_F32 = 10
T_STORE_F64 = 11
T_BLOCK = 12
T_LOOP = 13
T_IF = 14
T_ELSE = 15
T_END = 16
T_BR = 17
T_BR_IF = 18
T_BR_TABLE = 19
T_RETURN = 20
T_CALL = 21
T_CALL_INDIRECT = 22
T_GLOBAL_GET = 23
T_GLOBAL_SET = 24
T_DROP = 25
T_SELECT = 26
T_MEMSIZE = 27
T_MEMGROW = 28
T_NOP = 29
T_UNREACHABLE = 30


def _compile_ops(
    body: tuple[Instr, ...],
    control: dict[int, tuple[int, int | None]] | None = None,
) -> list[tuple]:
    """Lower decoded instructions into tagged dispatch tuples."""
    if control is None:
        control = build_control_map(body)

    ops: list[tuple] = []
    for pc, (opcode, imm) in enumerate(body):
        if opcode == op.LOCAL_GET:
            ops.append((T_LOCAL_GET, imm))
        elif opcode == op.I32_CONST:
            ops.append((T_CONST, imm & MASK32))
        elif opcode == op.I64_CONST:
            ops.append((T_CONST, imm & MASK64))
        elif opcode == op.F32_CONST:
            ops.append((T_CONST, f32_round(imm)))
        elif opcode == op.F64_CONST:
            ops.append((T_CONST, imm))
        elif opcode in BINOPS:
            ops.append((T_BINOP, BINOPS[opcode]))
        elif opcode in UNOPS:
            ops.append((T_UNOP, UNOPS[opcode]))
        elif opcode == op.LOCAL_SET:
            ops.append((T_LOCAL_SET, imm))
        elif opcode == op.LOCAL_TEE:
            ops.append((T_LOCAL_TEE, imm))
        elif opcode in LOADS:
            size, signed, kind = LOADS[opcode]
            offset = imm[1]
            if kind == "f32":
                ops.append((T_LOAD_F32, offset))
            elif kind == "f64":
                ops.append((T_LOAD_F64, offset))
            else:
                mask = MASK64 if kind == "i64" else MASK32
                ops.append((T_LOAD_I, offset, size, signed, mask))
        elif opcode in STORES:
            size, kind = STORES[opcode]
            offset = imm[1]
            if kind == "f32":
                ops.append((T_STORE_F32, offset))
            elif kind == "f64":
                ops.append((T_STORE_F64, offset))
            else:
                ops.append((T_STORE_I, offset, size))
        elif opcode == op.BLOCK:
            end_pc, _ = control[pc]
            ops.append((T_BLOCK, 0 if imm is None else 1, end_pc + 1))
        elif opcode == op.LOOP:
            ops.append((T_LOOP, pc + 1))
        elif opcode == op.IF:
            end_pc, else_pc = control[pc]
            false_pc = else_pc if else_pc is not None else end_pc - 1
            ops.append((T_IF, 0 if imm is None else 1, end_pc + 1, false_pc))
        elif opcode == op.ELSE:
            # find the matching END by scanning the control map
            ops.append((T_ELSE, _else_end(control, pc) - 1))
        elif opcode == op.END:
            ops.append((T_END,))
        elif opcode == op.BR:
            ops.append((T_BR, imm))
        elif opcode == op.BR_IF:
            ops.append((T_BR_IF, imm))
        elif opcode == op.BR_TABLE:
            ops.append((T_BR_TABLE, imm[0], imm[1]))
        elif opcode == op.RETURN:
            ops.append((T_RETURN,))
        elif opcode == op.CALL:
            ops.append((T_CALL, imm))
        elif opcode == op.CALL_INDIRECT:
            ops.append((T_CALL_INDIRECT, imm))
        elif opcode == op.GLOBAL_GET:
            ops.append((T_GLOBAL_GET, imm))
        elif opcode == op.GLOBAL_SET:
            ops.append((T_GLOBAL_SET, imm))
        elif opcode == op.DROP:
            ops.append((T_DROP,))
        elif opcode == op.SELECT:
            ops.append((T_SELECT,))
        elif opcode == op.MEMORY_SIZE:
            ops.append((T_MEMSIZE,))
        elif opcode == op.MEMORY_GROW:
            ops.append((T_MEMGROW,))
        elif opcode == op.NOP:
            ops.append((T_NOP,))
        elif opcode == op.UNREACHABLE:
            ops.append((T_UNREACHABLE,))
        else:  # pragma: no cover - validation rejects unknown opcodes
            raise Trap(f"cannot compile opcode 0x{opcode:02x}", code="internal")
    return ops


def _else_end(control: dict[int, tuple[int, int | None]], else_pc: int) -> int:
    for _start, (end_pc, epc) in control.items():
        if epc == else_pc:
            return end_pc
    raise AssertionError("else without recorded end")  # pragma: no cover


#: net operand-stack effect per dispatch tag (calls treated as +1: the
#: worst net push once arguments are consumed).  Used only for the static
#: per-function peak estimate feeding :class:`ExecStats`.
_STACK_DELTAS: dict[int, int] = {
    T_LOCAL_GET: 1, T_CONST: 1, T_GLOBAL_GET: 1, T_MEMSIZE: 1,
    T_CALL: 1, T_CALL_INDIRECT: 1,
    T_UNOP: 0, T_LOCAL_TEE: 0, T_MEMGROW: 0, T_LOAD_I: 0,
    T_LOAD_F32: 0, T_LOAD_F64: 0, T_BLOCK: 0, T_LOOP: 0, T_ELSE: 0,
    T_END: 0, T_NOP: 0, T_UNREACHABLE: 0, T_BR: 0, T_RETURN: 0,
    T_BINOP: -1, T_LOCAL_SET: -1, T_GLOBAL_SET: -1, T_DROP: -1,
    T_BR_IF: -1, T_IF: -1, T_BR_TABLE: -1,
    T_STORE_I: -2, T_STORE_F32: -2, T_STORE_F64: -2, T_SELECT: -2,
}


def _static_max_stack(ops: list[tuple]) -> int:
    """Linear-scan upper-bound of a body's peak operand-stack height.

    An estimate, not the validator's exact type-stack: branch targets are
    ignored and the running height is clamped at zero, so the result is a
    monotone upper bound good enough for observability.
    """
    height = 0
    peak = 0
    for ins in ops:
        height += _STACK_DELTAS.get(ins[0], 0)
        if height < 0:
            height = 0
        elif height > peak:
            peak = height
    return peak


class ExecStats:
    """Per-call interpreter counters, collected only when attached.

    A host opts in by setting ``store.stats = ExecStats()`` before a call;
    the interpreter then updates it once per *function frame* (never per
    instruction, so the counters cost nothing measurable):

    - ``frames``: Wasm function frames entered;
    - ``max_call_depth``: deepest call nesting reached;
    - ``max_value_stack``: peak operand-stack height (static per-function
      upper bound, maxed over entered frames).

    Instruction counts come from fuel accounting (fuel is decremented
    exactly once per executed instruction), so hosts derive them from the
    fuel delta rather than a second per-instruction counter.
    """

    __slots__ = ("frames", "max_call_depth", "max_value_stack")

    def __init__(self) -> None:
        self.frames = 0
        self.max_call_depth = 0
        self.max_value_stack = 0

    def reset(self) -> None:
        self.frames = 0
        self.max_call_depth = 0
        self.max_value_stack = 0


class PreparedCode:
    """A function body lowered to tagged dispatch tuples."""

    __slots__ = ("locals", "body", "ops", "local_defaults", "max_stack")

    def __init__(self, code: Code):
        from repro.wasm.wtypes import ValType

        self.locals = code.locals
        self.body = code.body
        self.ops = _compile_ops(code.body, control_map_for(code))
        self.local_defaults = [
            0 if vt in (ValType.I32, ValType.I64) else 0.0 for vt in code.locals
        ]
        self.max_stack = _static_max_stack(self.ops)


def prepared_for(code: Code) -> PreparedCode:
    """Memoized :class:`PreparedCode` for a ``Code`` body.

    Instances built from the same :class:`~repro.wasm.module.Module`
    object share one lowering instead of re-lowering per instantiation.
    (Instances built from *separate decodes of the same bytes* are deduped
    one level up, by :mod:`repro.wasm.codecache`.)
    """
    cached = getattr(code, "_prepared", None)
    if cached is None:
        cached = PreparedCode(code)
        object.__setattr__(code, "_prepared", cached)
    return cached


class _Label:
    """One entry of a frame's label stack."""

    __slots__ = ("arity", "target", "height", "is_loop")

    def __init__(self, arity: int, target: int, height: int, is_loop: bool):
        self.arity = arity
        self.target = target
        self.height = height
        self.is_loop = is_loop


def execute(store, instance, prepared: PreparedCode, args: list, result_arity: int, depth: int):
    """Run one Wasm function body; returns the result list (0 or 1 values).

    ``store`` carries fuel and limits; ``instance`` resolves functions,
    globals, memory and table.  Calls recurse through
    ``instance.invoke_index``; fuel is kept in a local and synced across
    call boundaries.
    """
    if depth > store.max_call_depth:
        raise StackExhausted(depth)

    stats = store.stats
    if stats is not None:
        stats.frames += 1
        if depth > stats.max_call_depth:
            stats.max_call_depth = depth
        if prepared.max_stack > stats.max_value_stack:
            stats.max_value_stack = prepared.max_stack

    ops = prepared.ops
    locals_: list = args + prepared.local_defaults.copy()
    stack: list = []
    mem = instance.memory
    globals_ = instance.globals
    pc = 0
    n = len(ops)
    labels: list[_Label] = [_Label(result_arity, n, 0, False)]

    fuel_on = store.fuel is not None
    fuel = store.fuel if fuel_on else 0

    try:
        while pc < n:
            if fuel_on:
                fuel -= 1
                if fuel < 0:
                    fuel = 0
                    raise FuelExhausted()
            ins = ops[pc]
            tag = ins[0]

            if tag == T_LOCAL_GET:
                stack.append(locals_[ins[1]])
            elif tag == T_BINOP:
                b = stack.pop()
                stack[-1] = ins[1](stack[-1], b)
            elif tag == T_CONST:
                stack.append(ins[1])
            elif tag == T_LOCAL_SET:
                locals_[ins[1]] = stack.pop()
            elif tag == T_UNOP:
                stack[-1] = ins[1](stack[-1])
            elif tag == T_LOAD_I:
                addr = stack[-1] + ins[1]
                stack[-1] = mem.load_int(addr, ins[2], ins[3]) & ins[4]
            elif tag == T_STORE_I:
                value = stack.pop()
                mem.store_int(stack.pop() + ins[1], value, ins[2])
            elif tag == T_CALL:
                store.fuel = fuel if fuel_on else store.fuel
                results = instance.invoke_index(ins[1], stack, depth + 1)
                if fuel_on:
                    fuel = store.fuel
                stack.extend(results)
            elif tag == T_BR_IF:
                if stack.pop():
                    label = labels[-1 - ins[1]]
                    arity = label.arity
                    values = stack[len(stack) - arity :] if arity else []
                    del stack[label.height :]
                    stack.extend(values)
                    keep = len(labels) - ins[1] - 1
                    if label.is_loop:
                        keep += 1
                    del labels[keep:]
                    pc = label.target - 1
            elif tag == T_IF:
                labels.append(_Label(ins[1], ins[2], len(stack) - 1, False))
                if not stack.pop():
                    pc = ins[3]
            elif tag == T_BLOCK:
                labels.append(_Label(ins[1], ins[2], len(stack), False))
            elif tag == T_LOOP:
                labels.append(_Label(0, ins[1], len(stack), True))
            elif tag == T_END:
                if labels:
                    labels.pop()
            elif tag == T_BR:
                label = labels[-1 - ins[1]]
                arity = label.arity
                values = stack[len(stack) - arity :] if arity else []
                del stack[label.height :]
                stack.extend(values)
                keep = len(labels) - ins[1] - 1
                if label.is_loop:
                    keep += 1
                del labels[keep:]
                pc = label.target - 1
            elif tag == T_ELSE:
                pc = ins[1]
            elif tag == T_LOAD_F64:
                stack[-1] = mem.load_f64(stack[-1] + ins[1])
            elif tag == T_STORE_F64:
                value = stack.pop()
                mem.store_f64(stack.pop() + ins[1], value)
            elif tag == T_LOAD_F32:
                stack[-1] = mem.load_f32(stack[-1] + ins[1])
            elif tag == T_STORE_F32:
                value = stack.pop()
                mem.store_f32(stack.pop() + ins[1], value)
            elif tag == T_GLOBAL_GET:
                stack.append(globals_[ins[1]].value)
            elif tag == T_GLOBAL_SET:
                globals_[ins[1]].value = stack.pop()
            elif tag == T_LOCAL_TEE:
                locals_[ins[1]] = stack[-1]
            elif tag == T_RETURN:
                return stack[len(stack) - result_arity :] if result_arity else []
            elif tag == T_BR_TABLE:
                targets, default = ins[1], ins[2]
                index = stack.pop()
                d = targets[index] if index < len(targets) else default
                label = labels[-1 - d]
                arity = label.arity
                values = stack[len(stack) - arity :] if arity else []
                del stack[label.height :]
                stack.extend(values)
                keep = len(labels) - d - 1
                if label.is_loop:
                    keep += 1
                del labels[keep:]
                pc = label.target - 1
            elif tag == T_CALL_INDIRECT:
                elem_index = stack.pop()
                table = instance.table
                if table is None or elem_index >= len(table.elements):
                    raise Trap("undefined element", code="table_oob")
                func_addr = table.elements[elem_index]
                if func_addr is None:
                    raise Trap("uninitialized element", code="table_null")
                expected = instance.module.types[ins[1]]
                actual = store.funcs[func_addr].functype
                if actual != expected:
                    raise Trap(
                        f"indirect call type mismatch: {actual} != {expected}",
                        code="sig",
                    )
                store.fuel = fuel if fuel_on else store.fuel
                results = instance.invoke_addr(func_addr, stack, depth + 1)
                if fuel_on:
                    fuel = store.fuel
                stack.extend(results)
            elif tag == T_DROP:
                stack.pop()
            elif tag == T_SELECT:
                cond = stack.pop()
                b = stack.pop()
                if not cond:
                    stack[-1] = b
            elif tag == T_MEMSIZE:
                stack.append(mem.size_pages)
            elif tag == T_MEMGROW:
                stack.append(mem.grow(stack.pop()) & MASK32)
            elif tag == T_UNREACHABLE:
                raise Trap("unreachable executed", code="unreachable")
            # T_NOP: nothing
            pc += 1
    finally:
        if fuel_on:
            store.fuel = fuel

    return stack[len(stack) - result_arity :] if result_arity else []
