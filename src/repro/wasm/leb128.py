"""LEB128 variable-length integer encoding (as used by the Wasm binary format).

Wasm uses unsigned LEB128 for sizes/indices and signed LEB128 for integer
literals.  Decoding enforces the spec's bound: an N-bit integer uses at most
``ceil(N/7)`` bytes, and unused bits in the final byte must be a proper sign
extension (signed) or zero (unsigned).
"""

from __future__ import annotations

from repro.wasm.traps import DecodeError


def encode_u(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise ValueError(f"unsigned LEB128 cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s(value: int) -> bytes:
    """Encode a signed integer as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_u(data: bytes, pos: int, bits: int = 32) -> tuple[int, int]:
    """Decode an unsigned LEB128 integer of at most ``bits`` bits.

    Returns ``(value, new_pos)``.  Raises :class:`DecodeError` on overlong
    encodings, out-of-range values, or truncated input.
    """
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos >= len(data):
            raise DecodeError("unexpected end of LEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >> bits:
                raise DecodeError(f"LEB128 value {result} exceeds {bits} bits")
            return result, pos
        shift += 7
    raise DecodeError(f"LEB128 integer too long for u{bits}")


def decode_s(data: bytes, pos: int, bits: int = 32) -> tuple[int, int]:
    """Decode a signed LEB128 integer of at most ``bits`` bits.

    Returns ``(value, new_pos)``.
    """
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos >= len(data):
            raise DecodeError("unexpected end of LEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result |= -1 << shift
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if not lo <= result <= hi:
                raise DecodeError(f"LEB128 value {result} out of s{bits} range")
            return result, pos
    raise DecodeError(f"LEB128 integer too long for s{bits}")
