"""Module validator: the type checker of the Wasm spec.

Implements the operand/control-stack validation algorithm from the spec
appendix.  Validation is what gives Wasm its control-flow integrity: every
branch target, call signature and stack shape is proven correct before a
single instruction runs, so the interpreter can execute without per-step
type checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm import opcodes as op
from repro.wasm.module import Code, Instr, Module
from repro.wasm.traps import ValidationError
from repro.wasm.wtypes import FuncType, GlobalType, ValType

I32, I64, F32, F64 = ValType.I32, ValType.I64, ValType.F32, ValType.F64

#: sentinel for a value of unknown type on a polymorphic (unreachable) stack
_UNKNOWN = None


@dataclass
class _Frame:
    opcode: int  # BLOCK / LOOP / IF / or 0 for the function body
    start_types: tuple[ValType, ...]
    end_types: tuple[ValType, ...]
    height: int
    unreachable: bool = False

    @property
    def label_types(self) -> tuple[ValType, ...]:
        # A branch to a loop re-enters the top, so it takes the start types.
        return self.start_types if self.opcode == op.LOOP else self.end_types


@dataclass
class _Ctx:
    """Validation context for one function body."""

    module: Module
    locals: tuple[ValType, ...]
    result: tuple[ValType, ...]
    stack: list = field(default_factory=list)
    frames: list[_Frame] = field(default_factory=list)

    # ----- operand stack ----------------------------------------------------

    def push(self, vt) -> None:
        self.stack.append(vt)

    def pop(self, expect=_UNKNOWN):
        frame = self.frames[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expect
            raise ValidationError("type mismatch: operand stack underflow")
        actual = self.stack.pop()
        if expect is not _UNKNOWN and actual is not _UNKNOWN and actual != expect:
            raise ValidationError(
                f"type mismatch: expected {expect.short}, got {actual.short}"
            )
        return actual if actual is not _UNKNOWN else expect

    # ----- control stack ----------------------------------------------------

    def push_frame(self, opcode: int, start, end) -> None:
        self.frames.append(_Frame(opcode, start, end, len(self.stack)))
        for vt in start:
            self.push(vt)

    def pop_frame(self) -> _Frame:
        frame = self.frames[-1]
        for vt in reversed(frame.end_types):
            self.pop(vt)
        if len(self.stack) != frame.height:
            raise ValidationError("type mismatch: values left on stack at block end")
        self.frames.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.stack[frame.height :]
        frame.unreachable = True

    def label(self, depth: int) -> _Frame:
        if depth >= len(self.frames):
            raise ValidationError(f"unknown label depth {depth}")
        return self.frames[-1 - depth]


def _block_sig(blocktype) -> tuple[tuple[ValType, ...], tuple[ValType, ...]]:
    if blocktype is None:
        return (), ()
    return (), (blocktype,)


_MEM_OPS: dict[int, tuple[ValType, int, bool]] = {
    # opcode -> (value type, access size, is_store)
    op.I32_LOAD: (I32, 4, False),
    op.I64_LOAD: (I64, 8, False),
    op.F32_LOAD: (F32, 4, False),
    op.F64_LOAD: (F64, 8, False),
    op.I32_LOAD8_S: (I32, 1, False),
    op.I32_LOAD8_U: (I32, 1, False),
    op.I32_LOAD16_S: (I32, 2, False),
    op.I32_LOAD16_U: (I32, 2, False),
    op.I64_LOAD8_S: (I64, 1, False),
    op.I64_LOAD8_U: (I64, 1, False),
    op.I64_LOAD16_S: (I64, 2, False),
    op.I64_LOAD16_U: (I64, 2, False),
    op.I64_LOAD32_S: (I64, 4, False),
    op.I64_LOAD32_U: (I64, 4, False),
    op.I32_STORE: (I32, 4, True),
    op.I64_STORE: (I64, 8, True),
    op.F32_STORE: (F32, 4, True),
    op.F64_STORE: (F64, 8, True),
    op.I32_STORE8: (I32, 1, True),
    op.I32_STORE16: (I32, 2, True),
    op.I64_STORE8: (I64, 1, True),
    op.I64_STORE16: (I64, 2, True),
    op.I64_STORE32: (I64, 4, True),
}

# (in-types, out-type) for all fixed-signature numeric ops
_SIGS: dict[int, tuple[tuple[ValType, ...], ValType]] = {}


def _sig(ops: list[int], ins: tuple[ValType, ...], out: ValType) -> None:
    for opcode in ops:
        _SIGS[opcode] = (ins, out)


_sig([op.I32_EQZ], (I32,), I32)
_sig(
    [op.I32_EQ, op.I32_NE, op.I32_LT_S, op.I32_LT_U, op.I32_GT_S, op.I32_GT_U,
     op.I32_LE_S, op.I32_LE_U, op.I32_GE_S, op.I32_GE_U],
    (I32, I32), I32,
)
_sig([op.I64_EQZ], (I64,), I32)
_sig(
    [op.I64_EQ, op.I64_NE, op.I64_LT_S, op.I64_LT_U, op.I64_GT_S, op.I64_GT_U,
     op.I64_LE_S, op.I64_LE_U, op.I64_GE_S, op.I64_GE_U],
    (I64, I64), I32,
)
_sig([op.F32_EQ, op.F32_NE, op.F32_LT, op.F32_GT, op.F32_LE, op.F32_GE], (F32, F32), I32)
_sig([op.F64_EQ, op.F64_NE, op.F64_LT, op.F64_GT, op.F64_LE, op.F64_GE], (F64, F64), I32)
_sig([op.I32_CLZ, op.I32_CTZ, op.I32_POPCNT, op.I32_EXTEND8_S, op.I32_EXTEND16_S], (I32,), I32)
_sig(
    [op.I32_ADD, op.I32_SUB, op.I32_MUL, op.I32_DIV_S, op.I32_DIV_U, op.I32_REM_S,
     op.I32_REM_U, op.I32_AND, op.I32_OR, op.I32_XOR, op.I32_SHL, op.I32_SHR_S,
     op.I32_SHR_U, op.I32_ROTL, op.I32_ROTR],
    (I32, I32), I32,
)
_sig(
    [op.I64_CLZ, op.I64_CTZ, op.I64_POPCNT, op.I64_EXTEND8_S, op.I64_EXTEND16_S,
     op.I64_EXTEND32_S],
    (I64,), I64,
)
_sig(
    [op.I64_ADD, op.I64_SUB, op.I64_MUL, op.I64_DIV_S, op.I64_DIV_U, op.I64_REM_S,
     op.I64_REM_U, op.I64_AND, op.I64_OR, op.I64_XOR, op.I64_SHL, op.I64_SHR_S,
     op.I64_SHR_U, op.I64_ROTL, op.I64_ROTR],
    (I64, I64), I64,
)
_sig(
    [op.F32_ABS, op.F32_NEG, op.F32_CEIL, op.F32_FLOOR, op.F32_TRUNC,
     op.F32_NEAREST, op.F32_SQRT],
    (F32,), F32,
)
_sig(
    [op.F32_ADD, op.F32_SUB, op.F32_MUL, op.F32_DIV, op.F32_MIN, op.F32_MAX,
     op.F32_COPYSIGN],
    (F32, F32), F32,
)
_sig(
    [op.F64_ABS, op.F64_NEG, op.F64_CEIL, op.F64_FLOOR, op.F64_TRUNC,
     op.F64_NEAREST, op.F64_SQRT],
    (F64,), F64,
)
_sig(
    [op.F64_ADD, op.F64_SUB, op.F64_MUL, op.F64_DIV, op.F64_MIN, op.F64_MAX,
     op.F64_COPYSIGN],
    (F64, F64), F64,
)
_sig([op.I32_WRAP_I64], (I64,), I32)
_sig([op.I32_TRUNC_F32_S, op.I32_TRUNC_F32_U, op.I32_REINTERPRET_F32], (F32,), I32)
_sig([op.I32_TRUNC_F64_S, op.I32_TRUNC_F64_U], (F64,), I32)
_sig([op.I64_EXTEND_I32_S, op.I64_EXTEND_I32_U], (I32,), I64)
_sig([op.I64_TRUNC_F32_S, op.I64_TRUNC_F32_U], (F32,), I64)
_sig([op.I64_TRUNC_F64_S, op.I64_TRUNC_F64_U, op.I64_REINTERPRET_F64], (F64,), I64)
_sig([op.F32_CONVERT_I32_S, op.F32_CONVERT_I32_U, op.F32_REINTERPRET_I32], (I32,), F32)
_sig([op.F32_CONVERT_I64_S, op.F32_CONVERT_I64_U], (I64,), F32)
_sig([op.F32_DEMOTE_F64], (F64,), F32)
_sig([op.F64_CONVERT_I32_S, op.F64_CONVERT_I32_U], (I32,), F64)
_sig([op.F64_CONVERT_I64_S, op.F64_CONVERT_I64_U, op.F64_REINTERPRET_I64], (I64,), F64)
_sig([op.F64_PROMOTE_F32], (F32,), F64)


def _global_types(mod: Module) -> list[GlobalType]:
    types = [imp.desc for imp in mod.imported("global")]
    types.extend(g.gtype for g in mod.globals)
    return types  # type: ignore[return-value]


def _has_memory(mod: Module) -> bool:
    return bool(mod.mems) or mod.num_imported_mems > 0


def _has_table(mod: Module) -> bool:
    return bool(mod.tables) or mod.num_imported_tables > 0


def _validate_const_expr(
    mod: Module, expr: tuple[Instr, ...], expected: ValType, n_imported_globals: int
) -> None:
    """Constant expressions: a single const/global.get followed by end."""
    if len(expr) != 2 or expr[-1][0] != op.END:
        raise ValidationError("constant expression must be one instruction plus end")
    opcode, imm = expr[0]
    const_types = {op.I32_CONST: I32, op.I64_CONST: I64, op.F32_CONST: F32, op.F64_CONST: F64}
    if opcode in const_types:
        actual = const_types[opcode]
    elif opcode == op.GLOBAL_GET:
        if imm >= n_imported_globals:
            raise ValidationError(
                "constant expression may only reference imported globals"
            )
        gt = _global_types(mod)[imm]
        if gt.mutable:
            raise ValidationError("constant expression global must be immutable")
        actual = gt.valtype
    else:
        raise ValidationError(
            f"non-constant opcode 0x{opcode:02x} in constant expression"
        )
    if actual != expected:
        raise ValidationError(
            f"constant expression type {actual.short}, expected {expected.short}"
        )


def _validate_body(mod: Module, func_type: FuncType, code: Code) -> None:
    locals_ = tuple(func_type.params) + code.locals
    ctx = _Ctx(mod, locals_, func_type.results)
    ctx.push_frame(0, (), func_type.results)
    global_types = _global_types(mod)

    for opcode, imm in code.body:
        if opcode == op.UNREACHABLE:
            ctx.set_unreachable()
        elif opcode == op.NOP:
            pass
        elif opcode in (op.BLOCK, op.LOOP):
            start, end = _block_sig(imm)
            ctx.push_frame(opcode, start, end)
        elif opcode == op.IF:
            ctx.pop(I32)
            start, end = _block_sig(imm)
            ctx.push_frame(opcode, start, end)
        elif opcode == op.ELSE:
            frame = ctx.frames[-1]
            if frame.opcode != op.IF:
                raise ValidationError("else without matching if")
            ctx.pop_frame()
            # re-enter as the else arm; mark it ELSE so a second else fails
            ctx.push_frame(op.ELSE, frame.start_types, frame.end_types)
        elif opcode == op.END:
            frame = ctx.frames[-1]
            if frame.opcode == op.IF and frame.end_types != frame.start_types:
                raise ValidationError("if without else must have matching types")
            ctx.pop_frame()
            for vt in frame.end_types:
                ctx.push(vt)
            if not ctx.frames:
                break  # function end
        elif opcode == op.BR:
            for vt in reversed(ctx.label(imm).label_types):
                ctx.pop(vt)
            ctx.set_unreachable()
        elif opcode == op.BR_IF:
            ctx.pop(I32)
            types = ctx.label(imm).label_types
            for vt in reversed(types):
                ctx.pop(vt)
            for vt in types:
                ctx.push(vt)
        elif opcode == op.BR_TABLE:
            targets, default = imm
            ctx.pop(I32)
            default_types = ctx.label(default).label_types
            for t in targets:
                if ctx.label(t).label_types != default_types:
                    raise ValidationError("br_table targets have mismatched types")
            for vt in reversed(default_types):
                ctx.pop(vt)
            ctx.set_unreachable()
        elif opcode == op.RETURN:
            for vt in reversed(ctx.result):
                ctx.pop(vt)
            ctx.set_unreachable()
        elif opcode == op.CALL:
            if imm >= mod.total_funcs:
                raise ValidationError(f"call to unknown function {imm}")
            ft = mod.func_type(imm)
            for vt in reversed(ft.params):
                ctx.pop(vt)
            for vt in ft.results:
                ctx.push(vt)
        elif opcode == op.CALL_INDIRECT:
            if not _has_table(mod):
                raise ValidationError("call_indirect without a table")
            if imm >= len(mod.types):
                raise ValidationError(f"call_indirect unknown type {imm}")
            ctx.pop(I32)
            ft = mod.types[imm]
            for vt in reversed(ft.params):
                ctx.pop(vt)
            for vt in ft.results:
                ctx.push(vt)
        elif opcode == op.DROP:
            ctx.pop()
        elif opcode == op.SELECT:
            ctx.pop(I32)
            a = ctx.pop()
            b = ctx.pop(a)
            ctx.push(b if b is not _UNKNOWN else a)
        elif opcode == op.LOCAL_GET:
            if imm >= len(locals_):
                raise ValidationError(f"unknown local {imm}")
            ctx.push(locals_[imm])
        elif opcode == op.LOCAL_SET:
            if imm >= len(locals_):
                raise ValidationError(f"unknown local {imm}")
            ctx.pop(locals_[imm])
        elif opcode == op.LOCAL_TEE:
            if imm >= len(locals_):
                raise ValidationError(f"unknown local {imm}")
            ctx.pop(locals_[imm])
            ctx.push(locals_[imm])
        elif opcode == op.GLOBAL_GET:
            if imm >= len(global_types):
                raise ValidationError(f"unknown global {imm}")
            ctx.push(global_types[imm].valtype)
        elif opcode == op.GLOBAL_SET:
            if imm >= len(global_types):
                raise ValidationError(f"unknown global {imm}")
            if not global_types[imm].mutable:
                raise ValidationError(f"global {imm} is immutable")
            ctx.pop(global_types[imm].valtype)
        elif opcode in _MEM_OPS:
            if not _has_memory(mod):
                raise ValidationError("memory instruction without a memory")
            vt, size, is_store = _MEM_OPS[opcode]
            align, _offset = imm
            if 1 << align > size:
                raise ValidationError(
                    f"alignment 2**{align} larger than access size {size}"
                )
            if is_store:
                ctx.pop(vt)
                ctx.pop(I32)
            else:
                ctx.pop(I32)
                ctx.push(vt)
        elif opcode == op.MEMORY_SIZE:
            if not _has_memory(mod):
                raise ValidationError("memory.size without a memory")
            ctx.push(I32)
        elif opcode == op.MEMORY_GROW:
            if not _has_memory(mod):
                raise ValidationError("memory.grow without a memory")
            ctx.pop(I32)
            ctx.push(I32)
        elif opcode == op.I32_CONST:
            ctx.push(I32)
        elif opcode == op.I64_CONST:
            ctx.push(I64)
        elif opcode == op.F32_CONST:
            ctx.push(F32)
        elif opcode == op.F64_CONST:
            ctx.push(F64)
        elif opcode in _SIGS:
            ins, out = _SIGS[opcode]
            for vt in reversed(ins):
                ctx.pop(vt)
            ctx.push(out)
        else:
            raise ValidationError(f"unvalidatable opcode 0x{opcode:02x}")

    if ctx.frames:
        raise ValidationError("function body missing end")


def validate_module(mod: Module) -> None:
    """Validate an entire module; raises :class:`ValidationError` on failure."""
    for type_index in mod.funcs:
        if type_index >= len(mod.types):
            raise ValidationError(f"function type index {type_index} out of range")
    for imp in mod.imports:
        if imp.kind == "func" and imp.desc >= len(mod.types):
            raise ValidationError(
                f"import {imp.module}.{imp.name} type index out of range"
            )

    if len(mod.mems) + mod.num_imported_mems > 1:
        raise ValidationError("at most one memory is allowed (MVP)")
    if len(mod.tables) + mod.num_imported_tables > 1:
        raise ValidationError("at most one table is allowed (MVP)")

    n_imported_globals = mod.num_imported_globals
    for i, glob in enumerate(mod.globals):
        _validate_const_expr(mod, glob.init, glob.gtype.valtype, n_imported_globals)

    counts = {
        "func": mod.total_funcs,
        "table": len(mod.tables) + mod.num_imported_tables,
        "mem": len(mod.mems) + mod.num_imported_mems,
        "global": n_imported_globals + len(mod.globals),
    }
    for export in mod.exports:
        if export.index >= counts[export.kind]:
            raise ValidationError(
                f"export {export.name!r}: {export.kind} index {export.index} "
                f"out of range"
            )

    if mod.start is not None:
        if mod.start >= mod.total_funcs:
            raise ValidationError(f"start function {mod.start} out of range")
        ft = mod.func_type(mod.start)
        if ft.params or ft.results:
            raise ValidationError("start function must have type [] -> []")

    for elem in mod.elems:
        if not _has_table(mod):
            raise ValidationError("element segment without a table")
        _validate_const_expr(mod, elem.offset, I32, n_imported_globals)
        for func_index in elem.func_indices:
            if func_index >= mod.total_funcs:
                raise ValidationError(f"element function {func_index} out of range")

    for seg in mod.datas:
        if not _has_memory(mod):
            raise ValidationError("data segment without a memory")
        _validate_const_expr(mod, seg.offset, I32, n_imported_globals)

    n_imported_funcs = mod.num_imported_funcs
    for i, code in enumerate(mod.codes):
        func_type = mod.func_type(n_imported_funcs + i)
        try:
            _validate_body(mod, func_type, code)
        except ValidationError as exc:
            raise ValidationError(f"in function {n_imported_funcs + i}: {exc}") from None
