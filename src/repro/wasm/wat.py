"""A WAT (WebAssembly text format) assembler.

Supports the practical subset of WAT used throughout this repository:

- module fields: ``func``, ``memory``, ``data``, ``global``, ``table``,
  ``elem``, ``import``, ``export``, ``start``
- named identifiers (``$name``) for functions, locals, globals and labels
- inline ``(export "...")`` / ``(import "m" "n")`` abbreviations on funcs,
  memories and globals
- both folded instruction expressions ``(i32.add (local.get $a) ...)`` and
  flat instruction sequences, including ``block``/``loop``/``if`` with
  ``then``/``else`` arms
- integer literals in decimal and hex, float literals, string literals with
  escapes for data segments

The output is standard binary Wasm (via :mod:`repro.wasm.encoder`), decoded
and validated like any other module.
"""

from __future__ import annotations

import re
from typing import Any

from repro.wasm import opcodes as ops
from repro.wasm.encoder import encode_module
from repro.wasm.module import (
    Code,
    DataSegment,
    ElemSegment,
    Export,
    Global,
    Import,
    Instr,
    Module,
)
from repro.wasm.wtypes import FuncType, GlobalType, Limits, ValType


class WatError(ValueError):
    """Raised for syntax or resolution errors in WAT source."""


_TOKEN_RE = re.compile(
    r"""
    (?P<blockcomment>\(;.*?;\)) |
    (?P<comment>;;[^\n]*) |
    (?P<lparen>\() |
    (?P<rparen>\)) |
    (?P<string>"(?:\\.|[^"\\])*") |
    (?P<atom>[^\s()";]+)
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise WatError(f"bad character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("comment", "blockcomment"):
            continue
        tokens.append(m.group())
    return tokens


def _parse_sexprs(tokens: list[str]) -> list[Any]:
    """Parse a token stream into nested lists; atoms stay strings."""
    stack: list[list] = [[]]
    for tok in tokens:
        if tok == "(":
            new: list = []
            stack[-1].append(new)
            stack.append(new)
        elif tok == ")":
            if len(stack) == 1:
                raise WatError("unbalanced ')'")
            stack.pop()
        else:
            stack[-1].append(tok)
    if len(stack) != 1:
        raise WatError("unbalanced '('")
    return stack[0]


def _unescape(string_token: str) -> bytes:
    body = string_token[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.extend(ch.encode("utf-8"))
            i += 1
            continue
        nxt = body[i + 1]
        if nxt == "n":
            out.append(10)
            i += 2
        elif nxt == "t":
            out.append(9)
            i += 2
        elif nxt == "\\":
            out.append(92)
            i += 2
        elif nxt == '"':
            out.append(34)
            i += 2
        elif re.match(r"[0-9a-fA-F]{2}", body[i + 1 : i + 3]):
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            raise WatError(f"bad escape \\{nxt}")
    return bytes(out)


def _parse_int(atom: str) -> int:
    atom = atom.replace("_", "")
    return int(atom, 16) if atom.lower().startswith(("0x", "-0x", "+0x")) else int(atom)


def _parse_float(atom: str) -> float:
    atom = atom.replace("_", "")
    if atom in ("inf", "+inf"):
        return float("inf")
    if atom == "-inf":
        return float("-inf")
    if atom.lstrip("+-").startswith("nan"):
        return float("nan")
    return float(atom)


_VALTYPES = {"i32": ValType.I32, "i64": ValType.I64, "f32": ValType.F32, "f64": ValType.F64}


class _FuncBuilder:
    """Assembles one function body: locals, labels, instruction stream."""

    def __init__(self, asm: "_Assembler", params: list[tuple[str | None, ValType]]):
        self.asm = asm
        self.local_names: dict[str, int] = {}
        self.locals: list[ValType] = []
        self.n_params = len(params)
        for i, (name, _vt) in enumerate(params):
            if name:
                self.local_names[name] = i
        self.instrs: list[Instr] = []
        self.label_stack: list[str | None] = []

    def add_local(self, name: str | None, vt: ValType) -> None:
        index = self.n_params + len(self.locals)
        if name:
            self.local_names[name] = index
        self.locals.append(vt)

    def resolve_local(self, tok: str) -> int:
        if tok.startswith("$"):
            if tok not in self.local_names:
                raise WatError(f"unknown local {tok}")
            return self.local_names[tok]
        return _parse_int(tok)

    def resolve_label(self, tok: str) -> int:
        if tok.startswith("$"):
            for depth, name in enumerate(reversed(self.label_stack)):
                if name == tok:
                    return depth
            raise WatError(f"unknown label {tok}")
        return _parse_int(tok)

    # ----- instruction emission --------------------------------------------

    def emit_seq(self, items: list[Any]) -> None:
        i = 0
        while i < len(items):
            i = self.emit_one(items, i)

    def emit_one(self, items: list[Any], i: int) -> int:
        item = items[i]
        if isinstance(item, list):
            self.emit_folded(item)
            return i + 1
        # flat form: consume mnemonic + any immediates
        return self.emit_flat(items, i)

    def _block_result(self, parts: list[Any], j: int) -> tuple[ValType | None, int]:
        if (
            j < len(parts)
            and isinstance(parts[j], list)
            and parts[j]
            and parts[j][0] == "result"
        ):
            if len(parts[j]) != 2:
                raise WatError("block result must name exactly one type (MVP)")
            return _VALTYPES[parts[j][1]], j + 1
        return None, j

    def emit_folded(self, expr: list[Any]) -> None:
        if not expr or not isinstance(expr[0], str):
            raise WatError(f"bad instruction expression {expr!r}")
        head = expr[0]

        if head in ("block", "loop"):
            j = 1
            label = None
            if j < len(expr) and isinstance(expr[j], str) and expr[j].startswith("$"):
                label = expr[j]
                j += 1
            result, j = self._block_result(expr, j)
            opcode = ops.BLOCK if head == "block" else ops.LOOP
            self.instrs.append((opcode, result))
            self.label_stack.append(label)
            self.emit_seq(expr[j:])
            self.label_stack.pop()
            self.instrs.append((ops.END, None))
            return

        if head == "if":
            j = 1
            label = None
            if j < len(expr) and isinstance(expr[j], str) and expr[j].startswith("$"):
                label = expr[j]
                j += 1
            result, j = self._block_result(expr, j)
            # condition: everything before the (then ...) arm
            arms_at = j
            while arms_at < len(expr) and not (
                isinstance(expr[arms_at], list)
                and expr[arms_at]
                and expr[arms_at][0] == "then"
            ):
                arms_at += 1
            if arms_at == len(expr):
                raise WatError("folded if requires a (then ...) arm")
            self.emit_seq(expr[j:arms_at])
            self.instrs.append((ops.IF, result))
            self.label_stack.append(label)
            self.emit_seq(expr[arms_at][1:])
            rest = expr[arms_at + 1 :]
            if rest:
                if not (isinstance(rest[0], list) and rest[0] and rest[0][0] == "else"):
                    raise WatError("junk after (then ...) arm")
                self.instrs.append((ops.ELSE, None))
                self.emit_seq(rest[0][1:])
            self.label_stack.pop()
            self.instrs.append((ops.END, None))
            return

        # generic folded op: children are operand expressions, then the op
        if head not in ops.NAME_TO_OP:
            raise WatError(f"unknown instruction {head!r}")
        if (
            head == "call_indirect"
            and len(expr) > 1
            and isinstance(expr[1], list)
            and expr[1][:1] == ["type"]
        ):
            operand_start = 2
        else:
            operand_start = 1 + self._imm_count(head, expr)
        for child in expr[operand_start:]:
            if not isinstance(child, list):
                raise WatError(
                    f"unexpected atom {child!r} in folded {head} (operands must be folded)"
                )
            self.emit_folded(child)
        self._emit_op(head, expr[1:operand_start])

    def _imm_count(self, head: str, expr: list[Any]) -> int:
        """How many leading atoms after the mnemonic are immediates."""
        count = 0
        for item in expr[1:]:
            if isinstance(item, list):
                break
            count += 1
        return count

    def emit_flat(self, items: list[Any], i: int) -> int:
        head = items[i]
        opcode = ops.NAME_TO_OP.get(head)
        if head in ("block", "loop", "if", "else", "end"):
            raise WatError(
                f"flat {head!r} not supported; use the folded (block ...) form"
            )
        if opcode is None:
            raise WatError(f"unknown instruction {head!r}")
        info = ops.OP_TABLE[opcode]
        imms: list[str] = []
        n_imm = {"none": 0, "mem_misc": 0, "block": 0}.get(info.imm, 1)
        if info.imm == "mem":
            # offset=N align=N in any order, both optional
            n_imm = 0
            while i + 1 + n_imm < len(items) and isinstance(
                items[i + 1 + n_imm], str
            ) and "=" in items[i + 1 + n_imm]:
                n_imm += 1
        elif info.imm == "br_table":
            n_imm = 0
            while i + 1 + n_imm < len(items) and isinstance(items[i + 1 + n_imm], str) and (
                items[i + 1 + n_imm].startswith("$")
                or items[i + 1 + n_imm].lstrip("+-").replace("_", "").isdigit()
            ):
                n_imm += 1
        for k in range(n_imm):
            imms.append(items[i + 1 + k])
        self._emit_op(head, imms)
        return i + 1 + n_imm

    def _emit_op(self, head: str, imms: list[Any]) -> None:
        opcode = ops.NAME_TO_OP[head]
        info = ops.OP_TABLE[opcode]
        kind = info.imm
        if kind == "none" or kind == "mem_misc":
            self.instrs.append((opcode, None))
        elif kind == "i32" or kind == "i64":
            self.instrs.append((opcode, _parse_int(imms[0])))
        elif kind == "f32" or kind == "f64":
            self.instrs.append((opcode, _parse_float(imms[0])))
        elif kind == "local":
            self.instrs.append((opcode, self.resolve_local(imms[0])))
        elif kind == "global":
            self.instrs.append((opcode, self.asm.resolve_global(imms[0])))
        elif kind == "func":
            self.instrs.append((opcode, self.asm.resolve_func(imms[0])))
        elif kind == "label":
            self.instrs.append((opcode, self.resolve_label(imms[0])))
        elif kind == "br_table":
            targets = tuple(self.resolve_label(t) for t in imms)
            if not targets:
                raise WatError("br_table requires at least a default label")
            self.instrs.append((opcode, (targets[:-1], targets[-1])))
        elif kind == "call_ind":
            # imms: (type $t) handled at folded level; accept "(type N)" atom form
            if not imms:
                raise WatError("call_indirect requires (type ...) immediate")
            self.instrs.append((opcode, self.asm.resolve_type_use(imms[0])))
        elif kind == "mem":
            align = None
            offset = 0
            for imm in imms:
                key, _, value = imm.partition("=")
                if key == "offset":
                    offset = _parse_int(value)
                elif key == "align":
                    align_bytes = _parse_int(value)
                    align = align_bytes.bit_length() - 1
                else:
                    raise WatError(f"bad memarg {imm!r}")
            if align is None:
                size = {1: 0, 2: 1, 4: 2, 8: 3}
                natural = {
                    "8": 0, "16": 1, "32": 2, "64": 3,
                }
                # natural alignment from the mnemonic width
                m = re.search(r"(load|store)(8|16|32)?", head)
                if m and m.group(2):
                    align = natural[m.group(2)]
                elif head.startswith(("i32", "f32")):
                    align = 2
                else:
                    align = 3
            self.instrs.append((opcode, (align, offset)))
        else:
            raise WatError(f"unhandled immediate kind {kind}")


class _Assembler:
    def __init__(self):
        self.module = Module()
        self.func_names: dict[str, int] = {}
        self.global_names: dict[str, int] = {}
        self.type_keys: dict[FuncType, int] = {}
        self.pending_bodies: list[tuple[int, list[tuple[str | None, ValType]], list, list]] = []
        self.start_name: str | None = None

    # ----- index resolution --------------------------------------------------

    def resolve_func(self, tok: str) -> int:
        if tok.startswith("$"):
            if tok not in self.func_names:
                raise WatError(f"unknown function {tok}")
            return self.func_names[tok]
        return _parse_int(tok)

    def resolve_global(self, tok: str) -> int:
        if tok.startswith("$"):
            if tok not in self.global_names:
                raise WatError(f"unknown global {tok}")
            return self.global_names[tok]
        return _parse_int(tok)

    def resolve_type_use(self, tok) -> int:
        if isinstance(tok, list) and tok and tok[0] == "type":
            tok = tok[1]
        return _parse_int(tok)

    def intern_type(self, ft: FuncType) -> int:
        if ft not in self.type_keys:
            self.type_keys[ft] = len(self.module.types)
            self.module.types.append(ft)
        return self.type_keys[ft]

    # ----- field parsing -------------------------------------------------------

    @staticmethod
    def _parse_sig(parts: list[Any], j: int):
        params: list[tuple[str | None, ValType]] = []
        results: list[ValType] = []
        while j < len(parts) and isinstance(parts[j], list) and parts[j]:
            head = parts[j][0]
            if head == "param":
                body = parts[j][1:]
                if body and isinstance(body[0], str) and body[0].startswith("$"):
                    params.append((body[0], _VALTYPES[body[1]]))
                else:
                    params.extend((None, _VALTYPES[t]) for t in body)
                j += 1
            elif head == "result":
                results.extend(_VALTYPES[t] for t in parts[j][1:])
                j += 1
            else:
                break
        return params, results, j

    def field_func(self, parts: list[Any]) -> None:
        j = 1
        name = None
        if j < len(parts) and isinstance(parts[j], str) and parts[j].startswith("$"):
            name = parts[j]
            j += 1
        export_name = None
        import_names = None
        while j < len(parts) and isinstance(parts[j], list) and parts[j]:
            if parts[j][0] == "export":
                export_name = _unescape(parts[j][1]).decode()
                j += 1
            elif parts[j][0] == "import":
                import_names = (
                    _unescape(parts[j][1]).decode(),
                    _unescape(parts[j][2]).decode(),
                )
                j += 1
            else:
                break
        params, results, j = self._parse_sig(parts, j)
        functype = FuncType(tuple(vt for _, vt in params), tuple(results))
        type_index = self.intern_type(functype)

        if import_names is not None:
            # imported function: must come before any defined function
            if self.module.funcs:
                raise WatError("imported funcs must precede defined funcs")
            index = len(self.module.imported("func"))
            self.module.imports.append(
                Import(import_names[0], import_names[1], "func", type_index)
            )
            if name:
                self.func_names[name] = index
            return

        index = self.module.num_imported_funcs + len(self.module.funcs)
        self.module.funcs.append(type_index)
        if name:
            self.func_names[name] = index
        if export_name is not None:
            self.module.exports.append(Export(export_name, "func", index))

        # locals
        locals_decl: list[tuple[str | None, ValType]] = []
        while j < len(parts) and isinstance(parts[j], list) and parts[j] and parts[j][0] == "local":
            body = parts[j][1:]
            if body and isinstance(body[0], str) and body[0].startswith("$"):
                locals_decl.append((body[0], _VALTYPES[body[1]]))
            else:
                locals_decl.extend((None, _VALTYPES[t]) for t in body)
            j += 1
        self.pending_bodies.append((index, params, locals_decl, parts[j:]))

    def field_memory(self, parts: list[Any]) -> None:
        j = 1
        if j < len(parts) and isinstance(parts[j], str) and parts[j].startswith("$"):
            j += 1  # memory names unused (only one memory)
        export_name = None
        if j < len(parts) and isinstance(parts[j], list) and parts[j][0] == "export":
            export_name = _unescape(parts[j][1]).decode()
            j += 1
        minimum = _parse_int(parts[j])
        maximum = _parse_int(parts[j + 1]) if j + 1 < len(parts) else None
        self.module.mems.append(Limits(minimum, maximum))
        if export_name:
            self.module.exports.append(Export(export_name, "mem", 0))

    def field_global(self, parts: list[Any]) -> None:
        j = 1
        name = None
        if j < len(parts) and isinstance(parts[j], str) and parts[j].startswith("$"):
            name = parts[j]
            j += 1
        export_name = None
        if j < len(parts) and isinstance(parts[j], list) and parts[j][0] == "export":
            export_name = _unescape(parts[j][1]).decode()
            j += 1
        spec = parts[j]
        if isinstance(spec, list) and spec[0] == "mut":
            gtype = GlobalType(_VALTYPES[spec[1]], True)
        else:
            gtype = GlobalType(_VALTYPES[spec], False)
        j += 1
        init_expr = parts[j]
        builder = _FuncBuilder(self, [])
        builder.emit_folded(init_expr)
        builder.instrs.append((ops.END, None))
        index = self.module.num_imported_globals + len(self.module.globals)
        self.module.globals.append(Global(gtype, tuple(builder.instrs)))
        if name:
            self.global_names[name] = index
        if export_name:
            self.module.exports.append(Export(export_name, "global", index))

    def field_data(self, parts: list[Any]) -> None:
        j = 1
        offset_expr = parts[j]
        builder = _FuncBuilder(self, [])
        builder.emit_folded(offset_expr)
        builder.instrs.append((ops.END, None))
        payload = b"".join(_unescape(s) for s in parts[j + 1 :])
        self.module.datas.append(DataSegment(0, tuple(builder.instrs), payload))

    def field_table(self, parts: list[Any]) -> None:
        j = 1
        if isinstance(parts[j], str) and parts[j].startswith("$"):
            j += 1
        minimum = _parse_int(parts[j])
        j += 1
        maximum = None
        if j < len(parts) and isinstance(parts[j], str) and parts[j] != "funcref":
            maximum = _parse_int(parts[j])
            j += 1
        self.module.tables.append(Limits(minimum, maximum))

    def field_elem(self, parts: list[Any]) -> None:
        offset_expr = parts[1]
        builder = _FuncBuilder(self, [])
        builder.emit_folded(offset_expr)
        builder.instrs.append((ops.END, None))
        funcs = tuple(self.resolve_func(t) for t in parts[2:] if t != "func")
        self.module.elems.append(ElemSegment(0, tuple(builder.instrs), funcs))

    def field_export(self, parts: list[Any]) -> None:
        export_name = _unescape(parts[1]).decode()
        kind_expr = parts[2]
        kind = kind_expr[0]
        if kind == "func":
            self.module.exports.append(
                Export(export_name, "func", self.resolve_func(kind_expr[1]))
            )
        elif kind == "memory":
            self.module.exports.append(Export(export_name, "mem", 0))
        elif kind == "global":
            self.module.exports.append(
                Export(export_name, "global", self.resolve_global(kind_expr[1]))
            )
        else:
            raise WatError(f"unsupported export kind {kind}")

    def field_import(self, parts: list[Any]) -> None:
        module_name = _unescape(parts[1]).decode()
        item_name = _unescape(parts[2]).decode()
        desc = parts[3]
        if desc[0] == "func":
            j = 1
            fname = None
            if j < len(desc) and isinstance(desc[j], str) and desc[j].startswith("$"):
                fname = desc[j]
                j += 1
            params, results, _ = self._parse_sig(desc, j)
            functype = FuncType(tuple(vt for _, vt in params), tuple(results))
            type_index = self.intern_type(functype)
            if self.module.funcs:
                raise WatError("imported funcs must precede defined funcs")
            index = len(self.module.imported("func"))
            self.module.imports.append(Import(module_name, item_name, "func", type_index))
            if fname:
                self.func_names[fname] = index
        elif desc[0] == "memory":
            minimum = _parse_int(desc[1])
            maximum = _parse_int(desc[2]) if len(desc) > 2 else None
            self.module.imports.append(
                Import(module_name, item_name, "mem", Limits(minimum, maximum))
            )
        else:
            raise WatError(f"unsupported import kind {desc[0]}")

    # ----- top level -----------------------------------------------------------

    def assemble(self, text: str) -> Module:
        sexprs = _parse_sexprs(_tokenize(text))
        if len(sexprs) == 1 and isinstance(sexprs[0], list) and sexprs[0][:1] == ["module"]:
            fields = sexprs[0][1:]
        else:
            fields = sexprs

        dispatch = {
            "func": self.field_func,
            "memory": self.field_memory,
            "global": self.field_global,
            "data": self.field_data,
            "table": self.field_table,
            "elem": self.field_elem,
            "export": self.field_export,
            "import": self.field_import,
        }
        deferred: list[list] = []
        # two passes: first non-func fields that define names funcs may use,
        # while keeping func declaration order for indices: process in order,
        # but bodies are assembled after all names are known.
        for field in fields:
            if not isinstance(field, list) or not field:
                raise WatError(f"bad module field {field!r}")
            head = field[0]
            if head == "start":
                self.start_name = field[1]
                continue
            if head not in dispatch:
                raise WatError(f"unsupported module field {head!r}")
            if head in ("elem", "export", "data"):
                deferred.append(field)
            else:
                dispatch[head](field)
        for field in deferred:
            dispatch[field[0]](field)

        # assemble bodies now that all function/global names are known
        codes: dict[int, Code] = {}
        for index, params, locals_decl, body in self.pending_bodies:
            builder = _FuncBuilder(self, params)
            for lname, lvt in locals_decl:
                builder.add_local(lname, lvt)
            builder.emit_seq(body)
            builder.instrs.append((ops.END, None))
            codes[index] = Code(
                tuple(vt for _, vt in locals_decl), tuple(builder.instrs)
            )
        n_imported = self.module.num_imported_funcs
        self.module.codes = [codes[n_imported + i] for i in range(len(self.module.funcs))]

        if self.start_name is not None:
            self.module.start = self.resolve_func(self.start_name)
        return self.module


def parse_module(text: str) -> Module:
    """Assemble WAT text into a :class:`Module` (unvalidated)."""
    return _Assembler().assemble(text)


def assemble(text: str) -> bytes:
    """Assemble WAT text directly to binary Wasm bytes."""
    return encode_module(parse_module(text))
