"""AOT backend: function bodies compiled to generated Python source.

The threaded engine (:mod:`repro.wasm.threaded`) removed opcode dispatch
by pre-binding one closure per instruction slot; the hot loop still pays
one Python call per slot.  This module climbs the next rung of the
interpreter->AOT ladder: each function body is *translated to Python
source* and ``compile()``d once, so a Wasm function becomes a single
Python function call with no per-instruction dispatch at all.

Lowering rules
--------------

- **Stack slots become local variables.**  Validated Wasm has a fixed
  operand-stack height at every reachable program point (the same static
  analysis the threaded engine uses), so the value at height ``i`` simply
  lives in the Python local ``s{i}``; Wasm locals live in ``l{i}``.
- **Reducible control flow becomes ``while``/``if``.**  Wasm control is
  structurally reducible: ``block``/``loop``/``if`` nest, and ``br`` only
  targets enclosing constructs.  A construct that is a branch target is
  wrapped in ``while True:``; ``br`` to a loop lowers to ``continue``,
  ``br`` to a block lowers to ``break``, and multi-level branches thread
  a ``_br`` label variable through the loop epilogues.
- **Label-dispatch fallback.**  Bodies the structured emitter cannot
  express as nested Python (pathological nesting depth beyond CPython's
  block limits, or when forced via ``REPRO_WASM_AOT_DISPATCH=1``) fall
  back to a flat basic-block loop: ``while True: if _pc == A: ...`` —
  semantically identical, always compilable.
- **Fuel is still charged per original instruction.**  Charges for pure
  instructions (locals, constants, non-trapping arithmetic) are batched
  at compile time and flushed *before* every instruction whose effect is
  observable after a trap (memory/global writes, calls, trapping ops)
  and before every control transfer.  Locals and operand-stack slots die
  with the frame on a trap, so batching them is invisible: trap codes,
  the fuel counter at trap time, and all memory/global state match the
  legacy engine bit for bit.

Compiled code is instance-independent (everything per-call arrives via
the ``frame`` argument), so AOT artifacts are shared through
:mod:`repro.wasm.codecache` exactly like threaded code, keyed by
``(sha256, "aot")``.  Engine selection: ``REPRO_WASM_ENGINE=aot``.
"""

from __future__ import annotations

import os

from repro.wasm import opcodes as op
from repro.wasm.interpreter import (
    BINOPS,
    LOADS,
    MASK32,
    MASK64,
    STORES,
    UNOPS,
    control_map_for,
    f32_round,
    prepared_for,
)
from repro.wasm.module import Code, Module
from repro.wasm.threaded import (
    _CONST_OPS,
    _TRAPPING_BINOPS,
    _TRAPPING_UNOPS,
    _analyze,
    _const_value,
    _Frame,
    _mn,
)
from repro.wasm.traps import FuelExhausted, StackExhausted, Trap
from repro.wasm.wtypes import FuncType

#: nesting depth beyond which the structured emitter bails out to the
#: label-dispatch form (CPython < 3.11 rejects > 20 statically nested
#: blocks; the dispatch form nests exactly one loop regardless of input)
_MAX_STRUCTURED_DEPTH = 16

_M32 = str(MASK32)
_M64 = str(MASK64)


def _dispatch_forced() -> bool:
    value = os.environ.get("REPRO_WASM_AOT_DISPATCH", "")
    return value.strip().lower() not in ("", "0", "false", "off")


# ---------------------------------------------------------------------------
# shared exec namespace: trap types + numeric helpers the generated source
# falls back to for operators not worth inlining
# ---------------------------------------------------------------------------


def _build_helpers() -> dict:
    ns = {
        "Trap": Trap,
        "FuelExhausted": FuelExhausted,
        "_f32": f32_round,
    }
    for opcode, fn in BINOPS.items():
        ns[f"_b{opcode:02x}"] = fn
    for opcode, fn in UNOPS.items():
        ns[f"_u{opcode:02x}"] = fn
    return ns


_HELPERS = _build_helpers()


def _s32(x: str) -> str:
    """Signed view of a 32-bit unsigned slot variable (inline, no call)."""
    return f"({x} - 4294967296 if {x} >= 2147483648 else {x})"


def _s64(x: str) -> str:
    return f"({x} - 18446744073709551616 if {x} >= 9223372036854775808 else {x})"


def _binop_expr(opcode: int, a: str, b: str) -> str:
    """Inline Python expression for a binop, or a ``_bXX`` helper call.

    Inlined expressions are textually different from but numerically
    identical to the :data:`~repro.wasm.interpreter.BINOPS` lambdas:
    unsigned ints in ``[0, 2**N)``, comparisons producing int 0/1, f32
    arithmetic rounded through ``_f32``.
    """
    if opcode == op.I32_ADD:
        return f"({a} + {b}) & {_M32}"
    if opcode == op.I32_SUB:
        return f"({a} - {b}) & {_M32}"
    if opcode == op.I32_MUL:
        return f"({a} * {b}) & {_M32}"
    if opcode == op.I32_AND or opcode == op.I64_AND:
        return f"{a} & {b}"
    if opcode == op.I32_OR or opcode == op.I64_OR:
        return f"{a} | {b}"
    if opcode == op.I32_XOR or opcode == op.I64_XOR:
        return f"{a} ^ {b}"
    if opcode == op.I32_SHL:
        return f"({a} << ({b} % 32)) & {_M32}"
    if opcode == op.I32_SHR_U:
        return f"{a} >> ({b} % 32)"
    if opcode == op.I32_SHR_S:
        return f"({_s32(a)} >> ({b} % 32)) & {_M32}"
    if opcode == op.I64_ADD:
        return f"({a} + {b}) & {_M64}"
    if opcode == op.I64_SUB:
        return f"({a} - {b}) & {_M64}"
    if opcode == op.I64_MUL:
        return f"({a} * {b}) & {_M64}"
    if opcode == op.I64_SHL:
        return f"({a} << ({b} % 64)) & {_M64}"
    if opcode == op.I64_SHR_U:
        return f"{a} >> ({b} % 64)"
    if opcode == op.I64_SHR_S:
        return f"({_s64(a)} >> ({b} % 64)) & {_M64}"
    if opcode in (op.I32_EQ, op.I64_EQ, op.F32_EQ, op.F64_EQ):
        return f"(1 if {a} == {b} else 0)"
    if opcode in (op.I32_NE, op.I64_NE, op.F32_NE, op.F64_NE):
        return f"(1 if {a} != {b} else 0)"
    if opcode in (op.I32_LT_U, op.I64_LT_U, op.F32_LT, op.F64_LT):
        return f"(1 if {a} < {b} else 0)"
    if opcode in (op.I32_GT_U, op.I64_GT_U, op.F32_GT, op.F64_GT):
        return f"(1 if {a} > {b} else 0)"
    if opcode in (op.I32_LE_U, op.I64_LE_U, op.F32_LE, op.F64_LE):
        return f"(1 if {a} <= {b} else 0)"
    if opcode in (op.I32_GE_U, op.I64_GE_U, op.F32_GE, op.F64_GE):
        return f"(1 if {a} >= {b} else 0)"
    if opcode == op.I32_LT_S:
        return f"(1 if {_s32(a)} < {_s32(b)} else 0)"
    if opcode == op.I32_GT_S:
        return f"(1 if {_s32(a)} > {_s32(b)} else 0)"
    if opcode == op.I32_LE_S:
        return f"(1 if {_s32(a)} <= {_s32(b)} else 0)"
    if opcode == op.I32_GE_S:
        return f"(1 if {_s32(a)} >= {_s32(b)} else 0)"
    if opcode == op.I64_LT_S:
        return f"(1 if {_s64(a)} < {_s64(b)} else 0)"
    if opcode == op.I64_GT_S:
        return f"(1 if {_s64(a)} > {_s64(b)} else 0)"
    if opcode == op.I64_LE_S:
        return f"(1 if {_s64(a)} <= {_s64(b)} else 0)"
    if opcode == op.I64_GE_S:
        return f"(1 if {_s64(a)} >= {_s64(b)} else 0)"
    if opcode in (op.F32_ADD, op.F32_SUB, op.F32_MUL):
        sym = {op.F32_ADD: "+", op.F32_SUB: "-", op.F32_MUL: "*"}[opcode]
        return f"_f32({a} {sym} {b})"
    if opcode == op.F64_ADD:
        return f"{a} + {b}"
    if opcode == op.F64_SUB:
        return f"{a} - {b}"
    if opcode == op.F64_MUL:
        return f"{a} * {b}"
    return f"_b{opcode:02x}({a}, {b})"


#: unops that lower to no statement at all (identity on our value repr)
_IDENTITY_UNOPS = {op.I64_EXTEND_I32_U, op.F64_PROMOTE_F32}


def _unop_expr(opcode: int, a: str) -> str | None:
    """Inline expression for a unop; ``None`` means identity (no code)."""
    if opcode in _IDENTITY_UNOPS:
        return None
    if opcode in (op.I32_EQZ, op.I64_EQZ):
        return f"(1 if {a} == 0 else 0)"
    if opcode == op.I32_WRAP_I64:
        return f"{a} & {_M32}"
    if opcode == op.I64_EXTEND_I32_S:
        return f"({a} + 18446744069414584320 if {a} >= 2147483648 else {a})"
    return f"_u{opcode:02x}({a})"


# ---------------------------------------------------------------------------
# the source emitter
# ---------------------------------------------------------------------------


class _Unstructurable(Exception):
    """Structured emission bailed out; caller retries in dispatch mode."""


class _Ctx:
    """Compile-time frame for the structured emitter's construct stack."""

    __slots__ = (
        "kind", "is_loop", "wrapped", "id", "entry", "label_arity",
        "needs_epilogue", "consume",
    )

    def __init__(self, kind, is_loop, wrapped, ctx_id, entry, label_arity):
        self.kind = kind
        self.is_loop = is_loop
        self.wrapped = wrapped
        self.id = ctx_id
        self.entry = entry
        self.label_arity = label_arity
        self.needs_epilogue = False
        self.consume = False


class _Emitter:
    """Emits one function body as Python source (one fuel variant)."""

    def __init__(self, module: Module, code: Code, functype: FuncType,
                 fueled: bool, dispatch: bool):
        self.module = module
        self.code = code
        self.body = code.body
        self.functype = functype
        self.fueled = fueled
        self.dispatch = dispatch
        self.result_arity = len(functype.results)
        self.heights, self.branches, self.jump_targets = _analyze(
            module, code, self.result_arity
        )
        self.control = control_map_for(code)
        self.lines: list[str] = []
        self.indent = 0
        self.pending = 0
        self.uses: set[str] = set()
        self.sigs: dict[int, FuncType] = {}
        self.consts: dict[str, float] = {}
        self._next_id = 0
        self.br_targets = self._collect_br_targets()

    # ----- low-level helpers ------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def charge(self) -> None:
        if self.fueled:
            self.pending += 1

    def flush(self, extra: int = 0) -> None:
        """Apply batched fuel charges (plus ``extra`` for the op at hand)."""
        if not self.fueled:
            return
        n = self.pending + extra
        self.pending = 0
        if n == 0:
            return
        self.w(f"fuel -= {n}")
        self.w("if fuel < 0:")
        self.w("    fuel = 0")
        self.w("    raise FuelExhausted()")

    def lit(self, value) -> str:
        """Literal text for a constant; non-finite floats become ns consts."""
        if isinstance(value, float):
            if value == value and value not in (float("inf"), float("-inf")):
                return repr(value)
            name = f"_K{len(self.consts)}"
            for existing, v in self.consts.items():
                if v is value or (v == value and v == v):
                    return existing
            self.consts[name] = value
            return name
        return repr(value)

    def _collect_br_targets(self) -> set[int]:
        targets: set[int] = set()
        for pc, (opcode, _imm) in enumerate(self.body):
            if opcode in (op.BR, op.BR_IF):
                targets.add(self.branches[pc][0])
            elif opcode == op.BR_TABLE:
                per_target, default, _h = self.branches[pc]
                for res in per_target:
                    targets.add(res[0])
                targets.add(default[0])
        return targets

    def _max_nesting(self) -> int:
        depth = peak = 0
        for opcode, _imm in self.body:
            if opcode in (op.BLOCK, op.LOOP, op.IF):
                depth += 1
                peak = max(peak, depth)
            elif opcode == op.END:
                depth = max(depth - 1, 0)
        return peak

    # ----- straight-line instructions (shared by both modes) ---------------

    def emit_simple(self, pc: int) -> bool:
        """Emit a non-control instruction; returns False for control ops."""
        opcode, imm = self.body[pc]
        h = self.heights[pc]

        if opcode == op.LOCAL_GET:
            self.charge()
            self.w(f"s{h} = l{imm}")
        elif opcode == op.LOCAL_SET:
            self.charge()
            self.w(f"l{imm} = s{h - 1}")
        elif opcode == op.LOCAL_TEE:
            self.charge()
            self.w(f"l{imm} = s{h - 1}")
        elif opcode in _CONST_OPS:
            self.charge()
            self.w(f"s{h} = {self.lit(_const_value(opcode, imm))}")
        elif opcode in BINOPS:
            if opcode in _TRAPPING_BINOPS:
                self.flush(1)
            else:
                self.charge()
            a, b = f"s{h - 2}", f"s{h - 1}"
            self.w(f"{a} = {_binop_expr(opcode, a, b)}")
        elif opcode in UNOPS:
            if opcode in _TRAPPING_UNOPS:
                self.flush(1)
            else:
                self.charge()
            a = f"s{h - 1}"
            expr = _unop_expr(opcode, a)
            if expr is not None:
                self.w(f"{a} = {expr}")
        elif opcode in LOADS:
            self.flush(1)
            self.uses.add("mem")
            size, signed, kind = LOADS[opcode]
            offset = imm[1]
            addr = f"s{h - 1} + {offset}" if offset else f"s{h - 1}"
            if kind == "f32":
                self.w(f"s{h - 1} = mem.load_f32({addr})")
            elif kind == "f64":
                self.w(f"s{h - 1} = mem.load_f64({addr})")
            elif signed:
                mask = _M64 if kind == "i64" else _M32
                self.w(f"s{h - 1} = mem.load_int({addr}, {size}, True) & {mask}")
            else:
                self.w(f"s{h - 1} = mem.load_int({addr}, {size}, False)")
        elif opcode in STORES:
            self.flush(1)
            self.uses.add("mem")
            size, kind = STORES[opcode]
            offset = imm[1]
            addr = f"s{h - 2} + {offset}" if offset else f"s{h - 2}"
            if kind == "f32":
                self.w(f"mem.store_f32({addr}, s{h - 1})")
            elif kind == "f64":
                self.w(f"mem.store_f64({addr}, s{h - 1})")
            else:
                self.w(f"mem.store_int({addr}, s{h - 1}, {size})")
        elif opcode == op.GLOBAL_GET:
            self.charge()
            self.uses.add("glb")
            self.w(f"s{h} = glb[{imm}].value")
        elif opcode == op.GLOBAL_SET:
            self.flush(1)
            self.uses.add("glb")
            self.w(f"glb[{imm}].value = s{h - 1}")
        elif opcode == op.DROP:
            self.charge()
        elif opcode == op.SELECT:
            self.charge()
            self.w(f"if not s{h - 1}:")
            self.w(f"    s{h - 3} = s{h - 2}")
        elif opcode == op.NOP:
            self.charge()
        elif opcode == op.MEMORY_SIZE:
            self.charge()
            self.uses.add("mem")
            self.w(f"s{h} = mem.size_pages")
        elif opcode == op.MEMORY_GROW:
            self.flush(1)
            self.uses.add("mem")
            self.w(f"s{h - 1} = mem.grow(s{h - 1}) & {_M32}")
        elif opcode == op.UNREACHABLE:
            self.flush(1)
            self.w('raise Trap("unreachable executed", code="unreachable")')
        elif opcode == op.CALL:
            self._emit_call(pc, h, imm)
        elif opcode == op.CALL_INDIRECT:
            self._emit_call_indirect(pc, h, imm)
        else:
            return False
        return True

    def _emit_call(self, pc: int, h: int, func_index: int) -> None:
        self.flush(1)
        self.uses.add("inst")
        self.uses.add("_d1")
        ft = self.module.func_type(func_index)
        np_, nr = len(ft.params), len(ft.results)
        args = "[" + ", ".join(f"s{h - np_ + k}" for k in range(np_)) + "]"
        if self.fueled:
            self.uses.add("store")
            self.w("store.fuel = fuel")
        head = "_r = " if nr else ""
        self.w(f"{head}inst.invoke_addr(inst.func_addrs[{func_index}], {args}, _d1)")
        if self.fueled:
            self.w("fuel = store.fuel")
        if nr:
            self.w(f"s{h - np_} = _r[0]")

    def _emit_call_indirect(self, pc: int, h: int, type_index: int) -> None:
        self.flush(1)
        self.uses.add("inst")
        self.uses.add("store")
        self.uses.add("_d1")
        ft = self.module.types[type_index]
        self.sigs[type_index] = ft
        sig = f"_sig{type_index}"
        np_, nr = len(ft.params), len(ft.results)
        self.w("_tb = inst.table")
        self.w(f"if _tb is None or s{h - 1} >= len(_tb.elements):")
        self.w('    raise Trap("undefined element", code="table_oob")')
        self.w(f"_fa = _tb.elements[s{h - 1}]")
        self.w("if _fa is None:")
        self.w('    raise Trap("uninitialized element", code="table_null")')
        self.w("_ft = store.funcs[_fa].functype")
        self.w(f"if _ft != {sig}:")
        self.w("    raise Trap(")
        self.w(f'        f"indirect call type mismatch: {{_ft}} != {{{sig}}}",')
        self.w('        code="sig",')
        self.w("    )")
        args = "[" + ", ".join(f"s{h - 1 - np_ + k}" for k in range(np_)) + "]"
        if self.fueled:
            self.w("store.fuel = fuel")
        head = "_r = " if nr else ""
        self.w(f"{head}inst.invoke_addr(_fa, {args}, _d1)")
        if self.fueled:
            self.w("fuel = store.fuel")
        if nr:
            self.w(f"s{h - 1 - np_} = _r[0]")

    # ----- structured mode --------------------------------------------------

    def emit_structured(self) -> None:
        if self._max_nesting() > _MAX_STRUCTURED_DEPTH:
            raise _Unstructurable("nesting too deep for structured lowering")
        n = len(self.body)
        self.ctxs: list[_Ctx] = [
            _Ctx(0, False, False, -1, 0, self.result_arity)
        ]
        self.emit_seq(0, n - 1)
        # the function's own terminating END, charged on fall-through
        if self.heights[n - 1] is not None:
            self.flush(1)
            self._emit_return(self.heights[n - 1])

    def _emit_return(self, h: int) -> None:
        if self.result_arity:
            self.w(f"return [s{h - 1}]")
        else:
            self.w("return []")

    def emit_seq(self, start: int, end: int) -> None:
        """Emit pcs in ``[start, end)`` — the interior of one construct."""
        pc = start
        while pc < end:
            opcode, _imm = self.body[pc]
            if opcode in (op.BLOCK, op.LOOP, op.IF):
                end_pc = self.control[pc][0]
                if self.heights[pc] is not None:
                    self.emit_construct(pc)
                pc = end_pc + 1
                continue
            if self.heights[pc] is None:
                pc += 1
                continue
            if not self.emit_simple(pc):
                self._emit_control(pc)
            pc += 1

    def _alloc_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def emit_construct(self, pc: int) -> None:
        opcode, imm = self.body[pc]
        end_pc, else_pc = self.control[pc]
        arity = 0 if imm is None else 1
        entry = self.heights[pc] - (1 if opcode == op.IF else 0)
        target = pc + 1 if opcode == op.LOOP else end_pc + 1
        wrapped = target in self.br_targets
        ctx = _Ctx(
            opcode, opcode == op.LOOP, wrapped,
            self._alloc_id() if wrapped else -1,
            entry, 0 if opcode == op.LOOP else arity,
        )

        self.charge()  # the block/loop/if opcode itself
        if wrapped:
            self.flush(0)
            self.w("while True:")
            self.indent += 1
        body_start = len(self.lines)

        self.ctxs.append(ctx)
        if opcode == op.IF:
            self._emit_if_interior(pc, end_pc, else_pc, wrapped)
        else:
            self.emit_seq(pc + 1, end_pc)
            if self.heights[end_pc] is not None:  # fall-through reaches END
                self.flush(1)
                if wrapped:
                    self.w("break")
            elif not wrapped:
                self.pending = 0
        self.ctxs.pop()

        if wrapped:
            if len(self.lines) == body_start:
                self.w("break")  # degenerate: nothing live inside
            self.indent -= 1
            self.pending = 0
            self._emit_epilogue(ctx)

    def _emit_if_interior(self, pc: int, end_pc: int, else_pc: int | None,
                          wrapped: bool) -> None:
        # the condition read is pure; flush so both arms start at pending 0
        # (the legacy engine has charged everything up to and including the
        # `if` opcode before the branch direction is observable)
        self.flush(0)
        cond = f"s{self.heights[pc] - 1}"
        self.w(f"if {cond}:")
        self.indent += 1
        mark = len(self.lines)
        then_end = else_pc if else_pc is not None else end_pc
        self.emit_seq(pc + 1, then_end)
        then_falls = self.heights[then_end] is not None
        if else_pc is not None:
            if then_falls:
                # fall-through executes the `else` jump and the shared end
                self.flush(2)
                if wrapped:
                    self.w("break")
            else:
                self.pending = 0
            if len(self.lines) == mark:
                self.w("pass")
            self.indent -= 1
            self.w("else:")
            self.indent += 1
            mark = len(self.lines)
            self.emit_seq(else_pc + 1, end_pc)
            if self.heights[end_pc] is not None:
                self.flush(1)
                if wrapped:
                    self.w("break")
            else:
                self.pending = 0
            if len(self.lines) == mark:
                self.w("pass")
            self.indent -= 1
        else:
            # no else-arm: the false path still executes the shared END,
            # so the END charge must hit both paths exactly once
            if then_falls:
                self.flush(1 if wrapped else 0)
                if wrapped:
                    self.w("break")
            else:
                self.pending = 0
            if len(self.lines) == mark:
                self.w("pass")
            self.indent -= 1
            if wrapped:
                self.w("else:")
                self.indent += 1
                self.flush(1)
                self.w("break")
                self.indent -= 1
            else:
                self.charge()  # END, charged once at the join (both paths)

    def _emit_control(self, pc: int) -> None:
        opcode, imm = self.body[pc]
        h = self.heights[pc]
        if opcode == op.BR:
            target, arity, dest_h = self.branches[pc]
            self.flush(1)
            self._emit_branch(imm, arity, dest_h, h)
        elif opcode == op.BR_IF:
            target, arity, dest_h = self.branches[pc]
            self.flush(1)
            self.w(f"if s{h - 1}:")
            self.indent += 1
            self._emit_branch(imm, arity, dest_h, h - 1)
            self.indent -= 1
        elif opcode == op.BR_TABLE:
            depths, default_depth = imm
            per_target, default_res, _hh = self.branches[pc]
            self.flush(1)
            if not depths:
                self._emit_branch(
                    default_depth, default_res[1], default_res[2], h - 1
                )
                return
            for k, (depth, res) in enumerate(zip(depths, per_target)):
                self.w(f"{'if' if k == 0 else 'elif'} s{h - 1} == {k}:")
                self.indent += 1
                self._emit_branch(depth, res[1], res[2], h - 1)
                self.indent -= 1
            self.w("else:")
            self.indent += 1
            self._emit_branch(default_depth, default_res[1], default_res[2], h - 1)
            self.indent -= 1
        elif opcode == op.RETURN:
            self.flush(1)
            self._emit_return(h)
        else:  # pragma: no cover - validation rejects unknown opcodes
            raise Trap(f"cannot compile opcode 0x{opcode:02x}", code="internal")

    def _emit_branch(self, depth: int, arity: int, dest_h: int,
                     src_h: int) -> None:
        """Emit the transfer for a (conditional) branch of label ``depth``."""
        if depth == len(self.ctxs) - 1:
            self._emit_return(src_h)
            return
        idx = len(self.ctxs) - 1 - depth
        ctx = self.ctxs[idx]
        if arity and dest_h != src_h - 1:
            self.w(f"s{dest_h} = s{src_h - 1}")
        nearest = None
        for c in reversed(self.ctxs[idx + 1:]):
            if c.wrapped:
                nearest = c
                break
        if nearest is None:
            self.w("continue" if ctx.is_loop else "break")
            return
        self.uses.add("_br")
        self.w(f"_br = {ctx.id}")
        self.w("break")
        for c in self.ctxs[idx + 1:]:
            if c.wrapped:
                c.needs_epilogue = True
        if not ctx.is_loop:
            ctx.consume = True
            ctx.needs_epilogue = True

    def _emit_epilogue(self, ctx: _Ctx) -> None:
        """Route a pending ``_br`` after leaving a wrapped construct."""
        if not ctx.needs_epilogue:
            return
        enclosing = next((c for c in reversed(self.ctxs) if c.wrapped), None)
        self.w("if _br != -1:")
        self.indent += 1
        clauses = False
        if ctx.consume:
            self.w(f"if _br == {ctx.id}:")
            self.w("    _br = -1")
            clauses = True
        if enclosing is not None and enclosing.is_loop:
            self.w(f"{'elif' if clauses else 'if'} _br == {enclosing.id}:")
            self.w("    _br = -1")
            self.w("    continue")
            clauses = True
        if enclosing is not None:
            if clauses:
                self.w("else:")
                self.w("    break")
            else:
                self.w("break")
        elif not clauses:  # pragma: no cover - br must land somewhere
            self.w("pass")
        self.indent -= 1

    # ----- dispatch (label-loop) mode ---------------------------------------

    def emit_dispatch(self) -> None:
        n = len(self.body)
        # an END can be reachable only via jump (the false path of a no-else
        # `if`, or the then-arm's jump over a dead else-arm) while its linear
        # height is None; its arrival height is its construct's exit height
        self._arrivals: dict[int, int] = {}
        for start_pc, (end_pc, _else_pc) in self.control.items():
            hs = self.heights[start_pc]
            if hs is None:
                continue
            c_op, c_imm = self.body[start_pc]
            entry = hs - 1 if c_op == op.IF else hs
            self._arrivals[end_pc] = entry + (0 if c_imm is None else 1)
        self._arrivals[n - 1] = self.result_arity
        leaders = sorted(
            pc for pc in ({0} | self.jump_targets)
            if pc < n
            and (self.heights[pc] is not None or pc in self._arrivals)
        )
        leader_set = set(leaders)
        self.w("_pc = 0")
        self.w("while True:")
        self.indent += 1
        first = True
        for li, leader in enumerate(leaders):
            self.w(f"{'if' if first else 'elif'} _pc == {leader}:")
            first = False
            self.indent += 1
            mark = len(self.lines)
            self._emit_dispatch_run(leader, leader_set, n)
            if len(self.lines) == mark:  # pragma: no cover - defensive
                self.w("pass")
            self.indent -= 1
        self.w("else:")
        self.w('    raise AssertionError("aot dispatch reached a dead pc")')
        self.indent -= 1

    def _emit_dispatch_run(self, start: int, leaders: set[int], n: int) -> None:
        """Emit one basic-block run: from a leader to the next transfer."""
        pc = start
        while True:
            if pc > start and pc in leaders:
                self.flush(0)
                self.w(f"_pc = {pc}")
                self.w("continue")
                return
            opcode, imm = self.body[pc]
            h = self.heights[pc]
            if h is None:
                if pc == start and pc in self._arrivals:
                    h = self._arrivals[pc]
                else:
                    # unreachable tail of the block; nothing past here runs
                    return
            if opcode in (op.BLOCK, op.LOOP):
                self.charge()
            elif opcode == op.END:
                if pc == n - 1:
                    self.flush(1)
                    self._emit_return(h)
                    return
                self.charge()
            elif opcode == op.ELSE:
                # falling out of a then-arm: charged like the legacy jump,
                # landing on the matching END (which itself charges)
                self.flush(1)
                self.w(f"_pc = {self.branches[pc]}")
                self.w("continue")
                return
            elif opcode == op.IF:
                self.flush(1)
                false_target = self.branches[pc]
                self.w(f"if not s{h - 1}:")
                self.w(f"    _pc = {false_target}")
                self.w("    continue")
            elif opcode == op.BR:
                target, arity, dest_h = self.branches[pc]
                self.flush(1)
                self._emit_dispatch_jump(target, arity, dest_h, h, n)
                return
            elif opcode == op.BR_IF:
                target, arity, dest_h = self.branches[pc]
                self.flush(1)
                self.w(f"if s{h - 1}:")
                self.indent += 1
                self._emit_dispatch_jump(target, arity, dest_h, h - 1, n)
                self.indent -= 1
            elif opcode == op.BR_TABLE:
                per_target, default_res, _hh = self.branches[pc]
                self.flush(1)
                if per_target:
                    for k, res in enumerate(per_target):
                        self.w(f"{'if' if k == 0 else 'elif'} s{h - 1} == {k}:")
                        self.indent += 1
                        self._emit_dispatch_jump(res[0], res[1], res[2], h - 1, n)
                        self.indent -= 1
                    self.w("else:")
                    self.indent += 1
                    self._emit_dispatch_jump(
                        default_res[0], default_res[1], default_res[2], h - 1, n
                    )
                    self.indent -= 1
                else:
                    self._emit_dispatch_jump(
                        default_res[0], default_res[1], default_res[2], h - 1, n
                    )
                return
            elif opcode == op.RETURN:
                self.flush(1)
                self._emit_return(h)
                return
            else:
                self.emit_simple(pc)
            pc += 1

    def _emit_dispatch_jump(self, target: int, arity: int, dest_h: int,
                            src_h: int, n: int) -> None:
        if arity and dest_h != src_h - 1:
            self.w(f"s{dest_h} = s{src_h - 1}")
        if target >= n:
            self._emit_return(dest_h + arity if arity else src_h)
            return
        self.w(f"_pc = {target}")
        self.w("continue")

    # ----- assembly ---------------------------------------------------------

    def build(self) -> str:
        """Emit the body and assemble the full ``def`` source text."""
        if self.dispatch:
            self.emit_dispatch()
        else:
            self.emit_structured()
        body = self.lines
        if not body:
            body = ["return []"]

        head: list[str] = ["def _wfn(frame, args):"]
        np_ = len(self.functype.params)
        if np_ == 1:
            head.append("    l0, = args")
        elif np_ > 1:
            head.append("    " + ", ".join(f"l{i}" for i in range(np_)) + " = args")
        for i, default in enumerate(prepared_for(self.code).local_defaults):
            head.append(f"    l{np_ + i} = {default!r}")
        if "mem" in self.uses:
            head.append("    mem = frame.mem")
        if "glb" in self.uses:
            head.append("    glb = frame.globals")
        if "inst" in self.uses:
            head.append("    inst = frame.instance")
        if "store" in self.uses:
            head.append("    store = frame.store")
        if "_d1" in self.uses:
            head.append("    _d1 = frame.depth + 1")
        if "_br" in self.uses:
            head.append("    _br = -1")

        if self.fueled:
            head.append("    fuel = frame.fuel")
            head.append("    try:")
            head.extend("        " + line for line in body)
            head.append("    finally:")
            head.append("        frame.fuel = fuel")
        else:
            head.extend("    " + line for line in body)
        return "\n".join(head) + "\n"


# ---------------------------------------------------------------------------
# compiled artifact + compilation entry points
# ---------------------------------------------------------------------------


class AotCode:
    """One function body compiled to Python source, in two fuel variants.

    ``run(frame, args)`` is the unmetered function, ``run_fueled`` the
    metered one (selected by :func:`execute_aot` on ``store.fuel``);
    ``source``/``source_fueled`` keep the generated text for
    ``repro disasm --aot``.  ``local_defaults``/``max_stack`` mirror the
    other engines so :class:`~repro.wasm.interpreter.ExecStats` stays
    bit-identical.
    """

    __slots__ = (
        "run", "run_fueled", "source", "source_fueled",
        "local_defaults", "max_stack", "n_instrs", "mode",
    )

    def __init__(self, run, run_fueled, source, source_fueled,
                 local_defaults, max_stack, n_instrs, mode):
        self.run = run
        self.run_fueled = run_fueled
        self.source = source
        self.source_fueled = source_fueled
        self.local_defaults = local_defaults
        self.max_stack = max_stack
        self.n_instrs = n_instrs
        self.mode = mode

    def listing(self) -> list[str]:
        """The generated (unmetered) Python source, line by line."""
        return [f"  {line}" for line in self.source.splitlines()]


def _compile_variant(module: Module, code: Code, functype: FuncType,
                     fueled: bool, dispatch: bool, name: str):
    emitter = _Emitter(module, code, functype, fueled, dispatch)
    source = emitter.build()
    ns = dict(_HELPERS)
    for type_index, ft in emitter.sigs.items():
        ns[f"_sig{type_index}"] = ft
    ns.update(emitter.consts)
    exec(compile(source, f"<aot:{name}>", "exec"), ns)
    return ns.pop("_wfn"), source


def compile_aot(module: Module, code: Code, functype: FuncType,
                name: str = "fn") -> AotCode:
    """Lower one validated function body to compiled Python source."""
    prep = prepared_for(code)
    if not _dispatch_forced():
        try:
            run, source = _compile_variant(
                module, code, functype, False, False, name
            )
            run_fueled, source_fueled = _compile_variant(
                module, code, functype, True, False, name
            )
            return AotCode(
                run, run_fueled, source, source_fueled,
                prep.local_defaults, prep.max_stack, len(code.body),
                "structured",
            )
        except (_Unstructurable, SyntaxError, RecursionError):
            pass  # irreducible/too deep for nested Python blocks
    return compile_aot_dispatch(module, code, functype, name, prep)


def compile_aot_dispatch(module: Module, code: Code, functype: FuncType,
                         name: str = "fn", prep=None) -> AotCode:
    """Compile via the label-dispatch fallback unconditionally."""
    if prep is None:
        prep = prepared_for(code)
    run, source = _compile_variant(module, code, functype, False, True, name)
    run_fueled, source_fueled = _compile_variant(
        module, code, functype, True, True, name
    )
    return AotCode(
        run, run_fueled, source, source_fueled,
        prep.local_defaults, prep.max_stack, len(code.body), "dispatch",
    )


def aot_for(module: Module, code: Code, functype: FuncType) -> AotCode:
    """Memoized :func:`compile_aot` (cached on the ``Code`` object)."""
    cached = getattr(code, "_aot", None)
    if cached is None:
        cached = compile_aot(module, code, functype)
        object.__setattr__(code, "_aot", cached)
    return cached


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def execute_aot(store, instance, acode: AotCode, args: list,
                result_arity: int, depth: int):
    """Run one AOT-compiled function body.

    The contract (arguments, results, traps, fuel, stats) is identical to
    :func:`repro.wasm.interpreter.execute` and
    :func:`repro.wasm.threaded.execute_threaded`.
    """
    if depth > store.max_call_depth:
        raise StackExhausted(depth)

    stats = store.stats
    if stats is not None:
        stats.frames += 1
        if depth > stats.max_call_depth:
            stats.max_call_depth = depth
        if acode.max_stack > stats.max_value_stack:
            stats.max_value_stack = acode.max_stack

    frame = _Frame(instance, store, depth)
    if store.fuel is None:
        return acode.run(frame, args)

    frame.fuel = store.fuel
    try:
        return acode.run_fueled(frame, args)
    finally:
        store.fuel = frame.fuel


# ---------------------------------------------------------------------------
# diagnostics (repro disasm --aot / repro aot --dump)
# ---------------------------------------------------------------------------


def dump_aot(module_or_bytes, fueled: bool = False) -> str:
    """Wasm body and generated Python source for every function.

    Each function prints its original instruction sequence (mnemonics, as
    in ``repro disasm``) followed by the Python the AOT tier generated
    for it, so a lowering bug is diagnosable by eye.
    """
    from repro.wasm.decoder import decode_module
    from repro.wasm.validator import validate_module

    if isinstance(module_or_bytes, (bytes, bytearray)):
        module = decode_module(bytes(module_or_bytes))
    else:
        module = module_or_bytes
    validate_module(module)

    exports_by_index: dict[int, list[str]] = {}
    for export in module.exports:
        if export.kind == "func":
            exports_by_index.setdefault(export.index, []).append(export.name)

    n_imported = module.num_imported_funcs
    lines: list[str] = []
    for i, code in enumerate(module.codes):
        func_index = n_imported + i
        functype = module.func_type(func_index)
        acode = aot_for(module, code, functype)
        names = "".join(
            f' (export "{n}")' for n in exports_by_index.get(func_index, [])
        )
        lines.append(
            f"func {func_index}{names}: {acode.n_instrs} wasm instrs, "
            f"aot mode={acode.mode}"
        )
        lines.append("  ;; wasm body")
        for pc in range(len(code.body)):
            lines.append(f"  {pc:04d}  {_mn(code.body, pc)}")
        lines.append(
            "  ;; generated python (%s)" % ("fueled" if fueled else "unfueled")
        )
        source = acode.source_fueled if fueled else acode.source
        lines.extend(f"  {line}" for line in source.splitlines())
    return "\n".join(lines)
