"""Process-wide compiled-code cache keyed by module content hash.

Lowering a function body (to legacy tagged tuples, threaded closures, or
AOT-generated Python) is pure per-``Code`` work, so it is shareable
across every :class:`~repro.wasm.instance.Instance` of the *same bytes*
— not just the same :class:`~repro.wasm.module.Module` object.  That
matters for the paper's hot-swap story (Fig. 5b): a live swap decodes a
fresh module from the plugin ``.wc`` bytes, and multi-UE coexistence
(Fig. 5a) instantiates the same plugin once per cell.  With this cache
those paths skip re-lowering entirely.

Keying is ``(module.content_hash, engine)``; the hash is the SHA-256 of
the binary set by :func:`repro.wasm.decoder.decode_module`.  Modules
built by hand (no hash) still get per-``Module`` memoization via the
``Code``-object caches in :mod:`repro.wasm.interpreter` /
:mod:`repro.wasm.threaded` / :mod:`repro.wasm.aot` — they just don't
dedupe across decodes.

The cache is bounded: at most ``REPRO_WASM_CODECACHE_CAP`` entries
(default 256; ``0`` or a negative value disables the bound), evicted in
least-recently-used order.  Long fuzz campaigns and plugin-churn soaks
would otherwise grow it without limit — every distinct module binary is
a new key.  Hit/miss/eviction counters are exported through
:mod:`repro.obs` as
``waran_wasm_codecache_{hits,misses,evictions}_total{engine=...}``
(visible in ``repro obs``); the cache itself always works,
telemetry-enabled or not.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from threading import Lock

from repro.obs import OBS
from repro.wasm.aot import aot_for
from repro.wasm.interpreter import prepared_for
from repro.wasm.module import Module
from repro.wasm.threaded import ENGINES, threaded_for

DEFAULT_CAP = 256

_CACHE: OrderedDict[tuple[str, str], list] = OrderedDict()
_LOCK = Lock()


def capacity() -> int:
    """The configured entry cap; ``0`` means unbounded."""
    raw = os.environ.get("REPRO_WASM_CODECACHE_CAP", "").strip()
    if not raw:
        return DEFAULT_CAP
    try:
        cap = int(raw)
    except ValueError:
        return DEFAULT_CAP
    return max(cap, 0)


def _lower_all(module: Module, engine: str) -> list:
    if engine == "legacy":
        return [prepared_for(code) for code in module.codes]
    n_imported = module.num_imported_funcs
    if engine == "aot":
        return [
            aot_for(module, code, module.func_type(n_imported + i))
            for i, code in enumerate(module.codes)
        ]
    return [
        threaded_for(module, code, module.func_type(n_imported + i))
        for i, code in enumerate(module.codes)
    ]


def _count(name: str, help_text: str, engine: str) -> None:
    if OBS.enabled:
        OBS.registry.counter(name, help_text).inc(engine=engine)


def compiled_bodies(module: Module, engine: str) -> list:
    """All lowered function bodies of ``module`` for ``engine``, cached.

    Returns a list parallel to ``module.codes``.  Safe to share across
    instances: compiled bodies capture immediates and handler functions
    only, never instance state.
    """
    content_hash = module.content_hash
    if content_hash is None:
        # hand-built module: per-Code memoization only, not counted
        return _lower_all(module, engine)

    key = (content_hash, engine)
    with _LOCK:
        bodies = _CACHE.get(key)
        if bodies is not None:
            _CACHE.move_to_end(key)
    if bodies is not None:
        _count(
            "waran_wasm_codecache_hits_total",
            "compiled-code cache hits (per engine)",
            engine,
        )
        return bodies

    _count(
        "waran_wasm_codecache_misses_total",
        "compiled-code cache misses (per engine)",
        engine,
    )
    bodies = _lower_all(module, engine)
    cap = capacity()
    evicted: list[tuple[str, str]] = []
    with _LOCK:
        _CACHE[key] = bodies
        _CACHE.move_to_end(key)
        if cap:
            while len(_CACHE) > cap:
                evicted.append(_CACHE.popitem(last=False)[0])
        if OBS.enabled:
            OBS.registry.gauge(
                "waran_wasm_codecache_entries",
                "modules currently held by the compiled-code cache",
            ).set(len(_CACHE))
    for _hash, evicted_engine in evicted:
        _count(
            "waran_wasm_codecache_evictions_total",
            "compiled-code cache LRU evictions (per engine)",
            evicted_engine,
        )
    return bodies


def stats() -> dict[str, float]:
    """Current hit/miss/eviction counters (all engines) plus cache size."""
    hits = OBS.registry.counter("waran_wasm_codecache_hits_total")
    misses = OBS.registry.counter("waran_wasm_codecache_misses_total")
    evictions = OBS.registry.counter("waran_wasm_codecache_evictions_total")
    total_hits = sum(hits.value(engine=e) for e in ENGINES)
    total_misses = sum(misses.value(engine=e) for e in ENGINES)
    total_evictions = sum(evictions.value(engine=e) for e in ENGINES)
    total = total_hits + total_misses
    return {
        "entries": float(len(_CACHE)),
        "capacity": float(capacity()),
        "hits": total_hits,
        "misses": total_misses,
        "evictions": total_evictions,
        "hit_rate": (total_hits / total) if total else 0.0,
    }


def clear() -> None:
    """Drop every cached compilation (tests / memory pressure)."""
    with _LOCK:
        _CACHE.clear()
