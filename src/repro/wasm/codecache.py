"""Process-wide compiled-code cache keyed by module content hash.

Lowering a function body (to legacy tagged tuples or threaded closures)
is pure per-``Code`` work, so it is shareable across every
:class:`~repro.wasm.instance.Instance` of the *same bytes* — not just the
same :class:`~repro.wasm.module.Module` object.  That matters for the
paper's hot-swap story (Fig. 5b): a live swap decodes a fresh module from
the plugin ``.wc`` bytes, and multi-UE coexistence (Fig. 5a) instantiates
the same plugin once per cell.  With this cache those paths skip
re-lowering entirely.

Keying is ``(module.content_hash, engine)``; the hash is the SHA-256 of
the binary set by :func:`repro.wasm.decoder.decode_module`.  Modules
built by hand (no hash) still get per-``Module`` memoization via the
``Code``-object caches in :mod:`repro.wasm.interpreter` /
:mod:`repro.wasm.threaded` — they just don't dedupe across decodes.

Hit/miss counters are exported through :mod:`repro.obs` as
``waran_wasm_codecache_{hits,misses}_total{engine=...}`` (visible in
``repro obs``); the cache itself always works, telemetry-enabled or not.
"""

from __future__ import annotations

from threading import Lock

from repro.obs import OBS
from repro.wasm.interpreter import prepared_for
from repro.wasm.module import Module
from repro.wasm.threaded import threaded_for

_CACHE: dict[tuple[str, str], list] = {}
_LOCK = Lock()


def _lower_all(module: Module, engine: str) -> list:
    if engine == "legacy":
        return [prepared_for(code) for code in module.codes]
    n_imported = module.num_imported_funcs
    return [
        threaded_for(module, code, module.func_type(n_imported + i))
        for i, code in enumerate(module.codes)
    ]


def compiled_bodies(module: Module, engine: str) -> list:
    """All lowered function bodies of ``module`` for ``engine``, cached.

    Returns a list parallel to ``module.codes``.  Safe to share across
    instances: compiled bodies capture immediates and handler functions
    only, never instance state.
    """
    content_hash = module.content_hash
    if content_hash is None:
        # hand-built module: per-Code memoization only, not counted
        return _lower_all(module, engine)

    key = (content_hash, engine)
    with _LOCK:
        bodies = _CACHE.get(key)
    if bodies is not None:
        if OBS.enabled:
            OBS.registry.counter(
                "waran_wasm_codecache_hits_total",
                "compiled-code cache hits (per engine)",
            ).inc(engine=engine)
        return bodies

    if OBS.enabled:
        OBS.registry.counter(
            "waran_wasm_codecache_misses_total",
            "compiled-code cache misses (per engine)",
        ).inc(engine=engine)
    bodies = _lower_all(module, engine)
    with _LOCK:
        _CACHE[key] = bodies
        if OBS.enabled:
            OBS.registry.gauge(
                "waran_wasm_codecache_entries",
                "modules currently held by the compiled-code cache",
            ).set(len(_CACHE))
    return bodies


def stats() -> dict[str, float]:
    """Current hit/miss counters (all engines summed) plus cache size."""
    hits = OBS.registry.counter("waran_wasm_codecache_hits_total")
    misses = OBS.registry.counter("waran_wasm_codecache_misses_total")
    total_hits = sum(hits.value(engine=e) for e in ("legacy", "threaded"))
    total_misses = sum(misses.value(engine=e) for e in ("legacy", "threaded"))
    total = total_hits + total_misses
    return {
        "entries": float(len(_CACHE)),
        "hits": total_hits,
        "misses": total_misses,
        "hit_rate": (total_hits / total) if total else 0.0,
    }


def clear() -> None:
    """Drop every cached compilation (tests / memory pressure)."""
    with _LOCK:
        _CACHE.clear()
