"""In-memory representation of a decoded Wasm module.

Instructions are represented as ``(opcode, immediate)`` tuples; the
immediate's shape depends on the opcode's ``imm`` kind (see
:mod:`repro.wasm.opcodes`):

- ``none``      -> ``None``
- ``block``     -> ``ValType | None`` (``None`` is the empty block type)
- ``label``, ``func``, ``local``, ``global`` -> ``int``
- ``call_ind``  -> ``int`` (type index; table index is always 0 in MVP)
- ``br_table``  -> ``(tuple[int, ...], int)`` (targets, default)
- ``mem``       -> ``(align, offset)``
- ``mem_misc``  -> ``None``
- ``i32``/``i64`` -> ``int`` (signed, in-range)
- ``f32``/``f64`` -> ``float``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.wasm.wtypes import FuncType, GlobalType, Limits, ValType

Instr = tuple[int, Any]


@dataclass(frozen=True)
class Import:
    """One import: ``module.name`` of a given kind.

    ``desc`` is a type index for functions, :class:`Limits` for
    tables/memories, and :class:`GlobalType` for globals.
    """

    module: str
    name: str
    kind: str  # 'func' | 'table' | 'mem' | 'global'
    desc: Union[int, Limits, GlobalType]


@dataclass(frozen=True)
class Export:
    name: str
    kind: str  # 'func' | 'table' | 'mem' | 'global'
    index: int


@dataclass(frozen=True)
class Global:
    gtype: GlobalType
    init: tuple[Instr, ...]


@dataclass(frozen=True)
class ElemSegment:
    table_index: int
    offset: tuple[Instr, ...]
    func_indices: tuple[int, ...]


@dataclass(frozen=True)
class DataSegment:
    mem_index: int
    offset: tuple[Instr, ...]
    payload: bytes


@dataclass(frozen=True)
class Code:
    """One function body: declared locals plus the instruction sequence.

    The body includes the terminating ``end`` of the function.
    """

    locals: tuple[ValType, ...]
    body: tuple[Instr, ...]


@dataclass
class Module:
    """A fully decoded (but not yet validated or instantiated) module."""

    types: list[FuncType] = field(default_factory=list)
    imports: list[Import] = field(default_factory=list)
    funcs: list[int] = field(default_factory=list)  # type indices
    tables: list[Limits] = field(default_factory=list)
    mems: list[Limits] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    start: int | None = None
    elems: list[ElemSegment] = field(default_factory=list)
    codes: list[Code] = field(default_factory=list)
    datas: list[DataSegment] = field(default_factory=list)
    customs: list[tuple[str, bytes]] = field(default_factory=list)
    #: SHA-256 hex digest of the binary this module was decoded from;
    #: ``None`` for hand-built modules.  Keys the process-wide compiled
    #: code cache (:mod:`repro.wasm.codecache`).
    content_hash: str | None = None

    # ----- derived index spaces (imports come first, then local defs) -----

    def imported(self, kind: str) -> list[Import]:
        return [imp for imp in self.imports if imp.kind == kind]

    @property
    def num_imported_funcs(self) -> int:
        return len(self.imported("func"))

    @property
    def num_imported_globals(self) -> int:
        return len(self.imported("global"))

    @property
    def num_imported_mems(self) -> int:
        return len(self.imported("mem"))

    @property
    def num_imported_tables(self) -> int:
        return len(self.imported("table"))

    def func_type(self, func_index: int) -> FuncType:
        """Resolve the signature of a function in the module index space."""
        n_imp = self.num_imported_funcs
        if func_index < n_imp:
            type_index = self.imported("func")[func_index].desc
        else:
            type_index = self.funcs[func_index - n_imp]
        assert isinstance(type_index, int)
        return self.types[type_index]

    @property
    def total_funcs(self) -> int:
        return self.num_imported_funcs + len(self.funcs)

    def export_map(self) -> dict[str, Export]:
        return {e.name: e for e in self.exports}
