"""Wasm value and composite types."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.wasm.traps import DecodeError


class ValType(IntEnum):
    """Numeric value types (binary encodings per the spec)."""

    I32 = 0x7F
    I64 = 0x7E
    F32 = 0x7D
    F64 = 0x7C

    @property
    def short(self) -> str:
        return self.name.lower()

    @classmethod
    def from_byte(cls, byte: int) -> "ValType":
        try:
            return cls(byte)
        except ValueError:
            raise DecodeError(f"invalid value type byte 0x{byte:02x}") from None

    @classmethod
    def from_name(cls, name: str) -> "ValType":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown value type {name!r}") from None


#: binary encoding of an empty block type
EMPTY_BLOCK = 0x40

#: binary encoding of funcref element type
FUNCREF = 0x70


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result value types."""

    params: tuple[ValType, ...]
    results: tuple[ValType, ...]

    def __str__(self) -> str:
        p = " ".join(t.short for t in self.params) or "()"
        r = " ".join(t.short for t in self.results) or "()"
        return f"[{p}] -> [{r}]"


@dataclass(frozen=True)
class Limits:
    """Memory/table limits in units of pages/elements."""

    minimum: int
    maximum: int | None = None

    def validate(self, range_max: int, what: str) -> None:
        if self.minimum > range_max:
            raise DecodeError(f"{what} minimum {self.minimum} exceeds {range_max}")
        if self.maximum is not None:
            if self.maximum > range_max:
                raise DecodeError(f"{what} maximum {self.maximum} exceeds {range_max}")
            if self.maximum < self.minimum:
                raise DecodeError(
                    f"{what} maximum {self.maximum} below minimum {self.minimum}"
                )


@dataclass(frozen=True)
class GlobalType:
    """A global's value type and mutability."""

    valtype: ValType
    mutable: bool
