"""Encoder: :class:`Module` -> standard Wasm binary bytes.

The inverse of :mod:`repro.wasm.decoder`; used by the WAT assembler and the
WACC compiler back end, and exercised by round-trip property tests
(``decode(encode(m)) == m`` structurally).
"""

from __future__ import annotations

import struct

from repro.wasm import leb128, opcodes
from repro.wasm.module import Instr, Module
from repro.wasm.wtypes import EMPTY_BLOCK, FUNCREF, GlobalType, Limits, ValType

_EXPORT_KIND_BYTES = {"func": 0, "table": 1, "mem": 2, "global": 3}


def _name(text: str) -> bytes:
    raw = text.encode("utf-8")
    return leb128.encode_u(len(raw)) + raw


def _limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return b"\x00" + leb128.encode_u(limits.minimum)
    return (
        b"\x01" + leb128.encode_u(limits.minimum) + leb128.encode_u(limits.maximum)
    )


def _globaltype(gt: GlobalType) -> bytes:
    return bytes([gt.valtype, 1 if gt.mutable else 0])


def encode_instr(instr: Instr) -> bytes:
    op, imm_value = instr
    info = opcodes.OP_TABLE[op]
    out = bytes([op])
    imm = info.imm
    if imm == "none":
        return out
    if imm == "block":
        if imm_value is None:
            return out + bytes([EMPTY_BLOCK])
        return out + bytes([ValType(imm_value)])
    if imm in ("label", "func", "local", "global"):
        return out + leb128.encode_u(imm_value)
    if imm == "br_table":
        targets, default = imm_value
        body = leb128.encode_u(len(targets))
        for t in targets:
            body += leb128.encode_u(t)
        return out + body + leb128.encode_u(default)
    if imm == "call_ind":
        return out + leb128.encode_u(imm_value) + b"\x00"
    if imm == "mem":
        align, offset = imm_value
        return out + leb128.encode_u(align) + leb128.encode_u(offset)
    if imm == "mem_misc":
        return out + b"\x00"
    if imm == "i32":
        return out + leb128.encode_s(imm_value)
    if imm == "i64":
        return out + leb128.encode_s(imm_value)
    if imm == "f32":
        return out + struct.pack("<f", imm_value)
    if imm == "f64":
        return out + struct.pack("<d", imm_value)
    raise AssertionError(f"unhandled immediate kind {imm!r}")


def _expr(instrs: tuple[Instr, ...]) -> bytes:
    return b"".join(encode_instr(i) for i in instrs)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + leb128.encode_u(len(payload)) + payload


def _vec(items: list[bytes]) -> bytes:
    return leb128.encode_u(len(items)) + b"".join(items)


def encode_module(mod: Module) -> bytes:
    """Serialize a module to the binary format."""
    out = bytearray(b"\x00asm\x01\x00\x00\x00")

    if mod.types:
        items = []
        for ft in mod.types:
            item = b"\x60" + _vec([bytes([t]) for t in ft.params])
            item += _vec([bytes([t]) for t in ft.results])
            items.append(item)
        out += _section(1, _vec(items))

    if mod.imports:
        items = []
        for imp in mod.imports:
            item = _name(imp.module) + _name(imp.name)
            if imp.kind == "func":
                item += b"\x00" + leb128.encode_u(imp.desc)
            elif imp.kind == "table":
                item += b"\x01" + bytes([FUNCREF]) + _limits(imp.desc)
            elif imp.kind == "mem":
                item += b"\x02" + _limits(imp.desc)
            elif imp.kind == "global":
                item += b"\x03" + _globaltype(imp.desc)
            else:
                raise ValueError(f"bad import kind {imp.kind!r}")
            items.append(item)
        out += _section(2, _vec(items))

    if mod.funcs:
        out += _section(3, _vec([leb128.encode_u(ti) for ti in mod.funcs]))

    if mod.tables:
        out += _section(
            4, _vec([bytes([FUNCREF]) + _limits(t) for t in mod.tables])
        )

    if mod.mems:
        out += _section(5, _vec([_limits(m) for m in mod.mems]))

    if mod.globals:
        items = [_globaltype(g.gtype) + _expr(g.init) for g in mod.globals]
        out += _section(6, _vec(items))

    if mod.exports:
        items = [
            _name(e.name) + bytes([_EXPORT_KIND_BYTES[e.kind]]) + leb128.encode_u(e.index)
            for e in mod.exports
        ]
        out += _section(7, _vec(items))

    if mod.start is not None:
        out += _section(8, leb128.encode_u(mod.start))

    if mod.elems:
        items = []
        for elem in mod.elems:
            item = leb128.encode_u(elem.table_index) + _expr(elem.offset)
            item += _vec([leb128.encode_u(f) for f in elem.func_indices])
            items.append(item)
        out += _section(9, _vec(items))

    if mod.codes:
        items = []
        for code in mod.codes:
            # run-length encode consecutive identical local types
            runs: list[tuple[int, ValType]] = []
            for vt in code.locals:
                if runs and runs[-1][1] == vt:
                    runs[-1] = (runs[-1][0] + 1, vt)
                else:
                    runs.append((1, vt))
            body = _vec(
                [leb128.encode_u(count) + bytes([vt]) for count, vt in runs]
            ) + _expr(code.body)
            items.append(leb128.encode_u(len(body)) + body)
        out += _section(10, _vec(items))

    if mod.datas:
        items = []
        for seg in mod.datas:
            item = leb128.encode_u(seg.mem_index) + _expr(seg.offset)
            item += leb128.encode_u(len(seg.payload)) + seg.payload
            items.append(item)
        out += _section(11, _vec(items))

    for name, payload in mod.customs:
        out += _section(0, _name(name) + payload)

    return bytes(out)
