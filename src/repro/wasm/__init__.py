"""A from-scratch WebAssembly MVP runtime.

This package implements the substrate WA-RAN builds on: a decoder for the
standard Wasm binary format, a structural/type validator, a stack-machine
interpreter with sandboxed bounds-checked linear memory, trap semantics,
fuel metering, host-function linking, and a WAT-flavoured text assembler.

The implemented subset is the Wasm MVP (1.0) core: i32/i64/f32/f64 numeric
ops, structured control flow (block/loop/if, br/br_if/br_table), direct and
indirect calls, locals/globals, one linear memory with load/store of all
widths, and one funcref table.  That is everything the WA-RAN plugins and
the paper's evaluation require.

Public entry points:

- :func:`decode_module` - bytes -> :class:`Module`
- :func:`validate_module` - raise :class:`ValidationError` on bad modules
- :class:`Instance` - instantiate and call exports
- :class:`Store` - runtime state shared by instances
- :func:`repro.wasm.wat.assemble` - WAT text -> wasm bytes
"""

from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.instance import HostFunc, Instance, InstanceState, Store
from repro.wasm.interpreter import ExecStats
from repro.wasm.module import Module
from repro.wasm.traps import (
    FuelExhausted,
    MemoryOutOfBounds,
    Trap,
    ValidationError,
    WasmError,
)
from repro.wasm.validator import validate_module

__all__ = [
    "decode_module",
    "encode_module",
    "validate_module",
    "Module",
    "Instance",
    "InstanceState",
    "Store",
    "HostFunc",
    "ExecStats",
    "Trap",
    "WasmError",
    "ValidationError",
    "MemoryOutOfBounds",
    "FuelExhausted",
]
