"""Sandboxed linear memory.

All plugin data lives in a single resizable ``bytearray``; every access is
bounds checked and raises :class:`MemoryOutOfBounds` (a trap) on violation.
This is the mechanism behind WA-RAN's memory-safety story: plugin bugs are
confined here and can never touch host memory.
"""

from __future__ import annotations

import struct

from repro.wasm.traps import MemoryOutOfBounds
from repro.wasm.wtypes import Limits

PAGE_SIZE = 65536


class Memory:
    """One Wasm linear memory instance."""

    def __init__(self, limits: Limits):
        self.limits = limits
        self.data = bytearray(limits.minimum * PAGE_SIZE)

    @property
    def size_pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns old size in pages, or -1 on failure."""
        old = self.size_pages
        new = old + delta_pages
        maximum = self.limits.maximum if self.limits.maximum is not None else 1 << 16
        if delta_pages < 0 or new > maximum or new > 1 << 16:
            return -1
        self.data.extend(bytes(delta_pages * PAGE_SIZE))
        return old

    def _check(self, addr: int, size: int) -> None:
        # addr arrives as an unsigned i32 plus an offset, so it's >= 0,
        # but defend anyway: host-side callers may pass anything.
        if addr < 0 or addr + size > len(self.data):
            raise MemoryOutOfBounds(addr, size, len(self.data))

    # ----- raw byte access (used by hosts and the ABI layer) ---------------

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr : addr + size])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    # ----- typed loads (return Python ints / floats) -----------------------

    def load_int(self, addr: int, size: int, signed: bool) -> int:
        self._check(addr, size)
        return int.from_bytes(
            self.data[addr : addr + size], "little", signed=signed
        )

    def load_f32(self, addr: int) -> float:
        self._check(addr, 4)
        return struct.unpack_from("<f", self.data, addr)[0]

    def load_f64(self, addr: int) -> float:
        self._check(addr, 8)
        return struct.unpack_from("<d", self.data, addr)[0]

    # ----- typed stores -----------------------------------------------------

    def store_int(self, addr: int, value: int, size: int) -> None:
        self._check(addr, size)
        self.data[addr : addr + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    def store_f32(self, addr: int, value: float) -> None:
        self._check(addr, 4)
        struct.pack_into("<f", self.data, addr, value)

    def store_f64(self, addr: int, value: float) -> None:
        self._check(addr, 8)
        struct.pack_into("<d", self.data, addr, value)
