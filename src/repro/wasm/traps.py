"""Error hierarchy for the Wasm runtime.

Every failure mode of the runtime maps onto one of these exceptions.  The
key property WA-RAN relies on is that *all* of them are catchable Python
exceptions raised out of the interpreter without corrupting host state:
a plugin that dereferences a null pointer or runs off the end of its linear
memory raises :class:`Trap`, the host catches it, and the gNB keeps running.
"""


class WasmError(Exception):
    """Base class for all errors raised by the Wasm runtime."""


class DecodeError(WasmError):
    """The byte stream is not a well-formed Wasm binary."""


class ValidationError(WasmError):
    """The module is well-formed but type-incorrect or structurally invalid."""


class LinkError(WasmError):
    """Instantiation failed: missing or mismatched import, bad start func."""


class Trap(WasmError):
    """A runtime trap: execution of the current plugin call is aborted.

    Traps carry a short machine-readable ``code`` (e.g. ``"oob"``,
    ``"unreachable"``, ``"integer divide by zero"``) mirroring the spec's
    trap descriptions, so hosts can classify faults for fault-tolerance
    policies without string matching on human text.
    """

    def __init__(self, message: str, code: str = "trap"):
        super().__init__(message)
        self.code = code


class MemoryOutOfBounds(Trap):
    """Load/store outside the sandbox's linear memory bounds."""

    def __init__(self, addr: int, size: int, limit: int):
        super().__init__(
            f"out of bounds memory access: [{addr}, {addr + size}) "
            f"exceeds memory size {limit}",
            code="oob",
        )
        self.addr = addr
        self.size = size
        self.limit = limit


class StackExhausted(Trap):
    """Call depth exceeded the configured limit."""

    def __init__(self, depth: int):
        super().__init__(f"call stack exhausted at depth {depth}", code="stack")
        self.depth = depth


class FuelExhausted(Trap):
    """The instruction budget for this call ran out.

    WA-RAN uses fuel as the execution-time guard rail: a plugin that loops
    forever is cut off deterministically instead of blowing the slot
    deadline.
    """

    def __init__(self):
        super().__init__("all fuel consumed by WebAssembly", code="fuel")
