"""5G NR PHY-layer abstractions (3GPP 38.211/38.214 subset).

This is the substrate under the MVNO slice-scheduler experiments: the
testbed in the paper runs srsRAN in FDD band n3 with 15 kHz subcarrier
spacing and 10 MHz bandwidth (-> 52 PRBs, 1 ms slots).  What the scheduler
experiments actually consume from the PHY is:

- slot timing (:class:`Numerology`, :class:`CarrierConfig`);
- the MCS table (modulation order + code rate per index, 38.214 Table
  5.1.3.1-1) and CQI table 1 with the CQI->MCS mapping;
- transport-block-size computation (38.214 §5.1.3.2), which converts
  "this UE got N PRBs at MCS m" into deliverable bytes per slot.

All three are implemented from the 3GPP procedures, so scheduler behaviour
(rates per MCS, crossovers) matches the shape a real gNB produces.
"""

from repro.phy.numerology import CarrierConfig, Numerology
from repro.phy.mcs import (
    CQI_TABLE_1,
    MCS_TABLE_1,
    CqiEntry,
    McsEntry,
    cqi_to_mcs,
    sinr_db_to_cqi,
)
from repro.phy.tbs import transport_block_size_bits

__all__ = [
    "Numerology",
    "CarrierConfig",
    "MCS_TABLE_1",
    "CQI_TABLE_1",
    "McsEntry",
    "CqiEntry",
    "cqi_to_mcs",
    "sinr_db_to_cqi",
    "transport_block_size_bits",
]
