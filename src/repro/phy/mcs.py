"""MCS and CQI tables (3GPP 38.214 §5.1.3.1 and §5.2.2.1).

``MCS_TABLE_1`` is PDSCH MCS index table 1 (Table 5.1.3.1-1), 64QAM-max,
which is what a 10 MHz srsRAN deployment uses by default.  ``CQI_TABLE_1``
is CQI table 1 (Table 5.2.2.1-2).  ``cqi_to_mcs`` picks the highest MCS
whose spectral efficiency does not exceed the CQI's - the standard link
adaptation rule.  ``sinr_db_to_cqi`` is the link abstraction: SINR
thresholds at ~10% BLER from common link-level curves.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


@dataclass(frozen=True)
class McsEntry:
    index: int
    qm: int  # modulation order: bits per symbol
    rate_x1024: float  # target code rate * 1024

    @property
    def code_rate(self) -> float:
        return self.rate_x1024 / 1024.0

    @property
    def spectral_efficiency(self) -> float:
        return self.qm * self.code_rate


@dataclass(frozen=True)
class CqiEntry:
    index: int
    qm: int
    rate_x1024: float

    @property
    def spectral_efficiency(self) -> float:
        return self.qm * self.rate_x1024 / 1024.0


#: 38.214 Table 5.1.3.1-1 (MCS index table 1 for PDSCH)
MCS_TABLE_1: list[McsEntry] = [
    McsEntry(0, 2, 120),
    McsEntry(1, 2, 157),
    McsEntry(2, 2, 193),
    McsEntry(3, 2, 251),
    McsEntry(4, 2, 308),
    McsEntry(5, 2, 379),
    McsEntry(6, 2, 449),
    McsEntry(7, 2, 526),
    McsEntry(8, 2, 602),
    McsEntry(9, 2, 679),
    McsEntry(10, 4, 340),
    McsEntry(11, 4, 378),
    McsEntry(12, 4, 434),
    McsEntry(13, 4, 490),
    McsEntry(14, 4, 553),
    McsEntry(15, 4, 616),
    McsEntry(16, 4, 658),
    McsEntry(17, 6, 438),
    McsEntry(18, 6, 466),
    McsEntry(19, 6, 517),
    McsEntry(20, 6, 567),
    McsEntry(21, 6, 616),
    McsEntry(22, 6, 666),
    McsEntry(23, 6, 719),
    McsEntry(24, 6, 772),
    McsEntry(25, 6, 822),
    McsEntry(26, 6, 873),
    McsEntry(27, 6, 910),
    McsEntry(28, 6, 948),
]

#: 38.214 Table 5.2.2.1-2 (CQI table 1); index 0 means out of range.
CQI_TABLE_1: list[CqiEntry] = [
    CqiEntry(1, 2, 78),
    CqiEntry(2, 2, 120),
    CqiEntry(3, 2, 193),
    CqiEntry(4, 2, 308),
    CqiEntry(5, 2, 449),
    CqiEntry(6, 2, 602),
    CqiEntry(7, 4, 378),
    CqiEntry(8, 4, 490),
    CqiEntry(9, 4, 616),
    CqiEntry(10, 6, 466),
    CqiEntry(11, 6, 567),
    CqiEntry(12, 6, 666),
    CqiEntry(13, 6, 772),
    CqiEntry(14, 6, 873),
    CqiEntry(15, 6, 948),
]

#: 38.214 Table 5.1.3.1-2 (MCS index table 2, 256QAM)
MCS_TABLE_2: list[McsEntry] = [
    McsEntry(0, 2, 120),
    McsEntry(1, 2, 193),
    McsEntry(2, 2, 308),
    McsEntry(3, 2, 449),
    McsEntry(4, 2, 602),
    McsEntry(5, 4, 378),
    McsEntry(6, 4, 434),
    McsEntry(7, 4, 490),
    McsEntry(8, 4, 553),
    McsEntry(9, 4, 616),
    McsEntry(10, 4, 658),
    McsEntry(11, 6, 466),
    McsEntry(12, 6, 517),
    McsEntry(13, 6, 567),
    McsEntry(14, 6, 616),
    McsEntry(15, 6, 666),
    McsEntry(16, 6, 719),
    McsEntry(17, 6, 772),
    McsEntry(18, 6, 822),
    McsEntry(19, 6, 873),
    McsEntry(20, 8, 682.5),
    McsEntry(21, 8, 711),
    McsEntry(22, 8, 754),
    McsEntry(23, 8, 797),
    McsEntry(24, 8, 841),
    McsEntry(25, 8, 885),
    McsEntry(26, 8, 916.5),
    McsEntry(27, 8, 948),
]

#: 38.214 Table 5.2.2.1-3 (CQI table 2, 256QAM)
CQI_TABLE_2: list[CqiEntry] = [
    CqiEntry(1, 2, 78),
    CqiEntry(2, 2, 193),
    CqiEntry(3, 2, 449),
    CqiEntry(4, 4, 378),
    CqiEntry(5, 4, 490),
    CqiEntry(6, 4, 616),
    CqiEntry(7, 6, 466),
    CqiEntry(8, 6, 567),
    CqiEntry(9, 6, 666),
    CqiEntry(10, 6, 772),
    CqiEntry(11, 6, 873),
    CqiEntry(12, 8, 711),
    CqiEntry(13, 8, 797),
    CqiEntry(14, 8, 885),
    CqiEntry(15, 8, 948),
]

MCS_TABLES = {1: MCS_TABLE_1, 2: MCS_TABLE_2}
CQI_TABLES = {1: CQI_TABLE_1, 2: CQI_TABLE_2}

#: SINR (dB) thresholds for CQI 1..15 at ~10% BLER (link abstraction).
SINR_THRESHOLDS_DB = [
    -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3,
    18.7, 21.0, 22.7,
]


def sinr_db_to_cqi(sinr_db: float) -> int:
    """Map SINR to CQI 0..15 (0 = below the lowest usable threshold)."""
    return bisect_right(SINR_THRESHOLDS_DB, sinr_db)


def cqi_to_mcs(cqi: int, table: int = 1) -> int:
    """Highest MCS index whose spectral efficiency <= the CQI's.

    ``table`` selects the MCS/CQI table pair (1 = 64QAM, 2 = 256QAM -
    switchable at run time via the RC-lite ``set_cqi_table`` control).
    CQI 0 (out of range) maps to MCS 0; the UE shouldn't really be
    scheduled, which is the scheduler's decision, not the table's.
    """
    if not 0 <= cqi <= 15:
        raise ValueError(f"CQI must be 0..15, got {cqi}")
    if table not in MCS_TABLES:
        raise ValueError(f"unknown MCS/CQI table {table}")
    if cqi == 0:
        return 0
    target = CQI_TABLES[table][cqi - 1].spectral_efficiency
    best = 0
    for entry in MCS_TABLES[table]:
        if entry.spectral_efficiency <= target + 1e-9:
            best = entry.index
    return best


def mcs_entry(index: int, table: int = 1) -> McsEntry:
    """Lookup with range checking."""
    entries = MCS_TABLES.get(table)
    if entries is None:
        raise ValueError(f"unknown MCS table {table}")
    if not 0 <= index < len(entries):
        raise ValueError(
            f"MCS index must be 0..{len(entries) - 1} for table {table}, "
            f"got {index}"
        )
    return entries[index]
