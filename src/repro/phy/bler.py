"""Block-error-rate model and HARQ-style accounting.

Link adaptation targets ~10% BLER at the MCS matched to the reported CQI
(38.214 CQI definition: "the highest CQI such that the transport block
error probability does not exceed 0.1").  Scheduling *above* the channel's
supported MCS raises the error probability steeply; below it, coding gain
drives errors toward zero.  This module provides that curve plus a
per-transport-block Bernoulli draw.

The gNB uses it (optionally) per grant: an errored TB delivers nothing and
the bytes stay in the RLC buffer - which is exactly a retransmission at
the next scheduling opportunity.
"""

from __future__ import annotations

import math
import random

from repro.phy.mcs import cqi_to_mcs

#: BLER at the link-adapted operating point (the 38.214 target)
TARGET_BLER = 0.1

#: multiplicative error growth per MCS step above the supported one
_STEEPNESS = 2.5

#: error decay per MCS step below the supported one
_BACKOFF = 0.25


def bler(mcs: int, cqi: int) -> float:
    """Expected transport-block error probability for ``mcs`` at ``cqi``."""
    if cqi <= 0:
        return 1.0  # out of range: nothing decodes
    supported = cqi_to_mcs(cqi)
    delta = mcs - supported
    if delta <= 0:
        return TARGET_BLER * (_BACKOFF ** (-delta))
    return min(1.0, TARGET_BLER * (_STEEPNESS**delta))


class LinkErrorModel:
    """Per-TB Bernoulli error draws with a seedable RNG."""

    def __init__(self, seed: int | None = 0, target_bler: float = TARGET_BLER):
        if not 0.0 <= target_bler < 1.0:
            raise ValueError("target BLER must be in [0, 1)")
        self._rng = random.Random(seed)
        self.target_bler = target_bler
        self.tb_ok = 0
        self.tb_error = 0

    def transmit(self, mcs: int, cqi: int) -> bool:
        """True if the transport block decodes."""
        probability = bler(mcs, cqi) * (self.target_bler / TARGET_BLER)
        if self._rng.random() < min(probability, 1.0):
            self.tb_error += 1
            return False
        self.tb_ok += 1
        return True

    @property
    def measured_bler(self) -> float:
        total = self.tb_ok + self.tb_error
        return self.tb_error / total if total else 0.0
