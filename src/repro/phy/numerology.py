"""NR numerology and carrier configuration (38.211 §4, 38.101 §5.3).

NR numerology mu scales the subcarrier spacing as ``15 * 2**mu`` kHz and
the slot duration as ``1 / 2**mu`` ms.  The paper's testbed uses mu = 0
(15 kHz SCS, 1 ms slot) in FDD band n3 with 10 MHz bandwidth, which gives
52 usable PRBs (38.101-1 Table 5.3.2-1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: 38.101-1 Table 5.3.2-1 - max transmission bandwidth N_RB for FR1,
#: keyed by (scs_khz, bandwidth_mhz).
N_RB_TABLE: dict[tuple[int, int], int] = {
    (15, 5): 25,
    (15, 10): 52,
    (15, 15): 79,
    (15, 20): 106,
    (15, 25): 133,
    (15, 30): 160,
    (15, 40): 216,
    (15, 50): 270,
    (30, 5): 11,
    (30, 10): 24,
    (30, 15): 38,
    (30, 20): 51,
    (30, 25): 65,
    (30, 30): 78,
    (30, 40): 106,
    (30, 50): 133,
    (30, 60): 162,
    (30, 80): 217,
    (30, 100): 273,
    (60, 10): 11,
    (60, 15): 18,
    (60, 20): 24,
    (60, 40): 51,
    (60, 60): 79,
    (60, 80): 107,
    (60, 100): 135,
}

#: subcarriers per PRB (38.211)
SUBCARRIERS_PER_PRB = 12

#: OFDM symbols per slot with normal cyclic prefix
SYMBOLS_PER_SLOT = 14


@dataclass(frozen=True)
class Numerology:
    """NR numerology mu in 0..4."""

    mu: int = 0

    def __post_init__(self):
        if not 0 <= self.mu <= 4:
            raise ValueError(f"numerology mu must be 0..4, got {self.mu}")

    @property
    def scs_khz(self) -> int:
        return 15 * (1 << self.mu)

    @property
    def slot_duration_s(self) -> float:
        return 1e-3 / (1 << self.mu)

    @property
    def slot_duration_us(self) -> float:
        return 1000.0 / (1 << self.mu)

    @property
    def slots_per_frame(self) -> int:
        """Slots per 10 ms radio frame."""
        return 10 * (1 << self.mu)

    @property
    def slots_per_second(self) -> int:
        return 1000 * (1 << self.mu)


@dataclass(frozen=True)
class CarrierConfig:
    """One FDD downlink carrier: band label, bandwidth, numerology.

    Defaults reproduce the paper's testbed: band n3, 10 MHz, 15 kHz SCS.
    """

    band: str = "n3"
    bandwidth_mhz: int = 10
    numerology: Numerology = Numerology(0)
    #: PDSCH overhead symbols per slot (control + DMRS), used by TBS calc
    overhead_symbols: int = 2

    def __post_init__(self):
        key = (self.numerology.scs_khz, self.bandwidth_mhz)
        if key not in N_RB_TABLE:
            raise ValueError(
                f"unsupported (scs, bandwidth) combination {key}; "
                f"valid: {sorted(N_RB_TABLE)}"
            )

    @property
    def n_prb(self) -> int:
        """Usable PRBs for this bandwidth/SCS (38.101-1 Table 5.3.2-1)."""
        return N_RB_TABLE[(self.numerology.scs_khz, self.bandwidth_mhz)]

    @property
    def slot_duration_s(self) -> float:
        return self.numerology.slot_duration_s

    @property
    def data_symbols_per_slot(self) -> int:
        return SYMBOLS_PER_SLOT - self.overhead_symbols


#: the paper's testbed carrier
PAPER_CARRIER = CarrierConfig()
