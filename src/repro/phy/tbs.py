"""Transport block size determination (3GPP 38.214 §5.1.3.2).

Given PRB count, MCS and layer count, computes the number of information
bits one slot can carry.  This is the function that turns scheduler grants
into throughput, so it is implemented to the spec:

1. ``N_RE' = 12 * n_symbols - n_dmrs - n_overhead`` per PRB, capped at 156;
2. ``N_info = N_RE * R * Qm * v``;
3. for ``N_info <= 3824``: quantize and round *up* to the nearest entry of
   the 93-entry TBS table (Table 5.1.3.2-1);
4. above 3824: the log2-based quantization with byte alignment and the
   code-block-count alignment for rates <= or > 1/4.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.phy.mcs import mcs_entry

#: 38.214 Table 5.1.3.2-1 (TBS for N_info <= 3824)
TBS_TABLE: list[int] = [
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
    152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
    336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
    672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
    1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736,
    1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600,
    2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496, 3624, 3752, 3824,
]

#: cap on usable resource elements per PRB (38.214 step 1)
_MAX_RE_PER_PRB = 156


def resource_elements(
    n_prb: int,
    n_symbols: int = 12,
    dmrs_re_per_prb: int = 12,
    overhead_re_per_prb: int = 0,
) -> int:
    """Step 1: usable REs. ``n_symbols`` excludes control symbols."""
    if n_prb <= 0:
        return 0
    re_per_prb = 12 * n_symbols - dmrs_re_per_prb - overhead_re_per_prb
    return min(_MAX_RE_PER_PRB, max(re_per_prb, 0)) * n_prb


@lru_cache(maxsize=1 << 16)
def transport_block_size_bits(
    n_prb: int,
    mcs: int,
    layers: int = 1,
    n_symbols: int = 12,
    dmrs_re_per_prb: int = 12,
    overhead_re_per_prb: int = 0,
    mcs_table: int = 1,
) -> int:
    """TBS in bits for a grant of ``n_prb`` PRBs at MCS ``mcs``.

    Returns 0 for an empty grant.  Memoized: TBS is a pure function of its
    arguments, and production gNBs precompute exactly this table.
    ``mcs_table`` selects MCS table 1 (64QAM) or 2 (256QAM).
    """
    if n_prb == 0:
        return 0
    if n_prb < 0:
        raise ValueError(f"negative PRB count {n_prb}")
    entry = mcs_entry(mcs, table=mcs_table)
    n_re = resource_elements(n_prb, n_symbols, dmrs_re_per_prb, overhead_re_per_prb)
    n_info = n_re * entry.code_rate * entry.qm * layers
    if n_info <= 0:
        return 0

    if n_info <= 3824:
        n = max(3, int(math.floor(math.log2(n_info))) - 6)
        n_info_q = max((1 << n) * int(math.floor(n_info / (1 << n))), 24)
        for tbs in TBS_TABLE:
            if tbs >= n_info_q:
                return tbs
        return TBS_TABLE[-1]

    n = int(math.floor(math.log2(n_info - 24))) - 5
    n_info_q = max(3840, (1 << n) * round((n_info - 24) / (1 << n)))
    if entry.code_rate <= 0.25:
        c = math.ceil((n_info_q + 24) / 3816)
        return 8 * c * math.ceil((n_info_q + 24) / (8 * c)) - 24
    if n_info_q > 8424:
        c = math.ceil((n_info_q + 24) / 8424)
        return 8 * c * math.ceil((n_info_q + 24) / (8 * c)) - 24
    return 8 * math.ceil((n_info_q + 24) / 8) - 24


def slot_capacity_bytes(n_prb: int, mcs: int, **kwargs) -> int:
    """Convenience: deliverable payload bytes in one slot."""
    return transport_block_size_bits(n_prb, mcs, **kwargs) // 8


def peak_rate_bps(n_prb: int, mcs: int, slot_duration_s: float, **kwargs) -> float:
    """Sustained bit rate when granted ``n_prb`` PRBs every slot."""
    return transport_block_size_bits(n_prb, mcs, **kwargs) / slot_duration_s
