"""Plugin fault tolerance (paper §6A, implemented).

"The gNB can switch to a default scheduler or disconnect the MVNO if their
plugin is not behaving as expected."  :class:`FaultPolicy` implements that
escalation ladder:

1. every individual fault (trap, fuel/deadline exhaustion, ABI violation,
   invalid grants) falls back to the slice's default native scheduler for
   that slot - the slice's UEs never lose service;
2. ``quarantine_after`` *consecutive* faults park the plugin: the default
   scheduler serves the slice until an operator swaps a fixed plugin in
   (or restores a known-good checkpoint and releases it);
3. ``disconnect_after`` consecutive faults (if configured) drop the slice
   entirely - the contractual remedy against a hostile MVNO.

A released slice is on probation: :meth:`FaultPolicy.release` does *not*
reset the consecutive-fault counter (only a successful call does), so a
slice that faults straight after release keeps climbing the ladder toward
``disconnect_after`` instead of oscillating forever between quarantine and
release.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs import OBS


class FaultAction(enum.Enum):
    FALLBACK = "fallback"  # use default scheduler this slot
    QUARANTINE = "quarantine"  # stop calling the plugin until swapped
    DISCONNECT = "disconnect"  # drop the slice


@dataclass(frozen=True)
class FaultEvent:
    slot: int
    slice_id: int
    kind: str  # PluginError.kind or 'grants'
    action: FaultAction
    detail: str


@dataclass
class FaultPolicy:
    quarantine_after: int = 3
    disconnect_after: int | None = None

    consecutive: dict[int, int] = field(default_factory=dict)
    quarantined: set[int] = field(default_factory=set)
    disconnected: set[int] = field(default_factory=set)
    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if (
            self.disconnect_after is not None
            and self.disconnect_after <= self.quarantine_after
        ):
            raise ValueError(
                f"disconnect_after ({self.disconnect_after}) must exceed "
                f"quarantine_after ({self.quarantine_after}): disconnection "
                "is the escalation beyond quarantine, not a shortcut past it"
            )

    def record_fault(self, slot: int, slice_id: int, kind: str, detail: str) -> FaultAction:
        """Register a plugin fault; returns the action the gNB must take."""
        if slice_id in self.disconnected:
            # a disconnected slice is already past the end of the ladder:
            # don't keep escalating or appending events for it
            return FaultAction.DISCONNECT
        count = self.consecutive.get(slice_id, 0) + 1
        self.consecutive[slice_id] = count
        if self.disconnect_after is not None and count >= self.disconnect_after:
            action = FaultAction.DISCONNECT
            self.disconnected.add(slice_id)
        elif count >= self.quarantine_after:
            action = FaultAction.QUARANTINE
            self.quarantined.add(slice_id)
        else:
            action = FaultAction.FALLBACK
        self.events.append(FaultEvent(slot, slice_id, kind, action, detail))
        if OBS.enabled:
            OBS.events.emit(
                "gnb.fault",
                source=f"slice:{slice_id}",
                slot=slot,
                fault_kind=kind,
                action=action.value,
                consecutive=count,
                detail=detail,
            )
            OBS.registry.counter(
                "waran_gnb_faults_total", "plugin faults by kind and action"
            ).inc(slice=str(slice_id), kind=kind, action=action.value)
        return action

    def record_success(self, slice_id: int) -> None:
        self.consecutive[slice_id] = 0

    def is_quarantined(self, slice_id: int) -> bool:
        return slice_id in self.quarantined

    def is_disconnected(self, slice_id: int) -> bool:
        return slice_id in self.disconnected

    def release(self, slice_id: int) -> None:
        """Operator action: a fixed plugin (or checkpoint) went in; try again.

        The consecutive-fault counter deliberately survives release: the
        released slice is on probation, and another fault before any
        success continues the climb toward ``disconnect_after``.  A single
        successful call (:meth:`record_success`) clears it.
        """
        self.quarantined.discard(slice_id)
        if OBS.enabled:
            OBS.events.emit("gnb.release", source=f"slice:{slice_id}")
