"""Plugin fault tolerance (paper §6A, implemented).

"The gNB can switch to a default scheduler or disconnect the MVNO if their
plugin is not behaving as expected."  :class:`FaultPolicy` implements that
escalation ladder:

1. every individual fault (trap, fuel/deadline exhaustion, ABI violation,
   invalid grants) falls back to the slice's default native scheduler for
   that slot - the slice's UEs never lose service;
2. ``quarantine_after`` *consecutive* faults park the plugin: the default
   scheduler serves the slice until an operator swaps a fixed plugin in;
3. ``disconnect_after`` consecutive faults (if configured) drop the slice
   entirely - the contractual remedy against a hostile MVNO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs import OBS


class FaultAction(enum.Enum):
    FALLBACK = "fallback"  # use default scheduler this slot
    QUARANTINE = "quarantine"  # stop calling the plugin until swapped
    DISCONNECT = "disconnect"  # drop the slice


@dataclass(frozen=True)
class FaultEvent:
    slot: int
    slice_id: int
    kind: str  # PluginError.kind or 'grants'
    action: FaultAction
    detail: str


@dataclass
class FaultPolicy:
    quarantine_after: int = 3
    disconnect_after: int | None = None

    consecutive: dict[int, int] = field(default_factory=dict)
    quarantined: set[int] = field(default_factory=set)
    disconnected: set[int] = field(default_factory=set)
    events: list[FaultEvent] = field(default_factory=list)

    def record_fault(self, slot: int, slice_id: int, kind: str, detail: str) -> FaultAction:
        """Register a plugin fault; returns the action the gNB must take."""
        count = self.consecutive.get(slice_id, 0) + 1
        self.consecutive[slice_id] = count
        if self.disconnect_after is not None and count >= self.disconnect_after:
            action = FaultAction.DISCONNECT
            self.disconnected.add(slice_id)
        elif count >= self.quarantine_after:
            action = FaultAction.QUARANTINE
            self.quarantined.add(slice_id)
        else:
            action = FaultAction.FALLBACK
        self.events.append(FaultEvent(slot, slice_id, kind, action, detail))
        if OBS.enabled:
            OBS.events.emit(
                "gnb.fault",
                source=f"slice:{slice_id}",
                slot=slot,
                fault_kind=kind,
                action=action.value,
                consecutive=count,
                detail=detail,
            )
            OBS.registry.counter(
                "waran_gnb_faults_total", "plugin faults by kind and action"
            ).inc(slice=str(slice_id), kind=kind, action=action.value)
        return action

    def record_success(self, slice_id: int) -> None:
        self.consecutive[slice_id] = 0

    def is_quarantined(self, slice_id: int) -> bool:
        return slice_id in self.quarantined

    def is_disconnected(self, slice_id: int) -> bool:
        return slice_id in self.disconnected

    def release(self, slice_id: int) -> None:
        """Operator action: a fixed plugin was swapped in; trust it again."""
        self.quarantined.discard(slice_id)
        self.consecutive[slice_id] = 0
        if OBS.enabled:
            OBS.events.emit("gnb.release", source=f"slice:{slice_id}")
