"""The WA-RAN gNB host.

Integrates everything below it: the carrier (:mod:`repro.phy`), channels,
traffic, the two-level scheduler (:mod:`repro.sched`), plugin hosting
(:mod:`repro.abi`) and fault tolerance.  One :class:`GnbHost` runs the
slot-synchronous MAC loop; slices attach either native schedulers or Wasm
scheduler plugins and can hot-swap between them mid-run (§5C).
"""

from repro.gnb.fault import FaultAction, FaultEvent, FaultPolicy
from repro.gnb.host import GnbHost, SliceRuntime, UeContext

__all__ = [
    "GnbHost",
    "SliceRuntime",
    "UeContext",
    "FaultPolicy",
    "FaultAction",
    "FaultEvent",
]
