"""The slot-synchronous gNB MAC with plugin-backed slice scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abi.host import PluginError, SchedulerPlugin
from repro.channel.models import ChannelModel
from repro.gnb.fault import FaultAction, FaultPolicy
from repro.metrics import Accumulator, RateMeter, StreamingQuantile
from repro.obs import OBS
from repro.phy.numerology import CarrierConfig
from repro.phy.tbs import transport_block_size_bits
from repro.rt.dispatcher import DeadlineDispatcher, RtDecision, RtPolicy, RtRequest
from repro.sched.intra import IntraSliceScheduler, make_intra_scheduler
from repro.sched.inter import InterSliceScheduler
from repro.sched.types import (
    GrantValidationError,
    UeGrant,
    UeSchedInfo,
    validate_grants,
)
from repro.traffic.sources import DownlinkBuffer, TrafficSource


@dataclass
class UeContext:
    """Everything the gNB tracks per connected UE."""

    ue_id: int
    slice_id: int
    channel: ChannelModel
    traffic: TrafficSource
    buffer: DownlinkBuffer = field(default_factory=DownlinkBuffer)
    avg_tput_bps: float = 0.0
    meter: RateMeter = field(default_factory=RateMeter)
    current_mcs: int = 0
    current_cqi: int = 0
    #: measurement of the strongest neighbour cell (0 = none reported);
    #: feeds the E2 KPM reports the traffic-steering xApp consumes
    neighbor_cell: int = 0
    neighbor_channel: ChannelModel | None = None

    def neighbor_cqi(self, slot: int) -> int:
        return self.neighbor_channel.step(slot) if self.neighbor_channel else 0


class SliceRuntime:
    """One slice (MVNO) attached to the gNB.

    The intra-slice scheduler is either a native policy or a
    :class:`SchedulerPlugin`; :meth:`use_plugin` / :meth:`use_native` and
    :meth:`swap_plugin` switch between them at any slot boundary - the
    gNB never stops (§5C).
    """

    def __init__(
        self,
        slice_id: int,
        name: str,
        default_scheduler: str = "rr",
        lane: str = "normal",
    ):
        self.slice_id = slice_id
        self.name = name
        #: rt priority lane (``sla`` dispatches first and is never shed)
        self.lane = lane
        self.default: IntraSliceScheduler = make_intra_scheduler(default_scheduler)
        self.plugin: SchedulerPlugin | None = None
        self.native: IntraSliceScheduler | None = None
        self.meter = RateMeter()
        self.exec_time = Accumulator()
        self.exec_p50 = StreamingQuantile(0.5)
        self.exec_p99 = StreamingQuantile(0.99)
        #: last known-good plugin state (taken on the success path when the
        #: gNB's ``checkpoint_every`` cadence is enabled)
        self.last_checkpoint = None
        self.successes = 0
        self.checkpoints_taken = 0
        self.restores = 0

    def use_plugin(self, plugin: SchedulerPlugin) -> None:
        self.plugin = plugin
        self.native = None

    def use_native(self, scheduler: IntraSliceScheduler) -> None:
        self.native = scheduler
        self.plugin = None

    def swap_plugin(self, wasm_bytes: bytes) -> int:
        """Hot-swap the plugin binary; returns the new generation."""
        if self.plugin is None:
            raise RuntimeError(f"slice {self.name} has no plugin to swap")
        return self.plugin.swap(wasm_bytes)

    @property
    def scheduler_kind(self) -> str:
        if self.plugin is not None:
            return f"plugin:{self.plugin.name}"
        if self.native is not None:
            return f"native:{self.native.name}"
        return f"default:{self.default.name}"


class GnbHost:
    """The gNB: carrier + slices + UEs + the per-slot scheduling loop."""

    def __init__(
        self,
        carrier: CarrierConfig | None = None,
        inter_slice: InterSliceScheduler | None = None,
        fault_policy: FaultPolicy | None = None,
        pf_time_constant_slots: int = 100,
        error_model=None,
        checkpoint_every: int = 0,
        rt: DeadlineDispatcher | RtPolicy | None = None,
    ):
        self.carrier = carrier or CarrierConfig()
        self.inter_slice = inter_slice
        self.fault_policy = fault_policy or FaultPolicy()
        #: the real-time dispatcher: per-call fuel budgets derived from the
        #: slot-time budget, priority lanes, admission control.  ``None``
        #: keeps the legacy unconditional dispatch.
        if isinstance(rt, RtPolicy):
            rt = DeadlineDispatcher(
                rt, slot_us=self.carrier.slot_duration_s * 1e6
            )
        self.rt = rt
        self.pf_time_constant_slots = pf_time_constant_slots
        #: take a plugin checkpoint every N successful scheduling calls
        #: (0 disables; the chaos runner turns this on so a quarantined
        #: slice can recover by restoring known-good state)
        self.checkpoint_every = checkpoint_every
        #: optional :class:`repro.phy.bler.LinkErrorModel`; errored TBs
        #: deliver nothing and the bytes stay queued (HARQ-by-RLC retry)
        self.error_model = error_model
        self.slices: dict[int, SliceRuntime] = {}
        self.ues: dict[int, UeContext] = {}
        self.slot = 0
        self.total_delivered_bytes = 0

    # ----- topology -------------------------------------------------------------

    def add_slice(self, runtime: SliceRuntime) -> SliceRuntime:
        if runtime.slice_id in self.slices:
            raise ValueError(f"slice {runtime.slice_id} already attached")
        self.slices[runtime.slice_id] = runtime
        return runtime

    def attach_ue(self, ue: UeContext) -> UeContext:
        if ue.ue_id in self.ues:
            raise ValueError(f"UE {ue.ue_id} already attached")
        if ue.slice_id not in self.slices:
            raise ValueError(f"UE {ue.ue_id} names unknown slice {ue.slice_id}")
        self.ues[ue.ue_id] = ue
        return ue

    def detach_ue(self, ue_id: int) -> None:
        self.ues.pop(ue_id, None)

    # ----- the slot loop -----------------------------------------------------------

    @property
    def now_s(self) -> float:
        return self.slot * self.carrier.slot_duration_s

    def run(self, n_slots: int) -> None:
        for _ in range(n_slots):
            self.step()

    def step(self) -> dict[int, list[UeGrant]]:
        """Advance one slot; returns the executed grants per slice."""
        with OBS.tracer.span("gnb.step", slot=self.slot):
            executed = self._step_slot()
        if OBS.enabled:
            OBS.registry.counter("waran_gnb_slots_total", "slots scheduled").inc()
        return executed

    def _step_slot(self) -> dict[int, list[UeGrant]]:
        slot_dt = self.carrier.slot_duration_s
        now = self.now_s

        # 1. traffic arrives into DL buffers; channels evolve
        for ue in self.ues.values():
            ue.buffer.enqueue(ue.traffic.arrivals(now, slot_dt))
            ue.current_cqi = ue.channel.step(self.slot)
            ue.current_mcs = ue.channel.mcs(self.slot)

        # 2. snapshot scheduler inputs per slice
        slice_ues: dict[int, list[UeSchedInfo]] = {
            sid: [] for sid in self.slices
            if not self.fault_policy.is_disconnected(sid)
        }
        for ue in self.ues.values():
            if ue.slice_id in slice_ues:
                slice_ues[ue.slice_id].append(
                    UeSchedInfo(
                        ue.ue_id,
                        ue.current_mcs,
                        ue.current_cqi,
                        ue.buffer.occupancy_bytes,
                        ue.avg_tput_bps,
                    )
                )

        # 3. inter-slice allocation
        if self.inter_slice is not None:
            allocation = self.inter_slice.allocate(
                self.carrier.n_prb, slice_ues, self.slot
            )
        else:
            # single-slice (or equal-split) fallback
            n = max(len(slice_ues), 1)
            allocation = {sid: self.carrier.n_prb // n for sid in slice_ues}

        # 4. intra-slice scheduling (rt: lanes planned, budgets assigned,
        # SLA-priority dispatch order), 5. grant execution
        rt_decisions: dict[int, RtDecision] = {}
        order = list(slice_ues.keys())
        if self.rt is not None:
            requests = []
            for sid in order:
                runtime = self.slices[sid]
                if (
                    runtime.plugin is not None
                    and not self.fault_policy.is_quarantined(sid)
                    and allocation.get(sid, 0) > 0
                    and slice_ues[sid]
                ):
                    requests.append(
                        RtRequest(sid, runtime.plugin.name, runtime.lane)
                    )
            decisions = self.rt.plan_slot(self.slot, requests)
            rt_decisions = {d.sid: d for d in decisions}
            rank = {d.sid: i for i, d in enumerate(decisions)}
            order.sort(
                key=lambda sid: (0, rank[sid]) if sid in rank else (1, sid)
            )
        executed: dict[int, list[UeGrant]] = {}
        served: set[int] = set()
        for sid in order:
            ues = slice_ues[sid]
            prbs = allocation.get(sid, 0)
            grants = self._schedule_slice(sid, prbs, ues, rt_decisions.get(sid))
            executed[sid] = grants
            runtime = self.slices[sid]
            for grant in grants:
                ue = self.ues[grant.ue_id]
                tbs_bytes = transport_block_size_bits(grant.prbs, ue.current_mcs) // 8
                if self.error_model is not None and not self.error_model.transmit(
                    ue.current_mcs, ue.current_cqi
                ):
                    tbs_bytes = 0  # TB lost; bytes stay queued for retx
                delivered = ue.buffer.drain(tbs_bytes)
                self.total_delivered_bytes += delivered
                if OBS.enabled and delivered:
                    OBS.registry.counter(
                        "waran_gnb_delivered_bytes_total",
                        "bytes delivered to UEs by slice",
                    ).inc(delivered, slice=runtime.name)
                ue.meter.add(now, delivered)
                runtime.meter.add(now, delivered)
                if self.inter_slice is not None:
                    self.inter_slice.notify_delivery(sid, delivered)
                self._update_avg(ue, delivered, slot_dt)
                served.add(grant.ue_id)

        # 6. PF long-term average decays for unserved UEs
        for ue in self.ues.values():
            if ue.ue_id not in served:
                self._update_avg(ue, 0, slot_dt)

        if self.rt is not None:
            self.rt.settle(self.slot)
        self.slot += 1
        return executed

    def _update_avg(self, ue: UeContext, delivered_bytes: int, slot_dt: float) -> None:
        alpha = 1.0 / self.pf_time_constant_slots
        instant_bps = delivered_bytes * 8 / slot_dt
        ue.avg_tput_bps = (1 - alpha) * ue.avg_tput_bps + alpha * instant_bps

    def _schedule_slice(
        self,
        sid: int,
        prbs: int,
        ues: list[UeSchedInfo],
        decision: RtDecision | None = None,
    ) -> list[UeGrant]:
        runtime = self.slices[sid]
        if prbs <= 0 or not ues:
            return []

        use_plugin = (
            runtime.plugin is not None
            and not self.fault_policy.is_quarantined(sid)
        )
        if use_plugin and decision is not None and not decision.dispatches:
            # rt degradation: rejected / quarantined / shed this slot - the
            # native fallback serves the slice, the plugin is not called
            use_plugin = False
        if use_plugin:
            fuel = "unset"
            rt_attrs = None
            if decision is not None and decision.fuel_budget is not None:
                fuel = decision.fuel_budget
                rt_attrs = decision.to_attrs()
            try:
                call = runtime.plugin.schedule(
                    prbs, ues, self.slot, fuel=fuel, rt=rt_attrs
                )
                validate_grants(call.grants, prbs, ues)
            except (PluginError, GrantValidationError) as exc:
                kind = exc.kind if isinstance(exc, PluginError) else "grants"
                if self.rt is not None and decision is not None:
                    self.rt.observe_call(
                        decision,
                        self.slot,
                        fuel_used=None,
                        elapsed_us=0.0,
                        overrun=kind == "deadline",
                    )
                action = self.fault_policy.record_fault(
                    self.slot, sid, kind, str(exc)
                )
                if action == FaultAction.DISCONNECT:
                    return []
                return runtime.default.schedule(prbs, ues, self.slot)
            self.fault_policy.record_success(sid)
            if self.rt is not None and decision is not None:
                self.rt.observe_call(
                    decision,
                    self.slot,
                    fuel_used=call.fuel_used,
                    elapsed_us=call.elapsed_us,
                    overrun=False,
                )
            if self.checkpoint_every:
                runtime.successes += 1
                if runtime.successes % self.checkpoint_every == 0:
                    runtime.last_checkpoint = runtime.plugin.host.checkpoint()
                    runtime.checkpoints_taken += 1
            runtime.exec_time.add(call.elapsed_us)
            runtime.exec_p50.add(call.elapsed_us)
            runtime.exec_p99.add(call.elapsed_us)
            if OBS.enabled:
                OBS.registry.histogram(
                    "waran_gnb_slice_exec_us",
                    "per-slot plugin scheduling time by slice (us)",
                ).observe(call.elapsed_us, slice=runtime.name)
                slot_us = self.carrier.slot_duration_s * 1e6
                if call.elapsed_us > slot_us:
                    OBS.events.emit(
                        "gnb.deadline_miss",
                        source=runtime.name,
                        slot=self.slot,
                        elapsed_us=call.elapsed_us,
                        slot_us=slot_us,
                    )
                    OBS.registry.counter(
                        "waran_gnb_deadline_miss_total",
                        "plugin calls that overran the slot duration",
                    ).inc(slice=runtime.name)
            return call.grants

        scheduler = runtime.native or runtime.default
        grants = scheduler.schedule(prbs, ues, self.slot)
        validate_grants(grants, prbs, ues)  # natives must obey the same contract
        return grants

    # ----- recovery --------------------------------------------------------------

    def release_slice(self, slice_id: int, wasm_bytes: bytes | None = None) -> bool:
        """Recover a quarantined slice; returns True if state was restored.

        Three recovery paths, strongest first: swap in a fixed binary if
        one is provided; otherwise restore the slice's last known-good
        checkpoint into a fresh instance (keeping the plugin's accumulated
        state while shedding whatever corruption got it quarantined);
        otherwise just release and let the existing instance try again.
        """
        runtime = self.slices[slice_id]
        restored = False
        if runtime.plugin is not None:
            if wasm_bytes is not None:
                runtime.plugin.swap(wasm_bytes)
                runtime.last_checkpoint = None
            elif runtime.last_checkpoint is not None:
                runtime.plugin.host.restore(runtime.last_checkpoint)
                runtime.restores += 1
                restored = True
        self.fault_policy.release(slice_id)
        return restored

    # ----- reporting -------------------------------------------------------------

    def finish_meters(self) -> None:
        now = self.now_s
        for ue in self.ues.values():
            ue.meter.finish(now)
        for runtime in self.slices.values():
            runtime.meter.finish(now)
