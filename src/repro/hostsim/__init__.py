"""Native-host failure simulation (the §5D baseline).

The paper's memory-safety experiment needs a *contrast*: the same buggy
code that merely traps inside a Wasm sandbox must crash or corrupt when run
natively on the gNB host.  Python cannot (usefully) segfault, so this
package models the C execution environment the host would be written in:

- :class:`UnsafeHeap` - a C heap with real undefined behaviour: null
  dereference and out-of-bounds access raise :class:`SegmentationFault`;
  double free corrupts the free list exactly the way glibc's fastbins do,
  with the crash surfacing on a *later* allocation;
- :class:`HostProcess` - wraps a workload and turns any
  :class:`SegmentationFault` into a permanently dead process, the way a
  real gNB binary dies;
- :class:`HostMemoryModel` - an RSS model for the Fig. 5c leak experiment.
"""

from repro.hostsim.heap import (
    HeapCorruption,
    SegmentationFault,
    UnsafeHeap,
)
from repro.hostsim.process import HostMemoryModel, HostProcess

__all__ = [
    "UnsafeHeap",
    "SegmentationFault",
    "HeapCorruption",
    "HostProcess",
    "HostMemoryModel",
]
