"""Process-level wrappers for the native baseline."""

from __future__ import annotations

from typing import Callable

from repro.hostsim.heap import SegmentationFault, UnsafeHeap


class HostProcess:
    """A native gNB process: one segfault and it is gone.

    ``run(fn)`` executes a workload step.  If the workload segfaults, the
    process transitions to ``crashed`` and every later call fails - the
    behaviour the paper contrasts against the sandbox's trap-and-continue.
    """

    def __init__(self, name: str = "gnb-native"):
        self.name = name
        self.heap = UnsafeHeap()
        self.crashed = False
        self.crash_reason: str | None = None
        self.steps_completed = 0

    def run(self, fn: Callable[[UnsafeHeap], object]):
        if self.crashed:
            raise ProcessLookupError(
                f"{self.name} is dead (crashed: {self.crash_reason})"
            )
        try:
            result = fn(self.heap)
        except SegmentationFault as exc:
            self.crashed = True
            self.crash_reason = str(exc)
            raise
        self.steps_completed += 1
        return result


class HostMemoryModel:
    """RSS model for the Fig. 5c leak experiment.

    Host resident memory = a fixed baseline (the gNB stack) + native heap
    high-water mark + the linear memory of every hosted plugin.  A leak in
    native code grows the heap without bound; a leak inside a plugin grows
    that plugin's linear memory only up to its declared maximum.
    """

    def __init__(self, baseline_bytes: int = 256 << 20):
        self.baseline_bytes = baseline_bytes
        self._native_heaps: list[UnsafeHeap] = []
        self._plugin_memories: list = []  # objects with .size_bytes

    def attach_native_heap(self, heap: UnsafeHeap) -> None:
        self._native_heaps.append(heap)

    def attach_plugin_memory(self, memory) -> None:
        self._plugin_memories.append(memory)

    def detach_plugin_memory(self, memory) -> None:
        self._plugin_memories = [m for m in self._plugin_memories if m is not memory]

    @property
    def rss_bytes(self) -> int:
        return (
            self.baseline_bytes
            + sum(h.brk_bytes for h in self._native_heaps)
            + sum(m.size_bytes for m in self._plugin_memories)
        )

    def rss_increase_mib(self, baseline_rss: int) -> float:
        return (self.rss_bytes - baseline_rss) / (1 << 20)
