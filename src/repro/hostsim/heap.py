"""A C heap with faithful undefined behaviour.

Free chunks are threaded through a singly-linked free list whose *next*
pointer lives at the chunk's user address (as in dlmalloc/glibc fastbins).
That is what makes double free catastrophic natively: the second free
inserts the chunk into the list twice, a later pair of mallocs returns the
same address twice, user data written through one alias overwrites the
free-list pointer, and the allocator later chases that garbage pointer into
unmapped memory - killing the process far from the original bug.
"""

from __future__ import annotations


class SegmentationFault(Exception):
    """The process touched memory it does not own.  Natively: SIGSEGV."""


class HeapCorruption(SegmentationFault):
    """Allocator metadata was corrupted (double free, overflow into headers)."""


_NULL = 0
_CHUNK_HEADER = 8  # size word + padding before the user region


class UnsafeHeap:
    """Byte-addressed heap with malloc/free and raw loads/stores.

    Addresses below 64 model the unmapped null page.  There is **no**
    double-free detection, by design: this heap exists to show what the
    native baseline does with the same bugs the sandbox merely traps.
    """

    def __init__(self, size: int = 1 << 20):
        self.size = size
        self.memory = bytearray(size)
        self._allocated: dict[int, int] = {}  # user addr -> size
        self._free_head = _NULL  # user addr of first free chunk
        self._brk = 64  # skip the null guard region

    # ----- accounting ------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def brk_bytes(self) -> int:
        """High-water mark: what the OS sees as the process heap size."""
        return self._brk

    # ----- raw access (undefined behaviour included) -------------------------

    def _check_mapped(self, addr: int, size: int) -> None:
        if addr < 64:
            raise SegmentationFault(f"access to {addr:#x}: null-page dereference")
        if addr < 0 or addr + size > self.size:
            raise SegmentationFault(
                f"access to {addr:#x}+{size}: beyond mapped memory"
            )

    def load32(self, addr: int) -> int:
        self._check_mapped(addr, 4)
        return int.from_bytes(self.memory[addr : addr + 4], "little")

    def store32(self, addr: int, value: int) -> None:
        self._check_mapped(addr, 4)
        self.memory[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def write(self, addr: int, payload: bytes) -> None:
        self._check_mapped(addr, len(payload))
        self.memory[addr : addr + len(payload)] = payload

    # ----- allocator ----------------------------------------------------------

    def malloc(self, size: int) -> int:
        if size <= 0:
            raise ValueError("malloc size must be positive")
        if self._free_head != _NULL:
            user = self._free_head
            # chase the fd pointer stored AT the user address
            next_ptr = self.load32(user)
            if next_ptr != _NULL and (next_ptr < 64 or next_ptr + 4 > self.size):
                raise HeapCorruption(
                    f"malloc: free-list fd pointer {next_ptr:#x} is garbage"
                )
            self._free_head = next_ptr
            self._allocated[user] = self.load32(user - _CHUNK_HEADER)
            return user
        chunk = self._brk
        if chunk + _CHUNK_HEADER + size > self.size:
            raise MemoryError("heap exhausted")
        self._brk += _CHUNK_HEADER + size
        self.store32(chunk, size)
        user = chunk + _CHUNK_HEADER
        self._allocated[user] = size
        return user

    def free(self, addr: int) -> None:
        """Push onto the free list - unconditionally, like a fastbin."""
        if addr == _NULL:
            return  # free(NULL) is a no-op
        self._check_mapped(addr - _CHUNK_HEADER, _CHUNK_HEADER)
        self._allocated.pop(addr, None)
        self.store32(addr, self._free_head)  # fd pointer at user address
        self._free_head = addr

    # ----- the three §5D faults, as native code executes them ------------------

    def null_dereference(self) -> int:
        """``*(int *)NULL`` - immediate segfault."""
        return self.load32(_NULL)

    def out_of_bounds_write(self, addr: int, count: int, stride: int = 4) -> None:
        """Walk an array far past its end until the page boundary kills us."""
        for i in range(count):
            self.store32(addr + i * stride, i)

    def double_free_then_use(self) -> None:
        """free(p); free(p); then reuse - the glibc fastbin-dup scenario.

        The two subsequent mallocs alias; writing user data through the
        first overwrites the free-list fd pointer, and the third malloc
        chases it into garbage -> :class:`HeapCorruption` (native crash).
        """
        p = self.malloc(64)
        self.free(p)
        self.free(p)  # UB: p is now twice in the free list
        a = self.malloc(64)  # returns p; free list still points at p
        self.store32(a, 0xDEADBEEF)  # user data clobbers the fd pointer
        b = self.malloc(64)  # returns p again (aliased with a!)
        assert a == b  # two owners of one chunk
        self.malloc(64)  # chases fd = 0xDEADBEEF -> HeapCorruption
