"""``repro reduce``: shrink a recorded corpus while it stays faithful.

Reduction happens on two axes, Wasm-R3 style:

1. **Calls** - a soak records tens of thousands of near-identical
   invocations.  Exact duplicates are dropped first, then calls are
   bucketed into ``(entry, input-shape, outcome, chaos-kind, rt-budget,
   alloc)`` equivalence classes and a handful of representatives is kept
   per class.  Every representative is then re-executed standalone: a
   call that reproduces its recording is kept verbatim; one that
   deterministically differs (an xApp answered by stubbed host functions,
   a fault whose fuel echo was recording-order dependent) is *rebased* to
   the standalone expectation and flagged ``live_match=False``; a call
   that cannot be staged at all is dropped.
2. **Modules** - the fuzzer's shrinking machinery
   (:func:`repro.fuzz.shrink.shrink`) minimises each module body under
   the predicate "every kept call still reproduces its expectation".
   Because expectations are fuel-exact, only genuinely dead code can go -
   the shrunk module is behaviourally identical on the corpus by
   construction.

The output corpus carries its own (re-verified) expectations, so
``repro replay-bench`` runs bit-identically under all three engines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.fuzz.shrink import shrink
from repro.replay.bench import (
    ReplayError,
    StreamReplayer,
    make_stream_host,
    replay_session,
)
from repro.replay.corpus import (
    ReplayCall,
    ReplayCorpus,
    ReplayStream,
    dumps_corpus,
)


@dataclass
class ReduceReport:
    """What reduction kept, rebased, dropped and shrank."""

    original_calls: int = 0
    kept_calls: int = 0
    rebased: int = 0
    dropped: int = 0
    original_bytes: int = 0
    reduced_bytes: int = 0
    #: per-module byte sizes, ``{sha12: [before, after]}``
    module_sizes: dict[str, list[int]] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Corpus size reduction factor (serialised bytes)."""
        return self.original_bytes / max(self.reduced_bytes, 1)

    def to_json(self) -> dict[str, Any]:
        return {
            "original_calls": self.original_calls,
            "kept_calls": self.kept_calls,
            "rebased": self.rebased,
            "dropped": self.dropped,
            "original_bytes": self.original_bytes,
            "reduced_bytes": self.reduced_bytes,
            "ratio": round(self.ratio, 2),
            "module_sizes": self.module_sizes,
        }

    def summary(self) -> str:
        return (
            f"reduce: {self.original_calls} -> {self.kept_calls} calls "
            f"({self.rebased} rebased, {self.dropped} dropped), "
            f"{self.original_bytes} -> {self.reduced_bytes} bytes "
            f"({self.ratio:.1f}x)"
        )


def _call_class(call: ReplayCall) -> tuple:
    """The trap/fuel equivalence class a call samples into."""
    chaos_kind = call.chaos.get("kind") if call.chaos else None
    budgeted = call.rt is not None and call.rt.get("fuel") is not None
    return (
        call.entry,
        len(call.input_bytes),
        call.outcome,
        chaos_kind,
        budgeted,
        call.alloc,
    )


def _exact_key(call: ReplayCall) -> tuple:
    return (
        call.entry,
        call.input_bytes,
        call.outcome,
        call.output_bytes,
        call.fuel_used,
        call.alloc,
        tuple(tuple(pair) for pair in call.globals_pre),
        json.dumps(call.chaos, sort_keys=True),
        json.dumps(call.rt, sort_keys=True),
    )


def _sample_stream(
    stream: ReplayStream, max_per_class: int
) -> list[ReplayCall]:
    """Exact-dedup then keep the first ``max_per_class`` of each class."""
    seen: set[tuple] = set()
    per_class: dict[tuple, int] = {}
    kept: list[ReplayCall] = []
    for call in stream.calls:
        exact = _exact_key(call)
        if exact in seen:
            continue
        seen.add(exact)
        cls = _call_class(call)
        if per_class.get(cls, 0) >= max_per_class:
            continue
        per_class[cls] = per_class.get(cls, 0) + 1
        # private copy: verification below may rebase expectations
        kept.append(ReplayCall.from_json(call.to_json()))
    return kept


def _verify_stream(
    corpus: ReplayCorpus,
    stream: ReplayStream,
    engine: str | None,
    report: ReduceReport,
) -> list[ReplayCall]:
    """Replay the stream's calls in order; keep, rebase or drop each one."""
    verified: list[ReplayCall] = []
    with replay_session() as recorder:
        try:
            host = make_stream_host(corpus, stream, engine)
        except ReplayError:
            report.dropped += len(stream.calls)
            return []
        replayer = StreamReplayer(host, recorder)
        for call in stream.calls:
            try:
                outcome, output, fuel, _us = replayer.replay_call(call)
            except ReplayError:
                report.dropped += 1
                continue
            if (outcome, output, fuel) != (
                call.outcome, call.output_bytes, call.fuel_used
            ):
                call.outcome = outcome
                call.output_bytes = output
                call.fuel_used = fuel
                call.live_match = False
                report.rebased += 1
            verified.append(call)
    return verified


def _replays_faithfully(
    wasm: bytes, streams: list[ReplayStream], engine: str | None
) -> bool:
    """True iff every stream reproduces all expectations on ``wasm``.

    Never raises: the shrinker counts predicate exceptions as *failing*
    (its findings are crashes), which for us would keep a broken module -
    so any staging error simply reads as "not faithful".
    """
    try:
        with replay_session() as recorder:
            for stream in streams:
                candidate = ReplayCorpus(modules={stream.module_sha: wasm})
                host = make_stream_host(candidate, stream, engine)
                replayer = StreamReplayer(host, recorder)
                for call in stream.calls:
                    outcome, output, fuel, _us = replayer.replay_call(call)
                    if (outcome, output, fuel) != (
                        call.outcome, call.output_bytes, call.fuel_used
                    ):
                        return False
        return True
    except Exception:  # noqa: BLE001 - unstageable candidate
        return False


def reduce_corpus(
    corpus: ReplayCorpus,
    max_per_class: int = 3,
    shrink_modules: bool = True,
    max_checks: int = 120,
    engine: str | None = None,
) -> tuple[ReplayCorpus, ReduceReport]:
    """Reduce ``corpus``; returns the new corpus and what happened.

    The input corpus is not modified.  ``max_checks`` bounds the module
    shrinker's predicate evaluations per module (each evaluation replays
    every kept call of that module's streams).
    """
    report = ReduceReport(
        original_calls=corpus.total_calls,
        original_bytes=len(dumps_corpus(corpus)),
    )

    reduced = ReplayCorpus(meta=dict(corpus.meta), modules=dict(corpus.modules))
    for stream in corpus.streams:
        sampled = ReplayStream(
            plugin=stream.plugin,
            generation=stream.generation,
            module_sha=stream.module_sha,
            fuel_limit=stream.fuel_limit,
            output_record_bytes=stream.output_record_bytes,
            max_output_bytes=stream.max_output_bytes,
            calls=_sample_stream(stream, max_per_class),
        )
        sampled.calls = _verify_stream(reduced, sampled, engine, report)
        if sampled.calls:
            reduced.streams.append(sampled)

    if shrink_modules:
        by_module: dict[str, list[ReplayStream]] = {}
        for stream in reduced.streams:
            by_module.setdefault(stream.module_sha, []).append(stream)
        for sha, streams in sorted(by_module.items()):
            wasm = reduced.modules[sha]
            shrunk, _calls = shrink(
                wasm,
                [("corpus", [])],  # single entry: disables call-dropping
                lambda w, _c, _s=streams: _replays_faithfully(w, _s, engine),
                max_checks=max_checks,
            )
            report.module_sizes[sha[:12]] = [len(wasm), len(shrunk)]
            if len(shrunk) < len(wasm):
                new_sha = hashlib.sha256(shrunk).hexdigest()
                del reduced.modules[sha]
                reduced.modules[new_sha] = shrunk
                for stream in streams:
                    stream.module_sha = new_sha

    used = {stream.module_sha for stream in reduced.streams}
    reduced.modules = {
        sha: raw for sha, raw in reduced.modules.items() if sha in used
    }
    report.kept_calls = reduced.total_calls
    report.reduced_bytes = len(dumps_corpus(reduced))
    reduced.meta["recorded_calls"] = corpus.meta.get(
        "recorded_calls", report.original_calls
    )
    reduced.meta["streams"] = len(reduced.streams)
    reduced.meta["reduced"] = True
    reduced.meta["reduction"] = report.to_json()
    return reduced, report
